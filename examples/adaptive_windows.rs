//! Adaptive resource management (Section 3.3 of the paper): the resource
//! manager shrinks sliding windows when the cost model predicts a memory
//! budget violation, and every resize fires a `window_size_changed` event
//! that re-triggers the estimates through the metadata dependency graph.
//!
//! ```bash
//! cargo run --example adaptive_windows
//! ```

use std::sync::Arc;

use streammeta::costmodel::{install_cost_model, ESTIMATED_MEMORY_USAGE};
use streammeta::prelude::*;

fn main() {
    let clock = VirtualClock::shared();
    let manager = MetadataManager::new(clock.clone());
    let graph = Arc::new(QueryGraph::with_config(
        manager.clone(),
        MetadataConfig {
            rate_window: TimeSpan(200),
        },
    ));

    // A fast stream cross-joined with itself over generous windows.
    let src1 = graph.source(
        "ticks",
        Box::new(ConstantRate::new(
            Timestamp(0),
            TimeSpan(2),
            TupleGen::Sequence,
            1,
        )),
    );
    let src2 = graph.source(
        "quotes",
        Box::new(ConstantRate::new(
            Timestamp(0),
            TimeSpan(2),
            TupleGen::Sequence,
            2,
        )),
    );
    let (w1, h1) = graph.time_window("w-ticks", src1, TimeSpan(400));
    let (w2, h2) = graph.time_window("w-quotes", src2, TimeSpan(400));
    let join = graph.join("correlate", w1, w2, JoinPredicate::True, StateImpl::List);
    let _sink = graph.sink_discard("app", join);
    install_cost_model(&graph);

    let budget = 1_000u64;
    let mut rm = ResourceManager::new(graph.clone(), budget);
    rm.manage_window(w1, h1.clone());
    rm.manage_window(w2, h2.clone());
    rm.watch_join(join).expect("cost model installed");

    let measured = manager
        .subscribe(MetadataKey::new(join, "memory_usage"))
        .expect("standard item");
    let estimated = manager
        .subscribe(MetadataKey::new(join, ESTIMATED_MEMORY_USAGE))
        .expect("cost model");

    let mut engine = VirtualEngine::new(graph.clone(), clock.clone());
    println!("memory budget: {budget} bytes\n");
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>8}",
        "t", "window", "estimated", "measured", "scale"
    );
    for step in 1..=10u64 {
        engine.run_until(Timestamp(step * 400));
        let adj = rm.adjust();
        println!(
            "{:>6} {:>10} {:>12.0} {:>12.0} {:>8.2}{}",
            clock.now(),
            h1.get(),
            estimated.get_f64().unwrap_or(f64::NAN),
            measured.get_f64().unwrap_or(f64::NAN),
            rm.scale(),
            if adj.resized { "  <- resized" } else { "" },
        );
    }
    println!(
        "\nThe estimate converges under the budget; the measured state \
         follows once the previously admitted elements expire."
    );
}
