//! The paper's running example (Figure 3): a monitoring tool plots the
//! estimated CPU usage of a time-based sliding-window join against the
//! measured usage.
//!
//! Subscribing to `estimated_cpu_usage` automatically includes the whole
//! estimation network — stream rates and element validities from the
//! inputs (inter-node dependencies), predicate cost (intra-node). The
//! profiler records both series and prints a CSV you can plot.
//!
//! ```bash
//! cargo run --example join_cost_monitor
//! ```

use std::sync::Arc;

use streammeta::costmodel::{install_cost_model, ESTIMATED_CPU_USAGE, ESTIMATED_MEMORY_USAGE};
use streammeta::prelude::*;
use streammeta::profiler::Recorder;

fn main() {
    let clock = VirtualClock::shared();
    let manager = MetadataManager::new(clock.clone());
    let graph = Arc::new(QueryGraph::with_config(
        manager.clone(),
        MetadataConfig {
            rate_window: TimeSpan(100),
        },
    ));

    // Two streams, windowed, equi-joined on a skewed key.
    let left = graph.source(
        "left",
        Box::new(ConstantRate::new(
            Timestamp(0),
            TimeSpan(4),
            TupleGen::UniformInt {
                lo: 0,
                hi: 9,
                cols: 1,
            },
            1,
        )),
    );
    let right = graph.source(
        "right",
        Box::new(ConstantRate::new(
            Timestamp(0),
            TimeSpan(6),
            TupleGen::UniformInt {
                lo: 0,
                hi: 9,
                cols: 1,
            },
            2,
        )),
    );
    let (wl, _hl) = graph.time_window("wl", left, TimeSpan(120));
    let (wr, _hr) = graph.time_window("wr", right, TimeSpan(80));
    let join = graph.join(
        "join",
        wl,
        wr,
        JoinPredicate::EqAttr { left: 0, right: 0 },
        StateImpl::Hash,
    );
    let (_sink, _results) = graph.sink_collect("app", join);
    install_cost_model(&graph);

    // The monitoring tool subscribes through a profiler.
    let mut recorder = Recorder::new(manager.clone());
    recorder
        .track("est_cpu", MetadataKey::new(join, ESTIMATED_CPU_USAGE))
        .expect("estimate installed");
    recorder
        .track("meas_cpu", MetadataKey::new(join, "measured_cpu_usage"))
        .expect("standard item");
    recorder
        .track("est_mem", MetadataKey::new(join, ESTIMATED_MEMORY_USAGE))
        .expect("estimate installed");
    recorder
        .track("meas_mem", MetadataKey::new(join, "memory_usage"))
        .expect("standard item");
    recorder
        .track("join_selectivity", MetadataKey::new(join, "selectivity"))
        .expect("join item");

    println!(
        "included items after subscribing the monitors: {}",
        manager.handler_count()
    );

    let mut engine = VirtualEngine::new(graph.clone(), clock.clone());
    for _ in 0..30 {
        engine.run_for(TimeSpan(100));
        recorder.sample();
    }

    println!("\nCSV (plot est_cpu vs meas_cpu over time):\n");
    print!("{}", recorder.to_csv());

    for idx in 0..recorder.len() {
        if let Some(s) = recorder.summary(idx) {
            println!(
                "# {}: mean={:.3} min={:.3} max={:.3} over {} samples",
                recorder.label(idx),
                s.mean,
                s.min,
                s.max,
                s.count
            );
        }
    }
}
