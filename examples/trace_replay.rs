//! Replaying a recorded trace through a CQL query, with the source's
//! value distribution published as metadata.
//!
//! ```bash
//! cargo run --example trace_replay
//! ```

use std::sync::Arc;

use streammeta::cql::{install, Catalog};
use streammeta::prelude::*;
use streammeta::streams::{Replay, Schema, ValueType};

// A small recorded trade trace: timestamp, symbol id, price.
const TRACE: &str = "\
# ts, sym, price
5,  1, 101
9,  2, 230
14, 1, 99
22, 3, 45
30, 1, 104
41, 2, 228
55, 3, 47
63, 1, 97
71, 2, 231
88, 3, 44
";

fn main() {
    let clock = VirtualClock::shared();
    let manager = MetadataManager::new(clock.clone());
    let graph = Arc::new(QueryGraph::new(manager.clone()));

    let schema = Schema::of(&[("sym", ValueType::Int), ("price", ValueType::Int)]);
    let replay = Replay::from_csv(schema, TRACE).expect("trace parses");
    let trades = graph.source("trades", Box::new(replay));
    graph.add_value_histogram(trades, 1, 0, 300, 10);

    let mut catalog = Catalog::new();
    catalog.register("trades", trades).expect("fresh name");
    let plan = install(
        &graph,
        &catalog,
        "SELECT sym, price FROM trades WHERE price < 150 AND sym = 1",
    )
    .expect("query compiles");

    // A push observer prints the filter's selectivity as it is measured.
    let filter = plan.filter.expect("query filters");
    let _watch = manager
        .subscribe_with(MetadataKey::new(filter, "selectivity"), |v| {
            println!(
                "  [push] filter selectivity -> {} (v{})",
                v.value, v.version
            );
        })
        .expect("filter item");
    let dist = manager
        .subscribe(MetadataKey::new(trades, "value_distribution.1"))
        .expect("histogram item");

    let mut engine = VirtualEngine::new(graph.clone(), clock.clone());
    engine.run_until(Timestamp(200));

    println!("\nmatching trades (sym=1, price<150):");
    for row in plan.results.snapshot() {
        println!(
            "  t={:<4} sym={} price={}",
            row.timestamp, row.payload[0], row.payload[1]
        );
    }
    println!(
        "\nprice distribution observed at the source: {}",
        dist.get()
    );
}
