//! Metadata discovery and dependency-graph introspection: list what every
//! node offers (Section 2.2: "each node gives information about available
//! metadata items"), subscribe to a cost estimate, and export the included
//! dependency subgraph as Graphviz DOT — the picture of the paper's
//! Figure 3, generated from the live system.
//!
//! ```bash
//! cargo run --example metadata_explorer | tee /tmp/metadata.dot
//! dot -Tpng /tmp/metadata.dot -o figure3.png   # if graphviz is installed
//! ```

use std::sync::Arc;

use streammeta::costmodel::{install_cost_model, ESTIMATED_CPU_USAGE};
use streammeta::prelude::*;

fn main() {
    let clock = VirtualClock::shared();
    let manager = MetadataManager::new(clock.clone());
    let graph = Arc::new(QueryGraph::new(manager.clone()));

    // The Figure 3 query plan.
    let s1 = graph.source(
        "stream1",
        Box::new(ConstantRate::new(
            Timestamp(0),
            TimeSpan(10),
            TupleGen::Sequence,
            1,
        )),
    );
    let s2 = graph.source(
        "stream2",
        Box::new(ConstantRate::new(
            Timestamp(0),
            TimeSpan(10),
            TupleGen::Sequence,
            2,
        )),
    );
    let (w1, _h1) = graph.time_window("window1", s1, TimeSpan(100));
    let (w2, _h2) = graph.time_window("window2", s2, TimeSpan(100));
    let join = graph.join(
        "join",
        w1,
        w2,
        JoinPredicate::EqAttr { left: 0, right: 0 },
        StateImpl::Hash,
    );
    let (_sink, _out) = graph.sink_collect("app", join);
    install_cost_model(&graph);

    // Discovery: what does the join offer? (Includes the state modules'
    // items under state.left / state.right — Section 4.5.)
    eprintln!("metadata available at the join:");
    for item in manager.available_items(join).expect("join attached") {
        let doc = graph
            .get(join)
            .and_then(|slot| slot.registry().get(&item))
            .and_then(|def| def.doc().map(str::to_owned))
            .unwrap_or_default();
        eprintln!("  {item:<34} {doc}");
    }

    // Subscribe the Figure 3 cascade and print it as DOT (stdout).
    let _cpu = manager
        .subscribe(MetadataKey::new(join, ESTIMATED_CPU_USAGE))
        .expect("cost model installed");
    eprintln!(
        "\nsubscribed estimated_cpu_usage: {} items included; DOT on stdout:\n",
        manager.handler_count()
    );
    println!("{}", manager.to_dot());

    // Dependencies of the estimate, with roles.
    eprintln!("direct dependencies of the estimate:");
    for dep in manager
        .dependencies_of(&MetadataKey::new(join, ESTIMATED_CPU_USAGE))
        .expect("included")
    {
        eprintln!("  {:<16} <- {:?}", dep.role, dep.source);
    }
}
