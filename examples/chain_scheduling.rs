//! Metadata-driven operator scheduling (motivating application 1 of the
//! paper): the Chain scheduler subscribes to operator selectivities and
//! keeps inter-operator queue memory low under bursty overload — and it
//! adapts when selectivities drift at runtime.
//!
//! ```bash
//! cargo run --example chain_scheduling
//! ```

use std::sync::Arc;

use streammeta::engine::Scheduler;
use streammeta::prelude::*;
use streammeta::streams::Bursty;

fn build() -> (
    Arc<VirtualClock>,
    Arc<MetadataManager>,
    Arc<QueryGraph>,
    Vec<Subscription>,
) {
    let clock = VirtualClock::shared();
    let manager = MetadataManager::new(clock.clone());
    let graph = Arc::new(QueryGraph::with_config(
        manager.clone(),
        MetadataConfig {
            rate_window: TimeSpan(50),
        },
    ));
    let mut subs = Vec::new();
    for (tag, sel, seed) in [("alerts", 0.05f64, 1u64), ("logs", 0.95, 2)] {
        let src = graph.source(
            &format!("src-{tag}"),
            Box::new(Bursty::new(
                Timestamp(0),
                TimeSpan(60),
                TimeSpan(140),
                TimeSpan(1),
                None,
                TupleGen::Sequence,
                seed,
            )),
        );
        let handle = streammeta::graph::SelectivityHandle::new(sel);
        let f = graph.filter(
            &format!("match-{tag}"),
            src,
            FilterPredicate::Prob(handle),
            seed + 9,
        );
        graph.sink_discard(&format!("out-{tag}"), f);
        subs.push(
            manager
                .subscribe(MetadataKey::new(f, "selectivity"))
                .expect("filters define selectivity"),
        );
    }
    (clock, manager, graph, subs)
}

fn run(label: &str, make: impl Fn(&QueryGraph) -> Box<dyn Scheduler>) {
    let (clock, _manager, graph, _subs) = build();
    let mut engine = VirtualEngine::new(graph.clone(), clock);
    engine.set_scheduler(make(&graph));
    // Warm-up so selectivities are measured, then throttle the CPU.
    engine.run_until(Timestamp(400));
    engine.set_ops_per_tick(Some(2));
    engine.run_until(Timestamp(6400));
    let stats = engine.stats();
    println!(
        "{label:<12} avg queued = {:>7.2} elements, peak = {:>4}, processed = {}",
        stats.avg_queue_elements(),
        stats.max_queue_elements,
        stats.processed
    );
}

fn main() {
    println!("bursty overload, processing budget 2 elements/tick\n");
    run("fifo", |_| Box::new(FifoScheduler));
    run("chain", |g| Box::new(ChainScheduler::new(g)));
    println!(
        "\nChain reads filter selectivities through metadata subscriptions \
         and serves the most destructive operators first, minimising queue \
         memory (Babcock et al., SIGMOD 2003)."
    );
}
