//! Quickstart: build a small continuous query, subscribe to its metadata,
//! run it on virtual time, and watch the values.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use streammeta::prelude::*;

fn main() {
    // 1. A clock, a metadata manager, and a query graph bound to it.
    //    Periodic metadata is measured over 100-time-unit windows.
    let clock = VirtualClock::shared();
    let manager = MetadataManager::new(clock.clone());
    let graph = Arc::new(QueryGraph::with_config(
        manager.clone(),
        MetadataConfig {
            rate_window: TimeSpan(100),
        },
    ));

    // 2. A continuous query: a sensor stream, filtered, windowed,
    //    aggregated, delivered to a sink.
    let sensor = graph.source(
        "sensor",
        Box::new(ConstantRate::new(
            Timestamp(0),
            TimeSpan(5), // one reading every 5 time units
            TupleGen::UniformInt {
                lo: 0,
                hi: 99,
                cols: 1,
            },
            42,
        )),
    );
    let hot = graph.filter(
        "hot-readings",
        sensor,
        FilterPredicate::AttrLt { col: 0, bound: 30 },
        7,
    );
    let (windowed, _handle) = graph.time_window("last-200", hot, TimeSpan(200));
    let avg = graph.aggregate("avg-hot", windowed, AggKind::Count, 0);
    let (sink, results) = graph.sink_collect("app", avg);
    graph.set_sink_qos(sink, 5, TimeSpan(1_000));

    // 3. Subscribe to metadata. The subscription materialises a shared
    //    handler and activates exactly the monitoring the items need.
    let input_rate = manager
        .subscribe(MetadataKey::new(hot, "input_rate"))
        .expect("defined on every node");
    let selectivity = manager
        .subscribe(MetadataKey::new(hot, "selectivity"))
        .expect("defined on filters");
    let state_size = manager
        .subscribe(MetadataKey::new(avg, "state_size"))
        .expect("defined on stateful operators");

    // 4. Run the query on deterministic virtual time.
    let mut engine = VirtualEngine::new(graph.clone(), clock.clone());
    for round in 1..=5u64 {
        engine.run_until(Timestamp(round * 500));
        println!(
            "t={:>5}  input_rate={:?}  selectivity={:?}  agg_state={:?}  results={}",
            clock.now(),
            input_rate.get(),
            selectivity.get(),
            state_size.get(),
            results.len(),
        );
    }

    // 5. Metadata discovery: every node lists what it can provide.
    println!("\nmetadata available at the filter node:");
    for item in manager.available_items(hot).expect("node known") {
        println!("  {item}");
    }

    // 6. Dropping subscriptions excludes the items again — unused
    //    metadata costs nothing.
    drop((input_rate, selectivity, state_size));
    println!(
        "\nhandlers after dropping all subscriptions: {}",
        manager.handler_count()
    );
}
