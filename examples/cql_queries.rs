//! Continuous queries in CQL, compiled onto the shared operator graph —
//! with the metadata framework observing every operator the compiler
//! creates.
//!
//! ```bash
//! cargo run --example cql_queries
//! ```

use std::sync::Arc;

use streammeta::cql::{install, Catalog};
use streammeta::prelude::*;

fn main() {
    let clock = VirtualClock::shared();
    let manager = MetadataManager::new(clock.clone());
    let graph = Arc::new(QueryGraph::new(manager.clone()));

    // Register two streams: trades (sym, price) and quotes (sym, bid).
    let trades = graph.source(
        "trades",
        Box::new(ConstantRate::new(
            Timestamp(0),
            TimeSpan(5),
            TupleGen::UniformInt {
                lo: 0,
                hi: 9,
                cols: 2,
            },
            1,
        )),
    );
    let quotes = graph.source(
        "quotes",
        Box::new(ConstantRate::new(
            Timestamp(0),
            TimeSpan(8),
            TupleGen::UniformInt {
                lo: 0,
                hi: 9,
                cols: 2,
            },
            2,
        )),
    );
    let mut catalog = Catalog::new();
    catalog.register("trades", trades).expect("fresh name");
    catalog.register("quotes", quotes).expect("fresh name");

    // Three continuous queries sharing the registered sources.
    let q1 = install(&graph, &catalog, "SELECT * FROM trades WHERE k0 < 3").expect("q1 compiles");
    let q2 =
        install(&graph, &catalog, "SELECT COUNT(*) FROM trades[RANGE 200]").expect("q2 compiles");
    let q3 = install(
        &graph,
        &catalog,
        "SELECT t.k1, q.k1 FROM trades[RANGE 100] AS t \
         JOIN quotes[RANGE 100] AS q ON t.k0 = q.k0",
    )
    .expect("q3 compiles");

    // The compiled operators carry the full metadata item set; monitor
    // the join that query 3 created.
    let join = q3.join.expect("q3 has a join");
    let join_rate = manager
        .subscribe(MetadataKey::new(join, "output_rate"))
        .expect("standard item");
    let filter_sel = manager
        .subscribe(MetadataKey::new(
            q1.filter.expect("q1 filters"),
            "selectivity",
        ))
        .expect("filter item");

    let mut engine = VirtualEngine::new(graph.clone(), clock.clone());
    engine.run_until(Timestamp(2_000));

    println!(
        "q1 (filter):     {} rows, selectivity {:?}",
        q1.results.len(),
        filter_sel.get()
    );
    let counts = q2.results.snapshot();
    println!(
        "q2 (count):      last window count = {:?}",
        counts.last().map(|e| e.payload[0].clone())
    );
    println!(
        "q3 (join):       {} rows, output rate {:?}, schema {}",
        q3.results.len(),
        join_rate.get(),
        q3.output_schema
    );
    println!(
        "\nsubquery sharing: trades feeds {} consumers",
        manager
            .subscribe(MetadataKey::new(trades, "reuse_count"))
            .unwrap()
            .get()
    );
}
