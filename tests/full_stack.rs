//! Cross-crate integration tests through the `streammeta` facade: the
//! whole pipeline from workload generation through query execution to
//! metadata-driven adaptation.

use std::sync::Arc;

use streammeta::costmodel::{
    install_cost_model, ResourceManager, ESTIMATED_CPU_USAGE, ESTIMATED_MEMORY_USAGE,
};
use streammeta::prelude::*;
use streammeta::profiler::Recorder;

fn stack(rate_window: u64) -> (Arc<VirtualClock>, Arc<MetadataManager>, Arc<QueryGraph>) {
    let clock = VirtualClock::shared();
    let manager = MetadataManager::new(clock.clone());
    let graph = Arc::new(QueryGraph::with_config(
        manager.clone(),
        MetadataConfig {
            rate_window: TimeSpan(rate_window),
        },
    ));
    (clock, manager, graph)
}

#[test]
fn figure3_pipeline_with_monitoring_and_adaptation() {
    let (clock, manager, graph) = stack(100);
    let s1 = graph.source(
        "s1",
        Box::new(ConstantRate::new(
            Timestamp(0),
            TimeSpan(2),
            TupleGen::Sequence,
            1,
        )),
    );
    let s2 = graph.source(
        "s2",
        Box::new(ConstantRate::new(
            Timestamp(0),
            TimeSpan(2),
            TupleGen::Sequence,
            2,
        )),
    );
    let (w1, h1) = graph.time_window("w1", s1, TimeSpan(300));
    let (w2, h2) = graph.time_window("w2", s2, TimeSpan(300));
    let join = graph.join("j", w1, w2, JoinPredicate::True, StateImpl::List);
    let (_sink, results) = graph.sink_collect("out", join);
    install_cost_model(&graph);

    // Profiler tracks estimate and measurement.
    let mut recorder = Recorder::new(manager.clone());
    let est = recorder
        .track("est_mem", MetadataKey::new(join, ESTIMATED_MEMORY_USAGE))
        .unwrap();
    let meas = recorder
        .track("meas_mem", MetadataKey::new(join, "memory_usage"))
        .unwrap();

    // Resource manager holds the join under a budget.
    let budget = 1200u64;
    let mut rm = ResourceManager::new(graph.clone(), budget);
    rm.manage_window(w1, h1.clone());
    rm.manage_window(w2, h2.clone());
    rm.watch_join(join).unwrap();

    let mut engine = VirtualEngine::new(graph.clone(), clock.clone());
    for _ in 0..10 {
        engine.run_for(TimeSpan(300));
        rm.adjust();
        recorder.sample();
    }
    assert!(!results.is_empty(), "join produced results");
    // Estimated memory settled under the budget.
    let est_summary = recorder.summary(est).unwrap();
    assert!(
        est_summary.min <= budget as f64 * 1.1,
        "estimate never came down: {est_summary:?}"
    );
    // Measurement eventually agrees with the (resized) estimate.
    let last_est = recorder.series(est).last().unwrap().1.unwrap();
    let last_meas = recorder.series(meas).last().unwrap().1.unwrap();
    assert!(
        (last_est - last_meas).abs() / last_meas < 0.3,
        "estimate {last_est} vs measured {last_meas}"
    );
    // Windows physically shrank from their preferred 300.
    assert!(h1.get() < TimeSpan(300));
    assert!(h2.get() < TimeSpan(300));
}

#[test]
fn query_install_and_remove_at_runtime() {
    let (clock, manager, graph) = stack(50);
    let src = graph.source(
        "shared-src",
        Box::new(ConstantRate::new(
            Timestamp(0),
            TimeSpan(5),
            TupleGen::Sequence,
            1,
        )),
    );
    let f = graph.filter(
        "shared-filter",
        src,
        FilterPredicate::AttrLt {
            col: 0,
            bound: i64::MAX,
        },
        3,
    );
    let (sink1, out1) = graph.sink_collect("q1", f);
    let mut engine = VirtualEngine::new(graph.clone(), clock.clone());
    engine.run_until(Timestamp(200));
    let after_q1 = out1.len();
    assert!(after_q1 > 0);

    // Install a second query sharing the filtered prefix at runtime.
    let (w, _h) = graph.time_window("q2-window", f, TimeSpan(100));
    let agg = graph.aggregate("q2-count", w, AggKind::Count, 0);
    let (sink2, out2) = graph.sink_collect("q2", agg);
    let rate = manager
        .subscribe(MetadataKey::new(agg, "input_rate"))
        .unwrap();
    engine.run_until(Timestamp(600));
    assert!(!out2.is_empty(), "new query produces");
    assert!(out1.len() > after_q1, "old query unaffected");
    assert!(rate.get_f64().is_some());

    // Remove query 2; shared prefix keeps running.
    drop(rate);
    let removed = graph.remove_query(sink2);
    assert_eq!(removed.len(), 3, "window + aggregate + sink");
    let before = out1.len();
    engine.run_until(Timestamp(900));
    assert!(out1.len() > before, "query 1 still live");
    // And removing query 1 empties the graph.
    graph.remove_query(sink1);
    assert!(graph.is_empty());
}

#[test]
fn metadata_overhead_is_tailored_to_subscriptions() {
    // The end-to-end version of the paper's core claim, small scale:
    // running the same workload with no subscriptions performs (almost)
    // no metadata computes; subscribing one item adds only that item's
    // cascade.
    let run = |subscribe: bool| {
        let (clock, manager, graph) = stack(50);
        let src = graph.source(
            "s",
            Box::new(PoissonArrivals::new(
                Timestamp(0),
                5.0,
                TupleGen::Sequence,
                9,
            )),
        );
        let f = graph.filter(
            "f",
            src,
            FilterPredicate::AttrLt {
                col: 0,
                bound: i64::MAX,
            },
            1,
        );
        let _sink = graph.sink_discard("k", f);
        let _sub = subscribe.then(|| {
            manager
                .subscribe(MetadataKey::new(f, "avg_input_rate"))
                .unwrap()
        });
        let mut engine = VirtualEngine::new(graph.clone(), clock.clone());
        engine.run_until(Timestamp(2000));
        manager.stats()
    };
    let idle = run(false);
    assert_eq!(idle.computes, 0, "no subscription, no metadata work");
    let one = run(true);
    assert!(one.computes > 0);
    // avg_input_rate + input_rate: ~40 boundary computes + propagations.
    assert!(
        one.computes < 200,
        "tailored provision stays small: {}",
        one.computes
    );
}

#[test]
fn estimated_cpu_tracks_rate_changes_through_triggers() {
    let (clock, manager, graph) = stack(100);
    // A bursty left input: the estimate must follow the measured rate.
    let s1 = graph.source(
        "bursty",
        Box::new(Bursty::new(
            Timestamp(0),
            TimeSpan(500),
            TimeSpan(500),
            TimeSpan(2),
            Some(TimeSpan(20)),
            TupleGen::Sequence,
            5,
        )),
    );
    let s2 = graph.source(
        "steady",
        Box::new(ConstantRate::new(
            Timestamp(0),
            TimeSpan(10),
            TupleGen::Sequence,
            6,
        )),
    );
    let (w1, _h1) = graph.time_window("w1", s1, TimeSpan(50));
    let (w2, _h2) = graph.time_window("w2", s2, TimeSpan(50));
    let join = graph.join("j", w1, w2, JoinPredicate::True, StateImpl::List);
    let _sink = graph.sink_discard("k", join);
    install_cost_model(&graph);
    let cpu = manager
        .subscribe(MetadataKey::new(join, ESTIMATED_CPU_USAGE))
        .unwrap();
    let mut engine = VirtualEngine::new(graph.clone(), clock.clone());
    // Sample the estimate at the end of high and low phases.
    let mut highs = Vec::new();
    let mut lows = Vec::new();
    for cycle in 0..4u64 {
        engine.run_until(Timestamp(cycle * 1000 + 500));
        highs.push(cpu.get_f64().unwrap_or(0.0));
        engine.run_until(Timestamp(cycle * 1000 + 1000));
        lows.push(cpu.get_f64().unwrap_or(0.0));
    }
    let high_avg: f64 = highs[1..].iter().sum::<f64>() / (highs.len() - 1) as f64;
    let low_avg: f64 = lows[1..].iter().sum::<f64>() / (lows.len() - 1) as f64;
    assert!(
        high_avg > low_avg * 2.0,
        "estimate follows the bursts: high {high_avg} vs low {low_avg}"
    );
}

#[test]
fn prelude_compiles_and_exposes_the_expected_names() {
    // Type-level smoke test of the facade.
    let _c: Arc<VirtualClock> = VirtualClock::shared();
    let _s: TimeSpan = TimeSpan(5);
    fn takes_clock(_: &dyn Clock) {}
    takes_clock(&*VirtualClock::shared());
    let _ = WallClock::new();
}
