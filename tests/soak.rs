//! Soak test: a realistic multi-query workload with churning metadata
//! subscriptions and runtime query install/remove, checking global
//! invariants the whole way.
//!
//! This is the "thousands of continuous queries" setting of the paper's
//! introduction, scaled to test size: dozens of CQL queries over shared
//! sources, consumers subscribing and unsubscribing while the engine
//! runs, queries added and removed mid-flight.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use streammeta::cql::{install, Catalog, CompiledQuery};
use streammeta::prelude::*;

struct Soak {
    clock: Arc<VirtualClock>,
    manager: Arc<MetadataManager>,
    graph: Arc<QueryGraph>,
    catalog: Catalog,
}

fn setup() -> Soak {
    let clock = VirtualClock::shared();
    let manager = MetadataManager::new(clock.clone());
    let graph = Arc::new(QueryGraph::with_config(
        manager.clone(),
        MetadataConfig {
            rate_window: TimeSpan(50),
        },
    ));
    let mut catalog = Catalog::new();
    for (i, name) in ["alpha", "beta", "gamma"].iter().enumerate() {
        let src = graph.source(
            name,
            Box::new(ConstantRate::new(
                Timestamp(0),
                TimeSpan(3 + i as u64 * 2),
                TupleGen::UniformInt {
                    lo: 0,
                    hi: 49,
                    cols: 2,
                },
                i as u64,
            )),
        );
        catalog.register(*name, src).expect("fresh name");
    }
    Soak {
        clock,
        manager,
        graph,
        catalog,
    }
}

fn random_query(rng: &mut SmallRng) -> String {
    let streams = ["alpha", "beta", "gamma"];
    let s = streams[rng.gen_range(0..streams.len())];
    match rng.gen_range(0..5) {
        0 => format!("SELECT * FROM {s}"),
        1 => format!("SELECT k0 FROM {s} WHERE k1 < {}", rng.gen_range(5..45)),
        2 => format!("SELECT COUNT(*) FROM {s}[RANGE {}]", rng.gen_range(20..200)),
        3 => format!("SELECT AVG(k1) FROM {s}[RANGE {}]", rng.gen_range(20..200)),
        _ => {
            let t = streams[rng.gen_range(0..streams.len())];
            format!(
                "SELECT a.k1, b.k1 FROM {s}[RANGE {r1}] AS a JOIN {t}[RANGE {r2}] AS b ON a.k0 = b.k0",
                r1 = rng.gen_range(20..100),
                r2 = rng.gen_range(20..100),
            )
        }
    }
}

#[test]
fn soak_many_queries_with_subscription_and_query_churn() {
    let env = setup();
    let mut rng = SmallRng::seed_from_u64(2024);
    let mut engine = VirtualEngine::new(env.graph.clone(), env.clock.clone());
    let mut queries: Vec<CompiledQuery> = Vec::new();
    let mut subs: Vec<Subscription> = Vec::new();

    for round in 0..40u64 {
        // Install a new query most rounds.
        if queries.len() < 25 {
            let text = random_query(&mut rng);
            let plan = install(&env.graph, &env.catalog, &text)
                .unwrap_or_else(|e| panic!("query {text:?} failed: {e}"));
            queries.push(plan);
        }
        // Remove a random query occasionally (exercises shared prefixes).
        if round % 5 == 4 && queries.len() > 3 {
            let victim = queries.swap_remove(rng.gen_range(0..queries.len()));
            // Its subscriptions may still point at removed nodes; reads on
            // live handlers must keep working, so drop subs first is NOT
            // required — that is part of the invariant.
            env.graph.remove_query(victim.sink);
        }
        // Subscribe to random metadata of random live nodes.
        let nodes = env.graph.nodes();
        for _ in 0..3 {
            let node = nodes[rng.gen_range(0..nodes.len())];
            if let Ok(items) = env.manager.available_items(node) {
                let item = items[rng.gen_range(0..items.len())].clone();
                if let Ok(sub) = env.manager.subscribe(MetadataKey::new(node, item)) {
                    subs.push(sub);
                }
            }
        }
        // Drop some subscriptions.
        while subs.len() > 30 {
            let i = rng.gen_range(0..subs.len());
            subs.swap_remove(i);
        }
        // Run; read everything subscribed (values must never panic).
        engine.run_for(TimeSpan(100));
        for s in &subs {
            let _ = s.versioned();
        }
        // Invariants.
        let stats = env.manager.stats();
        assert_eq!(stats.compute_failures, 0, "no contained faults expected");
        assert!(
            stats.handlers <= stats.subscriptions,
            "every handler has at least one reference: {stats:?}"
        );
    }

    // Tear everything down: no handlers, tasks or subscriptions survive.
    let expected_results: usize = queries.iter().map(|q| q.results.len()).sum();
    assert!(expected_results > 0, "queries produced results");
    drop(subs);
    for q in queries.drain(..) {
        env.graph.remove_query(q.sink);
    }
    assert!(env.graph.is_empty() || !env.graph.nodes().is_empty());
    // Sources may remain (registered in the catalog, no consumers), but
    // all consumer-created metadata is gone.
    assert_eq!(env.manager.stats().subscriptions, 0);
    assert_eq!(env.manager.handler_count(), 0);
    assert_eq!(env.manager.periodic().live_tasks(), 0);
}

#[test]
fn soak_subscriptions_survive_query_removal() {
    // A subscription held on a node that gets removed keeps serving from
    // its snapshotted definition (documented behaviour), and dropping it
    // afterwards cleans up fully.
    let env = setup();
    let plan = install(
        &env.graph,
        &env.catalog,
        "SELECT COUNT(*) FROM alpha[RANGE 60]",
    )
    .unwrap();
    // Find the aggregate node: the sink's upstream.
    let agg = env.graph.upstream(plan.sink)[0];
    let rate = env
        .manager
        .subscribe(MetadataKey::new(agg, "input_rate"))
        .unwrap();
    let mut engine = VirtualEngine::new(env.graph.clone(), env.clock.clone());
    engine.run_until(Timestamp(300));
    assert!(rate.get_f64().is_some());
    env.graph.remove_query(plan.sink);
    // The registry is detached but the live handler keeps working.
    let _ = rate.versioned();
    drop(rate);
    assert_eq!(env.manager.handler_count(), 0);
}
