#!/usr/bin/env bash
# Runs every paper-reproduction experiment (release build) and writes the
# outputs to results/exp_*.txt. See DESIGN.md §4 for the experiment index
# and EXPERIMENTS.md for the interpretation of each table.
#
# Fully offline: all dependencies are vendored path crates, so no network
# access is needed (or attempted) at any point.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-results}
mkdir -p "$OUT"
export CARGO_NET_OFFLINE=true

cargo build --release -p streammeta-bench --bins

# One experiment failing must not silence the rest: each binary runs
# individually, its status is recorded, and the summary (plus the exit
# code) reports every failure at the end.
declare -a passed=() failed=()
for exp in exp_e1_taxonomy exp_e2_fig3_cascade exp_e3_fig4_concurrent \
           exp_e4_fig5_aggregation exp_e5_scalability exp_e6_freshness \
           exp_e10_resize exp_e11_concurrency exp_e12_dyndeps \
           exp_e13_chain exp_e14_shedding exp_e15_selectivity \
           exp_e16_optimizer exp_e17_qos exp_e18_observability \
           exp_e19_read_contention exp_e20_fault_injection \
           exp_e21_catalog exp_e22_batch_propagation \
           exp_e23_span_lineage exp_e24_partition_churn; do
    echo "=== $exp ==="
    if RESULTS_DIR="$OUT" ./target/release/"$exp" | tee "$OUT/$exp.txt"; then
        passed+=("$exp")
        echo "--- $exp: ok"
    else
        status=$?
        failed+=("$exp")
        echo "--- $exp: FAILED (exit $status)" >&2
    fi
    echo
done

echo "=== summary: ${#passed[@]} passed, ${#failed[@]} failed ==="
for exp in "${passed[@]}";  do echo "  ok    $exp"; done
for exp in "${failed[@]}";  do echo "  FAIL  $exp"; done
echo
echo "All experiment outputs written to $OUT/"
echo "Recorder time series: $OUT/e18_observability.csv"
echo "Catalog perf summary: $OUT/BENCH_e21.json"
echo "Batch propagation summary: $OUT/BENCH_e22.json"
echo "Span lineage summary: $OUT/BENCH_e23.json"
echo "Partition churn summary: $OUT/BENCH_e24.json"

if [ "${#failed[@]}" -gt 0 ]; then
    exit 1
fi
