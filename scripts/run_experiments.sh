#!/usr/bin/env bash
# Runs every paper-reproduction experiment (release build) and writes the
# outputs to results/exp_*.txt. See DESIGN.md §4 for the experiment index
# and EXPERIMENTS.md for the interpretation of each table.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-results}
mkdir -p "$OUT"

cargo build --release -p streammeta-bench --bins

for exp in exp_e1_taxonomy exp_e2_fig3_cascade exp_e3_fig4_concurrent \
           exp_e4_fig5_aggregation exp_e5_scalability exp_e6_freshness \
           exp_e10_resize exp_e11_concurrency exp_e12_dyndeps \
           exp_e13_chain exp_e14_shedding exp_e15_selectivity \
           exp_e16_optimizer exp_e17_qos; do
    echo "=== $exp ==="
    ./target/release/"$exp" | tee "$OUT/$exp.txt"
    echo
done

echo "All experiment outputs written to $OUT/"
