//! Model-checks the `ScalarCell` seqlock protocol of
//! `streammeta-core::handler` with the deterministic interleaving
//! checker.
//!
//! The model mirrors the real protocol step for step
//! (`crates/core/src/handler.rs`):
//!
//! * `publish`: store `seq+1` (odd, write in flight), Release fence,
//!   plain data stores, store `seq+2` (even) with Release ordering.
//! * `try_read`: Acquire-load `seq` (odd → fail), plain data loads,
//!   Acquire fence, accept only if `seq` is unchanged.
//!
//! The checker exhausts every interleaving of one writer and one or two
//! readers and asserts two invariants: no accepted read is *torn*
//! (mixing words of two generations), and each reader's accepted
//! versions are monotonically non-decreasing.
//!
//! Memory-ordering bugs are modelled as weakened writer programs — step
//! orders the relaxed hardware would be free to produce once the
//! corresponding fence is gone:
//!
//! * [`Variant::SkipOddMark`] drops the `seq+1` pre-write bump, so
//!   readers overlapping the write see an even sequence throughout.
//! * [`Variant::ReleaseDropped`] drops the Release ordering on the
//!   final even store, legalising the data stores sinking *below* it.
//!
//! Both must produce a torn read on some schedule; the faithful program
//! must produce none.

use streammeta_analyze::interleave::{Explorer, Model};

/// Writer step programs. Each op is one atomic action.
#[derive(Clone, Copy, PartialEq, Debug)]
enum WOp {
    /// `seq <- 2*gen - 1` (mark write in flight).
    SeqOdd,
    /// First data word `<- gen`.
    StoreD0,
    /// Second data word `<- gen`.
    StoreD1,
    /// `seq <- 2*gen` (publish).
    SeqEven,
}

#[derive(Clone, Copy, PartialEq, Debug)]
enum Variant {
    /// The protocol as implemented.
    Faithful,
    /// The `seq+1` pre-write bump is missing: data stores happen while
    /// the sequence still looks quiescent.
    SkipOddMark,
    /// The final store lost its Release ordering: the data stores are
    /// free to reorder after it.
    ReleaseDropped,
}

impl Variant {
    fn program(self) -> &'static [WOp] {
        match self {
            Variant::Faithful => &[WOp::SeqOdd, WOp::StoreD0, WOp::StoreD1, WOp::SeqEven],
            Variant::SkipOddMark => &[WOp::StoreD0, WOp::StoreD1, WOp::SeqEven],
            Variant::ReleaseDropped => &[WOp::SeqOdd, WOp::SeqEven, WOp::StoreD0, WOp::StoreD1],
        }
    }
}

/// One reader running bounded `try_read` attempts.
#[derive(Clone, Debug)]
struct Reader {
    /// 0 = load seq, 1 = load d0, 2 = load d1, 3 = recheck.
    pc: usize,
    s1: u64,
    d0: u64,
    d1: u64,
    attempts_left: usize,
    /// Accepted `(d0, d1)` snapshots, in order.
    accepted: Vec<(u64, u64)>,
}

impl Reader {
    fn new(attempts: usize) -> Reader {
        Reader {
            pc: 0,
            s1: 0,
            d0: 0,
            d1: 0,
            attempts_left: attempts,
            accepted: Vec::new(),
        }
    }
}

/// The seqlock cell plus all thread states. Thread 0 is the writer,
/// threads 1.. are readers.
#[derive(Clone, Debug)]
struct SeqLock {
    variant: Variant,
    seq: u64,
    data: [u64; 2],
    /// 1-based generation currently being written.
    gen: u64,
    generations: u64,
    writer_pc: usize,
    readers: Vec<Reader>,
}

impl SeqLock {
    fn new(variant: Variant, generations: u64, readers: usize, attempts: usize) -> SeqLock {
        SeqLock {
            variant,
            seq: 0,
            data: [0, 0],
            gen: 1,
            generations,
            writer_pc: 0,
            readers: vec![Reader::new(attempts); readers],
        }
    }
}

impl Model for SeqLock {
    fn thread_count(&self) -> usize {
        1 + self.readers.len()
    }

    fn is_done(&self, tid: usize) -> bool {
        if tid == 0 {
            self.gen > self.generations
        } else {
            self.readers[tid - 1].attempts_left == 0
        }
    }

    fn step(&mut self, tid: usize) {
        if tid == 0 {
            let program = self.variant.program();
            match program[self.writer_pc] {
                WOp::SeqOdd => self.seq = 2 * self.gen - 1,
                WOp::StoreD0 => self.data[0] = self.gen,
                WOp::StoreD1 => self.data[1] = self.gen,
                WOp::SeqEven => self.seq = 2 * self.gen,
            }
            self.writer_pc += 1;
            if self.writer_pc == program.len() {
                self.writer_pc = 0;
                self.gen += 1;
            }
            return;
        }
        let seq = self.seq;
        let data = self.data;
        let r = &mut self.readers[tid - 1];
        match r.pc {
            0 => {
                r.s1 = seq;
                if r.s1 & 1 != 0 {
                    // Write in flight: this attempt fails immediately.
                    r.attempts_left -= 1;
                } else {
                    r.pc = 1;
                }
            }
            1 => {
                r.d0 = data[0];
                r.pc = 2;
            }
            2 => {
                r.d1 = data[1];
                r.pc = 3;
            }
            _ => {
                if seq == r.s1 {
                    r.accepted.push((r.d0, r.d1));
                }
                r.attempts_left -= 1;
                r.pc = 0;
            }
        }
    }

    fn check(&self) -> Result<(), String> {
        for (i, r) in self.readers.iter().enumerate() {
            let mut last = 0u64;
            for &(d0, d1) in &r.accepted {
                if d0 != d1 {
                    return Err(format!(
                        "torn read on reader {i}: accepted snapshot mixes \
                         generation {d0} and generation {d1}"
                    ));
                }
                if d0 < last {
                    return Err(format!(
                        "non-monotonic delivery on reader {i}: generation {d0} \
                         accepted after generation {last}"
                    ));
                }
                last = d0;
            }
        }
        Ok(())
    }
}

#[test]
fn faithful_seqlock_admits_no_torn_read_single_reader() {
    // One writer publishing two generations, one reader with three
    // attempts: every interleaving accepted.
    let stats = Explorer::with_max_depth(32)
        .explore(SeqLock::new(Variant::Faithful, 2, 1, 3))
        .unwrap_or_else(|v| panic!("unexpected violation: {v}"));
    assert!(stats.schedules > 100, "exploration too shallow: {stats:?}");
}

#[test]
fn faithful_seqlock_admits_no_torn_read_two_readers() {
    // Three threads: one writer, two independent readers, every
    // interleaving of their reads with the publish window.
    let stats = Explorer::with_max_depth(32)
        .explore(SeqLock::new(Variant::Faithful, 1, 2, 1))
        .unwrap_or_else(|v| panic!("unexpected violation: {v}"));
    assert!(stats.schedules > 100, "exploration too shallow: {stats:?}");
}

#[test]
fn faithful_seqlock_versions_are_monotonic() {
    // Longer writer run against a patient reader: monotonicity is part
    // of check(), so completing without violation proves it for every
    // schedule.
    Explorer::with_max_depth(48)
        .explore(SeqLock::new(Variant::Faithful, 3, 1, 4))
        .unwrap_or_else(|v| panic!("unexpected violation: {v}"));
}

#[test]
fn skipping_the_odd_mark_is_caught() {
    let v = Explorer::with_max_depth(32)
        .explore(SeqLock::new(Variant::SkipOddMark, 1, 1, 2))
        .expect_err("a writer that skips the pre-write seq bump must tear");
    assert!(v.message.contains("torn read"), "{v}");
    // The violation comes with a concrete replayable schedule.
    assert!(!v.schedule.is_empty());
}

#[test]
fn dropping_the_release_store_is_caught() {
    let v = Explorer::with_max_depth(32)
        .explore(SeqLock::new(Variant::ReleaseDropped, 1, 1, 2))
        .expect_err("data stores sinking below the even seq store must tear");
    assert!(v.message.contains("torn read"), "{v}");
}

#[test]
fn violating_schedule_replays_deterministically() {
    let initial = SeqLock::new(Variant::ReleaseDropped, 1, 1, 2);
    let v = Explorer::with_max_depth(32)
        .explore(initial.clone())
        .unwrap_err();
    // Replay the reported schedule step by step: it must reproduce the
    // exact same violation.
    let mut state = initial;
    let mut failed = None;
    for &tid in &v.schedule {
        state.step(tid);
        if let Err(m) = state.check() {
            failed = Some(m);
            break;
        }
    }
    assert_eq!(failed.as_deref(), Some(v.message.as_str()));
}
