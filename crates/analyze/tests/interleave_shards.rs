//! Model-checks the sharded handler index of
//! `streammeta-core::shards` with the deterministic interleaving
//! checker.
//!
//! The property the real code promises (`crates/core/src/shards.rs`): a
//! key-based lookup "either sees a fully constructed handler or none at
//! all". Inserts and removals mutate the shard `HashMap` under the
//! shard's write lock; lookups hold the read lock. The model makes the
//! map mutation deliberately non-atomic — an entry is two words, the
//! value slot and the presence flag — so the *only* thing standing
//! between a lookup and a half-mutated entry is the lock discipline.
//!
//! The checker exhausts every interleaving of an inserter, a remover
//! and a lookup thread and asserts the lookup never observes a present
//! entry with an incomplete value. The broken variant lets the remover
//! skip the write lock (the bug the bookkeeping-mutex comment guards
//! against): some schedule then interleaves the two removal words with
//! a read-locked lookup, which the checker must catch.

use streammeta_analyze::interleave::{Explorer, Model};

/// A reader/writer lock as the scheduler sees it.
#[derive(Clone, Copy, Debug, Default)]
struct RwLockState {
    writer: bool,
    readers: usize,
}

impl RwLockState {
    fn can_read(&self) -> bool {
        !self.writer
    }
    fn can_write(&self) -> bool {
        !self.writer && self.readers == 0
    }
}

/// Thread programs. Each op is one atomic action.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Op {
    AcquireWrite,
    AcquireRead,
    /// Store the value word of the entry.
    SetValue(u64),
    /// Store the presence flag.
    SetPresent(bool),
    /// Load the presence flag into the thread's register.
    LoadPresent,
    /// Load the value word into the thread's register.
    LoadValue,
    ReleaseWrite,
    ReleaseRead,
}

/// Inserter: under the write lock, value first, then presence — the
/// order `HandlerShards::insert` gets for free from `HashMap::insert`
/// running entirely under the lock.
const INSERT: &[Op] = &[
    Op::AcquireWrite,
    Op::SetValue(1),
    Op::SetPresent(true),
    Op::ReleaseWrite,
];

/// Remover, locked: presence off first, then the value is reclaimed.
const REMOVE_LOCKED: &[Op] = &[
    Op::AcquireWrite,
    Op::SetPresent(false),
    Op::SetValue(0),
    Op::ReleaseWrite,
];

/// Remover, broken: same two mutation words with the write-lock
/// acquisition dropped.
const REMOVE_UNLOCKED: &[Op] = &[Op::SetPresent(false), Op::SetValue(0)];

/// Lookup: under the read lock, check presence, then read the value.
const LOOKUP: &[Op] = &[
    Op::AcquireRead,
    Op::LoadPresent,
    Op::LoadValue,
    Op::ReleaseRead,
];

#[derive(Clone, Debug)]
struct Thread {
    program: &'static [Op],
    pc: usize,
    present: bool,
    value: u64,
}

impl Thread {
    fn new(program: &'static [Op]) -> Thread {
        Thread {
            program,
            pc: 0,
            present: false,
            value: 0,
        }
    }
}

/// One shard entry plus its lock and the racing threads.
#[derive(Clone, Debug)]
struct Shard {
    lock: RwLockState,
    /// The entry starts present and complete; the inserter re-inserts,
    /// the remover removes.
    present: bool,
    value: u64,
    threads: Vec<Thread>,
    /// `(present, value)` pairs each completed lookup observed.
    observations: Vec<(bool, u64)>,
}

impl Shard {
    fn new(programs: &[&'static [Op]]) -> Shard {
        Shard {
            lock: RwLockState::default(),
            present: true,
            value: 1,
            threads: programs.iter().map(|p| Thread::new(p)).collect(),
            observations: Vec::new(),
        }
    }
}

impl Model for Shard {
    fn thread_count(&self) -> usize {
        self.threads.len()
    }

    fn is_done(&self, tid: usize) -> bool {
        let t = &self.threads[tid];
        t.pc == t.program.len()
    }

    fn enabled(&self, tid: usize) -> bool {
        if self.is_done(tid) {
            return false;
        }
        match self.threads[tid].program[self.threads[tid].pc] {
            Op::AcquireWrite => self.lock.can_write(),
            Op::AcquireRead => self.lock.can_read(),
            _ => true,
        }
    }

    fn step(&mut self, tid: usize) {
        let op = self.threads[tid].program[self.threads[tid].pc];
        match op {
            Op::AcquireWrite => self.lock.writer = true,
            Op::ReleaseWrite => self.lock.writer = false,
            Op::AcquireRead => self.lock.readers += 1,
            Op::ReleaseRead => {
                self.lock.readers -= 1;
                let t = &self.threads[tid];
                self.observations.push((t.present, t.value));
            }
            Op::SetValue(v) => self.value = v,
            Op::SetPresent(p) => self.present = p,
            Op::LoadPresent => {
                let p = self.present;
                self.threads[tid].present = p;
            }
            Op::LoadValue => {
                let v = self.value;
                self.threads[tid].value = v;
            }
        }
        self.threads[tid].pc += 1;
    }

    fn check(&self) -> Result<(), String> {
        if self.lock.writer && self.lock.readers > 0 {
            return Err("lock violation: writer and readers held together".into());
        }
        for &(present, value) in &self.observations {
            if present && value != 1 {
                return Err(format!(
                    "lookup observed a half-mutated entry: present with value {value}"
                ));
            }
        }
        Ok(())
    }
}

#[test]
fn locked_insert_remove_lookup_never_exposes_partial_entries() {
    // Three threads, every interleaving: the lock discipline makes the
    // two-word mutations atomic with respect to lookups.
    let stats = Explorer::with_max_depth(16)
        .explore(Shard::new(&[INSERT, REMOVE_LOCKED, LOOKUP]))
        .unwrap_or_else(|v| panic!("unexpected violation: {v}"));
    // The lock gating collapses each critical section into an atomic
    // unit, so exactly the 3! orderings of the sections remain.
    assert_eq!(stats.schedules, 6, "unexpected schedule count: {stats:?}");
}

#[test]
fn locked_remove_and_lookup_commute() {
    // Two threads: lookup sees the entry fully, or not at all.
    Explorer::with_max_depth(16)
        .explore(Shard::new(&[REMOVE_LOCKED, LOOKUP]))
        .unwrap_or_else(|v| panic!("unexpected violation: {v}"));
}

#[test]
fn unlocked_remove_is_caught() {
    let v = Explorer::with_max_depth(16)
        .explore(Shard::new(&[REMOVE_UNLOCKED, LOOKUP]))
        .expect_err("a remover that skips the write lock must expose a partial entry");
    assert!(v.message.contains("half-mutated"), "{v}");
    assert!(!v.schedule.is_empty());
}

#[test]
fn unlocked_remove_races_insert_and_lookup() {
    // Full three-way race with the broken remover: still caught.
    let v = Explorer::with_max_depth(16)
        .explore(Shard::new(&[INSERT, REMOVE_UNLOCKED, LOOKUP]))
        .expect_err("three-way race with an unlocked remover must be caught");
    assert!(v.message.contains("half-mutated"), "{v}");
}
