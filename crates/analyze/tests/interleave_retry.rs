//! Model-checking the bounded-retry scheduling chain of
//! `streammeta-core`'s failure-containment layer.
//!
//! The protocol under test: a failed evaluation schedules exactly one
//! retry task, due at `now + backoff * 2^(attempt-1)`; the retry runs
//! no earlier than its due time, its attempt number is the
//! predecessor's plus one, and at most one retry is ever pending per
//! item. Exhausted over every interleaving of the virtual clock and the
//! retry runner, with two weakened variants:
//!
//! * a runner that ignores the due time (fires as soon as a task is
//!   pending) — the checker reports the early-fire schedule;
//! * a scheduler that enqueues a second retry without collapsing the
//!   pending one (the double-schedule race a lock-free rewrite could
//!   introduce) — the checker reports the two-pending state.

use streammeta_analyze::{Explorer, Model};

const BACKOFF: u32 = 1;
const MAX_RETRIES: u32 = 2;

/// Which bug (if any) the model carries.
#[derive(Clone, Copy, PartialEq)]
enum Variant {
    Correct,
    /// The runner fires pending retries before their due time.
    IgnoresDueTime,
    /// Failures enqueue retries without collapsing the pending one.
    DoubleSchedules,
}

/// One pending retry task.
#[derive(Clone, Copy)]
struct Pending {
    attempt: u32,
    due: u32,
}

#[derive(Clone)]
struct RetryChain {
    variant: Variant,
    time: u32,
    clock_ticks_left: u32,
    pending: Vec<Pending>,
    /// (attempt, ran_at, due) of every executed retry, in order.
    ran: Vec<(u32, u32, u32)>,
    /// Failures the source item still produces (each failure schedules).
    failures_left: u32,
}

impl RetryChain {
    fn new(variant: Variant) -> RetryChain {
        RetryChain {
            variant,
            time: 0,
            clock_ticks_left: 6,
            pending: Vec::new(),
            ran: Vec::new(),
            failures_left: if variant == Variant::DoubleSchedules {
                2
            } else {
                1
            },
        }
    }

    fn schedule(&mut self, attempt: u32) {
        let delay = BACKOFF << (attempt - 1);
        let task = Pending {
            attempt,
            due: self.time + delay,
        };
        if self.variant == Variant::DoubleSchedules {
            self.pending.push(task);
        } else {
            // Correct: the containment state holds at most one retry;
            // re-scheduling collapses onto it.
            self.pending.clear();
            self.pending.push(task);
        }
    }
}

impl Model for RetryChain {
    fn thread_count(&self) -> usize {
        3 // 0 = clock, 1 = failing item, 2 = retry runner
    }

    fn is_done(&self, tid: usize) -> bool {
        match tid {
            0 => self.clock_ticks_left == 0,
            1 => self.failures_left == 0,
            _ => {
                if self.failures_left > 0 {
                    return false;
                }
                match self.pending.first() {
                    None => true,
                    // A retry the exhausted clock can no longer make
                    // due stays pending; the schedule just ends there.
                    Some(t) => {
                        self.variant != Variant::IgnoresDueTime
                            && self.clock_ticks_left == 0
                            && self.time < t.due
                    }
                }
            }
        }
    }

    fn enabled(&self, tid: usize) -> bool {
        match tid {
            0 => self.clock_ticks_left > 0,
            1 => self.failures_left > 0,
            _ => self
                .pending
                .first()
                .is_some_and(|t| self.variant == Variant::IgnoresDueTime || self.time >= t.due),
        }
    }

    fn step(&mut self, tid: usize) {
        match tid {
            0 => {
                self.time += 1;
                self.clock_ticks_left -= 1;
            }
            1 => {
                // The source evaluation fails and schedules attempt 1.
                self.failures_left -= 1;
                self.schedule(1);
            }
            _ => {
                // Run the (first) pending retry; it fails again and
                // chains the next attempt until the bound.
                let task = self.pending.remove(0);
                self.ran.push((task.attempt, self.time, task.due));
                if task.attempt < MAX_RETRIES {
                    self.schedule(task.attempt + 1);
                }
            }
        }
    }

    fn check(&self) -> Result<(), String> {
        if self.pending.len() > 1 {
            return Err(format!(
                "{} retries pending at once for one item",
                self.pending.len()
            ));
        }
        for &(attempt, ran_at, due) in &self.ran {
            if ran_at < due {
                return Err(format!(
                    "retry attempt {attempt} ran at {ran_at}, before its due time {due}"
                ));
            }
            if attempt > MAX_RETRIES {
                return Err(format!("retry attempt {attempt} exceeds the bound"));
            }
        }
        for pair in self.ran.windows(2) {
            let (prev, next) = (pair[0], pair[1]);
            if next.0 != prev.0 + 1 {
                return Err(format!(
                    "retry attempt {} followed attempt {} (must chain by one)",
                    next.0, prev.0
                ));
            }
        }
        Ok(())
    }
}

#[test]
fn due_time_chain_holds_over_every_interleaving() {
    let stats = Explorer::with_max_depth(96)
        .explore(RetryChain::new(Variant::Correct))
        .unwrap();
    assert!(stats.schedules > 1, "multiple interleavings explored");
}

#[test]
fn early_firing_runner_is_caught() {
    let v = Explorer::with_max_depth(96)
        .explore(RetryChain::new(Variant::IgnoresDueTime))
        .unwrap_err();
    assert!(v.message.contains("before its due time"), "{v}");
}

#[test]
fn double_scheduling_is_caught() {
    let v = Explorer::with_max_depth(96)
        .explore(RetryChain::new(Variant::DoubleSchedules))
        .unwrap_err();
    assert!(v.message.contains("pending at once"), "{v}");
}
