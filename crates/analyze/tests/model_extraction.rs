//! Property test: model extraction is lossless.
//!
//! For arbitrary item definitions — any mechanism, any combination of
//! the declarative flags, any acyclic fixed dependency shape — the
//! [`GraphModel`] the analyzer extracts must reproduce exactly what was
//! declared: same mechanism and period, same flags, same dependency
//! edges with the right certainty marking. The rule engine reasons only
//! over this model, so any loss here is a missed (or phantom) anomaly.

use std::collections::BTreeSet;
use std::sync::Arc;

use proptest::prelude::*;
use streammeta_analyze::{GraphModel, MechKind};
use streammeta_core::{ItemDef, MetadataKey, MetadataManager, MetadataValue, NodeId, NodeRegistry};
use streammeta_time::{TimeSpan, VirtualClock};

/// Everything a generated definition declares, kept for comparison.
#[derive(Clone, Debug)]
struct Spec {
    mech: u8,
    period: u64,
    stateful: bool,
    reset: bool,
    window: Option<u64>,
    deps: Vec<usize>,
}

fn build_manager(specs: &[Spec]) -> Arc<MetadataManager> {
    let mgr = MetadataManager::new(VirtualClock::shared());
    let reg = NodeRegistry::new(NodeId(0));
    for (i, s) in specs.iter().enumerate() {
        let mut b = match s.mech % 4 {
            0 => ItemDef::on_demand(format!("i{i}")),
            1 => ItemDef::periodic(format!("i{i}"), TimeSpan(s.period)),
            2 => ItemDef::triggered(format!("i{i}")),
            _ => {
                // Static items carry no builder in the same shape; model
                // them via the builder-less constructor and skip flags.
                reg.define(ItemDef::static_value(format!("i{i}"), i as u64));
                continue;
            }
        };
        if s.stateful {
            b = b.stateful();
        }
        if s.reset {
            b = b.reset_on_read();
        }
        if let Some(w) = s.window {
            b = b.implied_window(TimeSpan(w));
        }
        for d in &s.deps {
            b = b.dep_local(format!("i{d}"));
        }
        reg.define(b.compute(|_| MetadataValue::U64(0)).build());
    }
    mgr.attach_node(reg);
    mgr
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn extraction_is_lossless(
        raw in proptest::collection::vec(
            (
                0u8..4,                          // mechanism selector
                1u64..200,                       // periodic window
                prop::bool::ANY,                 // stateful
                prop::bool::ANY,                 // reset_on_read
                proptest::option::of(1u64..500), // implied window
                proptest::collection::vec(0usize..10, 0..4), // dep indices
            ),
            1..10,
        ),
    ) {
        let specs: Vec<Spec> = raw
            .iter()
            .enumerate()
            .map(|(i, (mech, period, stateful, reset, window, deps))| Spec {
                mech: *mech,
                period: *period,
                stateful: *stateful,
                reset: *reset,
                window: *window,
                // Only earlier items, deduplicated: acyclic and free of
                // duplicate roles (each edge's role is its target path).
                deps: deps
                    .iter()
                    .filter(|&&d| d < i)
                    .copied()
                    .collect::<BTreeSet<_>>()
                    .into_iter()
                    .collect(),
            })
            .collect();
        let mgr = build_manager(&specs);
        let model = GraphModel::extract(&mgr);
        prop_assert_eq!(model.items.len(), specs.len());

        for (i, s) in specs.iter().enumerate() {
            let item = &model.items[&MetadataKey::new(NodeId(0), format!("i{i}"))];
            match s.mech % 4 {
                0 => prop_assert_eq!(item.mechanism, MechKind::OnDemand),
                1 => prop_assert_eq!(item.mechanism, MechKind::Periodic(TimeSpan(s.period))),
                2 => prop_assert_eq!(item.mechanism, MechKind::Triggered),
                _ => {
                    // Static shortcut: no flags, no deps by construction.
                    prop_assert_eq!(item.mechanism, MechKind::Static);
                    prop_assert!(!item.stateful && !item.reset_on_read);
                    prop_assert!(item.deps.is_empty());
                    continue;
                }
            }
            prop_assert_eq!(
                item.stateful,
                s.stateful || s.reset || s.window.is_some()
            );
            prop_assert_eq!(item.reset_on_read, s.reset);
            prop_assert_eq!(item.implied_window, s.window.map(TimeSpan));

            // Fixed dependencies come back exactly, marked certain.
            let got: BTreeSet<String> = item
                .item_deps()
                .map(|(k, _)| k.item.as_str().to_string())
                .collect();
            let want: BTreeSet<String> =
                s.deps.iter().map(|d| format!("i{d}")).collect();
            prop_assert_eq!(got, want);
            prop_assert!(item.item_deps().all(|(_, e)| !e.alternative));
            prop_assert_eq!(item.subscribers, 0);
        }
    }
}
