//! Model-checks the epoch propagation protocol of
//! `streammeta-core::manager` with the deterministic interleaving
//! checker.
//!
//! The real code (`enqueue_update` / `flush_pending`) promises three
//! things. (1) Coalescing: the membership check and the push into the
//! pending queue happen in one critical section of the queue mutex, so
//! racing updates of the same source never produce a duplicate batch
//! entry. (2) No lost updates: a flush extracts *and* clears the batch
//! in one critical section, so an update enqueued concurrently with a
//! flush lands either in this batch or in the queue for the next one —
//! never in neither. (3) Epoch ordering: `flush_serial` is held across
//! batch extraction, epoch numbering and the sweep, so observers see
//! epochs in strictly increasing order.
//!
//! (4) Vanished-origin tolerance: an exclusion racing the epoch can
//! remove an origin's handler between enqueue and flush; the sweep
//! re-checks liveness and skips the vanished origin instead of
//! delivering (or panicking on) it.
//!
//! Each property is checked by exhausting every interleaving of the
//! correct protocol (no violation) and of a weakened variant that
//! splits the corresponding critical section (the checker must find the
//! violating schedule): a split check/push enqueue duplicates a racing
//! update, a split copy/clear flush loses one, flushers without the
//! serial lock deliver epoch N+1 before epoch N, and a liveness-blind
//! sweep delivers an origin excluded mid-epoch.

use streammeta_analyze::interleave::{Explorer, Model};

const A: u8 = 0;
const B: u8 = 1;

/// Thread programs. Ops that the real code performs inside a single
/// queue-mutex critical section are one atomic action here; the
/// weakened variants split them across two.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Op {
    /// Atomic check-set-and-push under the queue mutex (the correct
    /// `enqueue_update`).
    Enqueue(u8),
    /// Weakened enqueue, step 1: read membership into a register,
    /// then drop the queue mutex.
    CheckSet(u8),
    /// Weakened enqueue, step 2: push based on the stale register.
    PushStale(u8),
    /// Wait for and take the flush-serial mutex.
    LockSerial,
    UnlockSerial,
    /// Atomic extract-and-clear of the batch under the queue mutex
    /// (the correct `flush_pending`). Empty queue = the flush skips.
    TakeBatch,
    /// Weakened flush, step 1: copy the batch, drop the queue mutex.
    CopyBatch,
    /// Weakened flush, step 2: clear the queue in a second critical
    /// section.
    ClearQueue,
    /// Atomic fetch-add of the epoch counter.
    AssignEpoch,
    /// Deliver the batch to observers (record it in sweep order),
    /// re-checking handler liveness per origin: origins excluded since
    /// their enqueue are skipped, not delivered (the correct sweep).
    Sweep,
    /// Weakened sweep: delivers every batch entry without re-checking
    /// liveness — an origin excluded mid-epoch is delivered anyway.
    SweepBlind,
    /// Exclusion racing the epoch: removes the origin's handler (the
    /// real `exclude` dropping it from the handlers map). The pending
    /// queue entry stays; only the sweep's liveness check skips it.
    Exclude(u8),
}

/// Correct enqueuer: one atomic action under the queue mutex.
const ENQ_A: &[Op] = &[Op::Enqueue(A)];
const ENQ_B: &[Op] = &[Op::Enqueue(B)];

/// Weakened enqueuer: membership check and push in separate critical
/// sections — two racers can both observe "absent".
const ENQ_A_SPLIT: &[Op] = &[Op::CheckSet(A), Op::PushStale(A)];

/// Correct flusher: batch extraction, numbering and sweep all under
/// `flush_serial`; extraction itself atomic under the queue mutex.
const FLUSH: &[Op] = &[
    Op::LockSerial,
    Op::TakeBatch,
    Op::AssignEpoch,
    Op::Sweep,
    Op::UnlockSerial,
];

/// Weakened flusher: the batch is copied and cleared in two separate
/// queue-mutex sections — an enqueue that lands in between is cleared
/// without ever being swept.
const FLUSH_SPLIT: &[Op] = &[
    Op::LockSerial,
    Op::CopyBatch,
    Op::ClearQueue,
    Op::AssignEpoch,
    Op::Sweep,
    Op::UnlockSerial,
];

/// Weakened flusher: no serial lock — numbering and sweeping are
/// separate steps, so two flushers can sweep out of epoch order.
const FLUSH_UNSERIALIZED: &[Op] = &[Op::TakeBatch, Op::AssignEpoch, Op::Sweep];

/// Excluder racing the epoch machinery.
const EXCL_A: &[Op] = &[Op::Exclude(A)];

/// Weakened flusher: sweeps without re-checking handler liveness.
const FLUSH_BLIND: &[Op] = &[
    Op::LockSerial,
    Op::TakeBatch,
    Op::AssignEpoch,
    Op::SweepBlind,
    Op::UnlockSerial,
];

#[derive(Clone, Debug)]
struct Thread {
    program: &'static [Op],
    pc: usize,
    /// CheckSet's stale membership read.
    saw_present: bool,
    /// The extracted batch (flusher threads).
    batch: Vec<u8>,
    /// The assigned epoch number.
    epoch: u64,
    /// Set when TakeBatch/CopyBatch found the queue empty: the flush
    /// skips (the real code returns before numbering an epoch).
    skip: bool,
}

impl Thread {
    fn new(program: &'static [Op]) -> Thread {
        Thread {
            program,
            pc: 0,
            saw_present: false,
            batch: Vec::new(),
            epoch: 0,
            skip: false,
        }
    }
}

#[derive(Clone, Debug)]
struct EpochQueue {
    /// The flush-serial mutex.
    serial_locked: bool,
    /// Pending origins (queue order) and the dedup set.
    pending: Vec<u8>,
    set: Vec<u8>,
    epoch_counter: u64,
    /// `(epoch, batch)` in sweep (observer-delivery) order.
    swept: Vec<(u64, Vec<u8>)>,
    /// Every origin actually pushed into `pending`, in push order.
    enqueued: Vec<u8>,
    /// Origins whose handlers were excluded (undefined mid-epoch).
    excluded: Vec<u8>,
    /// Batch entries the sweep skipped because their handler vanished.
    dropped: Vec<u8>,
    /// Entries a blind sweep delivered despite their exclusion.
    swept_excluded: Vec<u8>,
    threads: Vec<Thread>,
}

impl EpochQueue {
    fn new(programs: &[&'static [Op]]) -> EpochQueue {
        EpochQueue {
            serial_locked: false,
            pending: Vec::new(),
            set: Vec::new(),
            epoch_counter: 0,
            swept: Vec::new(),
            enqueued: Vec::new(),
            excluded: Vec::new(),
            dropped: Vec::new(),
            swept_excluded: Vec::new(),
            threads: programs.iter().map(|p| Thread::new(p)).collect(),
        }
    }

    fn push(&mut self, origin: u8) {
        self.pending.push(origin);
        if !self.set.contains(&origin) {
            self.set.push(origin);
        }
        self.enqueued.push(origin);
    }
}

fn has_duplicate(items: &[u8]) -> bool {
    items
        .iter()
        .enumerate()
        .any(|(i, x)| items[..i].contains(x))
}

impl Model for EpochQueue {
    fn thread_count(&self) -> usize {
        self.threads.len()
    }

    fn is_done(&self, tid: usize) -> bool {
        let t = &self.threads[tid];
        t.pc == t.program.len()
    }

    fn enabled(&self, tid: usize) -> bool {
        if self.is_done(tid) {
            return false;
        }
        match self.threads[tid].program[self.threads[tid].pc] {
            Op::LockSerial => !self.serial_locked,
            _ => true,
        }
    }

    fn step(&mut self, tid: usize) {
        let op = self.threads[tid].program[self.threads[tid].pc];
        match op {
            Op::Enqueue(origin) => {
                if !self.set.contains(&origin) {
                    self.push(origin);
                }
            }
            Op::CheckSet(origin) => {
                let present = self.set.contains(&origin);
                self.threads[tid].saw_present = present;
            }
            Op::PushStale(origin) => {
                if !self.threads[tid].saw_present {
                    self.push(origin);
                }
            }
            Op::LockSerial => self.serial_locked = true,
            Op::UnlockSerial => self.serial_locked = false,
            Op::TakeBatch => {
                if self.pending.is_empty() {
                    self.threads[tid].skip = true;
                } else {
                    let batch = std::mem::take(&mut self.pending);
                    self.set.clear();
                    self.threads[tid].batch = batch;
                }
            }
            Op::CopyBatch => {
                if self.pending.is_empty() {
                    self.threads[tid].skip = true;
                } else {
                    let batch = self.pending.clone();
                    self.threads[tid].batch = batch;
                }
            }
            Op::ClearQueue => {
                self.pending.clear();
                self.set.clear();
            }
            Op::AssignEpoch => {
                if !self.threads[tid].skip {
                    self.epoch_counter += 1;
                    let epoch = self.epoch_counter;
                    self.threads[tid].epoch = epoch;
                }
            }
            Op::Sweep => {
                if !self.threads[tid].skip {
                    let t = &self.threads[tid];
                    let epoch = t.epoch;
                    let (live, gone): (Vec<u8>, Vec<u8>) = t
                        .batch
                        .iter()
                        .copied()
                        .partition(|origin| !self.excluded.contains(origin));
                    self.dropped.extend(gone);
                    self.swept.push((epoch, live));
                }
            }
            Op::SweepBlind => {
                if !self.threads[tid].skip {
                    let t = &self.threads[tid];
                    let record = (t.epoch, t.batch.clone());
                    for origin in &t.batch {
                        if self.excluded.contains(origin) {
                            self.swept_excluded.push(*origin);
                        }
                    }
                    self.swept.push(record);
                }
            }
            Op::Exclude(origin) => {
                if !self.excluded.contains(&origin) {
                    self.excluded.push(origin);
                }
            }
        }
        self.threads[tid].pc += 1;
    }

    fn check(&self) -> Result<(), String> {
        if has_duplicate(&self.pending) {
            return Err(format!(
                "duplicate update in the pending queue: {:?}",
                self.pending
            ));
        }
        for (epoch, batch) in &self.swept {
            if has_duplicate(batch) {
                return Err(format!(
                    "duplicate update inside epoch {epoch}'s batch: {batch:?}"
                ));
            }
        }
        if let Some(w) = self.swept.windows(2).find(|w| w[0].0 >= w[1].0) {
            return Err(format!(
                "observers saw epoch {} delivered after epoch {}",
                w[1].0, w[0].0
            ));
        }
        if let Some(origin) = self.swept_excluded.first() {
            return Err(format!(
                "swept origin {origin} whose handler was excluded mid-epoch"
            ));
        }
        if (0..self.thread_count()).all(|t| self.is_done(t)) {
            // Conservation: every pushed origin is swept exactly once,
            // still pending for the next flush, or dropped by the sweep
            // because its handler was excluded mid-epoch — never simply
            // lost.
            let mut delivered: Vec<u8> = self
                .swept
                .iter()
                .flat_map(|(_, batch)| batch.iter().copied())
                .chain(self.pending.iter().copied())
                .chain(self.dropped.iter().copied())
                .collect();
            let mut expected = self.enqueued.clone();
            delivered.sort_unstable();
            expected.sort_unstable();
            if delivered != expected {
                return Err(format!(
                    "lost update: enqueued {expected:?} but swept/pending/dropped only {delivered:?}"
                ));
            }
        }
        Ok(())
    }
}

/// Coalescing: two racing enqueues of the same origin and a flush —
/// the atomic check-set-and-push admits no duplicate in any schedule.
#[test]
fn atomic_enqueue_never_duplicates_a_racing_update() {
    Explorer::with_max_depth(16)
        .explore(EpochQueue::new(&[ENQ_A, ENQ_A, FLUSH]))
        .unwrap_or_else(|v| panic!("unexpected violation: {v}"));
}

/// The weakened enqueue (membership check and push in separate
/// critical sections) lets both racers observe "absent" and push.
#[test]
fn split_enqueue_duplicates_a_racing_update() {
    let v = Explorer::with_max_depth(16)
        .explore(EpochQueue::new(&[ENQ_A_SPLIT, ENQ_A_SPLIT, FLUSH]))
        .expect_err("a split check/push enqueue must admit a duplicate");
    assert!(v.message.contains("duplicate update"), "{v}");
    assert!(!v.schedule.is_empty());
}

/// No lost updates: an enqueue racing a flush lands in this batch or
/// stays queued for the next — the atomic extract-and-clear admits no
/// schedule where it vanishes.
#[test]
fn atomic_flush_never_loses_a_concurrent_enqueue() {
    Explorer::with_max_depth(16)
        .explore(EpochQueue::new(&[ENQ_A, ENQ_B, FLUSH]))
        .unwrap_or_else(|v| panic!("unexpected violation: {v}"));
}

/// The weakened flush (copy and clear in separate critical sections)
/// clears an enqueue that landed in between without sweeping it.
#[test]
fn split_flush_loses_a_concurrent_enqueue() {
    let v = Explorer::with_max_depth(16)
        .explore(EpochQueue::new(&[ENQ_A, ENQ_B, FLUSH_SPLIT]))
        .expect_err("a split copy/clear flush must lose a racing enqueue");
    assert!(v.message.contains("lost update"), "{v}");
}

/// Epoch ordering: two flushers racing two enqueuers under the serial
/// lock — no schedule delivers epoch N+1 before epoch N.
#[test]
fn serialized_flushes_deliver_epochs_in_order() {
    Explorer::with_max_depth(24)
        .explore(EpochQueue::new(&[ENQ_A, ENQ_B, FLUSH, FLUSH]))
        .unwrap_or_else(|v| panic!("unexpected violation: {v}"));
}

/// Vanished-origin tolerance: an exclusion racing the flush can remove
/// an origin's handler between its enqueue and the sweep. The correct
/// sweep re-checks liveness and skips it — no schedule delivers (or
/// loses) the excluded origin, and conservation accounts it as dropped.
#[test]
fn flush_skips_origins_excluded_mid_epoch() {
    Explorer::with_max_depth(24)
        .explore(EpochQueue::new(&[ENQ_A, ENQ_B, EXCL_A, FLUSH]))
        .unwrap_or_else(|v| panic!("unexpected violation: {v}"));
}

/// A sweep that skips the liveness re-check delivers an origin whose
/// handler was excluded mid-epoch — the checker must find the schedule
/// (enqueue A, exclude A, then flush).
#[test]
fn blind_sweep_delivers_an_excluded_origin() {
    let v = Explorer::with_max_depth(24)
        .explore(EpochQueue::new(&[ENQ_A, EXCL_A, FLUSH_BLIND]))
        .expect_err("a liveness-blind sweep must deliver an excluded origin");
    assert!(v.message.contains("excluded mid-epoch"), "{v}");
}

/// Without the serial lock, one flusher can number its epoch, lose the
/// race to a later-numbered flusher's sweep, and deliver out of order.
#[test]
fn unserialized_flushes_deliver_epochs_out_of_order() {
    let v = Explorer::with_max_depth(24)
        .explore(EpochQueue::new(&[
            ENQ_A,
            ENQ_B,
            FLUSH_UNSERIALIZED,
            FLUSH_UNSERIALIZED,
        ]))
        .expect_err("unserialized flushers must admit an out-of-order delivery");
    assert!(v.message.contains("delivered after"), "{v}");
}
