//! End-to-end lock-order auditing: records real acquisition logs from
//! `streammeta-core` (compiled here with the `lock-audit` feature) and
//! replays them through [`streammeta_analyze::lockorder`].
//!
//! Two directions:
//!
//! * a representative manager workload — subscriptions with transitive
//!   inclusion, trigger propagation, epoch-batched flushes, periodic
//!   refreshes, failure containment through quarantine and recovery —
//!   must produce **zero** violations;
//! * a deliberately inverted acquisition (a low-ranked tier taken while
//!   a high-ranked one is held) must be **flagged**, proving the
//!   detector actually fires on real recordings, not only on synthetic
//!   event streams.
//!
//! The recorder is process-global, so the tests serialize on a local
//! mutex.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use streammeta_analyze::lockorder::{self, LockOrderRule};
use streammeta_core::sync::{TieredMutex, TieredRwLock};
use streammeta_core::{
    lock_audit, EpochConfig, FallbackPolicy, ItemDef, LockEvent, LockTier, MetadataKey,
    MetadataManager, MetadataValue, NodeId, NodeRegistry, PropagationMode,
};
use streammeta_time::{Clock, TimeSpan, VirtualClock};

/// Serializes tests that use the process-global recorder.
fn audit_guard() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs `work` with the global recorder on and returns the event log.
fn record(work: impl FnOnce()) -> Vec<LockEvent> {
    lock_audit::start();
    work();
    lock_audit::finish()
}

#[test]
fn representative_manager_workload_has_no_lock_order_violations() {
    let _guard = audit_guard();
    let events = record(|| {
        let clock = VirtualClock::shared();
        let manager = MetadataManager::new(clock.clone());

        // Node 0: a triggered chain rate -> cost -> quality, plus a
        // periodic flaky item with full failure containment.
        let reg = NodeRegistry::new(NodeId(0));
        reg.define(
            ItemDef::triggered("rate")
                .compute(|_| MetadataValue::F64(10.0))
                .build(),
        );
        reg.define(
            ItemDef::triggered("cost")
                .dep_local("rate")
                .compute(|ctx| {
                    let rate = ctx.dep_f64("rate").unwrap_or(0.0);
                    MetadataValue::F64(rate * 2.0)
                })
                .build(),
        );
        reg.define(
            ItemDef::triggered("quality")
                .dep_local("cost")
                .compute(|ctx| MetadataValue::F64(ctx.dep_f64("cost").unwrap_or(0.0) + 1.0))
                .build(),
        );
        let broken = Arc::new(AtomicU64::new(1));
        let b = broken.clone();
        reg.define(
            ItemDef::periodic("flaky", TimeSpan(10))
                .fallback(FallbackPolicy {
                    max_retries: 1,
                    backoff: TimeSpan(2),
                    quarantine_after: 2,
                    cool_down: TimeSpan(30),
                })
                .compute(move |_| {
                    if b.load(Ordering::SeqCst) != 0 {
                        panic!("injected");
                    }
                    MetadataValue::U64(1)
                })
                .build(),
        );
        manager.attach_node(reg);

        // Transitive inclusion + per-event trigger propagation.
        let sub = manager
            .subscribe(MetadataKey::new(NodeId(0), "quality"))
            .unwrap();
        manager.notify_changed(MetadataKey::new(NodeId(0), "rate"));
        assert_eq!(sub.get_f64(), Some(21.0));

        // Epoch-batched propagation with an explicit flush.
        manager.set_propagation_mode(PropagationMode::Epoch(EpochConfig::default()));
        manager.notify_changed(MetadataKey::new(NodeId(0), "rate"));
        manager.notify_changed(MetadataKey::new(NodeId(0), "rate"));
        manager.flush_epoch();
        manager.set_propagation_mode(PropagationMode::PerEvent);

        // Containment: fail through retries into quarantine, rest out
        // the cool-down, recover via the probe.
        let _flaky = manager
            .subscribe(MetadataKey::new(NodeId(0), "flaky"))
            .unwrap();
        for _ in 0..6 {
            clock.advance(TimeSpan(10));
            manager.periodic().advance_to(clock.now());
        }
        assert!(manager.quarantine_trip_count() > 0, "quarantine exercised");
        broken.store(0, Ordering::SeqCst);
        for _ in 0..8 {
            clock.advance(TimeSpan(10));
            manager.periodic().advance_to(clock.now());
        }
        assert_eq!(manager.quarantined_count(), 0, "probe recovered");

        // Reads + introspection while handlers exist.
        let _ = manager.stats();
        let _ = manager.included_keys();
        drop(sub);
    });

    assert!(!events.is_empty(), "the audit recorded real acquisitions");
    let violations = lockorder::check(&events);
    assert!(
        violations.is_empty(),
        "expected a clean lock order, got:\n{}",
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn deliberate_inversion_is_flagged() {
    let _guard = audit_guard();
    let high = TieredMutex::new(LockTier::ItemValue, ());
    let low = TieredRwLock::new(LockTier::Graph, ());
    let events = record(|| {
        // Inverted: item_value (rank 8) held while graph (rank 4) is
        // acquired.
        let _v = high.lock();
        let _g = low.read();
    });
    let violations = lockorder::check(&events);
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert_eq!(violations[0].rule, LockOrderRule::RankInversion);
    assert!(
        violations[0].message.contains("item_value"),
        "{}",
        violations[0].message
    );
}

#[test]
fn reentry_on_one_instance_is_flagged_from_a_recording() {
    let _guard = audit_guard();
    // parking_lot mutexes deadlock on re-entry, so the recording is
    // synthesized from two guards of tiers that forbid self-nesting —
    // the same shape the audit would capture right before a deadlock.
    let a = TieredMutex::new(LockTier::Bookkeeping, ());
    let b = TieredMutex::new(LockTier::Bookkeeping, ());
    let events = record(|| {
        let _a = a.lock();
        let _b = b.lock();
    });
    let violations = lockorder::check(&events);
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert_eq!(violations[0].rule, LockOrderRule::RankInversion);
    assert!(
        violations[0].message.contains("self-nesting"),
        "{}",
        violations[0].message
    );
}
