//! Model-checking the quarantine circuit breaker of
//! `streammeta-core`'s failure-containment layer.
//!
//! Two protocols are exhausted over every interleaving:
//!
//! * **trip**: concurrent refreshers (the periodic task and the retry
//!   task race on the same item) must never evaluate a quarantined
//!   item. The real code holds the containment lock across the
//!   check-and-count, which the correct model renders as one atomic
//!   step; the weakened variant splits the quarantine check from the
//!   evaluation — exactly the TOCTOU a missing lock would create — and
//!   the checker finds the schedule where one thread trips the breaker
//!   between the other's check and its evaluation.
//! * **recover**: the recovery probe must not run before the cool-down
//!   ends. The correct prober gates on the virtual clock; the weakened
//!   prober recovers whenever the breaker is open, and the checker
//!   reports the early-recovery schedule.

use streammeta_analyze::{Explorer, Model};

/// Failures before the breaker trips (mirrors
/// `FallbackPolicy::quarantine_after`).
const TRIP_AFTER: u32 = 2;

/// Two refreshers race a failing item into quarantine.
#[derive(Clone)]
struct BreakerTrip {
    /// Split the check from the evaluation (the bug).
    weakened: bool,
    failures: u32,
    quarantined: bool,
    /// Evaluations that ran while the breaker was open.
    evals_while_quarantined: u32,
    /// Per-thread: attempts left to run.
    attempts_left: [u32; 2],
    /// Per-thread (weakened only): passed the check, evaluation pending.
    checked: [bool; 2],
}

impl BreakerTrip {
    fn new(weakened: bool) -> BreakerTrip {
        BreakerTrip {
            weakened,
            failures: 0,
            quarantined: false,
            evals_while_quarantined: 0,
            attempts_left: [2; 2],
            checked: [false; 2],
        }
    }

    /// The evaluation itself: always fails, counts toward the trip.
    fn evaluate(&mut self) {
        if self.quarantined {
            self.evals_while_quarantined += 1;
        }
        self.failures += 1;
        if self.failures >= TRIP_AFTER {
            self.quarantined = true;
        }
    }
}

impl Model for BreakerTrip {
    fn thread_count(&self) -> usize {
        2
    }

    fn is_done(&self, tid: usize) -> bool {
        self.attempts_left[tid] == 0 && !self.checked[tid]
    }

    fn step(&mut self, tid: usize) {
        if !self.weakened {
            // Correct: check + evaluate + count under the containment
            // lock — one atomic action.
            self.attempts_left[tid] -= 1;
            if !self.quarantined {
                self.evaluate();
            }
            return;
        }
        if self.checked[tid] {
            // Second half: evaluate on the stale check result.
            self.checked[tid] = false;
            self.evaluate();
        } else {
            // First half: observe the breaker, then release the lock.
            self.attempts_left[tid] -= 1;
            if !self.quarantined {
                self.checked[tid] = true;
            }
        }
    }

    fn check(&self) -> Result<(), String> {
        if self.evals_while_quarantined > 0 {
            return Err(format!(
                "{} evaluation(s) ran while the item was quarantined",
                self.evals_while_quarantined
            ));
        }
        Ok(())
    }
}

#[test]
fn locked_check_and_trip_admits_no_quarantined_evaluation() {
    let stats = Explorer::new().explore(BreakerTrip::new(false)).unwrap();
    assert!(stats.schedules > 1, "multiple interleavings explored");
}

#[test]
fn split_check_and_trip_is_caught() {
    let v = Explorer::new().explore(BreakerTrip::new(true)).unwrap_err();
    assert!(v.message.contains("while the item was quarantined"), "{v}");
}

/// A tripped breaker, a virtual clock, and the recovery probe.
#[derive(Clone)]
struct ProbeRecovery {
    /// Probe ignores the cool-down clock (the bug).
    weakened: bool,
    time: u32,
    /// Cool-down end; `None` once recovered.
    until: Option<u32>,
    /// The probe's run time, once it ran.
    probed_at: Option<u32>,
    clock_ticks_left: u32,
}

impl ProbeRecovery {
    fn new(weakened: bool) -> ProbeRecovery {
        ProbeRecovery {
            weakened,
            time: 0,
            until: Some(2),
            probed_at: None,
            clock_ticks_left: 3,
        }
    }
}

impl Model for ProbeRecovery {
    fn thread_count(&self) -> usize {
        2 // 0 = clock, 1 = prober
    }

    fn is_done(&self, tid: usize) -> bool {
        match tid {
            0 => self.clock_ticks_left == 0,
            _ => self.probed_at.is_some(),
        }
    }

    fn enabled(&self, tid: usize) -> bool {
        match tid {
            0 => self.clock_ticks_left > 0,
            _ => {
                let Some(until) = self.until else {
                    return false;
                };
                // Correct: the periodic containment task only fires the
                // probe at/after the cool-down boundary. Weakened: any
                // open breaker looks probe-ready.
                self.probed_at.is_none() && (self.weakened || self.time >= until)
            }
        }
    }

    fn step(&mut self, tid: usize) {
        match tid {
            0 => {
                self.time += 1;
                self.clock_ticks_left -= 1;
            }
            _ => {
                self.probed_at = Some(self.time);
                self.until = None; // probe succeeds: recover
            }
        }
    }

    fn check(&self) -> Result<(), String> {
        if let Some(at) = self.probed_at {
            if at < 2 {
                return Err(format!(
                    "recovery probe ran at time {at}, before the cool-down end (2)"
                ));
            }
        }
        Ok(())
    }
}

#[test]
fn gated_probe_never_recovers_early() {
    let stats = Explorer::new().explore(ProbeRecovery::new(false)).unwrap();
    assert!(stats.schedules > 0);
}

#[test]
fn ungated_probe_is_caught() {
    let v = Explorer::new()
        .explore(ProbeRecovery::new(true))
        .unwrap_err();
    assert!(v.message.contains("before the cool-down end"), "{v}");
}
