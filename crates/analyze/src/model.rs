//! Typed model extraction.
//!
//! The analyzer never executes a compute function: it reads the *item
//! definitions* of every attached [`NodeRegistry`] (mechanism, period,
//! declared dependencies, dynamic-dependency alternatives, the
//! declarative `stateful`/`reset_on_read`/`implied_window` flags) plus
//! the purely structural runtime facts a static pass may use — which
//! items currently have handlers and how many subscription roots share
//! them. Dynamic resolvers are probed as pure functions of the
//! [`streammeta_core::ResolveCtx`] (empty graph / full graph), which by
//! contract runs no user compute code.
//!
//! [`NodeRegistry`]: streammeta_core::NodeRegistry

use std::collections::BTreeMap;

use streammeta_core::{
    DepSource, ItemDef, Mechanism, MetadataKey, MetadataManager, MetadataValue, NodeId,
};
use streammeta_time::TimeSpan;

/// The update mechanism of a modelled item, with the period made
/// directly comparable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MechKind {
    /// Computed once at inclusion.
    Static,
    /// Recomputed on every access.
    OnDemand,
    /// Recomputed every `period` time units.
    Periodic(TimeSpan),
    /// Recomputed when a dependency changes or an event fires.
    Triggered,
}

impl MechKind {
    fn of(m: Mechanism) -> MechKind {
        match m {
            Mechanism::Static => MechKind::Static,
            Mechanism::OnDemand => MechKind::OnDemand,
            Mechanism::Periodic { window } => MechKind::Periodic(window),
            Mechanism::Triggered => MechKind::Triggered,
        }
    }

    /// The refresh period, for periodic items.
    pub fn period(&self) -> Option<TimeSpan> {
        match self {
            MechKind::Periodic(w) => Some(*w),
            _ => None,
        }
    }
}

/// One dependency edge of the model.
#[derive(Clone, Debug)]
pub struct DepEdge {
    /// Role name the compute function reads the value under.
    pub role: String,
    /// The concrete source (item or event), resolved relative to the
    /// defining node.
    pub source: DepSource,
    /// `false` for declared fixed dependencies, `true` for edges a
    /// dynamic resolver *may* pick (declared alternatives and probe
    /// results).
    pub alternative: bool,
}

/// The extracted model of one item definition.
#[derive(Clone, Debug)]
pub struct ItemModel {
    /// The item's key (node + path).
    pub key: MetadataKey,
    /// Update mechanism with comparable period.
    pub mechanism: MechKind,
    /// Declared: compute carries state across evaluations.
    pub stateful: bool,
    /// Declared: evaluation resets the underlying measurement.
    pub reset_on_read: bool,
    /// Declared sampling interval of a stateful aggregate.
    pub implied_window: Option<TimeSpan>,
    /// Declared per-evaluation compute deadline, if any.
    pub deadline: Option<TimeSpan>,
    /// Whether a failure-containment fallback policy is declared.
    pub has_fallback: bool,
    /// All dependency edges static analysis should consider.
    pub deps: Vec<DepEdge>,
    /// Live subscription roots currently sharing the item's handler
    /// (0 when not included). Direct subscriptions and dependent
    /// inclusions both count — each is an access path.
    pub subscribers: usize,
}

impl ItemModel {
    /// Builds the model of one definition at `node`.
    pub fn of_def(node: NodeId, def: &ItemDef, subscribers: usize) -> ItemModel {
        let key = MetadataKey::new(node, def.path().clone());
        let deps = def
            .analysis_deps(node)
            .into_iter()
            .map(|(dep, certain)| DepEdge {
                role: dep.role.to_string(),
                source: dep.target.resolve(node),
                alternative: !certain,
            })
            .collect();
        ItemModel {
            key,
            mechanism: MechKind::of(def.mechanism()),
            stateful: def.is_stateful(),
            reset_on_read: def.resets_on_read(),
            implied_window: def.implied_window(),
            deadline: def.deadline(),
            has_fallback: def.fallback().is_some(),
            deps,
            subscribers,
        }
    }

    /// The item-typed dependency sources (events filtered out).
    pub fn item_deps(&self) -> impl Iterator<Item = (&MetadataKey, &DepEdge)> {
        self.deps.iter().filter_map(|e| match &e.source {
            DepSource::Item(k) => Some((k, e)),
            DepSource::Event(_) => None,
        })
    }
}

/// The whole-graph model the rule engine runs on.
#[derive(Clone, Debug, Default)]
pub struct GraphModel {
    /// All modelled items, keyed for deterministic iteration.
    pub items: BTreeMap<MetadataKey, ItemModel>,
    /// Whether the manager batches trigger propagation into epochs
    /// (A7's precondition): coalesced flushes change how often
    /// reset-on-read inputs are actually read.
    pub epoch_mode: bool,
}

impl GraphModel {
    /// Extracts the model of every item defined in every registry
    /// attached to `manager`, without executing any compute function.
    pub fn extract(manager: &MetadataManager) -> GraphModel {
        let mut model = GraphModel {
            epoch_mode: matches!(
                manager.propagation_mode(),
                streammeta_core::PropagationMode::Epoch(_)
            ),
            ..GraphModel::default()
        };
        for node in manager.nodes() {
            let Some(reg) = manager.registry(node) else {
                continue;
            };
            for def in reg.definitions() {
                let key = MetadataKey::new(node, def.path().clone());
                let subscribers = manager.subscription_count(&key);
                model
                    .items
                    .insert(key.clone(), ItemModel::of_def(node, &def, subscribers));
            }
        }
        model
    }

    /// Like [`Self::extract`], additionally counting one *pending*
    /// subscription root on `pending` — used by the subscription-time
    /// validator, where the subscription being checked does not exist
    /// yet.
    pub fn extract_with_pending(manager: &MetadataManager, pending: &MetadataKey) -> GraphModel {
        let mut model = Self::extract(manager);
        if let Some(item) = model.items.get_mut(pending) {
            item.subscribers += 1;
        }
        model
    }

    /// Whether `key` is defined in the model.
    pub fn defines(&self, key: &MetadataKey) -> bool {
        self.items.contains_key(key)
    }

    /// Distinct items that declare a (fixed or alternative) dependency
    /// on `key`, sorted.
    pub fn dependents_of(&self, key: &MetadataKey) -> Vec<&MetadataKey> {
        self.items
            .values()
            .filter(|item| item.item_deps().any(|(dep, _)| dep == key))
            .map(|item| &item.key)
            .collect()
    }

    /// The model's dependency edges rendered as rows of the
    /// `sys.dependencies` system relation (columns `source`,
    /// `source_kind`, `dependent`, `role`, `certain` — see
    /// [`streammeta_core::SystemRelation::Dependencies`]).
    ///
    /// This is the *static* view: it covers every defined item, included
    /// or not, and marks dynamic-resolver alternatives `certain =
    /// false`. The runtime catalog
    /// ([`MetadataManager::catalog_rows`]) covers only live handlers and
    /// knows which alternative each inclusion actually picked; on a
    /// graph with only fixed dependencies the two views agree row for
    /// row over the included items (see the parity test).
    pub fn dependency_rows(&self) -> Vec<Vec<MetadataValue>> {
        let mut rows = Vec::new();
        for item in self.items.values() {
            for edge in &item.deps {
                let (src, kind) = match &edge.source {
                    DepSource::Item(k) => (k.to_string(), "item"),
                    DepSource::Event(e) => (e.to_string(), "event"),
                };
                rows.push(vec![
                    MetadataValue::text(src),
                    MetadataValue::text(kind),
                    MetadataValue::text(item.key.to_string()),
                    MetadataValue::text(&*edge.role),
                    MetadataValue::Bool(!edge.alternative),
                ]);
            }
        }
        rows
    }

    /// The keys (transitively) reachable from `root` over item
    /// dependency edges, including `root` itself — the subtree a new
    /// subscription to `root` would include.
    pub fn reachable_from(&self, root: &MetadataKey) -> std::collections::BTreeSet<MetadataKey> {
        let mut seen = std::collections::BTreeSet::new();
        let mut stack = vec![root.clone()];
        while let Some(key) = stack.pop() {
            if !seen.insert(key.clone()) {
                continue;
            }
            if let Some(item) = self.items.get(&key) {
                for (dep, _) in item.item_deps() {
                    stack.push(dep.clone());
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use streammeta_core::{DepTarget, Dependency, ItemDef, MetadataValue, NodeRegistry};
    use streammeta_time::VirtualClock;

    fn manager_with(defs: Vec<ItemDef>) -> Arc<MetadataManager> {
        let mgr = MetadataManager::new(VirtualClock::shared());
        let reg = NodeRegistry::new(NodeId(0));
        for d in defs {
            reg.define(d);
        }
        mgr.attach_node(reg);
        mgr
    }

    #[test]
    fn extraction_reads_flags_and_mechanisms() {
        let mgr = manager_with(vec![
            ItemDef::periodic("rate", TimeSpan(50)).stateful().build(),
            ItemDef::on_demand("naive").reset_on_read().build(),
            ItemDef::triggered("avg")
                .dep_local("rate")
                .implied_window(TimeSpan(200))
                .build(),
        ]);
        let model = GraphModel::extract(&mgr);
        assert_eq!(model.items.len(), 3);
        let rate = &model.items[&MetadataKey::new(NodeId(0), "rate")];
        assert_eq!(rate.mechanism, MechKind::Periodic(TimeSpan(50)));
        assert!(rate.stateful && !rate.reset_on_read);
        let naive = &model.items[&MetadataKey::new(NodeId(0), "naive")];
        assert!(naive.reset_on_read);
        let avg = &model.items[&MetadataKey::new(NodeId(0), "avg")];
        assert_eq!(avg.implied_window, Some(TimeSpan(200)));
        assert_eq!(avg.deps.len(), 1);
        assert!(!avg.deps[0].alternative);
        assert_eq!(
            model.dependents_of(&MetadataKey::new(NodeId(0), "rate")),
            vec![&MetadataKey::new(NodeId(0), "avg")]
        );
    }

    #[test]
    fn extraction_captures_the_propagation_mode() {
        use streammeta_core::{EpochConfig, PropagationMode};
        let mgr = manager_with(vec![ItemDef::static_value("x", 1u64)]);
        assert!(!GraphModel::extract(&mgr).epoch_mode);
        mgr.set_propagation_mode(PropagationMode::Epoch(EpochConfig::default()));
        assert!(GraphModel::extract(&mgr).epoch_mode);
        mgr.set_propagation_mode(PropagationMode::PerEvent);
        assert!(!GraphModel::extract(&mgr).epoch_mode);
    }

    #[test]
    fn extraction_counts_live_subscribers() {
        let mgr = manager_with(vec![ItemDef::on_demand("x")
            .compute(|_| MetadataValue::U64(1))
            .build()]);
        let key = MetadataKey::new(NodeId(0), "x");
        let _s1 = mgr.subscribe(key.clone()).unwrap();
        let _s2 = mgr.subscribe(key.clone()).unwrap();
        let model = GraphModel::extract(&mgr);
        assert_eq!(model.items[&key].subscribers, 2);
        let pending = GraphModel::extract_with_pending(&mgr, &key);
        assert_eq!(pending.items[&key].subscribers, 3);
    }

    #[test]
    fn dependency_rows_agree_with_the_runtime_catalog() {
        use streammeta_core::SystemRelation;
        let mgr = manager_with(vec![
            ItemDef::periodic("rate", TimeSpan(10))
                .compute(|_| MetadataValue::F64(1.0))
                .build(),
            ItemDef::triggered("cost")
                .dep_local("rate")
                .compute(|ctx| ctx.dep("rate"))
                .build(),
        ]);
        // Include everything so the runtime relation covers the whole
        // graph; with only fixed dependencies both views must agree.
        let _sub = mgr.subscribe(MetadataKey::new(NodeId(0), "cost")).unwrap();
        let render = |rows: Vec<Vec<MetadataValue>>| -> Vec<String> {
            let mut v: Vec<String> = rows
                .iter()
                .map(|r| {
                    r.iter()
                        .map(|c| c.to_string())
                        .collect::<Vec<_>>()
                        .join("|")
                })
                .collect();
            v.sort();
            v
        };
        let static_rows = render(GraphModel::extract(&mgr).dependency_rows());
        let runtime_rows = render(mgr.catalog_rows(SystemRelation::Dependencies));
        assert!(!static_rows.is_empty());
        assert_eq!(static_rows, runtime_rows);
    }

    #[test]
    fn dependency_rows_mark_alternatives_uncertain() {
        let alt = MetadataKey::new(NodeId(0), "b");
        let mgr = manager_with(vec![
            ItemDef::static_value("b", 1u64),
            ItemDef::triggered("a")
                .dynamic_deps(move |_| vec![Dependency::new("src", DepTarget::Remote(alt.clone()))])
                .build(),
        ]);
        let rows = GraphModel::extract(&mgr).dependency_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][1].as_text(), Some("item"));
        assert_eq!(rows[0][3].as_text(), Some("src"));
        assert_eq!(rows[0][4].as_bool(), Some(false));
    }

    #[test]
    fn dynamic_alternatives_are_marked() {
        let alt = MetadataKey::new(NodeId(0), "b");
        let alt2 = alt.clone();
        let mgr = manager_with(vec![
            ItemDef::static_value("b", 1u64),
            ItemDef::triggered("a")
                .dynamic_deps(move |_| {
                    vec![Dependency::new("src", DepTarget::Remote(alt2.clone()))]
                })
                .build(),
        ]);
        let model = GraphModel::extract(&mgr);
        let a = &model.items[&MetadataKey::new(NodeId(0), "a")];
        assert_eq!(a.deps.len(), 1);
        assert!(a.deps[0].alternative);
        let reach = model.reachable_from(&MetadataKey::new(NodeId(0), "a"));
        assert!(reach.contains(&alt));
    }
}
