//! The rule engine: anomaly rules A1–A6, graph budget checks B1/B2, and
//! the containment-configuration check C1.
//!
//! Each rule is a pure function of the extracted [`GraphModel`] — no
//! compute function runs, no lock is held while analysing. The rules
//! formalise the paper's two central anomalies (Figure 4 and Figure 5)
//! plus the structural hazards the runtime can only discover mid-flight
//! (cycles, dangling dependencies, period inversions, isolation
//! violations) and operational ceilings on graph shape.

use std::collections::{BTreeMap, BTreeSet};

use streammeta_core::MetadataKey;

use crate::diag::{DiagCode, Diagnostic, Severity};
use crate::model::{GraphModel, ItemModel, MechKind};

/// Ceilings for the graph budget checks (B1/B2).
#[derive(Clone, Copy, Debug)]
pub struct Budgets {
    /// Maximum dependency-chain depth before B1 fires. Trigger
    /// propagation walks this chain on every change; deep chains turn
    /// one update into a long synchronous cascade.
    pub max_depth: usize,
    /// Maximum number of distinct dependents of one item before B2
    /// fires. High fan-out makes one item's update notify a crowd.
    pub max_fanout: usize,
}

impl Default for Budgets {
    fn default() -> Self {
        Budgets {
            max_depth: 8,
            max_fanout: 16,
        }
    }
}

/// Runs every rule over `model` and returns the findings sorted by
/// (code, key) — deterministic for identical graphs.
pub fn run(model: &GraphModel, budgets: &Budgets) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for item in model.items.values() {
        rule_a1_shared_reset(model, item, &mut out);
        rule_a2_on_demand_over_periodic(model, item, &mut out);
        rule_a4_dangling(model, item, &mut out);
        rule_a5_period_inversion(model, item, &mut out);
        rule_a6_isolation(model, item, &mut out);
        rule_a7_coalesced_reset(model, item, &mut out);
        rule_b2_fanout(model, item, budgets, &mut out);
        rule_c1_deadline_without_fallback(item, &mut out);
    }
    rule_a3_cycles(model, &mut out);
    rule_b1_depth(model, budgets, &mut out);
    out.sort_by(|a, b| (a.code, &a.key).cmp(&(b.code, &b.key)));
    out
}

/// A1 (Figure 4): an on-demand item whose evaluation resets the
/// underlying measurement, shared by two or more subscription roots.
/// Every access covers only the interval since the *other* consumer's
/// access, so all consumers read wrong values.
fn rule_a1_shared_reset(model: &GraphModel, item: &ItemModel, out: &mut Vec<Diagnostic>) {
    if item.mechanism != MechKind::OnDemand || !item.reset_on_read {
        return;
    }
    let dependents: Vec<MetadataKey> = model
        .dependents_of(&item.key)
        .into_iter()
        .cloned()
        .collect();
    // Every live subscription root and every statically declared
    // dependent is an independent access path that resets the shared
    // measurement.
    let roots = item.subscribers + dependents.len();
    if roots < 2 {
        return;
    }
    out.push(Diagnostic {
        code: DiagCode::SharedOnDemandReset,
        severity: Severity::Error,
        key: item.key.clone(),
        message: format!(
            "on-demand item resets its measurement on every read but is shared by \
             {roots} subscription roots ({} live, {} dependent items): each access \
             truncates the interval the others measure (paper Figure 4)",
            item.subscribers,
            dependents.len()
        ),
        hint: "replace the reset-on-access measurement with a periodic item: one \
               shared window boundary serves every consumer the same value"
            .into(),
        related: dependents,
    });
}

/// A2 (Figure 5): an on-demand stateful aggregate over a periodically
/// updated input. The aggregate observes the input on the consumer's
/// access schedule instead of the input's update schedule, so it samples
/// (and can alias with) the update period — in the paper's Figure 5 it
/// only ever sees the peak windows.
fn rule_a2_on_demand_over_periodic(
    model: &GraphModel,
    item: &ItemModel,
    out: &mut Vec<Diagnostic>,
) {
    if item.mechanism != MechKind::OnDemand || !item.stateful {
        return;
    }
    for (dep_key, edge) in item.item_deps() {
        let Some(dep) = model.items.get(dep_key) else {
            continue; // A4's problem
        };
        let Some(period) = dep.mechanism.period() else {
            continue;
        };
        let (severity, detail) = match item.implied_window {
            Some(iw) if period >= iw => (
                Severity::Error,
                format!(
                    "the input's period ({period:?}) is at least the aggregate's \
                     implied sampling window ({iw:?}), so repeated accesses re-observe \
                     the same published value"
                ),
            ),
            Some(iw) => (
                Severity::Error,
                format!(
                    "accesses arrive every ~{iw:?} while the input publishes every \
                     {period:?}: the aggregate skips updates and can alias with the \
                     publish schedule"
                ),
            ),
            None if edge.alternative => (
                Severity::Warning,
                "a dynamic resolver may select the periodic input".into(),
            ),
            None => (
                Severity::Error,
                "the access schedule is unconstrained, so which published values the \
                 aggregate observes is an accident of consumer timing"
                    .into(),
            ),
        };
        out.push(Diagnostic {
            code: DiagCode::OnDemandOverPeriodic,
            severity,
            key: item.key.clone(),
            message: format!(
                "on-demand stateful aggregate samples the periodic item {dep_key} \
                 instead of observing it: {detail} (paper Figure 5)"
            ),
            hint: format!(
                "make the aggregate triggered on {dep_key} so every published value \
                 is observed exactly once"
            ),
            related: vec![dep_key.clone()],
        });
    }
}

/// A3: dependency cycles, including cycles that only close through
/// dynamic-dependency alternatives. The runtime rejects a cycle at
/// inclusion time with an error; statically it is a definition bug.
fn rule_a3_cycles(model: &GraphModel, out: &mut Vec<Diagnostic>) {
    // Iterative DFS with colors; report each cycle once, rotated to
    // start at its minimal key.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color: BTreeMap<&MetadataKey, Color> =
        model.items.keys().map(|k| (k, Color::White)).collect();
    let mut found: BTreeSet<Vec<MetadataKey>> = BTreeSet::new();

    fn dfs<'a>(
        model: &'a GraphModel,
        key: &'a MetadataKey,
        color: &mut BTreeMap<&'a MetadataKey, Color>,
        stack: &mut Vec<&'a MetadataKey>,
        found: &mut BTreeSet<Vec<MetadataKey>>,
    ) {
        color.insert(key, Color::Gray);
        stack.push(key);
        if let Some(item) = model.items.get(key) {
            for (dep, _) in item.item_deps() {
                let Some((dep, _)) = model.items.get_key_value(dep) else {
                    continue;
                };
                match color.get(dep).copied().unwrap_or(Color::White) {
                    Color::Gray => {
                        // Close the cycle: from `dep`'s position in the
                        // stack to the top.
                        let start = stack.iter().position(|k| *k == dep).expect("on stack");
                        let mut cycle: Vec<MetadataKey> =
                            stack[start..].iter().map(|k| (*k).clone()).collect();
                        // Canonical rotation for dedup.
                        let min = cycle
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, k)| (*k).clone())
                            .map(|(i, _)| i)
                            .unwrap_or(0);
                        cycle.rotate_left(min);
                        found.insert(cycle);
                    }
                    Color::White => dfs(model, dep, color, stack, found),
                    Color::Black => {}
                }
            }
        }
        stack.pop();
        color.insert(key, Color::Black);
    }

    let keys: Vec<&MetadataKey> = model.items.keys().collect();
    for key in keys {
        if color.get(key).copied() == Some(Color::White) {
            let mut stack = Vec::new();
            dfs(model, key, &mut color, &mut stack, &mut found);
        }
    }

    for cycle in found {
        let uses_alternative = cycle.iter().enumerate().any(|(i, from)| {
            let to = &cycle[(i + 1) % cycle.len()];
            model.items[from]
                .item_deps()
                .any(|(dep, edge)| dep == to && edge.alternative)
        });
        let path: Vec<String> = cycle
            .iter()
            .chain(cycle.first())
            .map(|k| k.to_string())
            .collect();
        out.push(Diagnostic {
            code: DiagCode::DependencyCycle,
            severity: Severity::Error,
            key: cycle[0].clone(),
            message: format!(
                "dependency cycle {}{}: inclusion of any member fails at runtime",
                path.join(" -> "),
                if uses_alternative {
                    " (closes only through a dynamic-dependency alternative)"
                } else {
                    ""
                }
            ),
            hint: "break the cycle by removing one dependency or replacing it with an \
                   event trigger"
                .into(),
            related: cycle,
        });
    }
}

/// A4: a dependency on an item no attached registry defines — the
/// subscription would fail at runtime with `ItemUndefined`/`NodeUnknown`.
fn rule_a4_dangling(model: &GraphModel, item: &ItemModel, out: &mut Vec<Diagnostic>) {
    for (dep_key, edge) in item.item_deps() {
        if model.defines(dep_key) {
            continue;
        }
        out.push(Diagnostic {
            code: DiagCode::DanglingDependency,
            severity: if edge.alternative {
                Severity::Warning
            } else {
                Severity::Error
            },
            key: item.key.clone(),
            message: format!(
                "{}dependency `{}` -> {dep_key} is unresolvable: no attached registry \
                 defines that item",
                if edge.alternative {
                    "dynamic-alternative "
                } else {
                    ""
                },
                edge.role
            ),
            hint: format!(
                "define {dep_key} (or attach its node's registry) before subscribing, \
                 or drop the dependency"
            ),
            related: vec![dep_key.clone()],
        });
    }
}

/// A5: period inversion — a periodic item refreshes faster than a
/// periodic dependency it reads, so consecutive refreshes re-read the
/// same (stale) value; a stateful aggregate then double-counts it.
fn rule_a5_period_inversion(model: &GraphModel, item: &ItemModel, out: &mut Vec<Diagnostic>) {
    let Some(own) = item.mechanism.period() else {
        return;
    };
    for (dep_key, _) in item.item_deps() {
        let Some(dep) = model.items.get(dep_key) else {
            continue;
        };
        let Some(dep_period) = dep.mechanism.period() else {
            continue;
        };
        if own >= dep_period {
            continue;
        }
        out.push(Diagnostic {
            code: DiagCode::PeriodInversion,
            severity: if item.stateful {
                Severity::Error
            } else {
                Severity::Warning
            },
            key: item.key.clone(),
            message: format!(
                "periodic item (period {own:?}) refreshes faster than its periodic \
                 dependency {dep_key} (period {dep_period:?}): {} refreshes in a row \
                 re-read the same value{}",
                (dep_period.0 / own.0.max(1)).max(2),
                if item.stateful {
                    ", and the stateful aggregate double-counts it"
                } else {
                    ""
                }
            ),
            hint: format!(
                "refresh no faster than the dependency (period >= {dep_period:?}), or \
                 make this item triggered on {dep_key}"
            ),
            related: vec![dep_key.clone()],
        });
    }
}

/// A6: isolation violation — a triggered item feeds a periodic one. The
/// triggered value can change at any instant, so the periodic item's
/// window-boundary snapshot reads a value that moved mid-window: the
/// paper's isolation condition (Section 3) asks periodic inputs to be
/// stable within a window.
fn rule_a6_isolation(model: &GraphModel, item: &ItemModel, out: &mut Vec<Diagnostic>) {
    if item.mechanism.period().is_none() {
        return;
    }
    for (dep_key, _) in item.item_deps() {
        let Some(dep) = model.items.get(dep_key) else {
            continue;
        };
        if dep.mechanism != MechKind::Triggered {
            continue;
        }
        out.push(Diagnostic {
            code: DiagCode::IsolationViolation,
            severity: Severity::Warning,
            key: item.key.clone(),
            message: format!(
                "periodic item reads the triggered item {dep_key}, which can update \
                 mid-window: the window-boundary snapshot is not isolated from \
                 in-window changes (paper Section 3)"
            ),
            hint: format!(
                "make this item triggered on {dep_key}, or read a periodic upstream of \
                 the triggered value"
            ),
            related: vec![dep_key.clone()],
        });
    }
}

/// A7: a reset-on-read item feeding dependents while the manager runs
/// in epoch-batched propagation mode. The epoch flush coalesces the
/// source updates of a batching window into one recomputation round, so
/// the dependents read (and reset) the measurement once per flush
/// instead of once per update: the intervals belonging to the coalesced
/// intermediate updates are silently merged into one observation, and
/// the per-update semantics the reset-on-read contract promises are
/// lost. This is the Figure-4 truncation hazard re-created by the
/// batching layer rather than by a second consumer.
fn rule_a7_coalesced_reset(model: &GraphModel, item: &ItemModel, out: &mut Vec<Diagnostic>) {
    if !model.epoch_mode || !item.reset_on_read {
        return;
    }
    let dependents: Vec<MetadataKey> = model
        .dependents_of(&item.key)
        .into_iter()
        .cloned()
        .collect();
    if dependents.is_empty() {
        return;
    }
    out.push(Diagnostic {
        code: DiagCode::EpochCoalescedReset,
        severity: Severity::Error,
        key: item.key.clone(),
        message: format!(
            "reset-on-read item feeds {} dependent item(s) while propagation is \
             epoch-batched: each flush reads and resets the measurement once for a \
             whole batch of coalesced updates, merging the intermediate intervals \
             into one observation",
            dependents.len()
        ),
        hint: "switch the manager back to per-event propagation, or replace the \
               reset-on-access measurement with a periodic item whose window \
               boundary — not the epoch flush — defines the interval"
            .into(),
        related: dependents,
    });
}

/// B1: propagation-depth budget — the longest dependency chain in the
/// model, compared against [`Budgets::max_depth`]. Cycle participants
/// are skipped (A3 already reports them).
fn rule_b1_depth(model: &GraphModel, budgets: &Budgets, out: &mut Vec<Diagnostic>) {
    // Memoized longest-chain DFS; `None` in `depth` marks "on stack"
    // (cycle), which we treat as depth 0 to stay terminating.
    fn depth_of<'a>(
        model: &'a GraphModel,
        key: &'a MetadataKey,
        memo: &mut BTreeMap<&'a MetadataKey, Option<usize>>,
    ) -> usize {
        match memo.get(key) {
            Some(Some(d)) => return *d,
            Some(None) => return 0, // cycle member
            None => {}
        }
        memo.insert(key, None);
        let mut best = 0;
        if let Some(item) = model.items.get(key) {
            for (dep, _) in item.item_deps() {
                if let Some((dep, _)) = model.items.get_key_value(dep) {
                    best = best.max(1 + depth_of(model, dep, memo));
                }
            }
        }
        memo.insert(key, Some(best));
        best
    }

    let mut memo: BTreeMap<&MetadataKey, Option<usize>> = BTreeMap::new();
    let mut deepest: Option<(&MetadataKey, usize)> = None;
    for key in model.items.keys() {
        let d = depth_of(model, key, &mut memo);
        if deepest.is_none_or(|(_, best)| d > best) {
            deepest = Some((key, d));
        }
    }
    if let Some((key, depth)) = deepest {
        if depth > budgets.max_depth {
            out.push(Diagnostic {
                code: DiagCode::PropagationDepth,
                severity: Severity::Warning,
                key: key.clone(),
                message: format!(
                    "dependency chain of depth {depth} exceeds the propagation-depth \
                     budget ({}): one upstream change cascades through {depth} \
                     synchronous recomputations",
                    budgets.max_depth
                ),
                hint: "flatten the chain (depend on the original source directly) or \
                       raise the budget if the depth is intended"
                    .into(),
                related: Vec::new(),
            });
        }
    }
}

/// B2: fan-out budget — items with more distinct dependents than
/// [`Budgets::max_fanout`].
fn rule_b2_fanout(
    model: &GraphModel,
    item: &ItemModel,
    budgets: &Budgets,
    out: &mut Vec<Diagnostic>,
) {
    let dependents = model.dependents_of(&item.key);
    if dependents.len() <= budgets.max_fanout {
        return;
    }
    out.push(Diagnostic {
        code: DiagCode::FanOut,
        severity: Severity::Warning,
        key: item.key.clone(),
        message: format!(
            "{} items depend on this one, exceeding the fan-out budget ({}): every \
             update notifies all of them",
            dependents.len(),
            budgets.max_fanout
        ),
        hint: "introduce an intermediate aggregate, or raise the budget if the fan-out \
               is intended"
            .into(),
        related: dependents.into_iter().take(8).cloned().collect(),
    });
}

/// C1: a compute deadline without a fallback policy. The runtime counts
/// and traces the overrun but still stores the late value — almost
/// certainly not what a deadline was declared for. With a policy, the
/// late result is discarded and the last good value serves, degraded.
fn rule_c1_deadline_without_fallback(item: &ItemModel, out: &mut Vec<Diagnostic>) {
    let Some(deadline) = item.deadline else {
        return;
    };
    if item.has_fallback {
        return;
    }
    out.push(Diagnostic {
        code: DiagCode::DeadlineWithoutFallback,
        severity: Severity::Warning,
        key: item.key.clone(),
        message: format!(
            "item declares a compute deadline ({deadline:?}) but no fallback policy: \
             overruns are counted but the late value is still stored and served"
        ),
        hint: "add `.fallback(FallbackPolicy::conservative())` (or a tuned policy) so \
               overrunning evaluations are discarded and the last good value serves, \
               marked degraded — or drop the deadline if it is observation-only"
            .into(),
        related: Vec::new(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DepEdge;
    use streammeta_core::{DepSource, NodeId};
    use streammeta_time::TimeSpan;

    fn key(name: &str) -> MetadataKey {
        MetadataKey::new(NodeId(0), name)
    }

    fn item(name: &str, mech: MechKind) -> ItemModel {
        ItemModel {
            key: key(name),
            mechanism: mech,
            stateful: false,
            reset_on_read: false,
            implied_window: None,
            deadline: None,
            has_fallback: false,
            deps: Vec::new(),
            subscribers: 0,
        }
    }

    fn dep(name: &str) -> DepEdge {
        DepEdge {
            role: "in".into(),
            source: DepSource::Item(key(name)),
            alternative: false,
        }
    }

    fn alt_dep(name: &str) -> DepEdge {
        DepEdge {
            alternative: true,
            ..dep(name)
        }
    }

    fn model(items: Vec<ItemModel>) -> GraphModel {
        GraphModel {
            items: items.into_iter().map(|i| (i.key.clone(), i)).collect(),
            epoch_mode: false,
        }
    }

    fn run_default(m: &GraphModel) -> Vec<Diagnostic> {
        run(m, &Budgets::default())
    }

    fn find(diags: &[Diagnostic], code: DiagCode) -> &Diagnostic {
        diags
            .iter()
            .find(|d| d.code == code)
            .unwrap_or_else(|| panic!("no {code} in {diags:?}"))
    }

    #[test]
    fn a1_fires_on_shared_reset_on_read() {
        let mut naive = item("naive", MechKind::OnDemand);
        naive.reset_on_read = true;
        naive.subscribers = 2;
        let m = model(vec![naive]);
        let diags = run_default(&m);
        let d = find(&diags, DiagCode::SharedOnDemandReset);
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.key, key("naive"));
        assert!(d.message.contains("Figure 4"));
        assert!(d.hint.contains("periodic"));
    }

    #[test]
    fn a1_counts_dependents_as_roots() {
        let mut naive = item("naive", MechKind::OnDemand);
        naive.reset_on_read = true;
        naive.subscribers = 1;
        let mut consumer = item("ratio", MechKind::Triggered);
        consumer.deps.push(dep("naive"));
        let m = model(vec![naive, consumer]);
        let d = run_default(&m);
        assert_eq!(
            find(&d, DiagCode::SharedOnDemandReset).related,
            vec![key("ratio")]
        );
    }

    #[test]
    fn a1_silent_for_single_root_or_non_reset() {
        let mut naive = item("naive", MechKind::OnDemand);
        naive.reset_on_read = true;
        naive.subscribers = 1;
        assert!(run_default(&model(vec![naive])).is_empty());

        let mut plain = item("plain", MechKind::OnDemand);
        plain.subscribers = 5;
        assert!(run_default(&model(vec![plain])).is_empty());
    }

    #[test]
    fn a2_fires_on_stateful_on_demand_over_periodic() {
        let rate = item("rate", MechKind::Periodic(TimeSpan(50)));
        let mut avg = item("avg", MechKind::OnDemand);
        avg.stateful = true;
        avg.deps.push(dep("rate"));
        let diags = run_default(&model(vec![rate, avg]));
        let d = find(&diags, DiagCode::OnDemandOverPeriodic);
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.key, key("avg"));
        assert_eq!(d.related, vec![key("rate")]);
        assert!(d.message.contains("Figure 5"));
        assert!(d.hint.contains("triggered"));
    }

    #[test]
    fn a2_silent_for_stateless_or_triggered_consumers() {
        let rate = item("rate", MechKind::Periodic(TimeSpan(50)));
        let mut pass = item("pass", MechKind::OnDemand);
        pass.deps.push(dep("rate"));
        let mut trig = item("trig", MechKind::Triggered);
        trig.stateful = true;
        trig.deps.push(dep("rate"));
        assert!(run_default(&model(vec![rate, pass, trig])).is_empty());
    }

    #[test]
    fn a3_reports_cycle_once_with_members() {
        let mut a = item("a", MechKind::Triggered);
        a.deps.push(dep("b"));
        let mut b = item("b", MechKind::Triggered);
        b.deps.push(dep("c"));
        let mut c = item("c", MechKind::Triggered);
        c.deps.push(dep("a"));
        let diags = run_default(&model(vec![a, b, c]));
        let cycles: Vec<_> = diags
            .iter()
            .filter(|d| d.code == DiagCode::DependencyCycle)
            .collect();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].key, key("a"));
        assert_eq!(cycles[0].related, vec![key("a"), key("b"), key("c")]);
        assert_eq!(cycles[0].severity, Severity::Error);
    }

    #[test]
    fn a3_sees_cycles_through_alternatives() {
        let mut a = item("a", MechKind::Triggered);
        a.deps.push(alt_dep("b"));
        let mut b = item("b", MechKind::Triggered);
        b.deps.push(dep("a"));
        let diags = run_default(&model(vec![a, b]));
        let d = find(&diags, DiagCode::DependencyCycle);
        assert!(d.message.contains("dynamic-dependency alternative"));
    }

    #[test]
    fn a4_dangling_fixed_is_error_alternative_is_warning() {
        let mut a = item("a", MechKind::Triggered);
        a.deps.push(dep("missing"));
        a.deps.push(alt_dep("also_missing"));
        let diags = run_default(&model(vec![a]));
        let dangling: Vec<_> = diags
            .iter()
            .filter(|d| d.code == DiagCode::DanglingDependency)
            .collect();
        assert_eq!(dangling.len(), 2);
        let sev: Vec<Severity> = dangling.iter().map(|d| d.severity).collect();
        assert!(sev.contains(&Severity::Error) && sev.contains(&Severity::Warning));
    }

    #[test]
    fn a5_period_inversion_severity_tracks_statefulness() {
        let slow = item("slow", MechKind::Periodic(TimeSpan(100)));
        let mut fast = item("fast", MechKind::Periodic(TimeSpan(10)));
        fast.deps.push(dep("slow"));
        let d = run_default(&model(vec![slow.clone(), fast.clone()]));
        assert_eq!(
            find(&d, DiagCode::PeriodInversion).severity,
            Severity::Warning
        );

        fast.stateful = true;
        let d = run_default(&model(vec![slow, fast]));
        let diag = find(&d, DiagCode::PeriodInversion);
        assert_eq!(diag.severity, Severity::Error);
        assert_eq!(diag.key, key("fast"));
        assert!(diag.hint.contains("triggered"));
    }

    #[test]
    fn a5_silent_when_periods_align() {
        let slow = item("slow", MechKind::Periodic(TimeSpan(50)));
        let mut same = item("same", MechKind::Periodic(TimeSpan(50)));
        same.deps.push(dep("slow"));
        assert!(run_default(&model(vec![slow, same])).is_empty());
    }

    #[test]
    fn a6_periodic_over_triggered_warns() {
        let trig = item("count", MechKind::Triggered);
        let mut per = item("win", MechKind::Periodic(TimeSpan(50)));
        per.deps.push(dep("count"));
        let diags = run_default(&model(vec![trig, per]));
        let d = find(&diags, DiagCode::IsolationViolation);
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.key, key("win"));
        assert_eq!(d.related, vec![key("count")]);
    }

    #[test]
    fn a7_fires_only_in_epoch_mode_with_dependents() {
        let mut naive = item("naive", MechKind::OnDemand);
        naive.reset_on_read = true;
        let mut consumer = item("ratio", MechKind::Triggered);
        consumer.deps.push(dep("naive"));

        // Per-event mode: silent.
        let m = model(vec![naive.clone(), consumer.clone()]);
        assert!(run_default(&m).is_empty());

        // Epoch mode: fires at the reset-on-read input.
        let mut m = model(vec![naive.clone(), consumer]);
        m.epoch_mode = true;
        let diags = run_default(&m);
        let d = find(&diags, DiagCode::EpochCoalescedReset);
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.key, key("naive"));
        assert_eq!(d.related, vec![key("ratio")]);
        assert!(d.hint.contains("per-event"));

        // Epoch mode but no dependents: only direct consumers read it,
        // per flush and per access alike — A1's territory, not A7's.
        let mut m = model(vec![naive]);
        m.epoch_mode = true;
        assert!(run_default(&m).is_empty());
    }

    #[test]
    fn b1_depth_budget() {
        // Chain of 4 items with max_depth 2 -> B1 fires at the deepest.
        let mut items = vec![item("i0", MechKind::Triggered)];
        for i in 1..4 {
            let mut it = item(&format!("i{i}"), MechKind::Triggered);
            it.deps.push(dep(&format!("i{}", i - 1)));
            items.push(it);
        }
        let budgets = Budgets {
            max_depth: 2,
            max_fanout: 16,
        };
        let diags = run(&model(items), &budgets);
        let d = find(&diags, DiagCode::PropagationDepth);
        assert_eq!(d.key, key("i3"));
        assert!(d.message.contains("depth 3"));
    }

    #[test]
    fn b2_fanout_budget() {
        let hub = item("hub", MechKind::Triggered);
        let mut items = vec![hub];
        for i in 0..3 {
            let mut it = item(&format!("c{i}"), MechKind::Triggered);
            it.deps.push(dep("hub"));
            items.push(it);
        }
        let budgets = Budgets {
            max_depth: 8,
            max_fanout: 2,
        };
        let diags = run(&model(items), &budgets);
        let d = find(&diags, DiagCode::FanOut);
        assert_eq!(d.key, key("hub"));
        assert_eq!(d.related.len(), 3);
    }

    #[test]
    fn c1_deadline_without_fallback_warns() {
        let mut bare = item("bare", MechKind::OnDemand);
        bare.deadline = Some(TimeSpan(5));
        let diags = run_default(&model(vec![bare]));
        let d = find(&diags, DiagCode::DeadlineWithoutFallback);
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.key, key("bare"));
        assert!(d.hint.contains("fallback"));
    }

    #[test]
    fn c1_silent_with_fallback_or_without_deadline() {
        let mut covered = item("covered", MechKind::OnDemand);
        covered.deadline = Some(TimeSpan(5));
        covered.has_fallback = true;
        let mut plain = item("plain", MechKind::OnDemand);
        plain.has_fallback = true;
        assert!(run_default(&model(vec![covered, plain])).is_empty());
    }

    #[test]
    fn output_is_sorted_and_deterministic() {
        let mut naive = item("naive", MechKind::OnDemand);
        naive.reset_on_read = true;
        naive.subscribers = 2;
        let mut a = item("a", MechKind::Triggered);
        a.deps.push(dep("missing"));
        let m = model(vec![naive, a]);
        let d1 = run_default(&m);
        let d2 = run_default(&m);
        let codes1: Vec<_> = d1.iter().map(|d| (d.code, d.key.clone())).collect();
        let codes2: Vec<_> = d2.iter().map(|d| (d.code, d.key.clone())).collect();
        assert_eq!(codes1, codes2);
        let mut sorted = codes1.clone();
        sorted.sort();
        assert_eq!(codes1, sorted);
    }
}
