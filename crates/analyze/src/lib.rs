//! `streammeta-analyze`: static anomaly detection for metadata graphs
//! ("metalint") and a deterministic interleaving checker for the
//! lock-free read path.
//!
//! # Static analysis
//!
//! The paper's central observation (Section 3) is that metadata
//! anomalies like Figure 4 (two consumers sharing a reset-on-access
//! on-demand measurement) and Figure 5 (an on-demand aggregate sampling
//! a periodically updated input) are *structural*: they follow from the
//! combination of update mechanism, statefulness and dependency shape,
//! and are therefore detectable before any tuple flows. This crate
//! extracts a typed [`GraphModel`] from a [`MetadataManager`] — without
//! executing a single compute function — and runs a rule engine over it:
//!
//! | code | rule | severity |
//! |------|------|----------|
//! | A1 | shared on-demand reset-on-read item (Figure 4) | error |
//! | A2 | on-demand stateful aggregate over a periodic input (Figure 5) | error |
//! | A3 | dependency cycle (incl. via dynamic alternatives) | error |
//! | A4 | dangling / unresolvable dependency | error (warning if alternative) |
//! | A5 | period inversion: periodic faster than its periodic input | warning (error if stateful) |
//! | A6 | isolation violation: triggered item feeds a periodic one | warning |
//! | A7 | reset-on-read item feeds dependents under epoch-batched propagation | error |
//! | B1 | dependency chain deeper than the propagation budget | warning |
//! | B2 | fan-out above the budget | warning |
//! | C1 | compute deadline without a fallback policy | warning |
//!
//! Three exposures: the library API ([`analyze`]), the `metalint` binary
//! (in `streammeta-bench`, over the E1–E19 experiment graphs), and a
//! subscription-time hook ([`install_linter`]) that warns or denies by
//! policy when a new subscription would complete an anomalous shape.
//!
//! # Interleaving checker
//!
//! [`interleave`] is a minimal loom-style exhaustive scheduler used by
//! the test suites in `tests/` to model-check the seqlock publish/read
//! protocol of `streammeta-core::handler` and the sharded key-index
//! races of `streammeta-core::shards` — deterministically, with no real
//! threads and no wall-clock sleeps.
//!
//! # Concurrency soundness
//!
//! Two further dynamic checkers complement the static rules (see
//! `docs/ANALYSIS.md`, "Concurrency soundness"):
//!
//! * [`lockorder`] replays the acquisition log recorded by
//!   `streammeta-core`'s tiered sync shim (feature `lock-audit`) and
//!   reports tier-rank inversions, re-entrant acquisitions, cross-thread
//!   nesting cycles and framework locks held across user compute
//!   (rules `L1`–`L4`).
//! * [`tracelint`] replays a JSONL trace export and checks the recorded
//!   execution against the metadata semantics — version monotonicity,
//!   epoch serialization, exclusion liveness, quarantine legality,
//!   retry/backoff conformance and stream well-formedness (rules
//!   `T1`–`T6`). The `tracelint` binary in `streammeta-bench` runs it
//!   over checked-in fixture traces and experiment outputs.

#![warn(missing_docs)]

pub mod diag;
pub mod interleave;
pub mod lockorder;
pub mod model;
pub mod rules;
pub mod tracelint;

pub use diag::{DiagCode, Diagnostic, Severity};
pub use interleave::{Explorer, Model, Stats, Violation};
pub use lockorder::{check as check_lock_order, LockOrderRule, LockOrderViolation};
pub use model::{DepEdge, GraphModel, ItemModel, MechKind};
pub use rules::Budgets;
pub use tracelint::{
    lint as lint_trace, lint_jsonl as lint_trace_jsonl, TraceRule, TraceViolation,
};

use streammeta_core::{MetadataKey, MetadataManager, ValidationPolicy};

/// Analyzes every item defined in every registry attached to `manager`
/// with the default [`Budgets`], returning the findings sorted by
/// (code, key). No compute function is executed.
pub fn analyze(manager: &MetadataManager) -> Vec<Diagnostic> {
    analyze_with(manager, &Budgets::default())
}

/// [`analyze`] with explicit graph budgets.
pub fn analyze_with(manager: &MetadataManager, budgets: &Budgets) -> Vec<Diagnostic> {
    rules::run(&GraphModel::extract(manager), budgets)
}

/// Installs the rule engine as the manager's subscription-time
/// validator.
///
/// On every `subscribe(key)` the graph is re-analyzed as if the pending
/// subscription already existed ([`GraphModel::extract_with_pending`]),
/// and error-severity findings anchored inside the subtree the
/// subscription would include are reported as violations. Under
/// [`ValidationPolicy::Warn`] they are collected on the manager
/// (`take_validation_warnings`); under [`ValidationPolicy::Deny`] the
/// subscription fails with `MetadataError::ValidationFailed`.
///
/// This is exactly the paper's Figure-4 scenario made un-deployable:
/// the *first* subscription to the shared reset-on-read item is clean,
/// the *second* one completes the anomaly and is flagged (or refused)
/// at the moment it is attempted.
pub fn install_linter(manager: &MetadataManager, policy: ValidationPolicy, budgets: Budgets) {
    manager.set_validator(
        Some(std::sync::Arc::new(
            move |mgr: &MetadataManager, key: &MetadataKey| {
                let model = GraphModel::extract_with_pending(mgr, key);
                let scope = model.reachable_from(key);
                rules::run(&model, &budgets)
                    .into_iter()
                    .filter(|d| d.severity == Severity::Error && scope.contains(&d.key))
                    .map(|d| format!("{}[{}] {}: {}", d.severity, d.code, d.key, d.message))
                    .collect()
            },
        )),
        policy,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use streammeta_core::{ItemDef, MetadataError, MetadataValue, NodeId, NodeRegistry};
    use streammeta_time::{TimeSpan, VirtualClock};

    fn fig4_manager() -> std::sync::Arc<MetadataManager> {
        let mgr = MetadataManager::new(VirtualClock::shared());
        let reg = NodeRegistry::new(NodeId(0));
        reg.define(
            ItemDef::on_demand("input_rate_naive")
                .reset_on_read()
                .compute(|_| MetadataValue::F64(0.0))
                .build(),
        );
        mgr.attach_node(reg);
        mgr
    }

    #[test]
    fn analyze_is_clean_on_single_consumer() {
        let mgr = fig4_manager();
        let key = MetadataKey::new(NodeId(0), "input_rate_naive");
        let _s = mgr.subscribe(key).unwrap();
        assert!(analyze(&mgr).is_empty());
    }

    #[test]
    fn analyze_flags_fig4_on_second_consumer() {
        let mgr = fig4_manager();
        let key = MetadataKey::new(NodeId(0), "input_rate_naive");
        let _s1 = mgr.subscribe(key.clone()).unwrap();
        let _s2 = mgr.subscribe(key.clone()).unwrap();
        let diags = analyze(&mgr);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::SharedOnDemandReset);
        assert_eq!(diags[0].key, key);
    }

    #[test]
    fn linter_warn_policy_collects_and_allows() {
        let mgr = fig4_manager();
        install_linter(&mgr, ValidationPolicy::Warn, Budgets::default());
        let key = MetadataKey::new(NodeId(0), "input_rate_naive");
        let _s1 = mgr.subscribe(key.clone()).unwrap();
        assert!(mgr.take_validation_warnings().is_empty());
        let _s2 = mgr.subscribe(key.clone()).unwrap();
        let warnings = mgr.take_validation_warnings();
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("[A1]"), "{warnings:?}");
    }

    #[test]
    fn linter_deny_policy_refuses_the_completing_subscription() {
        let mgr = fig4_manager();
        install_linter(&mgr, ValidationPolicy::Deny, Budgets::default());
        let key = MetadataKey::new(NodeId(0), "input_rate_naive");
        let _s1 = mgr.subscribe(key.clone()).unwrap();
        let err = mgr.subscribe(key.clone()).unwrap_err();
        match err {
            MetadataError::ValidationFailed(k, violations) => {
                assert_eq!(k, key);
                assert!(violations[0].contains("[A1]"));
            }
            other => panic!("expected ValidationFailed, got {other:?}"),
        }
        // The denied subscription must not leak a handler.
        assert_eq!(mgr.subscription_count(&key), 1);
    }

    #[test]
    fn linter_scopes_to_the_pending_subtree() {
        // An unrelated anomaly elsewhere must not block this subscribe.
        let mgr = fig4_manager();
        let reg = NodeRegistry::new(NodeId(1));
        reg.define(ItemDef::static_value("healthy", 1u64));
        mgr.attach_node(reg);
        install_linter(&mgr, ValidationPolicy::Deny, Budgets::default());
        let naive = MetadataKey::new(NodeId(0), "input_rate_naive");
        let _s1 = mgr.subscribe(naive.clone()).unwrap();
        // The anomaly now exists…
        let _s2 = mgr.subscribe(naive.clone()).unwrap_err();
        // …but a subscription to the unrelated healthy item still works:
        let healthy = MetadataKey::new(NodeId(1), "healthy");
        let _s3 = mgr.subscribe(healthy).unwrap();
    }

    #[test]
    fn analyze_with_respects_budgets() {
        let mgr = fig4_manager();
        let diags = analyze_with(
            &mgr,
            &Budgets {
                max_depth: 0,
                max_fanout: 0,
            },
        );
        // Single item, no deps: depth 0, fanout 0 — still clean.
        assert!(diags.is_empty());
    }

    #[test]
    fn a2_fires_against_a_real_manager_graph() {
        let mgr = MetadataManager::new(VirtualClock::shared());
        let reg = NodeRegistry::new(NodeId(0));
        reg.define(
            ItemDef::periodic("input_rate", TimeSpan(50))
                .stateful()
                .compute(|_| MetadataValue::F64(0.0))
                .build(),
        );
        reg.define(
            ItemDef::on_demand("avg_input_rate")
                .dep_local("input_rate")
                .stateful()
                .compute(|_| MetadataValue::F64(0.0))
                .build(),
        );
        mgr.attach_node(reg);
        let diags = analyze(&mgr);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::OnDemandOverPeriodic);
        assert_eq!(diags[0].key, MetadataKey::new(NodeId(0), "avg_input_rate"));
    }
}
