//! Diagnostic types and renderers.
//!
//! Every rule violation is reported as a [`Diagnostic`] carrying a
//! stable code (`A1`–`A6` for the anomaly rules, `B1`/`B2` for the graph
//! budgets), a severity, the key it anchors to, a human message and a
//! fix-it hint. Two renderers are provided: a rustc-style text form for
//! terminals and a line-delimited JSON form for tooling (`metalint
//! --json`, CI baselines).

use std::fmt;

use streammeta_core::MetadataKey;

/// How severe a diagnostic is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// A latent hazard: the configuration is suspicious but may be
    /// intentional (budget overruns, alternative-only dangling edges).
    Warning,
    /// A configuration bug: the metadata graph will produce wrong values
    /// or fail at runtime (the paper's Figure 4/5 anomalies, cycles).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable diagnostic codes of the rule engine.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum DiagCode {
    /// Figure 4: an on-demand, reset-on-read item shared by several
    /// subscription roots — the consumers reset each other's interval.
    SharedOnDemandReset,
    /// Figure 5: an on-demand stateful aggregate over a periodically
    /// updated input — accesses sample the update schedule instead of
    /// observing it.
    OnDemandOverPeriodic,
    /// A dependency cycle, including cycles only reachable through
    /// dynamic-dependency alternatives.
    DependencyCycle,
    /// A dependency on an item no attached registry defines.
    DanglingDependency,
    /// Period inversion: a periodic item refreshes faster than a
    /// periodic dependency it reads.
    PeriodInversion,
    /// Isolation violation: a triggered item feeds a periodic one, so
    /// the periodic snapshot can change mid-window.
    IsolationViolation,
    /// A reset-on-read item feeds dependents while the manager batches
    /// propagation into epochs: the flush reads (and resets) the
    /// measurement once per round, so the coalesced intermediate
    /// updates' intervals are silently merged.
    EpochCoalescedReset,
    /// Budget: the dependency chain is deeper than the propagation-depth
    /// ceiling.
    PropagationDepth,
    /// Budget: an item has more dependents than the fan-out ceiling.
    FanOut,
    /// Containment: a compute deadline without a fallback policy — the
    /// overrun is counted but the late value is still served.
    DeadlineWithoutFallback,
}

impl DiagCode {
    /// The stable short code (`A1`…`A6`, `B1`, `B2`).
    pub fn code(&self) -> &'static str {
        match self {
            DiagCode::SharedOnDemandReset => "A1",
            DiagCode::OnDemandOverPeriodic => "A2",
            DiagCode::DependencyCycle => "A3",
            DiagCode::DanglingDependency => "A4",
            DiagCode::PeriodInversion => "A5",
            DiagCode::IsolationViolation => "A6",
            DiagCode::EpochCoalescedReset => "A7",
            DiagCode::PropagationDepth => "B1",
            DiagCode::FanOut => "B2",
            DiagCode::DeadlineWithoutFallback => "C1",
        }
    }

    /// A one-line name of the rule, used in listings.
    pub fn name(&self) -> &'static str {
        match self {
            DiagCode::SharedOnDemandReset => "shared-on-demand-reset",
            DiagCode::OnDemandOverPeriodic => "on-demand-over-periodic",
            DiagCode::DependencyCycle => "dependency-cycle",
            DiagCode::DanglingDependency => "dangling-dependency",
            DiagCode::PeriodInversion => "period-inversion",
            DiagCode::IsolationViolation => "isolation-violation",
            DiagCode::EpochCoalescedReset => "epoch-coalesced-reset",
            DiagCode::PropagationDepth => "propagation-depth",
            DiagCode::FanOut => "fan-out",
            DiagCode::DeadlineWithoutFallback => "deadline-without-fallback",
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// One finding of the rule engine.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// The rule that fired.
    pub code: DiagCode,
    /// Error (configuration bug) or warning (latent hazard).
    pub severity: Severity,
    /// The item the diagnostic anchors to.
    pub key: MetadataKey,
    /// What is wrong, in one sentence.
    pub message: String,
    /// How to fix it, in one sentence.
    pub hint: String,
    /// Other items involved (cycle members, the shared roots, the
    /// periodic input), in deterministic order.
    pub related: Vec<MetadataKey>,
}

impl Diagnostic {
    /// Renders the diagnostic in rustc style:
    ///
    /// ```text
    /// error[A1]: on-demand item resets shared state ...
    ///   --> n3/input_rate_naive
    ///   = note: involves n3/probe_a, n3/probe_b
    ///   = help: use a shared periodic item instead
    /// ```
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "{}[{}]: {}\n  --> {}\n",
            self.severity,
            self.code.code(),
            self.message,
            self.key
        );
        if !self.related.is_empty() {
            let list: Vec<String> = self.related.iter().map(|k| k.to_string()).collect();
            out.push_str(&format!("  = note: involves {}\n", list.join(", ")));
        }
        out.push_str(&format!("  = help: {}\n", self.hint));
        out
    }

    /// Renders the diagnostic as one JSON object (machine-readable
    /// `metalint --json` output). Hand-rolled: the workspace is offline
    /// and carries no serde.
    pub fn render_json(&self) -> String {
        let related: Vec<String> = self
            .related
            .iter()
            .map(|k| format!("\"{}\"", json_escape(&k.to_string())))
            .collect();
        format!(
            "{{\"code\":\"{}\",\"rule\":\"{}\",\"severity\":\"{}\",\"key\":\"{}\",\"message\":\"{}\",\"hint\":\"{}\",\"related\":[{}]}}",
            self.code.code(),
            self.code.name(),
            self.severity,
            json_escape(&self.key.to_string()),
            json_escape(&self.message),
            json_escape(&self.hint),
            related.join(",")
        )
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use streammeta_core::NodeId;

    fn diag() -> Diagnostic {
        Diagnostic {
            code: DiagCode::SharedOnDemandReset,
            severity: Severity::Error,
            key: MetadataKey::new(NodeId(3), "input_rate_naive"),
            message: "shared reset-on-read item".into(),
            hint: "use a periodic item".into(),
            related: vec![MetadataKey::new(NodeId(3), "io_ratio")],
        }
    }

    #[test]
    fn text_rendering_is_rustc_style() {
        let t = diag().render_text();
        assert!(t.starts_with("error[A1]: "));
        assert!(t.contains("--> n3/input_rate_naive"));
        assert!(t.contains("= help: use a periodic item"));
        assert!(t.contains("= note: involves n3/io_ratio"));
    }

    #[test]
    fn json_rendering_is_parseable_shape() {
        let j = diag().render_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"code\":\"A1\""));
        assert!(j.contains("\"severity\":\"error\""));
        assert!(j.contains("\"related\":[\"n3/io_ratio\"]"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn codes_are_stable() {
        assert_eq!(DiagCode::SharedOnDemandReset.code(), "A1");
        assert_eq!(DiagCode::OnDemandOverPeriodic.code(), "A2");
        assert_eq!(DiagCode::DependencyCycle.code(), "A3");
        assert_eq!(DiagCode::DanglingDependency.code(), "A4");
        assert_eq!(DiagCode::PeriodInversion.code(), "A5");
        assert_eq!(DiagCode::IsolationViolation.code(), "A6");
        assert_eq!(DiagCode::EpochCoalescedReset.code(), "A7");
        assert_eq!(DiagCode::PropagationDepth.code(), "B1");
        assert_eq!(DiagCode::FanOut.code(), "B2");
        assert_eq!(DiagCode::DeadlineWithoutFallback.code(), "C1");
    }
}
