//! A deterministic interleaving checker: a minimal loom-style model
//! checker for the crate's lock-free protocols.
//!
//! Concurrency models implement [`Model`]: a small number of threads,
//! each a state machine whose [`Model::step`] executes exactly one
//! atomic action. The [`Explorer`] enumerates *every* interleaving of
//! those actions by depth-first search with clone-based backtracking —
//! no real threads, no wall-clock sleeps, fully deterministic. After
//! every step the model's [`Model::check`] invariant runs; the first
//! violated schedule is reported as the exact sequence of thread ids
//! that produced it, so a failure is replayable by construction.
//!
//! Memory-ordering bugs are modelled as *weakened* variants of a
//! protocol: a missing Release/Acquire pair legalises reorderings the
//! correct protocol forbids, so the weakened model performs its stores
//! (or observes its loads) in a different program order. The checker
//! then demonstrates that the correct order admits no violating
//! schedule while the weakened order does — see the seqlock and shard
//! suites under `tests/`.

/// A finite concurrency model the [`Explorer`] can exhaust.
///
/// `Clone` must produce an independent deep copy: the explorer clones
/// the state at every branch point to backtrack.
pub trait Model: Clone {
    /// Number of threads in the model (thread ids are `0..thread_count`).
    fn thread_count(&self) -> usize;

    /// Whether thread `tid` has run to completion.
    fn is_done(&self, tid: usize) -> bool;

    /// Whether thread `tid` can take a step *now*. Defaults to "not
    /// done"; models with blocking (a lock, a retry loop that must wait
    /// for a writer) override this. A state where some thread is not
    /// done but none is enabled is reported as a deadlock.
    fn enabled(&self, tid: usize) -> bool {
        !self.is_done(tid)
    }

    /// Executes one atomic action of thread `tid`. Called only when
    /// `enabled(tid)` is true.
    fn step(&mut self, tid: usize);

    /// The safety invariant, checked after every step and in every
    /// final state. Return `Err(description)` to flag a violation.
    fn check(&self) -> Result<(), String>;
}

/// Why an exploration failed.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The exact schedule (sequence of thread ids) that reached the bad
    /// state. Replaying these steps from the initial model reproduces
    /// the failure deterministically.
    pub schedule: Vec<usize>,
    /// The invariant's description of what went wrong, or a note that
    /// the state deadlocked / exceeded the depth bound.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (schedule {:?})", self.message, self.schedule)
    }
}

/// Summary of a completed (violation-free) exploration.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stats {
    /// Number of complete schedules (all threads ran to the end).
    pub schedules: usize,
    /// Total steps executed across all explored branches.
    pub steps: usize,
}

/// Exhaustive depth-first scheduler.
#[derive(Debug, Clone, Copy)]
pub struct Explorer {
    /// Upper bound on schedule length; exceeding it is reported as a
    /// violation (the model failed to terminate).
    pub max_depth: usize,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer { max_depth: 64 }
    }
}

impl Explorer {
    /// An explorer with the default depth bound.
    pub fn new() -> Explorer {
        Explorer::default()
    }

    /// Sets the depth bound (total steps per schedule).
    pub fn with_max_depth(max_depth: usize) -> Explorer {
        Explorer { max_depth }
    }

    /// Explores every interleaving of `initial`. Returns statistics if
    /// no schedule violates the invariant, otherwise the first
    /// violating schedule in DFS order (deterministic).
    pub fn explore<M: Model>(&self, initial: M) -> Result<Stats, Violation> {
        let mut stats = Stats::default();
        let mut schedule = Vec::new();
        initial.check().map_err(|message| Violation {
            schedule: Vec::new(),
            message,
        })?;
        self.dfs(&initial, &mut schedule, &mut stats)?;
        Ok(stats)
    }

    fn dfs<M: Model>(
        &self,
        state: &M,
        schedule: &mut Vec<usize>,
        stats: &mut Stats,
    ) -> Result<(), Violation> {
        let n = state.thread_count();
        let all_done = (0..n).all(|t| state.is_done(t));
        if all_done {
            stats.schedules += 1;
            return Ok(());
        }
        if schedule.len() >= self.max_depth {
            return Err(Violation {
                schedule: schedule.clone(),
                message: format!(
                    "depth bound {} exceeded: model does not terminate",
                    self.max_depth
                ),
            });
        }
        let enabled: Vec<usize> = (0..n).filter(|&t| state.enabled(t)).collect();
        if enabled.is_empty() {
            return Err(Violation {
                schedule: schedule.clone(),
                message: "deadlock: unfinished threads but none enabled".into(),
            });
        }
        for tid in enabled {
            let mut next = state.clone();
            next.step(tid);
            stats.steps += 1;
            schedule.push(tid);
            if let Err(message) = next.check() {
                return Err(Violation {
                    schedule: schedule.clone(),
                    message,
                });
            }
            self.dfs(&next, schedule, stats)?;
            schedule.pop();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads increment a shared counter. `atomic: true` models a
    /// fetch-add (one step); `atomic: false` models load-then-store (two
    /// steps) — the classic lost update the checker must find.
    #[derive(Clone)]
    struct Counter {
        value: u32,
        atomic: bool,
        // Per-thread: 0 = not started, Some(loaded) = mid read-modify-write.
        pc: [u8; 2],
        loaded: [u32; 2],
    }

    impl Counter {
        fn new(atomic: bool) -> Counter {
            Counter {
                value: 0,
                atomic,
                pc: [0; 2],
                loaded: [0; 2],
            }
        }
    }

    impl Model for Counter {
        fn thread_count(&self) -> usize {
            2
        }
        fn is_done(&self, tid: usize) -> bool {
            self.pc[tid] == 2
        }
        fn step(&mut self, tid: usize) {
            if self.atomic {
                self.value += 1;
                self.pc[tid] = 2;
            } else if self.pc[tid] == 0 {
                self.loaded[tid] = self.value;
                self.pc[tid] = 1;
            } else {
                self.value = self.loaded[tid] + 1;
                self.pc[tid] = 2;
            }
        }
        fn check(&self) -> Result<(), String> {
            if (0..2).all(|t| self.is_done(t)) && self.value != 2 {
                return Err(format!("lost update: final value {} != 2", self.value));
            }
            Ok(())
        }
    }

    #[test]
    fn atomic_counter_has_no_violation() {
        let stats = Explorer::new().explore(Counter::new(true)).unwrap();
        // Two threads, one step each: exactly 2 interleavings.
        assert_eq!(stats.schedules, 2);
    }

    #[test]
    fn nonatomic_counter_loses_an_update() {
        let v = Explorer::new().explore(Counter::new(false)).unwrap_err();
        assert!(v.message.contains("lost update"), "{v}");
        // The violating schedule interleaves the two RMWs.
        assert!(v.schedule.len() >= 3);
    }

    /// Two threads that each wait for the other's flag: a deadlock the
    /// explorer must report rather than spin on.
    #[derive(Clone)]
    struct Handshake {
        flags: [bool; 2],
        done: [bool; 2],
    }

    impl Model for Handshake {
        fn thread_count(&self) -> usize {
            2
        }
        fn is_done(&self, tid: usize) -> bool {
            self.done[tid]
        }
        fn enabled(&self, tid: usize) -> bool {
            // Each thread waits for the *other* flag before finishing —
            // but nobody ever sets a flag.
            !self.done[tid] && self.flags[1 - tid]
        }
        fn step(&mut self, tid: usize) {
            self.done[tid] = true;
        }
        fn check(&self) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn deadlock_is_detected() {
        let v = Explorer::new()
            .explore(Handshake {
                flags: [false; 2],
                done: [false; 2],
            })
            .unwrap_err();
        assert!(v.message.contains("deadlock"), "{v}");
    }

    /// A model that never finishes must hit the depth bound, not hang.
    #[derive(Clone)]
    struct Spinner;

    impl Model for Spinner {
        fn thread_count(&self) -> usize {
            1
        }
        fn is_done(&self, _tid: usize) -> bool {
            false
        }
        fn step(&mut self, _tid: usize) {}
        fn check(&self) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn depth_bound_terminates_nonterminating_models() {
        let v = Explorer::with_max_depth(10).explore(Spinner).unwrap_err();
        assert!(v.message.contains("depth bound"), "{v}");
        assert_eq!(v.schedule.len(), 10);
    }
}
