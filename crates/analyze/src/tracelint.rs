//! Trace-replay invariant linter: checks a recorded JSONL trace stream
//! against the metadata semantics the paper's correctness story depends
//! on, without re-executing anything.
//!
//! The manager's trace bus (PR 1) narrates subscriptions, propagation
//! rounds, containment transitions and epoch flushes. Those executions
//! must satisfy a small declarative invariant set:
//!
//! | rule | invariant |
//! |------|-----------|
//! | T1   | per-item stored versions strictly increase |
//! | T2   | epoch ids strictly increase; ≤ 1 recompute per item per round |
//! | T3   | no activity for an item after its exclusion (until re-include) |
//! | T4   | quarantine legality: trip → silence until the cool-down ends → recover or re-trip |
//! | T5   | retry attempts count 1, 2, … with non-decreasing backoff delays |
//! | T6   | stream well-formedness: seq strictly increases, time never goes backwards |
//! | T7   | span causality: every span's parent exists, precedes it, and never changes (acyclic) |
//! | T8   | lineage coverage: every span-bearing notification's roots trace back to real source-update anchors |
//!
//! [`lint`] replays a slice of [`TraceRecord`]s and returns every
//! violation; [`parse_jsonl`] reconstructs records from the JSONL
//! export, so checked-in fixture traces (and the traces the chaos/batch
//! experiments write) can be linted offline — see the `tracelint`
//! binary in `streammeta-bench`.
//!
//! The linter assumes a *serialized* trace (deterministic virtual-clock
//! executions, or any single-threaded replay). Traces interleaved by
//! racing threads can reorder adjacent records around an exclusion and
//! produce false T3/T4 positives; lint the deterministic phase of an
//! experiment instead.
//!
//! Multi-partition traces: records tagged with a partition id (the
//! `part` field a [`PartitionedMetadataPlane`] partition stamps) keep
//! separate per-item, per-seq and per-epoch lanes, so traces merged
//! with [`merge_traces`] lint without cross-partition false positives
//! while span lineage (T7/T8) still links across partitions.
//!
//! [`PartitionedMetadataPlane`]: streammeta_core::PartitionedMetadataPlane

use std::collections::{HashMap, HashSet};

use streammeta_core::{MetadataKey, NodeId, SpanContext, TraceEvent, TraceRecord};
use streammeta_time::{TimeSpan, Timestamp};

/// The invariant rules of the trace linter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceRule {
    /// Stored versions strictly increase per item.
    VersionMonotonicity,
    /// Epoch ids strictly increase; one recompute per item per round.
    EpochSerialization,
    /// No activity for an excluded item until it is included again.
    ExclusionLiveness,
    /// Quarantine state-machine legality.
    QuarantineLegality,
    /// Retry attempts are consecutive with non-decreasing delays.
    RetryConformance,
    /// Sequence numbers strictly increase and time never goes backwards.
    StreamWellFormed,
    /// Every span's parent exists, strictly precedes it in the stream,
    /// and never changes across a span's records (acyclic by induction).
    SpanCausality,
    /// Every span-bearing notification carries at least one root, and
    /// every root is a real anchor (a parentless source-update,
    /// subscribe, periodic-fired or epoch-flushed span).
    LineageCoverage,
}

impl TraceRule {
    /// Stable rule id (`T1`..`T6`).
    pub fn code(self) -> &'static str {
        match self {
            TraceRule::VersionMonotonicity => "T1",
            TraceRule::EpochSerialization => "T2",
            TraceRule::ExclusionLiveness => "T3",
            TraceRule::QuarantineLegality => "T4",
            TraceRule::RetryConformance => "T5",
            TraceRule::StreamWellFormed => "T6",
            TraceRule::SpanCausality => "T7",
            TraceRule::LineageCoverage => "T8",
        }
    }

    /// Human-readable rule name.
    pub fn name(self) -> &'static str {
        match self {
            TraceRule::VersionMonotonicity => "version monotonicity",
            TraceRule::EpochSerialization => "epoch serialization",
            TraceRule::ExclusionLiveness => "exclusion liveness",
            TraceRule::QuarantineLegality => "quarantine legality",
            TraceRule::RetryConformance => "retry/backoff conformance",
            TraceRule::StreamWellFormed => "stream well-formedness",
            TraceRule::SpanCausality => "span causality",
            TraceRule::LineageCoverage => "lineage coverage",
        }
    }

    /// All rules, in id order.
    pub const ALL: [TraceRule; 8] = [
        TraceRule::VersionMonotonicity,
        TraceRule::EpochSerialization,
        TraceRule::ExclusionLiveness,
        TraceRule::QuarantineLegality,
        TraceRule::RetryConformance,
        TraceRule::StreamWellFormed,
        TraceRule::SpanCausality,
        TraceRule::LineageCoverage,
    ];
}

/// One invariant violation found in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceViolation {
    /// The violated rule.
    pub rule: TraceRule,
    /// Sequence number of the offending record.
    pub seq: u64,
    /// The item concerned, if the rule is per-item.
    pub key: Option<String>,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TraceViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{}] seq {}",
            self.rule.code(),
            self.rule.name(),
            self.seq
        )?;
        if let Some(key) = &self.key {
            write!(f, " {key}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Per-item quarantine phase for rule T4.
#[derive(Default)]
struct QuarState {
    /// Cool-down end of the open breaker, if quarantined.
    until: Option<Timestamp>,
}

/// Per-item retry-episode state for rule T5.
#[derive(Default)]
struct RetryState {
    last_attempt: u32,
    last_delay: Option<TimeSpan>,
}

/// Replays `records` (in stream order) and returns every invariant
/// violation, in encounter order.
pub fn lint(records: &[TraceRecord]) -> Vec<TraceViolation> {
    let mut out = Vec::new();

    // T6 state. Seq counters and epoch ids are per-manager, so in a
    // merged multi-partition trace both are tracked per partition tag
    // (`part: None` is its own lane: a stand-alone manager's trace).
    let mut last_seq: HashMap<Option<u64>, u64> = HashMap::new();
    let mut last_at: Option<Timestamp> = None;
    // T1 state.
    let mut versions: HashMap<String, u64> = HashMap::new();
    // T2 state.
    let mut last_epoch: HashMap<Option<u64>, u64> = HashMap::new();
    let mut round_seen: HashMap<(u64, String), u64> = HashMap::new();
    // T3 state.
    let mut excluded: HashMap<String, bool> = HashMap::new();
    // T4 / T5 state.
    let mut quarantine: HashMap<String, QuarState> = HashMap::new();
    let mut retries: HashMap<String, RetryState> = HashMap::new();
    // T7 state: first-seen parent per span id.
    let mut span_parents: HashMap<u64, Option<u64>> = HashMap::new();
    // T8 anchors, collected up front: epoch coalescing can legally emit
    // a notification before its flush-span record, so anchor existence
    // must not depend on emission order.
    let anchors: HashSet<u64> = records
        .iter()
        .filter_map(|r| {
            let ctx = r.span.as_ref()?;
            let anchored = ctx.parent.is_none()
                && matches!(
                    r.event.kind(),
                    "source_update" | "subscribe" | "periodic_fired" | "epoch_flushed"
                );
            anchored.then_some(ctx.span)
        })
        .collect();

    for rec in records {
        // Per-item state is namespaced by the record's partition tag, so
        // a merged multi-partition trace keeps each partition's item
        // incarnations (and each proxy shadow of the same key) separate.
        let pfx = |s: String| match rec.part {
            Some(p) => format!("p{p}/{s}"),
            None => s,
        };
        let key_str = rec.event.key().map(|k| pfx(k.to_string()));

        // T6: stream well-formedness.
        if let Some(&prev) = last_seq.get(&rec.part) {
            if rec.seq <= prev {
                out.push(TraceViolation {
                    rule: TraceRule::StreamWellFormed,
                    seq: rec.seq,
                    key: None,
                    message: format!("seq {} does not increase over {prev}", rec.seq),
                });
            }
        }
        if let Some(prev) = last_at {
            if rec.at < prev {
                out.push(TraceViolation {
                    rule: TraceRule::StreamWellFormed,
                    seq: rec.seq,
                    key: None,
                    message: format!("time went backwards: {} after {}", rec.at, prev),
                });
            }
        }
        last_seq.insert(rec.part, rec.seq);
        last_at = Some(rec.at);

        // T7: span causality. A child span's first record must come
        // after some record of its parent (topological emission), a
        // span never reparents, and no span is its own parent — which
        // together rule out cycles by induction on first appearance.
        if let Some(ctx) = &rec.span {
            if ctx.parent == Some(ctx.span) {
                out.push(TraceViolation {
                    rule: TraceRule::SpanCausality,
                    seq: rec.seq,
                    key: key_str.clone(),
                    message: format!("span {} is its own parent", ctx.span),
                });
            } else if let Some(&first) = span_parents.get(&ctx.span) {
                if first != ctx.parent {
                    out.push(TraceViolation {
                        rule: TraceRule::SpanCausality,
                        seq: rec.seq,
                        key: key_str.clone(),
                        message: format!(
                            "span {} reparented from {:?} to {:?}",
                            ctx.span, first, ctx.parent
                        ),
                    });
                }
            } else {
                if let Some(parent) = ctx.parent {
                    if !span_parents.contains_key(&parent) {
                        out.push(TraceViolation {
                            rule: TraceRule::SpanCausality,
                            seq: rec.seq,
                            key: key_str.clone(),
                            message: format!(
                                "span {} appeared before its parent {parent}",
                                ctx.span
                            ),
                        });
                    }
                }
                span_parents.insert(ctx.span, ctx.parent);
            }

            // T8: lineage coverage. Every span-carrying notification
            // must name at least one root, and each must be an anchor.
            // Span-less notifications pass vacuously (sampling off or
            // an unsampled cascade).
            if matches!(rec.event, TraceEvent::Notified { .. }) {
                if ctx.roots.is_empty() {
                    out.push(TraceViolation {
                        rule: TraceRule::LineageCoverage,
                        seq: rec.seq,
                        key: key_str.clone(),
                        message: "notification span carries no roots".to_string(),
                    });
                }
                for root in &ctx.roots {
                    if !anchors.contains(root) {
                        out.push(TraceViolation {
                            rule: TraceRule::LineageCoverage,
                            seq: rec.seq,
                            key: key_str.clone(),
                            message: format!(
                                "root {root} does not resolve to a source-update anchor"
                            ),
                        });
                    }
                }
            }
        }

        // T3: activity after exclusion. Subscribe/unsubscribe/exclude
        // records are bookkeeping, not item activity.
        let is_activity = matches!(
            rec.event,
            TraceEvent::PropagationStep { .. }
                | TraceEvent::PeriodicFired { .. }
                | TraceEvent::ComputeFailed { .. }
                | TraceEvent::ValueStored { .. }
                | TraceEvent::RetryScheduled { .. }
                | TraceEvent::DeadlineExceeded { .. }
        );
        if is_activity {
            if let Some(key) = &key_str {
                if excluded.get(key).copied().unwrap_or(false) {
                    out.push(TraceViolation {
                        rule: TraceRule::ExclusionLiveness,
                        seq: rec.seq,
                        key: Some(key.clone()),
                        message: format!("{} after the item was excluded", rec.event.kind()),
                    });
                }
            }
        }

        // T4: quarantine silence. Probes at/after the cool-down end are
        // the legal exit path (success recovers, failure re-trips).
        let is_quarantine_sensitive = matches!(
            rec.event,
            TraceEvent::PropagationStep { .. }
                | TraceEvent::PeriodicFired { .. }
                | TraceEvent::ComputeFailed { .. }
                | TraceEvent::ValueStored { .. }
                | TraceEvent::RetryScheduled { .. }
        );
        if is_quarantine_sensitive {
            if let Some(key) = &key_str {
                if let Some(until) = quarantine.get(key).and_then(|q| q.until) {
                    if rec.at < until {
                        out.push(TraceViolation {
                            rule: TraceRule::QuarantineLegality,
                            seq: rec.seq,
                            key: Some(key.clone()),
                            message: format!(
                                "{} at {} inside the quarantine cool-down (until {until})",
                                rec.event.kind(),
                                rec.at
                            ),
                        });
                    }
                }
            }
        }

        match &rec.event {
            TraceEvent::Include { key, .. } => {
                excluded.insert(pfx(key.to_string()), false);
            }
            TraceEvent::Exclude { key, .. } => {
                // Exclusion drops the handler, ending its incarnation:
                // a later re-inclusion starts a fresh version counter,
                // retry episode and breaker, so all per-item state
                // resets here.
                let key = pfx(key.to_string());
                versions.remove(&key);
                retries.remove(&key);
                quarantine.remove(&key);
                excluded.insert(key, true);
            }
            TraceEvent::ValueStored { key, version } => {
                let key = pfx(key.to_string());
                if let Some(&prev) = versions.get(&key) {
                    if *version <= prev {
                        out.push(TraceViolation {
                            rule: TraceRule::VersionMonotonicity,
                            seq: rec.seq,
                            key: Some(key.clone()),
                            message: format!("version {version} not above previous {prev}"),
                        });
                    }
                }
                versions.insert(key.clone(), *version);
                // A successful store ends any retry episode.
                retries.remove(&key);
            }
            TraceEvent::EpochFlushed { epoch, .. } => {
                if let Some(&prev) = last_epoch.get(&rec.part) {
                    if *epoch <= prev {
                        out.push(TraceViolation {
                            rule: TraceRule::EpochSerialization,
                            seq: rec.seq,
                            key: None,
                            message: format!("epoch {epoch} not above previous {prev}"),
                        });
                    }
                }
                last_epoch.insert(rec.part, *epoch);
            }
            TraceEvent::PropagationStep { round, key, .. } => {
                let key = pfx(key.to_string());
                let slot = round_seen.entry((*round, key.clone())).or_insert(0);
                *slot += 1;
                if *slot > 1 {
                    out.push(TraceViolation {
                        rule: TraceRule::EpochSerialization,
                        seq: rec.seq,
                        key: Some(key),
                        message: format!("recomputed {} times in round {round}", *slot),
                    });
                }
            }
            TraceEvent::RetryScheduled {
                key,
                attempt,
                delay,
            } => {
                let key = pfx(key.to_string());
                let st = retries.entry(key.clone()).or_default();
                let expected_fresh = *attempt == 1;
                let expected_next = *attempt == st.last_attempt + 1 && st.last_attempt > 0;
                if !expected_fresh && !expected_next {
                    out.push(TraceViolation {
                        rule: TraceRule::RetryConformance,
                        seq: rec.seq,
                        key: Some(key.clone()),
                        message: format!(
                            "attempt {attempt} follows attempt {} (must be 1 or {})",
                            st.last_attempt,
                            st.last_attempt + 1
                        ),
                    });
                }
                if expected_next {
                    if let Some(prev_delay) = st.last_delay {
                        if *delay < prev_delay {
                            out.push(TraceViolation {
                                rule: TraceRule::RetryConformance,
                                seq: rec.seq,
                                key: Some(key.clone()),
                                message: format!("backoff delay {delay} shrank from {prev_delay}"),
                            });
                        }
                    }
                }
                st.last_attempt = *attempt;
                st.last_delay = Some(*delay);
            }
            TraceEvent::QuarantineTripped { key, until } => {
                let key = pfx(key.to_string());
                let st = quarantine.entry(key.clone()).or_default();
                if let Some(open_until) = st.until {
                    // Re-trip is legal only from a failed probe, which
                    // runs at/after the previous cool-down end.
                    if rec.at < open_until {
                        out.push(TraceViolation {
                            rule: TraceRule::QuarantineLegality,
                            seq: rec.seq,
                            key: Some(key.clone()),
                            message: format!(
                                "re-tripped at {} before the cool-down ended ({open_until})",
                                rec.at
                            ),
                        });
                    }
                }
                st.until = Some(*until);
                retries.remove(&key);
            }
            TraceEvent::QuarantineRecovered { key } => {
                let key = pfx(key.to_string());
                let st = quarantine.entry(key.clone()).or_default();
                if st.until.is_none() {
                    out.push(TraceViolation {
                        rule: TraceRule::QuarantineLegality,
                        seq: rec.seq,
                        key: Some(key.clone()),
                        message: "recovered without a preceding trip".to_string(),
                    });
                }
                st.until = None;
                retries.remove(&key);
            }
            _ => {}
        }
    }
    out
}

/// Parses a JSONL export (as produced by
/// [`TraceRecord::to_json`](streammeta_core::TraceRecord::to_json) /
/// `RingBufferSink::to_jsonl`) back into records. Returns the 1-based
/// line number and a description on the first malformed line.
pub fn parse_jsonl(input: &str) -> Result<Vec<TraceRecord>, String> {
    let mut out = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        out.push(parse_line(line).map_err(|e| format!("line {}: {e}", idx + 1))?);
    }
    Ok(out)
}

/// One scalar JSON value of the flat trace schema.
enum JsonVal {
    Num(u64),
    Str(String),
    Bool(bool),
}

impl JsonVal {
    fn as_u64(&self) -> Option<u64> {
        match self {
            JsonVal::Num(n) => Some(*n),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            JsonVal::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_bool(&self) -> Option<bool> {
        match self {
            JsonVal::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses one flat JSON object (string/number/bool values only — the
/// trace schema is flat by construction).
fn parse_flat_object(line: &str) -> Result<HashMap<String, JsonVal>, String> {
    let bytes = line.as_bytes();
    if !line.starts_with('{') || !line.ends_with('}') {
        return Err("not a JSON object".to_string());
    }
    let mut map = HashMap::new();
    let mut i = 1usize;
    let end = bytes.len() - 1;
    loop {
        while i < end && (bytes[i] == b',' || bytes[i].is_ascii_whitespace()) {
            i += 1;
        }
        if i >= end {
            break;
        }
        if bytes[i] != b'"' {
            return Err(format!("expected key quote at byte {i}"));
        }
        let (key, next) = parse_string(line, i)?;
        i = next;
        while i < end && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= end || bytes[i] != b':' {
            return Err(format!("expected ':' at byte {i}"));
        }
        i += 1;
        while i < end && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        let val = if i < end && bytes[i] == b'"' {
            let (s, next) = parse_string(line, i)?;
            i = next;
            JsonVal::Str(s)
        } else if line[i..].starts_with("true") {
            i += 4;
            JsonVal::Bool(true)
        } else if line[i..].starts_with("false") {
            i += 5;
            JsonVal::Bool(false)
        } else {
            let start = i;
            while i < end && (bytes[i].is_ascii_digit() || bytes[i] == b'-') {
                i += 1;
            }
            let n: u64 = line[start..i]
                .parse()
                .map_err(|_| format!("bad number at byte {start}"))?;
            JsonVal::Num(n)
        };
        map.insert(key, val);
    }
    Ok(map)
}

/// Parses a quoted JSON string starting at `start` (which must index a
/// `"`), returning the unescaped content and the index past the closing
/// quote.
fn parse_string(line: &str, start: usize) -> Result<(String, usize), String> {
    let bytes = line.as_bytes();
    let mut out = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Ok((out, i + 1)),
            b'\\' => {
                i += 1;
                match bytes.get(i) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = line
                            .get(i + 1..i + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                        i += 4;
                    }
                    _ => return Err("bad escape".to_string()),
                }
                i += 1;
            }
            _ => {
                // Multi-byte UTF-8: copy the whole char.
                let ch = line[i..].chars().next().unwrap();
                out.push(ch);
                i += ch.len_utf8();
            }
        }
    }
    Err("unterminated string".to_string())
}

/// Parses the `n<node>/<path>` display form of a [`MetadataKey`].
fn parse_key(s: &str) -> Result<MetadataKey, String> {
    let rest = s
        .strip_prefix('n')
        .ok_or_else(|| format!("key `{s}` missing `n` prefix"))?;
    let slash = rest
        .find('/')
        .ok_or_else(|| format!("key `{s}` missing `/`"))?;
    let node: u32 = rest[..slash]
        .parse()
        .map_err(|_| format!("key `{s}` has a non-numeric node id"))?;
    Ok(MetadataKey::new(NodeId(node), &rest[slash + 1..]))
}

fn parse_line(line: &str) -> Result<TraceRecord, String> {
    let map = parse_flat_object(line)?;
    let field_u64 = |name: &str| -> Result<u64, String> {
        map.get(name)
            .and_then(JsonVal::as_u64)
            .ok_or_else(|| format!("missing numeric field `{name}`"))
    };
    let field_bool = |name: &str| -> Result<bool, String> {
        map.get(name)
            .and_then(JsonVal::as_bool)
            .ok_or_else(|| format!("missing boolean field `{name}`"))
    };
    let key = || -> Result<MetadataKey, String> {
        parse_key(
            map.get("key")
                .and_then(JsonVal::as_str)
                .ok_or_else(|| "missing field `key`".to_string())?,
        )
    };
    let kind = map
        .get("event")
        .and_then(JsonVal::as_str)
        .ok_or_else(|| "missing field `event`".to_string())?;
    let event = match kind {
        "subscribe" => TraceEvent::Subscribe { key: key()? },
        "unsubscribe" => TraceEvent::Unsubscribe { key: key()? },
        "include" => TraceEvent::Include {
            key: key()?,
            mechanism: mechanism_label(
                map.get("mechanism")
                    .and_then(JsonVal::as_str)
                    .ok_or_else(|| "missing field `mechanism`".to_string())?,
            )?,
            depth: field_u64("depth")? as usize,
        },
        "exclude" => TraceEvent::Exclude {
            key: key()?,
            remaining: field_u64("remaining")? as usize,
        },
        "propagation_step" => TraceEvent::PropagationStep {
            round: field_u64("round")?,
            key: key()?,
            depth: field_u64("depth")? as usize,
            changed: field_bool("changed")?,
        },
        "periodic_fired" => TraceEvent::PeriodicFired {
            key: key()?,
            boundary: Timestamp(field_u64("boundary")?),
            fired_at: Timestamp(field_u64("fired_at")?),
            missed: field_bool("missed")?,
        },
        "compute_failed" => TraceEvent::ComputeFailed { key: key()? },
        "deadline_exceeded" => TraceEvent::DeadlineExceeded {
            key: key()?,
            budget: TimeSpan(field_u64("budget")?),
            elapsed: TimeSpan(field_u64("elapsed")?),
        },
        "retry_scheduled" => TraceEvent::RetryScheduled {
            key: key()?,
            attempt: field_u64("attempt")? as u32,
            delay: TimeSpan(field_u64("delay")?),
        },
        "quarantine_tripped" => TraceEvent::QuarantineTripped {
            key: key()?,
            until: Timestamp(field_u64("until")?),
        },
        "quarantine_recovered" => TraceEvent::QuarantineRecovered { key: key()? },
        "value_stored" => TraceEvent::ValueStored {
            key: key()?,
            version: field_u64("version")?,
        },
        "epoch_flushed" => TraceEvent::EpochFlushed {
            epoch: field_u64("epoch")?,
            origins: field_u64("origins")? as usize,
            recomputed: field_u64("recomputed")? as usize,
            max_depth: field_u64("max_depth")? as usize,
        },
        "source_update" => TraceEvent::SourceUpdate {
            origin: map
                .get("origin")
                .and_then(JsonVal::as_str)
                .ok_or_else(|| "missing field `origin`".to_string())?
                .to_string(),
            origin_kind: origin_kind_label(
                map.get("origin_kind")
                    .and_then(JsonVal::as_str)
                    .ok_or_else(|| "missing field `origin_kind`".to_string())?,
            )?,
        },
        "notified" => TraceEvent::Notified {
            key: key()?,
            version: field_u64("version")?,
            observers: field_u64("observers")? as usize,
        },
        other => return Err(format!("unknown event kind `{other}`")),
    };
    // Lineage fields ride on any event kind; `span` marks their
    // presence, `roots` is string-encoded ("1,4") to keep the JSONL
    // dialect flat.
    let span = match map.get("span").and_then(JsonVal::as_u64) {
        Some(id) => {
            let roots_str = map
                .get("roots")
                .and_then(JsonVal::as_str)
                .ok_or_else(|| "missing field `roots`".to_string())?;
            let mut roots = Vec::new();
            for part in roots_str.split(',').filter(|p| !p.is_empty()) {
                roots.push(part.parse().map_err(|_| format!("bad root id `{part}`"))?);
            }
            Some(SpanContext {
                span: id,
                parent: map.get("parent").and_then(JsonVal::as_u64),
                roots,
                depth: field_u64("span_depth")? as u32,
                start: Timestamp(field_u64("span_start")?),
            })
        }
        None => None,
    };
    Ok(TraceRecord {
        seq: field_u64("seq")?,
        at: Timestamp(field_u64("at")?),
        event,
        span,
        tid: map.get("tid").and_then(JsonVal::as_u64),
        part: map.get("part").and_then(JsonVal::as_u64),
    })
}

/// Maps a parsed origin kind back to the static string
/// [`TraceEvent::SourceUpdate`] carries.
fn origin_kind_label(s: &str) -> Result<&'static str, String> {
    Ok(match s {
        "item" => "item",
        "event" => "event",
        other => return Err(format!("unknown origin kind `{other}`")),
    })
}

/// Maps a parsed mechanism label back to the static string the enum
/// variants carry (the trace emits only the four `Mechanism::label`s).
fn mechanism_label(s: &str) -> Result<&'static str, String> {
    Ok(match s {
        "static" => "static",
        "on-demand" => "on-demand",
        "periodic" => "periodic",
        "triggered" => "triggered",
        other => return Err(format!("unknown mechanism `{other}`")),
    })
}

/// Merges per-partition trace streams into one lintable stream, ordered
/// by timestamp (ties broken by partition tag, then seq). The linter
/// keys per-item and per-seq state by each record's `part` tag, so the
/// merged stream lints as if every partition ran beside the others.
///
/// Cross-partition span causality (T7) additionally needs the owner's
/// parent record to *precede* the proxy's child record in merged order;
/// the plane's message channels deliver on a later pump instant, so
/// deterministic virtual-clock runs satisfy this by construction.
pub fn merge_traces(parts: &[Vec<TraceRecord>]) -> Vec<TraceRecord> {
    let mut all: Vec<TraceRecord> = parts.iter().flatten().cloned().collect();
    all.sort_by_key(|r| (r.at, r.part, r.seq));
    all
}

/// Convenience: parse and lint a JSONL export in one call. A parse
/// failure is reported as a single T6 violation at seq 0 so callers can
/// treat malformed traces and invariant violations uniformly.
pub fn lint_jsonl(input: &str) -> Vec<TraceViolation> {
    match parse_jsonl(input) {
        Ok(records) => lint(&records),
        Err(e) => vec![TraceViolation {
            rule: TraceRule::StreamWellFormed,
            seq: 0,
            key: None,
            message: format!("unparseable trace: {e}"),
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(path: &str) -> MetadataKey {
        MetadataKey::new(NodeId(1), path)
    }

    fn rec(seq: u64, at: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord::new(seq, Timestamp(at), event)
    }

    fn spanned(mut record: TraceRecord, ctx: SpanContext) -> TraceRecord {
        record.span = Some(ctx);
        record
    }

    fn codes(violations: &[TraceViolation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.rule.code()).collect()
    }

    #[test]
    fn clean_trace_passes() {
        let records = vec![
            rec(0, 0, TraceEvent::Subscribe { key: key("rate") }),
            rec(
                1,
                0,
                TraceEvent::Include {
                    key: key("rate"),
                    mechanism: "periodic",
                    depth: 0,
                },
            ),
            rec(
                2,
                10,
                TraceEvent::ValueStored {
                    key: key("rate"),
                    version: 1,
                },
            ),
            rec(
                3,
                20,
                TraceEvent::ValueStored {
                    key: key("rate"),
                    version: 2,
                },
            ),
            rec(
                4,
                20,
                TraceEvent::Exclude {
                    key: key("rate"),
                    remaining: 0,
                },
            ),
        ];
        assert!(lint(&records).is_empty());
    }

    #[test]
    fn t1_version_regression_fires() {
        let records = vec![
            rec(
                0,
                0,
                TraceEvent::ValueStored {
                    key: key("rate"),
                    version: 5,
                },
            ),
            rec(
                1,
                1,
                TraceEvent::ValueStored {
                    key: key("rate"),
                    version: 5,
                },
            ),
        ];
        assert_eq!(codes(&lint(&records)), ["T1"]);
    }

    #[test]
    fn t2_epoch_and_round_duplication_fire() {
        let records = vec![
            rec(
                0,
                0,
                TraceEvent::EpochFlushed {
                    epoch: 2,
                    origins: 1,
                    recomputed: 1,
                    max_depth: 1,
                },
            ),
            rec(
                1,
                1,
                TraceEvent::EpochFlushed {
                    epoch: 2,
                    origins: 1,
                    recomputed: 1,
                    max_depth: 1,
                },
            ),
            rec(
                2,
                2,
                TraceEvent::PropagationStep {
                    round: 7,
                    key: key("a"),
                    depth: 1,
                    changed: true,
                },
            ),
            rec(
                3,
                3,
                TraceEvent::PropagationStep {
                    round: 7,
                    key: key("a"),
                    depth: 1,
                    changed: false,
                },
            ),
        ];
        assert_eq!(codes(&lint(&records)), ["T2", "T2"]);
    }

    #[test]
    fn t3_activity_after_exclusion_fires_until_reinclude() {
        let records = vec![
            rec(
                0,
                0,
                TraceEvent::Exclude {
                    key: key("a"),
                    remaining: 0,
                },
            ),
            rec(
                1,
                1,
                TraceEvent::ValueStored {
                    key: key("a"),
                    version: 1,
                },
            ),
            rec(
                2,
                2,
                TraceEvent::Include {
                    key: key("a"),
                    mechanism: "triggered",
                    depth: 0,
                },
            ),
            rec(
                3,
                3,
                TraceEvent::ValueStored {
                    key: key("a"),
                    version: 2,
                },
            ),
        ];
        assert_eq!(codes(&lint(&records)), ["T3"]);
    }

    #[test]
    fn t4_quarantine_violations_fire() {
        let records = vec![
            rec(
                0,
                100,
                TraceEvent::QuarantineTripped {
                    key: key("a"),
                    until: Timestamp(200),
                },
            ),
            // Illegal: a retry inside the cool-down.
            rec(
                1,
                150,
                TraceEvent::RetryScheduled {
                    key: key("a"),
                    attempt: 1,
                    delay: TimeSpan(10),
                },
            ),
            // Legal: the probe recovers at the cool-down end.
            rec(2, 200, TraceEvent::QuarantineRecovered { key: key("a") }),
            // Illegal: recovery without a trip.
            rec(3, 210, TraceEvent::QuarantineRecovered { key: key("b") }),
        ];
        assert_eq!(codes(&lint(&records)), ["T4", "T4"]);
    }

    #[test]
    fn t4_retrip_before_cooldown_fires() {
        let records = vec![
            rec(
                0,
                100,
                TraceEvent::QuarantineTripped {
                    key: key("a"),
                    until: Timestamp(200),
                },
            ),
            rec(
                1,
                150,
                TraceEvent::QuarantineTripped {
                    key: key("a"),
                    until: Timestamp(300),
                },
            ),
        ];
        assert_eq!(codes(&lint(&records)), ["T4"]);
    }

    #[test]
    fn t5_attempt_and_backoff_violations_fire() {
        let retry = |seq, at, attempt, delay| {
            rec(
                seq,
                at,
                TraceEvent::RetryScheduled {
                    key: key("a"),
                    attempt,
                    delay: TimeSpan(delay),
                },
            )
        };
        // Skipped attempt: 1 then 3.
        assert_eq!(
            codes(&lint(&[retry(0, 0, 1, 10), retry(1, 1, 3, 40)])),
            ["T5"]
        );
        // Shrinking delay within an episode.
        assert_eq!(
            codes(&lint(&[retry(0, 0, 1, 10), retry(1, 1, 2, 5)])),
            ["T5"]
        );
        // A fresh episode may restart at 1 with any delay.
        assert!(lint(&[
            retry(0, 0, 1, 10),
            retry(1, 1, 2, 20),
            rec(
                2,
                2,
                TraceEvent::ValueStored {
                    key: key("a"),
                    version: 1
                }
            ),
            retry(3, 3, 1, 10),
        ])
        .is_empty());
    }

    #[test]
    fn t6_stream_violations_fire() {
        let records = vec![
            rec(5, 10, TraceEvent::Subscribe { key: key("a") }),
            rec(5, 9, TraceEvent::Subscribe { key: key("a") }),
        ];
        assert_eq!(codes(&lint(&records)), ["T6", "T6"]);
    }

    #[test]
    fn t7_span_causality_violations_fire() {
        let root = SpanContext::root(1, Timestamp(0));
        let child = root.child(2, Timestamp(1));
        // Clean: root appears before its child, twice without reparenting.
        let clean = vec![
            spanned(
                rec(
                    0,
                    0,
                    TraceEvent::SourceUpdate {
                        origin: "n1/size".to_string(),
                        origin_kind: "item",
                    },
                ),
                root.clone(),
            ),
            spanned(
                rec(
                    1,
                    1,
                    TraceEvent::ValueStored {
                        key: key("a"),
                        version: 1,
                    },
                ),
                child.clone(),
            ),
            spanned(
                rec(
                    2,
                    1,
                    TraceEvent::PropagationStep {
                        round: 1,
                        key: key("a"),
                        depth: 1,
                        changed: true,
                    },
                ),
                child.clone(),
            ),
        ];
        assert!(lint(&clean).is_empty());
        // Orphan: the child shows up before any record of its parent.
        let orphan = vec![spanned(
            rec(
                0,
                0,
                TraceEvent::ValueStored {
                    key: key("a"),
                    version: 1,
                },
            ),
            child.clone(),
        )];
        assert_eq!(codes(&lint(&orphan)), ["T7"]);
        // Self-parent and reparenting are both illegal.
        let mut own = child.clone();
        own.parent = Some(own.span);
        assert_eq!(
            codes(&lint(&[spanned(
                rec(0, 0, TraceEvent::ComputeFailed { key: key("a") }),
                own
            )])),
            ["T7"]
        );
        let mut moved = child.clone();
        moved.parent = None;
        let reparented = vec![
            clean[0].clone(),
            clean[1].clone(),
            spanned(
                rec(2, 2, TraceEvent::ComputeFailed { key: key("a") }),
                moved,
            ),
        ];
        assert_eq!(codes(&lint(&reparented)), ["T7"]);
    }

    #[test]
    fn t8_lineage_coverage_violations_fire() {
        let root = SpanContext::root(1, Timestamp(0));
        let notify = |seq, ctx| {
            spanned(
                rec(
                    seq,
                    1,
                    TraceEvent::Notified {
                        key: key("a"),
                        version: 1,
                        observers: 1,
                    },
                ),
                ctx,
            )
        };
        let anchor = spanned(
            rec(
                0,
                0,
                TraceEvent::SourceUpdate {
                    origin: "n1/size".to_string(),
                    origin_kind: "item",
                },
            ),
            root.clone(),
        );
        // Clean: the notification's root is the source-update anchor —
        // even when the anchor record comes later in the stream, as an
        // epoch flush span legally can.
        assert!(lint(&[anchor.clone(), notify(1, root.child(2, Timestamp(1)))]).is_empty());
        assert!(
            lint(&[notify(0, root.child(2, Timestamp(1))), anchor.clone()])
                .iter()
                .all(|v| v.rule != TraceRule::LineageCoverage)
        );
        // A dangling root (no anchor record at all).
        let stray = SpanContext::root(9, Timestamp(0)).child(10, Timestamp(1));
        let got = lint(&[notify(0, stray)]);
        assert!(got.iter().any(|v| v.rule == TraceRule::LineageCoverage));
        // An empty root set on a notification span.
        let mut rootless = root.child(2, Timestamp(1));
        rootless.roots.clear();
        assert_eq!(codes(&lint(&[anchor, notify(1, rootless)])), ["T8"]);
        // Span-less notifications pass vacuously.
        assert!(lint(&[rec(
            0,
            0,
            TraceEvent::Notified {
                key: key("a"),
                version: 1,
                observers: 1,
            },
        )])
        .is_empty());
    }

    #[test]
    fn jsonl_round_trips_through_the_parser() {
        let records = vec![
            rec(
                0,
                0,
                TraceEvent::Include {
                    key: key("rate"),
                    mechanism: "periodic",
                    depth: 2,
                },
            ),
            rec(
                1,
                5,
                TraceEvent::PropagationStep {
                    round: 3,
                    key: key("cost"),
                    depth: 1,
                    changed: true,
                },
            ),
            rec(
                2,
                9,
                TraceEvent::PeriodicFired {
                    key: key("rate"),
                    boundary: Timestamp(10),
                    fired_at: Timestamp(11),
                    missed: false,
                },
            ),
            rec(
                3,
                12,
                TraceEvent::RetryScheduled {
                    key: key("rate"),
                    attempt: 2,
                    delay: TimeSpan(8),
                },
            ),
            rec(
                4,
                13,
                TraceEvent::QuarantineTripped {
                    key: key("rate"),
                    until: Timestamp(99),
                },
            ),
            rec(
                5,
                14,
                TraceEvent::ValueStored {
                    key: key("rate"),
                    version: 7,
                },
            ),
            rec(
                6,
                15,
                TraceEvent::EpochFlushed {
                    epoch: 4,
                    origins: 2,
                    recomputed: 6,
                    max_depth: 3,
                },
            ),
            rec(
                7,
                16,
                TraceEvent::DeadlineExceeded {
                    key: key("rate"),
                    budget: TimeSpan(5),
                    elapsed: TimeSpan(9),
                },
            ),
            rec(
                8,
                17,
                TraceEvent::Exclude {
                    key: key("rate"),
                    remaining: 1,
                },
            ),
            rec(9, 18, TraceEvent::ComputeFailed { key: key("rate") }),
            rec(10, 19, TraceEvent::QuarantineRecovered { key: key("rate") }),
            rec(11, 20, TraceEvent::Unsubscribe { key: key("rate") }),
            spanned(
                rec(
                    12,
                    21,
                    TraceEvent::SourceUpdate {
                        origin: "n1/size".to_string(),
                        origin_kind: "item",
                    },
                ),
                SpanContext::root(3, Timestamp(21)),
            ),
            {
                let mut r = spanned(
                    rec(
                        13,
                        22,
                        TraceEvent::Notified {
                            key: key("cost"),
                            version: 4,
                            observers: 2,
                        },
                    ),
                    SpanContext {
                        span: 5,
                        parent: Some(3),
                        roots: vec![1, 3],
                        depth: 2,
                        start: Timestamp(21),
                    },
                );
                r.tid = Some(7);
                r.part = Some(2);
                r
            },
        ];
        let jsonl: String = records
            .iter()
            .map(|r| format!("{}\n", r.to_json()))
            .collect();
        let parsed = parse_jsonl(&jsonl).expect("round trip");
        assert_eq!(parsed, records);
    }

    #[test]
    fn merged_partition_traces_keep_separate_lanes() {
        let tagged = |seq, at, part, event| {
            let mut r = rec(seq, at, event);
            r.part = Some(part);
            r
        };
        // Both partitions store `n1/rate` version 1 (the owner's real
        // item and another partition's proxy shadow), both restart seq
        // at 0, and both flush epoch 1 — none of which is a violation
        // in a merged stream.
        let p0 = vec![
            tagged(
                0,
                0,
                0,
                TraceEvent::ValueStored {
                    key: key("rate"),
                    version: 1,
                },
            ),
            tagged(
                1,
                10,
                0,
                TraceEvent::EpochFlushed {
                    epoch: 1,
                    origins: 1,
                    recomputed: 1,
                    max_depth: 1,
                },
            ),
        ];
        let p1 = vec![
            tagged(
                0,
                5,
                1,
                TraceEvent::ValueStored {
                    key: key("rate"),
                    version: 1,
                },
            ),
            tagged(
                1,
                10,
                1,
                TraceEvent::EpochFlushed {
                    epoch: 1,
                    origins: 1,
                    recomputed: 1,
                    max_depth: 1,
                },
            ),
        ];
        let merged = merge_traces(&[p0, p1]);
        assert_eq!(merged.len(), 4);
        assert!(merged.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(lint(&merged).is_empty());
        // A genuine per-partition regression still fires: the same
        // partition storing the same version twice.
        let bad = merge_traces(&[vec![
            tagged(
                0,
                0,
                3,
                TraceEvent::ValueStored {
                    key: key("rate"),
                    version: 2,
                },
            ),
            tagged(
                1,
                1,
                3,
                TraceEvent::ValueStored {
                    key: key("rate"),
                    version: 2,
                },
            ),
        ]]);
        let got = lint(&bad);
        assert_eq!(codes(&got), ["T1"]);
        assert_eq!(got[0].key.as_deref(), Some("p3/n1/rate"));
    }

    #[test]
    fn cross_partition_spans_link_in_merged_traces() {
        let root = SpanContext::root((1 << 48) | 1, Timestamp(0));
        let child = root.child((2 << 48) | 1, Timestamp(5));
        let tag = |mut r: TraceRecord, part| {
            r.part = Some(part);
            r
        };
        // Owner partition 0 anchors the update; partition 1's proxy
        // notification is its child — T7/T8 must hold across the tags.
        let p0 = vec![tag(
            spanned(
                rec(
                    0,
                    0,
                    TraceEvent::SourceUpdate {
                        origin: "n1/size".to_string(),
                        origin_kind: "item",
                    },
                ),
                root.clone(),
            ),
            0,
        )];
        let p1 = vec![tag(
            spanned(
                rec(
                    0,
                    5,
                    TraceEvent::Notified {
                        key: key("size"),
                        version: 1,
                        observers: 1,
                    },
                ),
                child,
            ),
            1,
        )];
        assert!(lint(&merge_traces(&[p0, p1])).is_empty());
    }

    #[test]
    fn keys_with_nested_paths_round_trip() {
        let k = MetadataKey::new(NodeId(42), "state.left/memory");
        let r = rec(0, 0, TraceEvent::Subscribe { key: k.clone() });
        let parsed = parse_jsonl(&format!("{}\n", r.to_json())).unwrap();
        assert_eq!(parsed[0].event.key(), Some(&k));
    }

    #[test]
    fn malformed_lines_report_their_line_number() {
        let err = parse_jsonl(
            "{\"seq\":0,\"at\":0,\"event\":\"subscribe\",\"key\":\"n1/a\"}\nnot json\n",
        )
        .unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert_eq!(codes(&lint_jsonl("nope")), ["T6"]);
    }
}
