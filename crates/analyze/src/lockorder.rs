//! Lock-order soundness over recorded acquisition events.
//!
//! `streammeta-core`'s tiered sync shim (`streammeta_core::sync`)
//! records, under its `lock-audit` feature, every lock acquisition with
//! the (tier, instance) stack the acquiring thread already held, plus a
//! marker event at each entry into user compute code. This module
//! replays such an event log and reports three violation classes:
//!
//! * **rank inversion** — a lock acquired while a higher-ranked tier is
//!   held (including same-tier nesting where the tier forbids it, and
//!   re-entrant acquisition of the very same instance, which deadlocks
//!   outright with `parking_lot`);
//! * **cross-thread cycle** — same-tier nesting is legal for the
//!   compute tier (nested dependency computes), but only because the
//!   dependency graph is acyclic; if the union of the per-thread
//!   nesting edges contains a directed cycle over lock instances, two
//!   threads can deadlock even though each thread's order looks fine;
//! * **held across compute** — a tier not on the explicit allowlist
//!   ([`LockTier::allowed_across_compute`]) held while a user compute
//!   closure runs: user code can block indefinitely, re-enter the
//!   manager, or panic, so framework locks must be released first.
//!
//! The detector is a pure function over `&[LockEvent]`; it works on
//! synthetic streams in any build and on real recordings when the core
//! dependency is compiled with `lock-audit`.

use std::collections::{BTreeMap, BTreeSet};

use streammeta_core::{LockEvent, LockTier};

/// The violation classes of the lock-order detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockOrderRule {
    /// A lock acquired while a higher- or equally-ranked (non-nesting)
    /// tier was held.
    RankInversion,
    /// The same lock instance acquired twice by one thread.
    Reentry,
    /// A directed cycle over same-tier nesting edges across threads.
    CrossThreadCycle,
    /// A disallowed tier held while user compute code ran.
    HeldAcrossCompute,
}

impl LockOrderRule {
    /// Stable rule id (`L1`..`L4`).
    pub fn code(self) -> &'static str {
        match self {
            LockOrderRule::RankInversion => "L1",
            LockOrderRule::Reentry => "L2",
            LockOrderRule::CrossThreadCycle => "L3",
            LockOrderRule::HeldAcrossCompute => "L4",
        }
    }

    /// Human-readable rule name.
    pub fn name(self) -> &'static str {
        match self {
            LockOrderRule::RankInversion => "tier rank inversion",
            LockOrderRule::Reentry => "re-entrant acquisition",
            LockOrderRule::CrossThreadCycle => "cross-thread nesting cycle",
            LockOrderRule::HeldAcrossCompute => "lock held across user compute",
        }
    }
}

/// One detected lock-order violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockOrderViolation {
    /// The violated rule.
    pub rule: LockOrderRule,
    /// Thread the offending event ran on (0 for graph-level findings).
    pub thread: u64,
    /// What happened, with tiers and instance ids.
    pub message: String,
}

impl std::fmt::Display for LockOrderViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{}] thread {}: {}",
            self.rule.code(),
            self.rule.name(),
            self.thread,
            self.message
        )
    }
}

/// Replays a recorded event log and returns every violation found.
pub fn check(events: &[LockEvent]) -> Vec<LockOrderViolation> {
    let mut out = Vec::new();
    // Same-tier nesting edges (held instance -> acquired instance), with
    // the set of threads that produced each edge, for cycle detection.
    let mut nest_edges: BTreeMap<(u64, u64), BTreeSet<u64>> = BTreeMap::new();
    let mut edge_tier: BTreeMap<(u64, u64), LockTier> = BTreeMap::new();

    for event in events {
        match event {
            LockEvent::Acquire {
                thread,
                tier,
                id,
                held,
            } => {
                for &(held_tier, held_id) in held {
                    if held_id == *id {
                        out.push(LockOrderViolation {
                            rule: LockOrderRule::Reentry,
                            thread: *thread,
                            message: format!(
                                "{held_tier} lock #{held_id} acquired again while already held"
                            ),
                        });
                        continue;
                    }
                    if held_tier.rank() > tier.rank() {
                        out.push(LockOrderViolation {
                            rule: LockOrderRule::RankInversion,
                            thread: *thread,
                            message: format!(
                                "acquired {tier} (rank {}) while holding {held_tier} (rank {})",
                                tier.rank(),
                                held_tier.rank()
                            ),
                        });
                    } else if held_tier == *tier {
                        if tier.allows_self_nesting() {
                            nest_edges
                                .entry((held_id, *id))
                                .or_default()
                                .insert(*thread);
                            edge_tier.insert((held_id, *id), *tier);
                        } else {
                            out.push(LockOrderViolation {
                                rule: LockOrderRule::RankInversion,
                                thread: *thread,
                                message: format!(
                                    "nested two distinct {tier} locks (#{held_id} then #{id}); \
                                     the tier does not allow self-nesting"
                                ),
                            });
                        }
                    }
                }
            }
            LockEvent::Compute { thread, held } => {
                for &(held_tier, held_id) in held {
                    if !held_tier.allowed_across_compute() {
                        out.push(LockOrderViolation {
                            rule: LockOrderRule::HeldAcrossCompute,
                            thread: *thread,
                            message: format!(
                                "{held_tier} lock #{held_id} held while user compute ran \
                                 (only item_compute / flush_serial may be)"
                            ),
                        });
                    }
                }
            }
        }
    }

    out.extend(find_nesting_cycles(&nest_edges, &edge_tier));
    out
}

/// Finds directed cycles in the union of same-tier nesting edges. Each
/// cycle is reported once, anchored at its smallest instance id.
fn find_nesting_cycles(
    edges: &BTreeMap<(u64, u64), BTreeSet<u64>>,
    edge_tier: &BTreeMap<(u64, u64), LockTier>,
) -> Vec<LockOrderViolation> {
    let mut adj: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for &(from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
        adj.entry(to).or_default();
    }
    let mut out = Vec::new();
    let mut color: BTreeMap<u64, u8> = BTreeMap::new(); // 0 white 1 grey 2 black
    let mut reported: BTreeSet<Vec<u64>> = BTreeSet::new();
    for &start in adj.keys() {
        if color.get(&start).copied().unwrap_or(0) != 0 {
            continue;
        }
        // Iterative DFS keeping the grey path for cycle extraction.
        let mut stack: Vec<(u64, usize)> = vec![(start, 0)];
        let mut path: Vec<u64> = Vec::new();
        while let Some(&(node, next)) = stack.last() {
            if next == 0 {
                color.insert(node, 1);
                path.push(node);
            }
            let succ = adj.get(&node).map(|v| v.as_slice()).unwrap_or(&[]);
            if next < succ.len() {
                let target = succ[next];
                stack.last_mut().unwrap().1 += 1;
                match color.get(&target).copied().unwrap_or(0) {
                    0 => stack.push((target, 0)),
                    1 => {
                        // Grey target: the path from `target` onward is a cycle.
                        let pos = path.iter().position(|&n| n == target).unwrap();
                        let mut cycle: Vec<u64> = path[pos..].to_vec();
                        // Canonicalize: rotate the smallest id to front.
                        let min_pos = cycle
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, &v)| v)
                            .map(|(i, _)| i)
                            .unwrap();
                        cycle.rotate_left(min_pos);
                        if reported.insert(cycle.clone()) {
                            let threads: BTreeSet<u64> = cycle
                                .iter()
                                .zip(cycle.iter().cycle().skip(1))
                                .filter_map(|(&a, &b)| edges.get(&(a, b)))
                                .flatten()
                                .copied()
                                .collect();
                            let tier = cycle
                                .first()
                                .zip(cycle.get(1).or(cycle.first()))
                                .and_then(|(&a, &b)| edge_tier.get(&(a, b)))
                                .copied();
                            out.push(LockOrderViolation {
                                rule: LockOrderRule::CrossThreadCycle,
                                thread: threads.iter().next().copied().unwrap_or(0),
                                message: format!(
                                    "nesting cycle over {} locks {:?} produced by threads {:?}",
                                    tier.map(|t| t.name()).unwrap_or("same-tier"),
                                    cycle,
                                    threads
                                ),
                            });
                        }
                    }
                    _ => {}
                }
            } else {
                color.insert(node, 2);
                path.pop();
                stack.pop();
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acquire(thread: u64, tier: LockTier, id: u64, held: &[(LockTier, u64)]) -> LockEvent {
        LockEvent::Acquire {
            thread,
            tier,
            id,
            held: held.to_vec(),
        }
    }

    #[test]
    fn clean_descending_acquisition_passes() {
        let events = vec![
            acquire(1, LockTier::Bookkeeping, 10, &[]),
            acquire(1, LockTier::Graph, 11, &[(LockTier::Bookkeeping, 10)]),
            acquire(
                1,
                LockTier::Shard,
                12,
                &[(LockTier::Bookkeeping, 10), (LockTier::Graph, 11)],
            ),
        ];
        assert!(check(&events).is_empty());
    }

    #[test]
    fn rank_inversion_fires() {
        let events = vec![
            acquire(1, LockTier::ItemValue, 20, &[]),
            acquire(1, LockTier::Bookkeeping, 21, &[(LockTier::ItemValue, 20)]),
        ];
        let v = check(&events);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, LockOrderRule::RankInversion);
        assert!(v[0].message.contains("item_value"), "{}", v[0].message);
    }

    #[test]
    fn same_tier_nesting_flagged_unless_compute() {
        let bad = vec![acquire(
            1,
            LockTier::ItemState,
            31,
            &[(LockTier::ItemState, 30)],
        )];
        assert_eq!(check(&bad)[0].rule, LockOrderRule::RankInversion);
        let ok = vec![acquire(
            1,
            LockTier::ItemCompute,
            41,
            &[(LockTier::ItemCompute, 40)],
        )];
        assert!(check(&ok).is_empty());
    }

    #[test]
    fn reentry_fires() {
        let events = vec![acquire(
            1,
            LockTier::Bookkeeping,
            50,
            &[(LockTier::Bookkeeping, 50)],
        )];
        let v = check(&events);
        assert_eq!(v[0].rule, LockOrderRule::Reentry);
    }

    #[test]
    fn cross_thread_compute_cycle_fires() {
        // Thread 1 nests compute A -> B, thread 2 nests B -> A: each
        // thread is locally fine, together they can deadlock.
        let events = vec![
            acquire(1, LockTier::ItemCompute, 60, &[]),
            acquire(1, LockTier::ItemCompute, 61, &[(LockTier::ItemCompute, 60)]),
            acquire(2, LockTier::ItemCompute, 61, &[]),
            acquire(2, LockTier::ItemCompute, 60, &[(LockTier::ItemCompute, 61)]),
        ];
        let v = check(&events);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, LockOrderRule::CrossThreadCycle);
        assert!(v[0].message.contains("item_compute"), "{}", v[0].message);
    }

    #[test]
    fn held_across_compute_fires_outside_allowlist() {
        let ok = LockEvent::Compute {
            thread: 1,
            held: vec![(LockTier::FlushSerial, 1), (LockTier::ItemCompute, 70)],
        };
        assert!(check(&[ok]).is_empty());
        let bad = LockEvent::Compute {
            thread: 1,
            held: vec![(LockTier::Bookkeeping, 71)],
        };
        let v = check(&[bad]);
        assert_eq!(v[0].rule, LockOrderRule::HeldAcrossCompute);
        assert_eq!(v[0].rule.code(), "L4");
    }
}
