//! CQL over the system catalog: one-shot relation queries, catalog
//! stream sources, continuous alert queries, and the error paths of the
//! parser/compiler that were previously only exercised on the happy
//! path.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use streammeta_core::{
    ItemDef, MetadataKey, MetadataManager, MetadataValue, NodeId, NodeRegistry, CATALOG_NODE,
};
use streammeta_cql::{
    attach_system, install, install_continuous, query_once, register_system_sources,
    relation_schema, Catalog, CqlError,
};
use streammeta_engine::VirtualEngine;
use streammeta_graph::QueryGraph;
use streammeta_time::{Clock, TimeSpan, VirtualClock};

/// A manager with one node carrying a fast and a slow periodic item.
fn system() -> (Arc<VirtualClock>, Arc<MetadataManager>) {
    let clock = VirtualClock::shared();
    let manager = MetadataManager::new(clock.clone());
    manager.set_latency_profiling(true);
    let reg = NodeRegistry::new(NodeId(1));
    reg.define(
        ItemDef::periodic("fast", TimeSpan(5))
            .compute(|_| MetadataValue::F64(1.0))
            .build(),
    );
    reg.define(
        ItemDef::periodic("slow", TimeSpan(5))
            .compute(|_| {
                // Wall-clock latency floor so p99 (measured in real
                // nanoseconds) is deterministically large.
                std::thread::sleep(Duration::from_millis(2));
                MetadataValue::F64(2.0)
            })
            .build(),
    );
    manager.attach_node(reg);
    (clock, manager)
}

fn advance(clock: &Arc<VirtualClock>, manager: &Arc<MetadataManager>, by: u64) {
    clock.advance(TimeSpan(by));
    manager.periodic().advance_to(clock.now());
}

// ---------------------------------------------------------------------
// Catalog registration semantics (satellite: DuplicateSource)
// ---------------------------------------------------------------------

#[test]
fn register_refuses_to_overwrite() {
    let mut catalog = Catalog::new();
    catalog.register("s", NodeId(1)).unwrap();
    let err = catalog.register("s", NodeId(2)).unwrap_err();
    // The error names the survivor...
    assert!(err.to_string().contains("already registered"));
    match err {
        CqlError::DuplicateSource { name, existing } => {
            assert_eq!(name, "s");
            assert_eq!(existing, NodeId(1));
        }
        other => panic!("unexpected error {other:?}"),
    }
    // ...and the original binding is untouched.
    assert_eq!(catalog.get("s"), Some(NodeId(1)));
}

#[test]
fn register_replacing_returns_prior_binding() {
    let mut catalog = Catalog::new();
    catalog.register("s", NodeId(1)).unwrap();
    assert_eq!(catalog.register_replacing("s", NodeId(2)), Some(NodeId(1)));
    assert_eq!(catalog.get("s"), Some(NodeId(2)));
    assert_eq!(catalog.register_replacing("t", NodeId(3)), None);
}

// ---------------------------------------------------------------------
// Parser/compiler error paths (satellite: error coverage)
// ---------------------------------------------------------------------

#[test]
fn compile_reports_unknown_stream_and_column() {
    let clock = VirtualClock::shared();
    let manager = MetadataManager::new(clock.clone());
    let graph = Arc::new(QueryGraph::new(manager.clone()));
    let mut catalog = Catalog::new();
    attach_system(&mut catalog, manager);
    register_system_sources(&graph, &mut catalog, TimeSpan(10)).unwrap();

    let unknown_stream = install(&graph, &catalog, "SELECT * FROM nope").unwrap_err();
    assert!(unknown_stream.to_string().contains("unknown stream"));

    let unknown_column = install(&graph, &catalog, "SELECT nope FROM sys.handlers").unwrap_err();
    assert!(unknown_column.to_string().contains("unknown column"));

    let bad_qualifier = install(
        &graph,
        &catalog,
        "SELECT key FROM sys.handlers AS h WHERE x.p99 > 1",
    )
    .unwrap_err();
    assert!(bad_qualifier.to_string().contains("unknown column"));
}

#[test]
fn parser_reports_malformed_predicates() {
    for bad in [
        "SELECT * FROM s WHERE",
        "SELECT * FROM s WHERE x",
        "SELECT * FROM s WHERE x <",
        "SELECT * FROM s WHERE x > *",
        "SELECT * FROM s WHERE x ! 1",
        "SELECT * FROM sys.",
    ] {
        let err = streammeta_cql::parse(bad).unwrap_err();
        assert!(
            matches!(err, CqlError::Parse(_) | CqlError::Lex(_)),
            "expected parse error for {bad}, got {err:?}"
        );
    }
}

#[test]
fn one_shot_queries_report_relation_errors() {
    let (_clock, manager) = system();
    let mut catalog = Catalog::new();
    attach_system(&mut catalog, manager);

    let err = query_once(&catalog, "SELECT * FROM sys.nope").unwrap_err();
    assert!(err.to_string().contains("unknown system relation"));

    let err = query_once(&catalog, "SELECT nope FROM sys.items").unwrap_err();
    assert!(err.to_string().contains("unknown column"));

    let err = query_once(&catalog, "SELECT * FROM sys.items[RANGE 10]").unwrap_err();
    assert!(err.to_string().contains("RANGE"));

    let no_system = Catalog::new();
    let err = query_once(&no_system, "SELECT * FROM sys.items").unwrap_err();
    assert!(err.to_string().contains("attach_system"));
}

// ---------------------------------------------------------------------
// Relation column resolution + one-shot snapshots
// ---------------------------------------------------------------------

#[test]
fn relation_schemas_cover_all_columns() {
    for rel in streammeta_core::SystemRelation::ALL {
        let schema = relation_schema(rel);
        assert_eq!(schema.arity(), rel.columns().len(), "{}", rel.name());
        for c in rel.columns() {
            assert!(
                schema.index_of(c.name).is_some(),
                "{} lacks {}",
                rel.name(),
                c.name
            );
        }
    }
}

#[test]
fn one_shot_queries_resolve_relation_columns() {
    let (clock, manager) = system();
    let _fast = manager
        .subscribe(MetadataKey::new(NodeId(1), "fast"))
        .unwrap();
    advance(&clock, &manager, 10);

    let mut catalog = Catalog::new();
    attach_system(&mut catalog, manager.clone());

    // Projection with a predicate over the relation's columns.
    let res = query_once(
        &catalog,
        "SELECT key, computes FROM sys.handlers WHERE computes > 0",
    )
    .unwrap();
    assert_eq!(res.columns, vec!["key", "computes"]);
    assert_eq!(res.rows.len(), 1);
    assert_eq!(res.rows[0][0].as_text(), Some("n1/fast"));

    // Alias-qualified resolution.
    let res = query_once(
        &catalog,
        "SELECT h.item FROM sys.handlers AS h WHERE h.subscriptions > 0",
    )
    .unwrap();
    assert_eq!(res.rows[0][0].as_text(), Some("fast"));

    // Aggregates over a relation snapshot.
    let res = query_once(&catalog, "SELECT COUNT(*) FROM sys.items").unwrap();
    assert_eq!(res.rows[0][0].as_f64(), Some(1.0));

    // sys.subscriptions mirrors the refcount.
    let res = query_once(
        &catalog,
        "SELECT subscriptions FROM sys.subscriptions WHERE item = 0",
    )
    .unwrap();
    assert!(res.rows.is_empty(), "text column never equals an int");
}

#[test]
fn lineage_queries_range_over_sys_spans() {
    let clock = VirtualClock::shared();
    let manager = MetadataManager::new(clock.clone());
    let reg = NodeRegistry::new(NodeId(1));
    reg.define(
        ItemDef::triggered("dep")
            .on_event("tick")
            .compute(|ctx| MetadataValue::U64(ctx.now().units()))
            .build(),
    );
    manager.attach_node(reg);
    manager.enable_catalog_spans(128);
    manager.set_span_sampling(streammeta_core::SpanSampling::Ratio(1));
    let _dep = manager
        .subscribe(MetadataKey::new(NodeId(1), "dep"))
        .unwrap();
    clock.advance(TimeSpan(1));
    manager.fire_event(streammeta_core::EventKey::new(NodeId(1), "tick"));

    let mut catalog = Catalog::new();
    attach_system(&mut catalog, manager.clone());

    let all = query_once(&catalog, "SELECT span, parent, root FROM sys.spans").unwrap();
    assert!(!all.rows.is_empty());
    // The worked lineage query: propagation hops below the root, with
    // their root id and per-hop cost.
    let hops = query_once(
        &catalog,
        "SELECT root, depth, duration FROM sys.spans WHERE depth > 0",
    )
    .unwrap();
    assert_eq!(hops.columns, vec!["root", "depth", "duration"]);
    assert!(!hops.rows.is_empty(), "the tick cascade produced no hops");
    // Every hop's root resolves to a real root span in the relation.
    let roots: Vec<u64> = query_once(&catalog, "SELECT span FROM sys.spans WHERE parent = 0")
        .unwrap()
        .rows
        .iter()
        .map(|r| r[0].as_u64().unwrap())
        .collect();
    for hop in &hops.rows {
        assert!(roots.contains(&hop[0].as_u64().unwrap()), "dangling root");
    }
}

// ---------------------------------------------------------------------
// Relations as stream sources (tentpole: compile/install over sys.*)
// ---------------------------------------------------------------------

#[test]
fn installed_queries_range_over_system_relations() {
    let clock = VirtualClock::shared();
    let manager = MetadataManager::new(clock.clone());
    let reg = NodeRegistry::new(NodeId(1));
    reg.define(
        ItemDef::periodic("rate", TimeSpan(5))
            .compute(|_| MetadataValue::F64(1.0))
            .build(),
    );
    manager.attach_node(reg);
    let _sub = manager
        .subscribe(MetadataKey::new(NodeId(1), "rate"))
        .unwrap();

    let graph = Arc::new(QueryGraph::new(manager.clone()));
    let mut catalog = Catalog::new();
    attach_system(&mut catalog, manager.clone());
    register_system_sources(&graph, &mut catalog, TimeSpan(10)).unwrap();

    // An ordinary CQL query ranging over a system relation: every
    // refresh re-snapshots sys.handlers as a batch of tuples.
    let plan = install(
        &graph,
        &catalog,
        "SELECT key FROM sys.handlers WHERE subscriptions > 0",
    )
    .unwrap();
    let mut engine = VirtualEngine::new(graph.clone(), clock.clone());
    engine.run_until(streammeta_time::Timestamp(35));
    let rows = plan.results.snapshot();
    // Snapshots at t=0,10,20,30 each contain the subscribed handler.
    let rate_rows = rows
        .iter()
        .filter(|e| e.payload[0].as_str() == Some("n1/rate"))
        .count();
    assert!(rate_rows >= 3, "got {rate_rows} matching rows");

    // An empty relation stays quiet but must not kill the source: the
    // quarantine relation has no fallback items here.
    let quarantine = install(&graph, &catalog, "SELECT * FROM sys.quarantine").unwrap();
    engine.run_until(streammeta_time::Timestamp(65));
    assert!(quarantine.results.snapshot().is_empty());
    // ...while the handlers stream kept producing after the quiet start.
    assert!(plan.results.snapshot().len() > rows.len());
}

// ---------------------------------------------------------------------
// Continuous alert queries (acceptance: p99-vs-period alert fires
// through normal observer delivery)
// ---------------------------------------------------------------------

#[test]
fn continuous_p99_alert_fires_through_observer_delivery() {
    let (clock, manager) = system();
    let _fast = manager
        .subscribe(MetadataKey::new(NodeId(1), "fast"))
        .unwrap();
    let _slow = manager
        .subscribe(MetadataKey::new(NodeId(1), "slow"))
        .unwrap();
    // A few computes so both items have latency samples.
    advance(&clock, &manager, 20);

    let mut catalog = Catalog::new();
    attach_system(&mut catalog, manager.clone());

    // The headline alert: compute latency above the item's period. The
    // period of the slow item is 5 virtual units; its p99 is ≥ 2ms of
    // real nanoseconds, so the column comparison trips.
    let alert = install_continuous(
        &catalog,
        "SELECT key FROM sys.handlers WHERE p99 > period",
        TimeSpan(10),
    )
    .unwrap();
    assert_eq!(alert.key().node, CATALOG_NODE);
    assert_eq!(alert.columns(), ["key"]);

    let fired = Arc::new(AtomicUsize::new(0));
    let seen = Arc::new(Mutex::new(Vec::<String>::new()));
    let observer = {
        let fired = fired.clone();
        let seen = seen.clone();
        alert
            .observe(move |v| {
                fired.fetch_add(1, Ordering::SeqCst);
                if let MetadataValue::Text(t) = &v.value {
                    seen.lock().unwrap().push(t.to_string());
                }
            })
            .unwrap()
    };

    // Drive the manager: the alert item recomputes on its own periodic
    // machinery and the observer fires through normal delivery.
    advance(&clock, &manager, 20);
    assert!(fired.load(Ordering::SeqCst) > 0, "observer never fired");
    let matches = alert.matches();
    assert!(
        matches.iter().any(|r| r[0].as_text() == Some("n1/slow")),
        "slow item missing from alert matches: {matches:?}"
    );
    let digests = seen.lock().unwrap().clone();
    assert!(
        digests.iter().any(|d| d.contains("n1/slow")),
        "delivered digests never named the slow item: {digests:?}"
    );
    drop(observer);

    // A literal threshold discriminates slow from fast: 1ms in wall
    // nanoseconds sits far above the fast item's sub-millisecond
    // computes and far below the slow item's 2ms sleep.
    let strict = install_continuous(
        &catalog,
        "SELECT key, p99 FROM sys.handlers WHERE p99 > 1000000",
        TimeSpan(10),
    )
    .unwrap();
    advance(&clock, &manager, 20);
    let matches = strict.matches();
    assert!(
        matches.iter().any(|r| r[0].as_text() == Some("n1/slow")),
        "slow item not matched: {matches:?}"
    );
    assert!(
        !matches.iter().any(|r| r[0].as_text() == Some("n1/fast")),
        "fast item wrongly matched: {matches:?}"
    );
}

#[test]
fn continuous_aggregate_publishes_the_value_directly() {
    let (clock, manager) = system();
    let _fast = manager
        .subscribe(MetadataKey::new(NodeId(1), "fast"))
        .unwrap();
    let mut catalog = Catalog::new();
    attach_system(&mut catalog, manager.clone());
    let count =
        install_continuous(&catalog, "SELECT COUNT(*) FROM sys.items", TimeSpan(10)).unwrap();
    advance(&clock, &manager, 10);
    // fast + the two continuous-query items are themselves catalogued —
    // the count includes every live handler (reflexivity), so it is at
    // least the fast item plus this query's own item.
    let v = count.current().as_f64().unwrap();
    assert!(v >= 2.0, "count {v}");
}

#[test]
fn continuous_query_errors_without_system_side() {
    let catalog = Catalog::new();
    let err = install_continuous(&catalog, "SELECT * FROM sys.items", TimeSpan(10)).unwrap_err();
    assert!(err.to_string().contains("attach_system"));
    let (_clock, manager) = system();
    let mut catalog = Catalog::new();
    attach_system(&mut catalog, manager);
    let err = install_continuous(&catalog, "SELECT * FROM sys.nope", TimeSpan(10)).unwrap_err();
    assert!(err.to_string().contains("unknown system relation"));
}
