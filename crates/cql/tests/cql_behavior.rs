//! End-to-end CQL tests: parse, compile, execute on virtual time, verify
//! results and metadata integration.

use std::sync::Arc;

use streammeta_core::{MetadataKey, MetadataManager};
use streammeta_cql::{install, Catalog, CqlError};
use streammeta_engine::VirtualEngine;
use streammeta_graph::{MetadataConfig, QueryGraph};
use streammeta_streams::{
    tuple, ConstantRate, Element, Replay, Schema, TupleGen, Value, ValueType,
};
use streammeta_time::{TimeSpan, Timestamp, VirtualClock};

struct Env {
    clock: Arc<VirtualClock>,
    manager: Arc<MetadataManager>,
    graph: Arc<QueryGraph>,
    catalog: Catalog,
}

fn env() -> Env {
    let clock = VirtualClock::shared();
    let manager = MetadataManager::new(clock.clone());
    let graph = Arc::new(QueryGraph::with_config(
        manager.clone(),
        MetadataConfig {
            rate_window: TimeSpan(50),
        },
    ));
    Env {
        clock,
        manager,
        graph,
        catalog: Catalog::new(),
    }
}

/// A replayed two-column stream `(sym, price)`.
fn trades(env: &mut Env, name: &str, rows: &[(i64, i64, u64)]) {
    let schema = Schema::of(&[("sym", ValueType::Int), ("price", ValueType::Int)]);
    let elements = rows
        .iter()
        .map(|&(sym, price, ts)| {
            Element::new(tuple([Value::Int(sym), Value::Int(price)]), Timestamp(ts))
        })
        .collect();
    let src = env
        .graph
        .source(name, Box::new(Replay::new(schema, elements)));
    env.catalog.register(name, src).unwrap();
}

fn run(env: &Env, until: u64) {
    let mut engine = VirtualEngine::new(env.graph.clone(), env.clock.clone());
    engine.run_until(Timestamp(until));
}

#[test]
fn select_star_passes_everything() {
    let mut e = env();
    trades(&mut e, "t", &[(1, 10, 1), (2, 20, 2), (3, 30, 3)]);
    let plan = install(&e.graph, &e.catalog, "SELECT * FROM t").unwrap();
    run(&e, 10);
    assert_eq!(plan.results.len(), 3);
    assert_eq!(plan.output_schema.to_string(), "sym:int,price:int");
}

#[test]
fn where_filters_rows() {
    let mut e = env();
    trades(&mut e, "t", &[(1, 10, 1), (2, 20, 2), (3, 30, 3)]);
    let plan = install(&e.graph, &e.catalog, "SELECT * FROM t WHERE price < 25").unwrap();
    run(&e, 10);
    assert_eq!(plan.results.len(), 2);
    assert!(plan.filter.is_some());
    // The WHERE filter is a graph node with measurable selectivity.
    let sel = e
        .manager
        .subscribe(MetadataKey::new(plan.filter.unwrap(), "selectivity"))
        .unwrap();
    drop(sel);
}

#[test]
fn projection_selects_columns() {
    let mut e = env();
    trades(&mut e, "t", &[(7, 10, 1)]);
    let plan = install(&e.graph, &e.catalog, "SELECT price FROM t").unwrap();
    run(&e, 10);
    let rows = plan.results.snapshot();
    assert_eq!(rows.len(), 1);
    assert_eq!(&*rows[0].payload, &[Value::Int(10)]);
    assert_eq!(plan.output_schema.to_string(), "price:int");
}

#[test]
fn windowed_join_on_key() {
    let mut e = env();
    trades(&mut e, "t", &[(1, 100, 10), (2, 200, 20)]);
    trades(&mut e, "q", &[(1, 101, 12), (3, 300, 22)]);
    let plan = install(
        &e.graph,
        &e.catalog,
        "SELECT t.price, q.price FROM t[RANGE 50] AS t JOIN q[RANGE 50] AS q ON t.sym = q.sym",
    )
    .unwrap();
    run(&e, 100);
    let rows = plan.results.snapshot();
    assert_eq!(rows.len(), 1, "only sym=1 matches in-window");
    assert_eq!(&*rows[0].payload, &[Value::Int(100), Value::Int(101)]);
    assert_eq!(plan.windows.len(), 2);
    assert!(plan.join.is_some());
}

#[test]
fn join_window_expiry_applies() {
    let mut e = env();
    // Matching keys but 100 time units apart with 50-unit windows.
    trades(&mut e, "t", &[(1, 1, 10)]);
    trades(&mut e, "q", &[(1, 2, 110)]);
    let plan = install(
        &e.graph,
        &e.catalog,
        "SELECT * FROM t[RANGE 50] AS t JOIN q[RANGE 50] AS q ON t.sym = q.sym",
    )
    .unwrap();
    run(&e, 200);
    assert_eq!(plan.results.len(), 0);
}

#[test]
fn windowed_count_aggregate() {
    let mut e = env();
    let src = e.graph.source(
        "s",
        Box::new(ConstantRate::new(
            Timestamp(0),
            TimeSpan(10),
            TupleGen::Sequence,
            1,
        )),
    );
    e.catalog.register("s", src).unwrap();
    let plan = install(&e.graph, &e.catalog, "SELECT COUNT(*) FROM s[RANGE 30]").unwrap();
    run(&e, 100);
    let rows = plan.results.snapshot();
    // Steady state: 3 elements per 30-unit window.
    let last = rows.last().unwrap().payload[0].as_float().unwrap();
    assert_eq!(last, 3.0);
    assert_eq!(plan.output_schema.to_string(), "count:float");
}

#[test]
fn avg_aggregate_over_join_free_stream() {
    let mut e = env();
    trades(&mut e, "t", &[(1, 10, 1), (1, 20, 2), (1, 30, 3)]);
    let plan = install(&e.graph, &e.catalog, "SELECT AVG(price) FROM t[RANGE 1000]").unwrap();
    run(&e, 10);
    let rows = plan.results.snapshot();
    assert_eq!(rows.last().unwrap().payload[0].as_float().unwrap(), 20.0);
}

#[test]
fn compiled_windows_are_resizable() {
    let mut e = env();
    trades(&mut e, "t", &[(1, 10, 1)]);
    let plan = install(&e.graph, &e.catalog, "SELECT COUNT(*) FROM t[RANGE 100]").unwrap();
    let (node, handle) = &plan.windows[0];
    assert_eq!(handle.get(), TimeSpan(100));
    e.graph.resize_window(*node, handle, TimeSpan(10));
    assert_eq!(handle.get(), TimeSpan(10));
}

#[test]
fn subquery_sharing_through_the_catalog() {
    let mut e = env();
    trades(&mut e, "t", &[(1, 10, 1), (2, 20, 2)]);
    let p1 = install(&e.graph, &e.catalog, "SELECT * FROM t").unwrap();
    let p2 = install(&e.graph, &e.catalog, "SELECT * FROM t WHERE price < 15").unwrap();
    // One source node, two queries: the source's reuse_count is 2.
    let src = e.catalog.get("t").unwrap();
    let reuse = e
        .manager
        .subscribe(MetadataKey::new(src, "reuse_count"))
        .unwrap();
    assert_eq!(reuse.get().as_u64(), Some(2));
    run(&e, 10);
    assert_eq!(p1.results.len(), 2);
    assert_eq!(p2.results.len(), 1);
}

#[test]
fn compile_errors_are_descriptive() {
    let mut e = env();
    trades(&mut e, "t", &[(1, 10, 1)]);
    trades(&mut e, "q", &[(1, 10, 1)]);
    let cases = [
        ("SELECT * FROM nope", "unknown stream"),
        ("SELECT missing FROM t", "unknown column"),
        ("SELECT * FROM t JOIN q ON t.sym = q.sym", "require [RANGE"),
        ("SELECT COUNT(*) FROM t", "aggregates require"),
        (
            "SELECT * FROM t[RANGE 10] AS x JOIN q[RANGE 10] AS x ON x.sym = x.sym",
            "duplicate stream binding",
        ),
        (
            "SELECT sym FROM t[RANGE 10] AS a JOIN t[RANGE 10] AS b ON a.sym = b.sym",
            "ambiguous column",
        ),
    ];
    for (query, needle) in cases {
        let err = install(&e.graph, &e.catalog, query).unwrap_err();
        match &err {
            CqlError::Compile(m) => assert!(
                m.contains(needle),
                "query {query:?}: expected {needle:?} in {m:?}"
            ),
            other => panic!("query {query:?}: unexpected error {other:?}"),
        }
    }
}

#[test]
fn conjunctive_where_stacks_filters() {
    let mut e = env();
    trades(
        &mut e,
        "t",
        &[(1, 10, 1), (1, 30, 2), (2, 10, 3), (2, 30, 4)],
    );
    let plan = install(
        &e.graph,
        &e.catalog,
        "SELECT * FROM t WHERE sym = 1 AND price < 20",
    )
    .unwrap();
    run(&e, 10);
    let rows = plan.results.snapshot();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].payload[1], Value::Int(10));
    // Two filter nodes, each with its own selectivity item.
    let filter = plan.filter.unwrap();
    let upstream_filter = e.graph.upstream(filter)[0];
    assert_eq!(e.graph.implementation(filter), "filter");
    assert_eq!(e.graph.implementation(upstream_filter), "filter");
}

#[test]
fn where_eq_predicate() {
    let mut e = env();
    trades(&mut e, "t", &[(1, 10, 1), (2, 10, 2), (1, 30, 3)]);
    let plan = install(&e.graph, &e.catalog, "SELECT * FROM t WHERE sym = 1").unwrap();
    run(&e, 10);
    assert_eq!(plan.results.len(), 2);
}
