//! Property tests of the CQL front-end: every syntactically valid query
//! built from the grammar parses back to the constructed AST, and the
//! parser never panics on arbitrary input.

use proptest::prelude::*;
use streammeta_cql::{
    parse, AggFn, CmpOp, ColumnRef, PredicateRhs, Query, SelectList, StreamClause,
};

fn ident() -> impl Strategy<Value = String> {
    // Avoid keywords: prefix with a letter not starting any keyword.
    "[a-z][a-z0-9_]{0,6}".prop_map(|s| format!("x{s}"))
}

fn column_ref() -> impl Strategy<Value = ColumnRef> {
    (proptest::option::of(ident()), ident()).prop_map(|(q, c)| ColumnRef {
        qualifier: q,
        column: c,
    })
}

fn stream_clause() -> impl Strategy<Value = StreamClause> {
    (
        ident(),
        proptest::option::of(1u64..100_000),
        proptest::option::of(ident()),
    )
        .prop_map(|(stream, range, alias)| StreamClause {
            stream,
            range,
            alias,
        })
}

fn select_list() -> impl Strategy<Value = SelectList> {
    prop_oneof![
        Just(SelectList::Star),
        proptest::collection::vec(column_ref(), 1..4).prop_map(SelectList::Columns),
        Just(SelectList::Aggregate {
            func: AggFn::Count,
            arg: None
        }),
        column_ref().prop_map(|c| SelectList::Aggregate {
            func: AggFn::Avg,
            arg: Some(c)
        }),
        column_ref().prop_map(|c| SelectList::Aggregate {
            func: AggFn::Sum,
            arg: Some(c)
        }),
    ]
}

fn query() -> impl Strategy<Value = Query> {
    (
        select_list(),
        stream_clause(),
        proptest::option::of((stream_clause(), column_ref(), column_ref())),
        proptest::collection::vec(
            (
                column_ref(),
                prop_oneof![Just(CmpOp::Lt), Just(CmpOp::Eq), Just(CmpOp::Gt)],
                prop_oneof![
                    (0i64..1000).prop_map(PredicateRhs::Literal),
                    column_ref().prop_map(PredicateRhs::Column),
                ],
            ),
            0..3,
        ),
    )
        .prop_map(|(select, from, join, preds)| Query {
            select,
            from,
            join: join.map(|(stream, l, r)| streammeta_cql::JoinClause { stream, on: (l, r) }),
            predicates: preds
                .into_iter()
                .map(|(column, op, rhs)| streammeta_cql::Predicate { column, op, rhs })
                .collect(),
        })
}

/// Renders an AST back to query text (the inverse of parsing).
fn render(q: &Query) -> String {
    let mut out = String::from("SELECT ");
    match &q.select {
        SelectList::Star => out.push('*'),
        SelectList::Columns(cols) => {
            out.push_str(
                &cols
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
            );
        }
        SelectList::Aggregate { func, arg } => {
            let name = match func {
                AggFn::Count => "COUNT",
                AggFn::Sum => "SUM",
                AggFn::Avg => "AVG",
                AggFn::Min => "MIN",
                AggFn::Max => "MAX",
            };
            match arg {
                Some(c) => out.push_str(&format!("{name}({c})")),
                None => out.push_str(&format!("{name}(*)")),
            }
        }
    }
    let clause = |s: &StreamClause| {
        let mut t = s.stream.clone();
        if let Some(r) = s.range {
            t.push_str(&format!("[RANGE {r}]"));
        }
        if let Some(a) = &s.alias {
            t.push_str(&format!(" AS {a}"));
        }
        t
    };
    out.push_str(&format!(" FROM {}", clause(&q.from)));
    if let Some(j) = &q.join {
        out.push_str(&format!(
            " JOIN {} ON {} = {}",
            clause(&j.stream),
            j.on.0,
            j.on.1
        ));
    }
    for (i, p) in q.predicates.iter().enumerate() {
        let op = match p.op {
            CmpOp::Lt => "<",
            CmpOp::Eq => "=",
            CmpOp::Gt => ">",
        };
        let kw = if i == 0 { "WHERE" } else { "AND" };
        let rhs = match &p.rhs {
            PredicateRhs::Literal(v) => v.to_string(),
            PredicateRhs::Column(c) => c.to_string(),
        };
        out.push_str(&format!(" {kw} {} {op} {}", p.column, rhs));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// render -> parse is the identity on ASTs.
    #[test]
    fn render_parse_roundtrip(q in query()) {
        let text = render(&q);
        let parsed = parse(&text);
        prop_assert_eq!(parsed.as_ref().ok(), Some(&q), "text: {}", text);
    }

    /// The parser returns errors, never panics, on arbitrary input.
    #[test]
    fn parser_never_panics(s in ".{0,80}") {
        let _ = parse(&s);
    }

    /// Arbitrary token soup from the query alphabet never panics either.
    #[test]
    fn token_soup_never_panics(
        words in proptest::collection::vec(
            prop_oneof![
                Just("SELECT".to_string()),
                Just("FROM".to_string()),
                Just("WHERE".to_string()),
                Just("JOIN".to_string()),
                Just("RANGE".to_string()),
                Just("*".to_string()),
                Just(",".to_string()),
                Just("[".to_string()),
                Just("]".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just("<".to_string()),
                Just("=".to_string()),
                Just(">".to_string()),
                Just(".".to_string()),
                Just("5".to_string()),
                ident(),
            ],
            0..20,
        )
    ) {
        let _ = parse(&words.join(" "));
    }
}
