//! # streammeta-cql — a small continuous-query language
//!
//! PIPES-style systems let users formulate continuous queries that are
//! compiled onto the shared operator graph. This crate provides a compact
//! CQL subset for the reproduction:
//!
//! ```text
//! SELECT t.price, q.bid
//! FROM   trades[RANGE 100] AS t
//! JOIN   quotes[RANGE 50]  AS q ON t.sym = q.sym
//! WHERE  t.price < 500
//! ```
//!
//! plus windowed aggregates (`SELECT COUNT(*) | SUM/AVG/MIN/MAX(col) FROM
//! s[RANGE n]`). Queries compile through a [`Catalog`] of registered
//! sources onto a [`streammeta_graph::QueryGraph`]; the compiled plan's
//! window handles plug straight into the adaptive resource manager, and
//! every operator carries the standard metadata items.
//!
//! ```
//! use std::sync::Arc;
//! use streammeta_core::MetadataManager;
//! use streammeta_cql::{install, Catalog};
//! use streammeta_graph::QueryGraph;
//! use streammeta_streams::{ConstantRate, TupleGen};
//! use streammeta_time::{TimeSpan, Timestamp, VirtualClock};
//!
//! let clock = VirtualClock::shared();
//! let manager = MetadataManager::new(clock.clone());
//! let graph = Arc::new(QueryGraph::new(manager));
//! let src = graph.source("s", Box::new(ConstantRate::new(
//!     Timestamp(0), TimeSpan(10), TupleGen::Sequence, 1)));
//! let mut catalog = Catalog::new();
//! catalog.register("s", src).unwrap();
//! let plan = install(&graph, &catalog, "SELECT COUNT(*) FROM s[RANGE 50]").unwrap();
//! assert_eq!(plan.windows.len(), 1);
//! ```
//!
//! ## Querying the framework itself
//!
//! The manager's system catalog (`sys.items`, `sys.handlers`,
//! `sys.dependencies`, `sys.subscriptions`, `sys.quarantine`,
//! `sys.trace`) is queryable too: [`attach_system`] binds a manager to
//! the catalog, [`query_once`] evaluates one-shot snapshot queries,
//! [`register_system_sources`] exposes the relations as live stream
//! sources, and [`install_continuous`] installs an alerting query such
//! as `SELECT key FROM sys.handlers WHERE p99 > period` that fires
//! through normal observer delivery.

mod ast;
mod catalog;
mod compile;
mod error;
mod lexer;
mod parser;

pub use ast::{
    AggFn, CmpOp, ColumnRef, JoinClause, Predicate, PredicateRhs, Query, SelectList, StreamClause,
};
pub use catalog::{
    attach_system, cell_to_value, install_continuous, query_once, register_system_sources,
    relation_schema, ContinuousQuery, RelationResult,
};
pub use compile::{compile, install, Catalog, CompiledQuery};
pub use error::CqlError;
pub use lexer::{tokenize, Token};
pub use parser::parse;
