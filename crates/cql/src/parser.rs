//! Recursive-descent parser for the CQL subset.

use crate::ast::{
    AggFn, CmpOp, ColumnRef, JoinClause, Predicate, PredicateRhs, Query, SelectList, StreamClause,
};
use crate::error::CqlError;
use crate::lexer::{tokenize, Token};

/// Parses one query.
pub fn parse(input: &str) -> Result<Query, CqlError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn next(&mut self) -> Token {
        let t = self.peek().clone();
        self.pos += 1;
        t
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Token::Keyword(k) if *k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), CqlError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(CqlError::parse(format!(
                "expected {kw}, found {}",
                self.peek()
            )))
        }
    }

    fn eat_symbol(&mut self, c: char) -> bool {
        if matches!(self.peek(), Token::Symbol(s) if *s == c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, c: char) -> Result<(), CqlError> {
        if self.eat_symbol(c) {
            Ok(())
        } else {
            Err(CqlError::parse(format!(
                "expected '{c}', found {}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String, CqlError> {
        match self.next() {
            Token::Ident(s) => Ok(s),
            other => Err(CqlError::parse(format!(
                "expected identifier, found {other}"
            ))),
        }
    }

    fn int(&mut self) -> Result<i64, CqlError> {
        match self.next() {
            Token::Int(v) => Ok(v),
            other => Err(CqlError::parse(format!("expected integer, found {other}"))),
        }
    }

    fn expect_eof(&mut self) -> Result<(), CqlError> {
        match self.peek() {
            Token::Eof => Ok(()),
            other => Err(CqlError::parse(format!("trailing input at {other}"))),
        }
    }

    fn query(&mut self) -> Result<Query, CqlError> {
        self.expect_keyword("SELECT")?;
        let select = self.select_list()?;
        self.expect_keyword("FROM")?;
        let from = self.stream_clause()?;
        let join = if self.eat_keyword("JOIN") {
            let stream = self.stream_clause()?;
            self.expect_keyword("ON")?;
            let left = self.column_ref()?;
            self.expect_symbol('=')?;
            let right = self.column_ref()?;
            Some(JoinClause {
                stream,
                on: (left, right),
            })
        } else {
            None
        };
        let mut predicates = Vec::new();
        if self.eat_keyword("WHERE") {
            loop {
                predicates.push(self.predicate()?);
                if !self.eat_keyword("AND") {
                    break;
                }
            }
        }
        Ok(Query {
            select,
            from,
            join,
            predicates,
        })
    }

    fn select_list(&mut self) -> Result<SelectList, CqlError> {
        if self.eat_symbol('*') {
            return Ok(SelectList::Star);
        }
        // Aggregate?
        for (kw, func) in [
            ("COUNT", AggFn::Count),
            ("SUM", AggFn::Sum),
            ("AVG", AggFn::Avg),
            ("MIN", AggFn::Min),
            ("MAX", AggFn::Max),
        ] {
            if self.eat_keyword(kw) {
                self.expect_symbol('(')?;
                let arg = if func == AggFn::Count {
                    self.expect_symbol('*')?;
                    None
                } else {
                    Some(self.column_ref()?)
                };
                self.expect_symbol(')')?;
                return Ok(SelectList::Aggregate { func, arg });
            }
        }
        let mut cols = vec![self.column_ref()?];
        while self.eat_symbol(',') {
            cols.push(self.column_ref()?);
        }
        Ok(SelectList::Columns(cols))
    }

    fn stream_clause(&mut self) -> Result<StreamClause, CqlError> {
        // Stream names may be dotted (`sys.handlers` addresses the
        // system catalog); the segments join back into one name.
        let mut stream = self.ident()?;
        while self.eat_symbol('.') {
            stream.push('.');
            stream.push_str(&self.ident()?);
        }
        let range = if self.eat_symbol('[') {
            self.expect_keyword("RANGE")?;
            let n = self.int()?;
            if n <= 0 {
                return Err(CqlError::parse("RANGE must be positive"));
            }
            self.expect_symbol(']')?;
            Some(n as u64)
        } else {
            None
        };
        let alias = if self.eat_keyword("AS") {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(StreamClause {
            stream,
            range,
            alias,
        })
    }

    fn predicate(&mut self) -> Result<Predicate, CqlError> {
        let column = self.column_ref()?;
        let op = match self.next() {
            Token::Symbol('<') => CmpOp::Lt,
            Token::Symbol('=') => CmpOp::Eq,
            Token::Symbol('>') => CmpOp::Gt,
            other => {
                return Err(CqlError::parse(format!(
                    "expected '<', '=' or '>', found {other}"
                )))
            }
        };
        let rhs = match self.peek() {
            Token::Int(_) => PredicateRhs::Literal(self.int()?),
            Token::Ident(_) => PredicateRhs::Column(self.column_ref()?),
            other => {
                return Err(CqlError::parse(format!(
                    "expected integer or column after comparison, found {other}"
                )))
            }
        };
        Ok(Predicate { column, op, rhs })
    }

    fn column_ref(&mut self) -> Result<ColumnRef, CqlError> {
        let first = self.ident()?;
        if self.eat_symbol('.') {
            let column = self.ident()?;
            Ok(ColumnRef {
                qualifier: Some(first),
                column,
            })
        } else {
            Ok(ColumnRef {
                qualifier: None,
                column: first,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_select_star() {
        let q = parse("SELECT * FROM trades").unwrap();
        assert_eq!(q.select, SelectList::Star);
        assert_eq!(q.from.stream, "trades");
        assert!(q.from.range.is_none());
        assert!(q.join.is_none());
        assert!(q.predicates.is_empty());
    }

    #[test]
    fn parses_range_alias_and_where() {
        let q = parse("SELECT price FROM trades[RANGE 500] AS t WHERE t.price < 100").unwrap();
        assert_eq!(q.from.range, Some(500));
        assert_eq!(q.from.alias.as_deref(), Some("t"));
        assert_eq!(q.from.binding(), "t");
        let p = &q.predicates[0];
        assert_eq!(p.column, ColumnRef::qualified("t", "price"));
        assert_eq!(p.op, CmpOp::Lt);
        assert_eq!(p.rhs, PredicateRhs::Literal(100));
    }

    #[test]
    fn parses_gt_and_column_rhs() {
        let q = parse("SELECT key FROM sys.handlers WHERE p99 > period").unwrap();
        assert_eq!(q.from.stream, "sys.handlers");
        let p = &q.predicates[0];
        assert_eq!(p.op, CmpOp::Gt);
        assert_eq!(p.rhs, PredicateRhs::Column(ColumnRef::bare("period")));
        let q = parse("SELECT * FROM s WHERE x > 10").unwrap();
        assert_eq!(q.predicates[0].op, CmpOp::Gt);
        assert_eq!(q.predicates[0].rhs, PredicateRhs::Literal(10));
    }

    #[test]
    fn parses_dotted_stream_names() {
        let q = parse("SELECT * FROM sys.quarantine AS q WHERE q.trips > 0").unwrap();
        assert_eq!(q.from.stream, "sys.quarantine");
        assert_eq!(q.from.binding(), "q");
        assert!(parse("SELECT * FROM sys.").is_err());
    }

    #[test]
    fn parses_conjunctive_where() {
        let q = parse("SELECT * FROM t WHERE a < 5 AND b = 3 AND c < 9").unwrap();
        assert_eq!(q.predicates.len(), 3);
        assert_eq!(q.predicates[1].column, ColumnRef::bare("b"));
        assert_eq!(q.predicates[1].op, CmpOp::Eq);
        assert!(parse("SELECT * FROM t WHERE a < 5 AND").is_err());
    }

    #[test]
    fn parses_join() {
        let q = parse(
            "SELECT t.price, q.bid FROM trades[RANGE 100] AS t \
             JOIN quotes[RANGE 50] AS q ON t.sym = q.sym",
        )
        .unwrap();
        let j = q.join.unwrap();
        assert_eq!(j.stream.stream, "quotes");
        assert_eq!(j.stream.range, Some(50));
        assert_eq!(j.on.0, ColumnRef::qualified("t", "sym"));
        assert_eq!(j.on.1, ColumnRef::qualified("q", "sym"));
        match q.select {
            SelectList::Columns(cols) => assert_eq!(cols.len(), 2),
            other => panic!("unexpected select {other:?}"),
        }
    }

    #[test]
    fn parses_aggregates() {
        let q = parse("SELECT COUNT(*) FROM s[RANGE 10]").unwrap();
        assert_eq!(
            q.select,
            SelectList::Aggregate {
                func: AggFn::Count,
                arg: None
            }
        );
        let q = parse("SELECT AVG(price) FROM s[RANGE 10]").unwrap();
        assert_eq!(
            q.select,
            SelectList::Aggregate {
                func: AggFn::Avg,
                arg: Some(ColumnRef::bare("price"))
            }
        );
    }

    #[test]
    fn rejects_malformed_queries() {
        for bad in [
            "FROM s",
            "SELECT",
            "SELECT * FROM",
            "SELECT * FROM s WHERE x >",   // missing right-hand side
            "SELECT * FROM s WHERE x > *", // bad right-hand side
            "SELECT * FROM s[RANGE 0]",
            "SELECT * FROM s JOIN t ON a = ",
            "SELECT COUNT(price) FROM s",
            "SELECT * FROM s extra",
        ] {
            assert!(parse(bad).is_err(), "accepted: {bad}");
        }
    }
}
