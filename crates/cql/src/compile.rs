//! Compilation of parsed queries onto the query graph.
//!
//! The compiler resolves stream names through a [`Catalog`] of registered
//! sources (enabling subquery sharing: two queries over the same stream
//! share the source node), resolves column references against the
//! schemas, and materialises window, join, filter, projection and
//! aggregation operators plus a collecting sink.

use std::collections::HashMap;

use std::sync::Arc;

use streammeta_core::{MetadataManager, NodeId};
use streammeta_graph::{
    AggKind, Cmp, CollectHandle, FilterPredicate, JoinPredicate, QueryGraph, StateImpl,
    WindowHandle,
};
use streammeta_streams::Schema;
use streammeta_time::TimeSpan;

use crate::ast::{AggFn, CmpOp, ColumnRef, PredicateRhs, Query, SelectList, StreamClause};
use crate::error::CqlError;

/// Maps stream names to registered source nodes.
#[derive(Default)]
pub struct Catalog {
    streams: HashMap<String, NodeId>,
    /// The manager whose system relations (`sys.*`) this catalog can
    /// query directly (see [`crate::query_once`]); installed by
    /// [`crate::attach_system`].
    pub(crate) system: Option<Arc<MetadataManager>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a stream name for a source node. Refuses to overwrite:
    /// a name that is already bound yields
    /// [`CqlError::DuplicateSource`] naming the existing binding, so a
    /// mis-typed re-registration cannot silently redirect running
    /// queries. Use [`Self::register_replacing`] for replace semantics.
    pub fn register(&mut self, name: impl Into<String>, source: NodeId) -> Result<(), CqlError> {
        let name = name.into();
        if let Some(&existing) = self.streams.get(&name) {
            return Err(CqlError::DuplicateSource { name, existing });
        }
        self.streams.insert(name, source);
        Ok(())
    }

    /// Registers a stream name, replacing any existing binding and
    /// returning the node the name previously pointed at.
    pub fn register_replacing(
        &mut self,
        name: impl Into<String>,
        source: NodeId,
    ) -> Option<NodeId> {
        self.streams.insert(name.into(), source)
    }

    /// Looks a stream up.
    pub fn get(&self, name: &str) -> Option<NodeId> {
        self.streams.get(name).copied()
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.streams.keys().map(String::as_str).collect();
        v.sort();
        v
    }

    /// The manager attached by [`crate::attach_system`], if any.
    pub fn system(&self) -> Option<&Arc<MetadataManager>> {
        self.system.as_ref()
    }
}

/// The materialised plan of one compiled query.
pub struct CompiledQuery {
    /// The sink node.
    pub sink: NodeId,
    /// Read handle on the query results.
    pub results: CollectHandle,
    /// Window operators created for `[RANGE n]` clauses, with their
    /// adjustable size handles (for the resource manager).
    pub windows: Vec<(NodeId, WindowHandle)>,
    /// The join node, if the query has one.
    pub join: Option<NodeId>,
    /// The last filter node, if the query has a WHERE clause.
    pub filter: Option<NodeId>,
    /// Schema of the result stream.
    pub output_schema: Schema,
}

impl std::fmt::Debug for CompiledQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledQuery")
            .field("sink", &self.sink)
            .field("windows", &self.windows.len())
            .field("join", &self.join)
            .field("filter", &self.filter)
            .field("output_schema", &self.output_schema.to_string())
            .finish()
    }
}

/// Name-resolution scope: one binding per input stream with its column
/// offset in the (possibly concatenated) schema. Shared with the
/// catalog query path, which resolves against relation schemas.
pub(crate) struct Scope {
    bindings: Vec<(String, Schema, usize)>,
}

impl Scope {
    pub(crate) fn single(binding: &str, schema: Schema) -> Self {
        Scope {
            bindings: vec![(binding.to_owned(), schema, 0)],
        }
    }

    fn joined(left: &Scope, right: &Scope, left_width: usize) -> Result<Scope, CqlError> {
        let mut bindings = left.bindings.clone();
        for (name, schema, off) in &right.bindings {
            if bindings.iter().any(|(n, _, _)| n == name) {
                return Err(CqlError::compile(format!(
                    "duplicate stream binding {name}; use AS aliases"
                )));
            }
            bindings.push((name.clone(), schema.clone(), off + left_width));
        }
        Ok(Scope { bindings })
    }

    pub(crate) fn resolve(&self, col: &ColumnRef) -> Result<usize, CqlError> {
        let mut matches = Vec::new();
        for (binding, schema, offset) in &self.bindings {
            if let Some(q) = &col.qualifier {
                if q != binding {
                    continue;
                }
            }
            if let Some(idx) = schema.index_of(&col.column) {
                matches.push(offset + idx);
            }
        }
        match matches.len() {
            0 => Err(CqlError::compile(format!("unknown column {col}"))),
            1 => Ok(matches[0]),
            _ => Err(CqlError::compile(format!("ambiguous column {col}"))),
        }
    }
}

fn window_if_ranged(
    graph: &QueryGraph,
    input: NodeId,
    clause: &StreamClause,
    windows: &mut Vec<(NodeId, WindowHandle)>,
) -> NodeId {
    match clause.range {
        Some(n) => {
            let (w, h) =
                graph.time_window(&format!("{}-window", clause.binding()), input, TimeSpan(n));
            windows.push((w, h));
            w
        }
        None => input,
    }
}

/// Compiles `query` onto `graph`, resolving streams through `catalog`.
pub fn compile(
    graph: &QueryGraph,
    catalog: &Catalog,
    query: &Query,
) -> Result<CompiledQuery, CqlError> {
    let resolve_stream = |clause: &StreamClause| -> Result<NodeId, CqlError> {
        catalog
            .get(&clause.stream)
            .ok_or_else(|| CqlError::compile(format!("unknown stream {}", clause.stream)))
    };

    // FROM.
    let left_src = resolve_stream(&query.from)?;
    let left_schema = graph.output_schema(left_src);
    let mut windows = Vec::new();
    let mut head = window_if_ranged(graph, left_src, &query.from, &mut windows);
    let mut scope = Scope::single(query.from.binding(), left_schema.clone());
    let mut join_node = None;

    // JOIN.
    if let Some(join) = &query.join {
        if query.from.range.is_none() || join.stream.range.is_none() {
            return Err(CqlError::compile(
                "stream joins require [RANGE n] windows on both inputs",
            ));
        }
        let right_src = resolve_stream(&join.stream)?;
        let right_schema = graph.output_schema(right_src);
        let right_head = window_if_ranged(graph, right_src, &join.stream, &mut windows);
        let right_scope = Scope::single(join.stream.binding(), right_schema.clone());

        // The ON columns may be written in either order.
        let (a, b) = &join.on;
        let (left_col, right_col) = match (scope.resolve(a), right_scope.resolve(b)) {
            (Ok(l), Ok(r)) => (l, r),
            _ => match (scope.resolve(b), right_scope.resolve(a)) {
                (Ok(l), Ok(r)) => (l, r),
                _ => {
                    return Err(CqlError::compile(format!(
                        "cannot resolve join condition {a} = {b}"
                    )))
                }
            },
        };
        let left_width = left_schema.arity();
        head = graph.join(
            &format!("{}-join-{}", query.from.binding(), join.stream.binding()),
            head,
            right_head,
            JoinPredicate::EqAttr {
                left: left_col,
                right: right_col,
            },
            StateImpl::Hash,
        );
        join_node = Some(head);
        scope = Scope::joined(&scope, &right_scope, left_width)?;
    }

    // WHERE: a conjunction compiles to stacked filters, each carrying
    // its own measurable selectivity.
    let mut filter_node = None;
    for pred in &query.predicates {
        let col = scope.resolve(&pred.column)?;
        let predicate = match &pred.rhs {
            PredicateRhs::Literal(value) => match pred.op {
                CmpOp::Lt => FilterPredicate::AttrLt { col, bound: *value },
                CmpOp::Eq => FilterPredicate::AttrEq { col, value: *value },
                CmpOp::Gt => FilterPredicate::AttrGt { col, bound: *value },
            },
            PredicateRhs::Column(rhs_col) => {
                let right = scope.resolve(rhs_col)?;
                let cmp = match pred.op {
                    CmpOp::Lt => Cmp::Lt,
                    CmpOp::Eq => Cmp::Eq,
                    CmpOp::Gt => Cmp::Gt,
                };
                FilterPredicate::AttrCmpCol {
                    left: col,
                    right,
                    cmp,
                }
            }
        };
        head = graph.filter(&format!("where-{}", pred.column), head, predicate, 0);
        filter_node = Some(head);
    }

    // SELECT.
    match &query.select {
        SelectList::Star => {}
        SelectList::Columns(cols) => {
            let indices = cols
                .iter()
                .map(|c| scope.resolve(c))
                .collect::<Result<Vec<_>, _>>()?;
            head = graph.project("select", head, indices);
        }
        SelectList::Aggregate { func, arg } => {
            if query.from.range.is_none() && query.join.is_none() {
                return Err(CqlError::compile("aggregates require a [RANGE n] window"));
            }
            let (kind, col) = match (func, arg) {
                (AggFn::Count, None) => (AggKind::Count, 0),
                (AggFn::Sum, Some(c)) => (AggKind::Sum, scope.resolve(c)?),
                (AggFn::Avg, Some(c)) => (AggKind::Avg, scope.resolve(c)?),
                (AggFn::Min, Some(c)) => (AggKind::Min, scope.resolve(c)?),
                (AggFn::Max, Some(c)) => (AggKind::Max, scope.resolve(c)?),
                _ => return Err(CqlError::compile("malformed aggregate")),
            };
            head = graph.aggregate("aggregate", head, kind, col);
        }
    }

    let output_schema = graph.output_schema(head);
    let (sink, results) = graph.sink_collect("query-sink", head);
    Ok(CompiledQuery {
        sink,
        results,
        windows,
        join: join_node,
        filter: filter_node,
        output_schema,
    })
}

/// Parses and compiles in one step.
pub fn install(
    graph: &QueryGraph,
    catalog: &Catalog,
    query_text: &str,
) -> Result<CompiledQuery, CqlError> {
    let query = crate::parser::parse(query_text)?;
    compile(graph, catalog, &query)
}
