//! CQL errors.

use std::fmt;

use streammeta_core::NodeId;

/// Errors raised while lexing, parsing or compiling a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CqlError {
    /// Tokenizer error.
    Lex(String),
    /// Parser error.
    Parse(String),
    /// Compilation error (unknown stream/column, type mismatch, …).
    Compile(String),
    /// [`crate::Catalog::register`] refused to overwrite an existing
    /// stream name (use [`crate::Catalog::register_replacing`] for
    /// replace semantics).
    DuplicateSource {
        /// The already-registered stream name.
        name: String,
        /// The source node the name is currently bound to.
        existing: NodeId,
    },
}

impl CqlError {
    pub(crate) fn lex(msg: impl Into<String>) -> Self {
        CqlError::Lex(msg.into())
    }
    pub(crate) fn parse(msg: impl Into<String>) -> Self {
        CqlError::Parse(msg.into())
    }
    pub(crate) fn compile(msg: impl Into<String>) -> Self {
        CqlError::Compile(msg.into())
    }
}

impl fmt::Display for CqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CqlError::Lex(m) => write!(f, "lex error: {m}"),
            CqlError::Parse(m) => write!(f, "parse error: {m}"),
            CqlError::Compile(m) => write!(f, "compile error: {m}"),
            CqlError::DuplicateSource { name, existing } => write!(
                f,
                "duplicate source: {name} is already registered for node {existing}"
            ),
        }
    }
}

impl std::error::Error for CqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes_stage() {
        assert!(CqlError::lex("x").to_string().starts_with("lex error"));
        assert!(CqlError::parse("x").to_string().starts_with("parse error"));
        assert!(CqlError::compile("x")
            .to_string()
            .starts_with("compile error"));
    }
}
