//! Tokenizer for the CQL subset.

use std::fmt;

use crate::error::CqlError;

/// One token of a query string.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Case-insensitive keyword (stored uppercase).
    Keyword(&'static str),
    /// Identifier (stream, column or alias name).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Punctuation or operator.
    Symbol(char),
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{k}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Symbol(c) => write!(f, "{c}"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "JOIN", "ON", "AS", "RANGE", "AND", "COUNT", "SUM", "AVG", "MIN",
    "MAX",
];

/// Splits a query string into tokens.
pub fn tokenize(input: &str) -> Result<Vec<Token>, CqlError> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut word = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        word.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let upper = word.to_ascii_uppercase();
                match KEYWORDS.iter().find(|k| **k == upper) {
                    Some(k) => tokens.push(Token::Keyword(k)),
                    None => tokens.push(Token::Ident(word)),
                }
            }
            c if c.is_ascii_digit() => {
                let mut n: i64 = 0;
                while let Some(&c) = chars.peek() {
                    if let Some(d) = c.to_digit(10) {
                        n = n
                            .checked_mul(10)
                            .and_then(|n| n.checked_add(d as i64))
                            .ok_or_else(|| CqlError::lex("integer literal overflows i64"))?;
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Int(n));
            }
            '*' | ',' | '.' | '(' | ')' | '[' | ']' | '<' | '>' | '=' => {
                tokens.push(Token::Symbol(c));
                chars.next();
            }
            other => {
                return Err(CqlError::lex(format!("unexpected character {other:?}")));
            }
        }
    }
    tokens.push(Token::Eof);
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_query() {
        let t = tokenize("SELECT * FROM trades[RANGE 100] WHERE price < 42").unwrap();
        assert_eq!(t[0], Token::Keyword("SELECT"));
        assert_eq!(t[1], Token::Symbol('*'));
        assert_eq!(t[3], Token::Ident("trades".into()));
        assert!(t.contains(&Token::Keyword("RANGE")));
        assert!(t.contains(&Token::Int(100)));
        assert!(t.contains(&Token::Symbol('<')));
        assert_eq!(*t.last().unwrap(), Token::Eof);
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let t = tokenize("select from").unwrap();
        assert_eq!(t[0], Token::Keyword("SELECT"));
        assert_eq!(t[1], Token::Keyword("FROM"));
    }

    #[test]
    fn identifiers_keep_their_case() {
        let t = tokenize("Trades").unwrap();
        assert_eq!(t[0], Token::Ident("Trades".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("SELECT %").is_err());
    }

    #[test]
    fn rejects_overflow() {
        assert!(tokenize("SELECT 99999999999999999999999").is_err());
    }
}
