//! CQL over the framework's own state: the `sys.*` system relations.
//!
//! `streammeta-core` materialises the metadata graph as typed relations
//! ([`SystemRelation`]); this module makes them *queryable* three ways:
//!
//! 1. **Stream sources** — [`register_system_sources`] installs one
//!    graph source per relation, each periodically re-snapshotting its
//!    relation as a batch of tuples, so ordinary [`crate::compile`] /
//!    [`crate::install`] queries can range over `sys.handlers` exactly
//!    like over a data stream.
//! 2. **One-shot queries** — [`query_once`] evaluates a query directly
//!    against a relation snapshot, without touching the graph (the
//!    dashboard/CLI path).
//! 3. **Continuous queries** — [`install_continuous`] turns a query
//!    into a periodic metadata item on [`CATALOG_NODE`]; its matches
//!    re-evaluate on the manager's own update machinery and observers
//!    fire through normal observer delivery. This is the alerting
//!    primitive: `SELECT key FROM sys.handlers WHERE p99 > period`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

use streammeta_core::{
    ItemDef, MetadataKey, MetadataManager, MetadataValue, NodeRegistry, Subscription,
    SystemRelation, CATALOG_NODE,
};
use streammeta_graph::QueryGraph;
use streammeta_streams::{tuple, Element, Generator, Schema, Value, ValueType};
use streammeta_time::{TimeSpan, Timestamp};

use crate::ast::{AggFn, CmpOp, PredicateRhs, Query, SelectList};
use crate::compile::{Catalog, Scope};
use crate::error::CqlError;
use crate::parser::parse;

/// The stream schema of a system relation: text-like columns map to
/// `Str`, flags to `Bool`, everything else (counts, spans, instants) to
/// `Int`.
pub fn relation_schema(relation: SystemRelation) -> Schema {
    Schema::new(relation.columns().iter().map(|c| {
        let ty = match c.name {
            "degraded" | "certain" | "up" => ValueType::Bool,
            "key" | "item" | "mechanism" | "source" | "source_kind" | "dependent" | "role"
            | "state" | "kind" | "detail" => ValueType::Str,
            _ => ValueType::Int,
        };
        streammeta_streams::Field::new(c.name, ty)
    }))
}

/// Converts one catalog cell to a stream value. Spans and instants
/// flatten to their integer time units so predicates can compare them
/// (`p99 > period`); unavailable cells and histograms become `Null`,
/// which no comparison matches.
pub fn cell_to_value(cell: &MetadataValue) -> Value {
    match cell {
        MetadataValue::Unavailable | MetadataValue::Histogram(_) => Value::Null,
        MetadataValue::F64(v) => Value::Float(*v),
        MetadataValue::I64(v) => Value::Int(*v),
        MetadataValue::U64(v) => Value::Int(*v as i64),
        MetadataValue::Bool(b) => Value::Bool(*b),
        MetadataValue::Text(s) => Value::Str(s.clone()),
        MetadataValue::Span(s) => Value::Int(s.0 as i64),
        MetadataValue::Time(t) => Value::Int(t.0 as i64),
    }
}

/// Numeric view of a catalog cell for predicate evaluation. Text,
/// unavailable cells and histograms are non-numeric: predicates over
/// them never match.
fn cell_f64(cell: &MetadataValue) -> Option<f64> {
    match cell {
        MetadataValue::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
        other => other.as_f64(),
    }
}

/// A live stream source materialising one system relation: every
/// `refresh` units of manager time it snapshots the relation and emits
/// its rows as one batch of tuples stamped with the boundary time.
struct CatalogSource {
    manager: Weak<MetadataManager>,
    relation: SystemRelation,
    schema: Schema,
    refresh: TimeSpan,
    next_at: Timestamp,
    batch: VecDeque<Element>,
}

impl CatalogSource {
    fn new(manager: &Arc<MetadataManager>, relation: SystemRelation, refresh: TimeSpan) -> Self {
        CatalogSource {
            manager: Arc::downgrade(manager),
            relation,
            schema: relation_schema(relation),
            refresh: TimeSpan(refresh.0.max(1)),
            next_at: manager.clock().now(),
            batch: VecDeque::new(),
        }
    }
}

impl Generator for CatalogSource {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_element(&mut self) -> Option<Element> {
        if let Some(e) = self.batch.pop_front() {
            return Some(e);
        }
        // Manager gone: the relation stream genuinely ends.
        let manager = self.manager.upgrade()?;
        let now = manager.clock().now();
        while self.batch.is_empty() {
            if self.next_at > now {
                // Nothing yet — being live, the engine will ask again.
                return None;
            }
            let at = self.next_at;
            self.next_at = at + self.refresh;
            for row in manager.catalog_rows(self.relation) {
                let payload = tuple(row.iter().map(cell_to_value));
                self.batch.push_back(Element::new(payload, at));
            }
        }
        self.batch.pop_front()
    }

    fn live(&self) -> bool {
        true
    }
}

/// Attaches `manager` as the catalog's system side: [`query_once`] and
/// [`install_continuous`] evaluate against its relations.
pub fn attach_system(catalog: &mut Catalog, manager: Arc<MetadataManager>) {
    catalog.system = Some(manager);
}

/// Registers all `sys.*` relations as live stream sources on
/// `graph`, refreshed every `refresh` units of manager time, so stream
/// queries (including joins and windows) can range over them. Requires
/// [`attach_system`] first; fails with [`CqlError::DuplicateSource`] if
/// a `sys.*` name is already taken.
pub fn register_system_sources(
    graph: &QueryGraph,
    catalog: &mut Catalog,
    refresh: TimeSpan,
) -> Result<(), CqlError> {
    let manager = catalog
        .system()
        .cloned()
        .ok_or_else(|| CqlError::Compile("attach_system before register_system_sources".into()))?;
    for relation in SystemRelation::ALL {
        let src = graph.source(
            relation.name(),
            Box::new(CatalogSource::new(&manager, relation, refresh)),
        );
        catalog.register(relation.name(), src)?;
    }
    Ok(())
}

/// How a relation query's matched rows project.
enum PlanOutput {
    Star,
    Columns(Vec<usize>),
    Aggregate { func: AggFn, col: Option<usize> },
}

/// Right-hand side of one resolved predicate.
enum RhsIx {
    Lit(i64),
    Col(usize),
}

/// A query resolved against one system relation's schema.
struct RelationPlan {
    relation: SystemRelation,
    predicates: Vec<(usize, CmpOp, RhsIx)>,
    output: PlanOutput,
    /// Output column labels.
    columns: Vec<String>,
}

impl RelationPlan {
    fn build(query: &Query) -> Result<RelationPlan, CqlError> {
        let relation = SystemRelation::by_name(&query.from.stream).ok_or_else(|| {
            CqlError::Compile(format!("unknown system relation {}", query.from.stream))
        })?;
        if query.join.is_some() {
            return Err(CqlError::Compile(
                "joins over system relations need stream sources (register_system_sources)".into(),
            ));
        }
        if query.from.range.is_some() {
            return Err(CqlError::Compile(
                "RANGE windows do not apply to relation snapshots".into(),
            ));
        }
        let schema = relation_schema(relation);
        let scope = Scope::single(query.from.binding(), schema.clone());
        let mut predicates = Vec::new();
        for pred in &query.predicates {
            let col = scope.resolve(&pred.column)?;
            let rhs = match &pred.rhs {
                PredicateRhs::Literal(v) => RhsIx::Lit(*v),
                PredicateRhs::Column(c) => RhsIx::Col(scope.resolve(c)?),
            };
            predicates.push((col, pred.op, rhs));
        }
        let all_names = || {
            relation
                .columns()
                .iter()
                .map(|c| c.name.to_string())
                .collect::<Vec<_>>()
        };
        let (output, columns) = match &query.select {
            SelectList::Star => (PlanOutput::Star, all_names()),
            SelectList::Columns(cols) => {
                let mut indices = Vec::new();
                let mut names = Vec::new();
                for c in cols {
                    indices.push(scope.resolve(c)?);
                    names.push(c.column.clone());
                }
                (PlanOutput::Columns(indices), names)
            }
            SelectList::Aggregate { func, arg } => {
                let col = match (func, arg) {
                    (AggFn::Count, None) => None,
                    (AggFn::Count, Some(_)) | (_, None) => {
                        return Err(CqlError::Compile("malformed aggregate".into()))
                    }
                    (_, Some(c)) => Some(scope.resolve(c)?),
                };
                let label = match func {
                    AggFn::Count => "count",
                    AggFn::Sum => "sum",
                    AggFn::Avg => "avg",
                    AggFn::Min => "min",
                    AggFn::Max => "max",
                };
                (
                    PlanOutput::Aggregate { func: *func, col },
                    vec![label.to_string()],
                )
            }
        };
        Ok(RelationPlan {
            relation,
            predicates,
            output,
            columns,
        })
    }

    fn matches(&self, row: &[MetadataValue]) -> bool {
        self.predicates.iter().all(|(col, op, rhs)| {
            let Some(l) = row.get(*col).and_then(cell_f64) else {
                return false;
            };
            let r = match rhs {
                RhsIx::Lit(v) => Some(*v as f64),
                RhsIx::Col(j) => row.get(*j).and_then(cell_f64),
            };
            let Some(r) = r else { return false };
            match op {
                CmpOp::Lt => l < r,
                CmpOp::Eq => l == r,
                CmpOp::Gt => l > r,
            }
        })
    }

    /// Filters and projects a relation snapshot.
    fn evaluate(&self, rows: Vec<Vec<MetadataValue>>) -> Vec<Vec<MetadataValue>> {
        let matched = rows.into_iter().filter(|r| self.matches(r));
        match &self.output {
            PlanOutput::Star => matched.collect(),
            PlanOutput::Columns(indices) => matched
                .map(|row| {
                    indices
                        .iter()
                        .map(|&i| row.get(i).cloned().unwrap_or(MetadataValue::Unavailable))
                        .collect()
                })
                .collect(),
            PlanOutput::Aggregate { func, col } => {
                let cells: Vec<f64> = match col {
                    None => matched.map(|_| 1.0).collect(),
                    Some(i) => matched
                        .filter_map(|r| r.get(*i).and_then(cell_f64))
                        .collect(),
                };
                let value = match func {
                    AggFn::Count => Some(cells.len() as f64),
                    AggFn::Sum => Some(cells.iter().sum()),
                    AggFn::Avg if cells.is_empty() => None,
                    AggFn::Avg => Some(cells.iter().sum::<f64>() / cells.len() as f64),
                    AggFn::Min => cells.iter().copied().reduce(f64::min),
                    AggFn::Max => cells.iter().copied().reduce(f64::max),
                };
                vec![vec![
                    value.map_or(MetadataValue::Unavailable, MetadataValue::F64)
                ]]
            }
        }
    }
}

/// Result of a one-shot relation query: labelled rows of catalog cells.
#[derive(Debug)]
pub struct RelationResult {
    /// Output column labels.
    pub columns: Vec<String>,
    /// Matched (and projected) rows.
    pub rows: Vec<Vec<MetadataValue>>,
}

/// Evaluates `text` once against the current snapshot of a system
/// relation — no graph, no continuous execution. The catalog must have
/// a system side ([`attach_system`]).
pub fn query_once(catalog: &Catalog, text: &str) -> Result<RelationResult, CqlError> {
    let query = parse(text)?;
    let plan = RelationPlan::build(&query)?;
    let manager = catalog
        .system()
        .ok_or_else(|| CqlError::Compile("catalog has no system side (attach_system)".into()))?;
    let rows = plan.evaluate(manager.catalog_rows(plan.relation));
    Ok(RelationResult {
        columns: plan.columns,
        rows,
    })
}

/// Counter naming installed continuous catalog queries (`catalog.q0`,
/// `catalog.q1`, …) uniquely across the process.
static NEXT_QUERY: AtomicU64 = AtomicU64::new(0);

/// A continuous query installed over a system relation.
///
/// The query lives as a periodic metadata item on [`CATALOG_NODE`]:
/// every `period` the item re-evaluates the relation snapshot, stores
/// the matched rows, and publishes a digest value. Because the digest
/// only changes when the *result set* changes, observers registered via
/// [`Self::observe`] fire exactly on result transitions — the normal
/// observer-delivery path of the metadata manager.
pub struct ContinuousQuery {
    manager: Arc<MetadataManager>,
    key: MetadataKey,
    columns: Vec<String>,
    matches: Arc<Mutex<Vec<Vec<MetadataValue>>>>,
    /// Keeps the item included for the query's lifetime.
    subscription: Subscription,
}

impl ContinuousQuery {
    /// The metadata key of the query's item on [`CATALOG_NODE`].
    pub fn key(&self) -> &MetadataKey {
        &self.key
    }

    /// Output column labels.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The rows matched by the most recent evaluation.
    pub fn matches(&self) -> Vec<Vec<MetadataValue>> {
        self.matches.lock().expect("matches lock").clone()
    }

    /// The current digest value (or aggregate result) of the query.
    pub fn current(&self) -> MetadataValue {
        self.subscription.get()
    }

    /// Registers a push observer on the query item: `callback` fires
    /// through normal observer delivery whenever the result set
    /// changes. Returns the observing subscription; dropping it
    /// deregisters the observer.
    pub fn observe(
        &self,
        callback: impl Fn(&streammeta_core::VersionedValue) + Send + Sync + 'static,
    ) -> Result<Subscription, CqlError> {
        self.manager
            .subscribe_with(self.key.clone(), callback)
            .map_err(|e| CqlError::Compile(format!("observer subscription failed: {e}")))
    }
}

impl std::fmt::Debug for ContinuousQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContinuousQuery")
            .field("key", &self.key)
            .field("columns", &self.columns)
            .finish_non_exhaustive()
    }
}

/// Installs `text` as a continuous query over a system relation,
/// re-evaluated every `period` of manager time. See [`ContinuousQuery`].
pub fn install_continuous(
    catalog: &Catalog,
    text: &str,
    period: TimeSpan,
) -> Result<ContinuousQuery, CqlError> {
    let query = parse(text)?;
    let plan = RelationPlan::build(&query)?;
    let manager = catalog
        .system()
        .cloned()
        .ok_or_else(|| CqlError::Compile("catalog has no system side (attach_system)".into()))?;

    let registry = match manager.registry(CATALOG_NODE) {
        Some(r) => r,
        None => {
            let r = NodeRegistry::new(CATALOG_NODE);
            manager.attach_node(r.clone());
            r
        }
    };
    let path = format!("catalog.q{}", NEXT_QUERY.fetch_add(1, Ordering::Relaxed));
    let matches: Arc<Mutex<Vec<Vec<MetadataValue>>>> = Arc::new(Mutex::new(Vec::new()));
    let columns = plan.columns.clone();
    let aggregate = matches!(plan.output, PlanOutput::Aggregate { .. });
    let weak = Arc::downgrade(&manager);
    let matches_w = matches.clone();
    registry.define(
        ItemDef::periodic(path.as_str(), period)
            .doc(format!("continuous catalog query: {text}"))
            .compute(move |_ctx| {
                let Some(mgr) = weak.upgrade() else {
                    return MetadataValue::Unavailable;
                };
                let rows = plan.evaluate(mgr.catalog_rows(plan.relation));
                let value = if aggregate {
                    rows.first()
                        .and_then(|r| r.first())
                        .cloned()
                        .unwrap_or(MetadataValue::Unavailable)
                } else {
                    MetadataValue::text(digest(&rows))
                };
                *matches_w.lock().expect("matches lock") = rows;
                value
            })
            .build(),
    );
    let key = MetadataKey::new(CATALOG_NODE, path.as_str());
    let subscription = manager
        .subscribe(key.clone())
        .map_err(|e| CqlError::Compile(format!("installing {path} failed: {e}")))?;
    Ok(ContinuousQuery {
        manager,
        key,
        columns,
        matches,
        subscription,
    })
}

/// Digest of a result set: row count plus every projected cell, so any
/// change in the matched rows changes the stored value (and wakes
/// observers), while identical consecutive evaluations do not.
fn digest(rows: &[Vec<MetadataValue>]) -> String {
    let mut out = format!("{} rows", rows.len());
    for row in rows {
        out.push(';');
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                out.push('|');
            }
            out.push_str(&cell.to_string());
        }
    }
    out
}
