//! Abstract syntax of the CQL subset.
//!
//! ```text
//! query        := SELECT select_list FROM stream_clause
//!                 (JOIN stream_clause ON qualified = qualified)?
//!                 (WHERE predicate (AND predicate)*)?
//! predicate    := qualified op (int | qualified)
//! select_list  := '*' | aggregate | qualified (',' qualified)*
//! aggregate    := COUNT '(' '*' ')' | (SUM|AVG|MIN|MAX) '(' qualified ')'
//! stream_clause:= stream_name ('[' RANGE int ']')? (AS ident)?
//! stream_name  := ident ('.' ident)*
//! op           := '<' | '=' | '>'
//! ```
//!
//! Dotted stream names address the system catalog (`sys.handlers`, …);
//! a predicate's right-hand side may be another column of the same
//! scope (`WHERE p99 > period`).

/// A possibly stream-qualified column reference (`price` or `t.price`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnRef {
    /// Optional stream name or alias qualifier.
    pub qualifier: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// A bare column.
    pub fn bare(column: impl Into<String>) -> Self {
        ColumnRef {
            qualifier: None,
            column: column.into(),
        }
    }

    /// A qualified column.
    pub fn qualified(q: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef {
            qualifier: Some(q.into()),
            column: column.into(),
        }
    }
}

impl std::fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    /// `COUNT(*)`.
    Count,
    /// `SUM(col)`.
    Sum,
    /// `AVG(col)`.
    Avg,
    /// `MIN(col)`.
    Min,
    /// `MAX(col)`.
    Max,
}

/// The SELECT list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectList {
    /// `SELECT *`.
    Star,
    /// `SELECT a, b.c, ...`.
    Columns(Vec<ColumnRef>),
    /// `SELECT COUNT(*)` / `SELECT AVG(x)`.
    Aggregate {
        /// The function.
        func: AggFn,
        /// Its argument (`None` for `COUNT(*)`).
        arg: Option<ColumnRef>,
    },
}

/// One stream reference in FROM/JOIN.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamClause {
    /// Registered stream name.
    pub stream: String,
    /// Sliding-window length (`[RANGE n]`), if any.
    pub range: Option<u64>,
    /// Alias (`AS t`), if any.
    pub alias: Option<String>,
}

impl StreamClause {
    /// The name the stream is addressed by downstream (alias wins).
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.stream)
    }
}

/// WHERE comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`.
    Lt,
    /// `=`.
    Eq,
    /// `>`.
    Gt,
}

/// The right-hand side of a WHERE comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredicateRhs {
    /// An integer literal (`p99 > 100000`).
    Literal(i64),
    /// Another column of the same scope (`p99 > period`).
    Column(ColumnRef),
}

/// One WHERE comparison: `column op (literal | column)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Predicate {
    /// Compared column.
    pub column: ColumnRef,
    /// Operator.
    pub op: CmpOp,
    /// Right-hand side.
    pub rhs: PredicateRhs,
}

/// The JOIN clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinClause {
    /// Right input.
    pub stream: StreamClause,
    /// Equality columns: `left = right` (sides resolved at compile time).
    pub on: (ColumnRef, ColumnRef),
}

/// A parsed continuous query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// The SELECT list.
    pub select: SelectList,
    /// The primary input.
    pub from: StreamClause,
    /// Optional join.
    pub join: Option<JoinClause>,
    /// Conjunctive WHERE predicates (empty = no filter).
    pub predicates: Vec<Predicate>,
}
