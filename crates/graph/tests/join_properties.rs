//! Property tests of the sliding-window join: both state implementations
//! must produce exactly the results of a brute-force reference model, and
//! window/aggregate invariants must hold for arbitrary inputs.

use std::collections::BTreeSet;

use proptest::prelude::*;
use streammeta_graph::{
    AggKind, JoinPredicate, NodeBehavior, NodeMonitors, SlidingWindowJoin, StateImpl,
    WindowAggregate,
};
use streammeta_streams::{tuple, Element, Schema, Value, ValueType};
use streammeta_time::{TimeSpan, Timestamp};

fn schema() -> Schema {
    Schema::of(&[("k", ValueType::Int), ("seq", ValueType::Int)])
}

/// (side, key, timestamp-increment): arrivals are interleaved over both
/// inputs with non-decreasing timestamps.
type Arrival = (bool, i64, u64);

/// Brute-force reference: all pairs (l, r) with matching keys and
/// overlapping validities, where validity = [ts, ts + window).
fn reference_join(arrivals: &[(bool, i64, u64)], window: u64) -> BTreeSet<(u64, u64)> {
    // Materialise (timestamp, key, seq) per side.
    let mut t = 0u64;
    let mut left = Vec::new();
    let mut right = Vec::new();
    for (i, &(is_left, key, dt)) in arrivals.iter().enumerate() {
        t += dt;
        let rec = (t, key, i as u64);
        if is_left {
            left.push(rec);
        } else {
            right.push(rec);
        }
    }
    let mut out = BTreeSet::new();
    for &(lt, lk, lseq) in &left {
        for &(rt, rk, rseq) in &right {
            if lk != rk {
                continue;
            }
            // The later element joins if the earlier is still valid at
            // its timestamp (strict expiry: valid while now < ts+window).
            let (early, late) = if lt <= rt { (lt, rt) } else { (rt, lt) };
            if late < early + window {
                out.insert((lseq, rseq));
            }
        }
    }
    out
}

fn run_join(arrivals: &[Arrival], window: u64, state: StateImpl) -> BTreeSet<(u64, u64)> {
    let m = NodeMonitors::new(2);
    let mut join = SlidingWindowJoin::new(
        JoinPredicate::EqAttr { left: 0, right: 0 },
        state,
        &schema(),
        &schema(),
        m,
    );
    let mut results = BTreeSet::new();
    let mut t = 0u64;
    let mut out = Vec::new();
    for (i, &(is_left, key, dt)) in arrivals.iter().enumerate() {
        t += dt;
        let e = Element::new(tuple([Value::Int(key), Value::Int(i as i64)]), Timestamp(t))
            .with_window(TimeSpan(window));
        out.clear();
        join.process(if is_left { 0 } else { 1 }, &e, Timestamp(t), &mut out);
        for r in &out {
            // Payload: [lk, lseq, rk, rseq].
            let lseq = r.payload[1].as_int().unwrap() as u64;
            let rseq = r.payload[3].as_int().unwrap() as u64;
            results.insert((lseq, rseq));
        }
    }
    results
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// List- and hash-based joins both equal the brute-force reference.
    #[test]
    fn join_matches_reference_model(
        arrivals in proptest::collection::vec(
            (prop::bool::ANY, 0i64..5, 0u64..15), 1..60),
        window in 1u64..40,
    ) {
        let expect = reference_join(&arrivals, window);
        let list = run_join(&arrivals, window, StateImpl::List);
        prop_assert_eq!(&list, &expect, "list join differs from reference");
        let hash = run_join(&arrivals, window, StateImpl::Hash);
        prop_assert_eq!(&hash, &expect, "hash join differs from reference");
        let ordered = run_join(&arrivals, window, StateImpl::Ordered);
        prop_assert_eq!(&ordered, &expect, "ordered join differs from reference");
    }

    /// The hash join never considers more candidate pairs than the list
    /// join (bucket pruning is sound).
    #[test]
    fn hash_join_considers_no_more_candidates(
        arrivals in proptest::collection::vec(
            (prop::bool::ANY, 0i64..5, 0u64..10), 1..60),
        window in 1u64..40,
    ) {
        let pairs_of = |state: StateImpl| {
            let m = NodeMonitors::new(2);
            m.pairs.activate();
            let mut join = SlidingWindowJoin::new(
                JoinPredicate::EqAttr { left: 0, right: 0 },
                state,
                &schema(),
                &schema(),
                m.clone(),
            );
            let mut t = 0u64;
            let mut out = Vec::new();
            for (i, &(is_left, key, dt)) in arrivals.iter().enumerate() {
                t += dt;
                let e = Element::new(
                    tuple([Value::Int(key), Value::Int(i as i64)]),
                    Timestamp(t),
                )
                .with_window(TimeSpan(window));
                out.clear();
                join.process(if is_left { 0 } else { 1 }, &e, Timestamp(t), &mut out);
            }
            m.pairs.value()
        };
        prop_assert!(pairs_of(StateImpl::Hash) <= pairs_of(StateImpl::List));
    }

    /// Band joins (|a - b| <= eps) over ordered state equal the
    /// brute-force reference, and the range probe never misses a match.
    #[test]
    fn band_join_matches_reference(
        arrivals in proptest::collection::vec(
            (prop::bool::ANY, 0i64..20, 0u64..10), 1..50),
        window in 1u64..40,
        eps in 0u64..4,
    ) {
        let eps = eps as f64;
        // Reference with the band predicate.
        let mut t = 0u64;
        let (mut left, mut right) = (Vec::new(), Vec::new());
        for (i, &(is_left, key, dt)) in arrivals.iter().enumerate() {
            t += dt;
            if is_left { left.push((t, key, i as u64)); } else { right.push((t, key, i as u64)); }
        }
        let mut expect = BTreeSet::new();
        for &(lt, lk, lseq) in &left {
            for &(rt, rk, rseq) in &right {
                if (lk - rk).abs() as f64 > eps { continue; }
                let (early, late) = if lt <= rt { (lt, rt) } else { (rt, lt) };
                if late < early + window {
                    expect.insert((lseq, rseq));
                }
            }
        }
        for state in [StateImpl::List, StateImpl::Ordered] {
            let m = NodeMonitors::new(2);
            let mut join = SlidingWindowJoin::new(
                JoinPredicate::Within { left: 0, right: 0, eps },
                state,
                &schema(),
                &schema(),
                m,
            );
            let mut got = BTreeSet::new();
            let mut t = 0u64;
            let mut out = Vec::new();
            for (i, &(is_left, key, dt)) in arrivals.iter().enumerate() {
                t += dt;
                let e = Element::new(
                    tuple([Value::Int(key), Value::Int(i as i64)]),
                    Timestamp(t),
                )
                .with_window(TimeSpan(window));
                out.clear();
                join.process(if is_left { 0 } else { 1 }, &e, Timestamp(t), &mut out);
                for r in &out {
                    got.insert((
                        r.payload[1].as_int().unwrap() as u64,
                        r.payload[3].as_int().unwrap() as u64,
                    ));
                }
            }
            prop_assert_eq!(&got, &expect, "state {:?}", state);
        }
    }

    /// A windowed count aggregate equals the number of elements whose
    /// validity covers the current arrival.
    #[test]
    fn window_count_matches_reference(
        gaps in proptest::collection::vec(0u64..20, 1..50),
        window in 1u64..50,
    ) {
        let mut agg = WindowAggregate::new(AggKind::Count, 0, NodeMonitors::new(1));
        let mut times = Vec::new();
        let mut t = 0u64;
        for (i, dt) in gaps.iter().enumerate() {
            t += dt;
            times.push(t);
            let e = Element::new(tuple([Value::Int(i as i64)]), Timestamp(t))
                .with_window(TimeSpan(window));
            let mut out = Vec::new();
            agg.process(0, &e, Timestamp(t), &mut out);
            let got = out[0].payload[0].as_float().unwrap();
            let expect = times.iter().filter(|&&ts| t < ts + window).count() as f64;
            prop_assert_eq!(got, expect, "at t={}", t);
        }
    }
}
