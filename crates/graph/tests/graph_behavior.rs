//! Integration tests of the query graph: wiring, element flow, per-node
//! metadata, module metadata, window resizing events, subquery sharing and
//! runtime query removal.

use std::sync::Arc;

use streammeta_core::{MetadataKey, MetadataManager, MetadataValue, NodeId};
use streammeta_graph::{
    AggKind, FilterPredicate, JoinPredicate, MetadataConfig, NodeKind, QueryGraph,
    SelectivityHandle, StateImpl,
};
use streammeta_streams::{tuple, ConstantRate, Element, TupleGen, Value};
use streammeta_time::{Clock, TimeSpan, Timestamp, VirtualClock};

fn setup() -> (Arc<VirtualClock>, Arc<MetadataManager>, QueryGraph) {
    let clock = VirtualClock::shared();
    let manager = MetadataManager::new(clock.clone());
    let graph = QueryGraph::with_config(
        manager.clone(),
        MetadataConfig {
            rate_window: TimeSpan(10),
        },
    );
    (clock, manager, graph)
}

/// Pushes an element through the graph starting at `node`, following all
/// downstream edges (depth-first, fine for trees).
fn push(graph: &QueryGraph, node: NodeId, port: usize, e: &Element, now: Timestamp) {
    let mut out = Vec::new();
    graph.process(node, port, e, now, &mut out);
    for produced in out {
        for (down, dport) in graph.downstream(node) {
            push(graph, down, dport, &produced, now);
        }
    }
}

fn int_elem(v: i64, ts: u64) -> Element {
    Element::new(tuple([Value::Int(v)]), Timestamp(ts))
}

#[test]
fn wiring_and_topology_queries() {
    let (_c, _m, g) = setup();
    let src = g.source(
        "s",
        Box::new(ConstantRate::new(
            Timestamp(0),
            TimeSpan(10),
            TupleGen::Sequence,
            1,
        )),
    );
    let (win, _h) = g.time_window("w", src, TimeSpan(50));
    let (sink, _out) = g.sink_collect("sink", win);
    assert_eq!(g.len(), 3);
    assert_eq!(g.kind(src), NodeKind::Source);
    assert_eq!(g.kind(win), NodeKind::Operator);
    assert_eq!(g.kind(sink), NodeKind::Sink);
    assert_eq!(g.downstream(src), vec![(win, 0)]);
    assert_eq!(g.upstream(win), vec![src]);
    assert_eq!(g.name(sink), "sink");
}

#[test]
fn source_pull_respects_virtual_time() {
    let (_c, _m, g) = setup();
    let src = g.source(
        "s",
        Box::new(ConstantRate::new(
            Timestamp(0),
            TimeSpan(10),
            TupleGen::Sequence,
            1,
        )),
    );
    assert_eq!(g.next_source_arrival(src), Some(Timestamp(10)));
    let mut out = Vec::new();
    g.pull_source(src, Timestamp(35), &mut out);
    assert_eq!(out.len(), 3); // t=10,20,30
    assert_eq!(g.next_source_arrival(src), Some(Timestamp(40)));
    out.clear();
    g.pull_source(src, Timestamp(35), &mut out);
    assert!(out.is_empty(), "nothing new before t=40");
}

#[test]
fn elements_flow_through_window_join_to_sink() {
    let (_c, _m, g) = setup();
    let s1 = g.source(
        "s1",
        Box::new(ConstantRate::new(
            Timestamp(0),
            TimeSpan(10),
            TupleGen::Sequence,
            1,
        )),
    );
    let s2 = g.source(
        "s2",
        Box::new(ConstantRate::new(
            Timestamp(0),
            TimeSpan(10),
            TupleGen::Sequence,
            2,
        )),
    );
    let (w1, _h1) = g.time_window("w1", s1, TimeSpan(100));
    let (w2, _h2) = g.time_window("w2", s2, TimeSpan(100));
    let join = g.join(
        "join",
        w1,
        w2,
        JoinPredicate::EqAttr { left: 0, right: 0 },
        StateImpl::Hash,
    );
    let (_sink, out) = g.sink_collect("sink", join);
    // Drive both sources by hand through the topology.
    for ts in [10u64, 20, 30] {
        for (src, win) in [(s1, w1), (s2, w2)] {
            let mut pulled = Vec::new();
            g.pull_source(src, Timestamp(ts), &mut pulled);
            for e in &pulled {
                push(&g, win, 0, e, Timestamp(ts));
            }
        }
    }
    // Same sequence numbers arrive at the same instants: seq 0,1,2 match.
    assert_eq!(out.len(), 3);
    let m = g.monitors(join);
    assert_eq!(g.downstream(w1), vec![(join, 0)]);
    assert_eq!(g.downstream(w2), vec![(join, 1)]);
    // Join results carry concatenated payloads.
    assert_eq!(out.snapshot()[0].payload.len(), 2);
    drop(m);
}

#[test]
fn filter_selectivity_is_measured() {
    let (clock, mgr, g) = setup();
    let src = g.source(
        "s",
        Box::new(ConstantRate::new(
            Timestamp(0),
            TimeSpan(1),
            TupleGen::Sequence,
            1,
        )),
    );
    let sel = SelectivityHandle::new(1.0);
    let f = g.filter("f", src, FilterPredicate::AttrLt { col: 0, bound: 5 }, 0);
    let _sink = g.sink_discard("d", f);
    let sub = mgr.subscribe(MetadataKey::new(f, "selectivity")).unwrap();
    // 10 elements, seq 0..9, five pass (< 5).
    for ts in 1..=10u64 {
        let mut pulled = Vec::new();
        g.pull_source(src, Timestamp(ts), &mut pulled);
        for e in &pulled {
            push(&g, f, 0, e, Timestamp(ts));
        }
    }
    clock.advance(TimeSpan(10));
    mgr.periodic().advance_to(clock.now());
    assert_eq!(sub.get_f64(), Some(0.5));
    drop(sel);
}

#[test]
fn join_module_metadata_is_reachable_and_memory_usage_is_overridden() {
    let (_c, mgr, g) = setup();
    let s1 = g.source(
        "s1",
        Box::new(ConstantRate::new(
            Timestamp(0),
            TimeSpan(10),
            TupleGen::Sequence,
            1,
        )),
    );
    let s2 = g.source(
        "s2",
        Box::new(ConstantRate::new(
            Timestamp(0),
            TimeSpan(10),
            TupleGen::Sequence,
            2,
        )),
    );
    let (w1, _) = g.time_window("w1", s1, TimeSpan(100));
    let (w2, _) = g.time_window("w2", s2, TimeSpan(100));
    let j = g.join(
        "j",
        w1,
        w2,
        JoinPredicate::EqAttr { left: 0, right: 0 },
        StateImpl::List,
    );
    // Module discovery: state.* items exist.
    let items = mgr.available_items(j).unwrap();
    let names: Vec<String> = items.iter().map(|p| p.as_str().to_owned()).collect();
    for expect in [
        "state.left.impl",
        "state.left.size",
        "state.left.memory_usage",
        "state.right.impl",
        "state.right.size",
        "state.right.memory_usage",
        "predicate_cost",
        "selectivity",
    ] {
        assert!(names.iter().any(|n| n == expect), "missing {expect}");
    }
    // Subscribing to memory_usage pulls in the module items (inter-module
    // dependency of Section 4.5).
    let mem = mgr.subscribe(MetadataKey::new(j, "memory_usage")).unwrap();
    assert!(mgr.is_included(&MetadataKey::new(j, "state.left.memory_usage")));
    assert_eq!(mem.get(), MetadataValue::U64(0));
    // Feed one element into each side (via the windows).
    push(&g, w1, 0, &int_elem(1, 10), Timestamp(10));
    push(&g, w2, 0, &int_elem(1, 11), Timestamp(11));
    let total = mem.get().as_u64().unwrap();
    assert!(total > 0);
    let left = mgr
        .read(&MetadataKey::new(j, "state.left.memory_usage"))
        .unwrap()
        .as_u64()
        .unwrap();
    let right = mgr
        .read(&MetadataKey::new(j, "state.right.memory_usage"))
        .unwrap()
        .as_u64()
        .unwrap();
    assert_eq!(total, left + right);
    let impl_item = mgr
        .subscribe(MetadataKey::new(j, "state.left.impl"))
        .unwrap();
    assert_eq!(impl_item.get(), MetadataValue::text("list"));
}

#[test]
fn window_resize_fires_event_for_dependents() {
    let (_c, mgr, g) = setup();
    let src = g.source(
        "s",
        Box::new(ConstantRate::new(
            Timestamp(0),
            TimeSpan(10),
            TupleGen::Sequence,
            1,
        )),
    );
    let (win, handle) = g.time_window("w", src, TimeSpan(100));
    // A consumer defines a triggered item over window_size elsewhere; here
    // we simply verify the built-in item plus event.
    let ws = mgr.subscribe(MetadataKey::new(win, "window_size")).unwrap();
    assert_eq!(ws.get(), MetadataValue::Span(TimeSpan(100)));
    g.resize_window(win, &handle, TimeSpan(40));
    assert_eq!(ws.get(), MetadataValue::Span(TimeSpan(40)));
    // New elements get the new validity.
    let mut out = Vec::new();
    g.process(win, 0, &int_elem(1, 200), Timestamp(200), &mut out);
    assert_eq!(out[0].expiry, Timestamp(240));
}

#[test]
fn aggregate_over_window() {
    let (_c, _m, g) = setup();
    let src = g.source(
        "s",
        Box::new(ConstantRate::new(
            Timestamp(0),
            TimeSpan(10),
            TupleGen::Sequence,
            1,
        )),
    );
    let (win, _) = g.time_window("w", src, TimeSpan(25));
    let agg = g.aggregate("cnt", win, AggKind::Count, 0);
    let (_sink, out) = g.sink_collect("sink", agg);
    for ts in [10u64, 20, 30, 40] {
        push(&g, win, 0, &int_elem(ts as i64, ts), Timestamp(ts));
    }
    let counts: Vec<f64> = out
        .snapshot()
        .iter()
        .map(|e| e.payload[0].as_float().unwrap())
        .collect();
    // Window 25: at t=30 the t=10 element is still valid (expiry 35);
    // at t=40 elements from t=10 (35) expired, t=20 (45), t=30 (55) valid.
    assert_eq!(counts, vec![1.0, 2.0, 3.0, 3.0]);
}

#[test]
fn subquery_sharing_keeps_shared_prefix_on_removal() {
    let (_c, mgr, g) = setup();
    let src = g.source(
        "s",
        Box::new(ConstantRate::new(
            Timestamp(0),
            TimeSpan(10),
            TupleGen::Sequence,
            1,
        )),
    );
    let f = g.filter("f", src, FilterPredicate::AttrLt { col: 0, bound: 100 }, 0);
    // Two queries share the filtered prefix.
    let (sink1, _h1) = g.sink_collect("q1", f);
    let agg = g.aggregate("agg", f, AggKind::Count, 0);
    let (sink2, _h2) = g.sink_collect("q2", agg);
    assert_eq!(g.len(), 5);
    // Removing query 2 removes its sink and aggregate, keeps src+f.
    let removed = g.remove_query(sink2);
    assert_eq!(removed, {
        let mut v = vec![agg, sink2];
        v.sort();
        v
    });
    assert_eq!(g.len(), 3);
    assert!(mgr.registry(agg).is_none(), "registry detached");
    assert!(mgr.registry(f).is_some());
    // Removing query 1 now removes everything.
    let removed = g.remove_query(sink1);
    assert_eq!(removed.len(), 3);
    assert!(g.is_empty());
}

#[test]
fn qos_metadata_at_sinks() {
    let (_c, mgr, g) = setup();
    let src = g.source(
        "s",
        Box::new(ConstantRate::new(
            Timestamp(0),
            TimeSpan(10),
            TupleGen::Sequence,
            1,
        )),
    );
    let (sink, _h) = g.sink_collect("sink", src);
    g.set_sink_qos(sink, 7, TimeSpan(500));
    let p = mgr
        .subscribe(MetadataKey::new(sink, "qos.priority"))
        .unwrap();
    let l = mgr
        .subscribe(MetadataKey::new(sink, "qos.max_latency"))
        .unwrap();
    assert_eq!(p.get(), MetadataValue::U64(7));
    assert_eq!(l.get(), MetadataValue::Span(TimeSpan(500)));
}

#[test]
fn per_port_rates_distinguish_join_inputs() {
    let (clock, mgr, g) = setup();
    let s1 = g.source(
        "s1",
        Box::new(ConstantRate::new(
            Timestamp(0),
            TimeSpan(10),
            TupleGen::Sequence,
            1,
        )),
    );
    let s2 = g.source(
        "s2",
        Box::new(ConstantRate::new(
            Timestamp(0),
            TimeSpan(10),
            TupleGen::Sequence,
            2,
        )),
    );
    let (w1, _) = g.time_window("w1", s1, TimeSpan(100));
    let (w2, _) = g.time_window("w2", s2, TimeSpan(100));
    let j = g.join(
        "j",
        w1,
        w2,
        JoinPredicate::EqAttr { left: 0, right: 0 },
        StateImpl::Hash,
    );
    let left_rate = mgr.subscribe(MetadataKey::new(j, "input_rate.0")).unwrap();
    let right_rate = mgr.subscribe(MetadataKey::new(j, "input_rate.1")).unwrap();
    // 10 elements to the left port, 5 to the right, over 10 time units.
    for i in 0..10u64 {
        push(&g, j, 0, &int_elem(i as i64, i + 1), Timestamp(i + 1));
        if i % 2 == 0 {
            push(&g, j, 1, &int_elem(-1, i + 1), Timestamp(i + 1));
        }
    }
    clock.advance(TimeSpan(10));
    mgr.periodic().advance_to(clock.now());
    assert_eq!(left_rate.get_f64(), Some(1.0));
    assert_eq!(right_rate.get_f64(), Some(0.5));
}

#[test]
fn reuse_count_tracks_subquery_sharing() {
    let (_c, mgr, g) = setup();
    let src = g.source(
        "s",
        Box::new(ConstantRate::new(
            Timestamp(0),
            TimeSpan(10),
            TupleGen::Sequence,
            1,
        )),
    );
    let reuse = mgr.subscribe(MetadataKey::new(src, "reuse_count")).unwrap();
    assert_eq!(reuse.get(), MetadataValue::U64(0));
    let (sink1, _h1) = g.sink_collect("q1", src);
    assert_eq!(reuse.get(), MetadataValue::U64(1));
    let _sink2 = g.sink_discard("q2", src);
    assert_eq!(reuse.get(), MetadataValue::U64(2));
    g.remove_query(sink1);
    assert_eq!(reuse.get(), MetadataValue::U64(1));
}

#[test]
fn join_state_swap_preserves_results_and_module_metadata() {
    let (_c, mgr, g) = setup();
    let s1 = g.source(
        "s1",
        Box::new(ConstantRate::new(
            Timestamp(0),
            TimeSpan(10),
            TupleGen::Sequence,
            1,
        )),
    );
    let s2 = g.source(
        "s2",
        Box::new(ConstantRate::new(
            Timestamp(0),
            TimeSpan(10),
            TupleGen::Sequence,
            2,
        )),
    );
    let (w1, _) = g.time_window("w1", s1, TimeSpan(1000));
    let (w2, _) = g.time_window("w2", s2, TimeSpan(1000));
    let j = g.join(
        "j",
        w1,
        w2,
        JoinPredicate::EqAttr { left: 0, right: 0 },
        StateImpl::List,
    );
    let (_sink, out) = g.sink_collect("k", j);
    let impl_item = mgr
        .subscribe(MetadataKey::new(j, "state.left.impl"))
        .unwrap();
    let size_item = mgr
        .subscribe(MetadataKey::new(j, "state.left.size"))
        .unwrap();
    assert_eq!(impl_item.get(), MetadataValue::text("list"));

    // Fill both sides with keys 0..5, no matches yet across sides at
    // distinct keys except equal seq numbers.
    for i in 0..5i64 {
        push(
            &g,
            w1,
            0,
            &int_elem(i, 10 + i as u64),
            Timestamp(10 + i as u64),
        );
        push(
            &g,
            w2,
            0,
            &int_elem(i + 100, 10 + i as u64),
            Timestamp(10 + i as u64),
        );
    }
    assert_eq!(size_item.get(), MetadataValue::U64(5));
    let before = out.len();

    // Swap to hash at runtime: stored elements migrate.
    assert!(g.swap_join_state(j, StateImpl::Hash));
    assert_eq!(impl_item.get(), MetadataValue::text("hash"));
    assert_eq!(size_item.get(), MetadataValue::U64(5), "state migrated");

    // Joins against the migrated state still work: a right element with
    // key 3 matches the left element stored before the swap.
    push(&g, w2, 0, &int_elem(3, 20), Timestamp(20));
    assert_eq!(out.len(), before + 1);

    // Non-join nodes refuse the swap.
    assert!(!g.swap_join_state(w1, StateImpl::List));
}

#[test]
fn count_window_validity_follows_the_measured_rate() {
    let (clock, mgr, g) = setup(); // rate window 10
    let src = g.source(
        "s",
        Box::new(ConstantRate::new(
            Timestamp(0),
            TimeSpan(2),
            TupleGen::Sequence,
            1,
        )),
    );
    // Last ~20 elements; at rate 0.5/unit that is a 40-unit validity.
    let cw = g.count_window("cw", src, 20, TimeSpan(1000));
    let (_sink, out) = g.sink_collect("k", cw);
    // The operator's own subscription keeps the rate item alive.
    assert!(mgr.is_included(&MetadataKey::new(cw, "input_rate")));

    // Before any measurement the fallback validity applies.
    push(&g, cw, 0, &int_elem(0, 2), Timestamp(2));
    assert_eq!(out.snapshot()[0].validity(), Some(TimeSpan(1000)));

    // Feed at rate 0.5 for a few metadata windows.
    let mut ts = 2;
    for _ in 0..20 {
        ts += 2;
        push(&g, cw, 0, &int_elem(0, ts), Timestamp(ts));
        clock.set(Timestamp(ts));
        mgr.periodic().advance_to(clock.now());
    }
    let last = out.snapshot().pop().unwrap();
    // validity = 20 / 0.5 = 40.
    assert_eq!(last.validity(), Some(TimeSpan(40)));
}

#[test]
fn union_and_project_compose() {
    let (_c, _m, g) = setup();
    let s1 = g.source(
        "s1",
        Box::new(ConstantRate::new(
            Timestamp(0),
            TimeSpan(10),
            TupleGen::Sequence,
            1,
        )),
    );
    let s2 = g.source(
        "s2",
        Box::new(ConstantRate::new(
            Timestamp(0),
            TimeSpan(10),
            TupleGen::Sequence,
            2,
        )),
    );
    let u = g.union("u", &[s1, s2]);
    let p = g.project("p", u, vec![0]);
    let (_sink, out) = g.sink_collect("sink", p);
    push(&g, u, 0, &int_elem(1, 5), Timestamp(5));
    push(&g, u, 1, &int_elem(2, 6), Timestamp(6));
    assert_eq!(out.len(), 2);
    assert_eq!(g.output_schema(p).arity(), 1);
}
