//! Approximate count-based sliding window — an *operator as metadata
//! consumer* (Section 2: "Metadata consumers can be system components,
//! operators, users, etc.").
//!
//! A count-based window keeps the most recent `n` elements. In a
//! validity-stamping architecture the expiry must be fixed when an
//! element is emitted, so the operator derives it from runtime metadata:
//! it subscribes to its own node's measured `input_rate` and stamps
//! `validity ≈ n / rate`. As the rate drifts, the periodic measurement
//! updates and the emitted validities follow — turning a count window
//! into an adaptive time window, driven entirely by the metadata
//! framework.

use parking_lot::Mutex;
use streammeta_core::Subscription;
use streammeta_streams::{Element, Schema};
use streammeta_time::{TimeSpan, Timestamp};

use crate::node::NodeBehavior;

/// The approximate count-window behavior.
pub struct CountWindowApprox {
    n: u64,
    schema: Schema,
    /// Subscription to this node's own measured input rate; installed by
    /// the graph right after the node is wired (the operator cannot
    /// subscribe before its node id exists).
    rate: Mutex<Option<Subscription>>,
    /// Fallback validity until the first rate measurement arrives.
    fallback: TimeSpan,
}

impl CountWindowApprox {
    /// A window over the last `n` elements (approximately). `fallback`
    /// bounds validity before the first rate measurement.
    pub fn new(n: u64, schema: Schema, fallback: TimeSpan) -> Self {
        assert!(n > 0, "empty count window");
        CountWindowApprox {
            n,
            schema,
            rate: Mutex::new(None),
            fallback,
        }
    }

    /// Wires the operator's metadata subscription (done by
    /// `QueryGraph::count_window` after node creation).
    pub fn attach_rate(&self, sub: Subscription) {
        *self.rate.lock() = Some(sub);
    }

    /// The validity the next element will receive.
    pub fn current_validity(&self) -> TimeSpan {
        let rate = self.rate.lock().as_ref().and_then(|s| s.get_f64());
        match rate {
            Some(r) if r > 0.0 => TimeSpan((self.n as f64 / r).round().max(1.0) as u64),
            _ => self.fallback,
        }
    }
}

impl NodeBehavior for CountWindowApprox {
    fn process(
        &mut self,
        _port: usize,
        element: &Element,
        _now: Timestamp,
        out: &mut Vec<Element>,
    ) {
        out.push(element.with_window(self.current_validity()));
    }

    fn output_schema(&self) -> Schema {
        self.schema.clone()
    }

    fn implementation(&self) -> &'static str {
        "count-window-approx"
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streammeta_streams::{tuple, Value};

    #[test]
    fn uses_fallback_before_first_measurement() {
        let mut w = CountWindowApprox::new(10, Schema::default(), TimeSpan(500));
        let mut out = Vec::new();
        w.process(
            0,
            &Element::new(tuple([Value::Int(1)]), Timestamp(100)),
            Timestamp(100),
            &mut out,
        );
        assert_eq!(out[0].expiry, Timestamp(600));
    }

    #[test]
    #[should_panic(expected = "empty count window")]
    fn zero_count_rejected() {
        CountWindowApprox::new(0, Schema::default(), TimeSpan(1));
    }
}
