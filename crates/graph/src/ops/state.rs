//! Exchangeable join state modules (Section 4.5 of the paper).
//!
//! "Due to the generic design of PIPES, many operators depend on
//! exchangeable modules, e.g., the join operator can be based on different
//! data structures to store its state (lists, hash tables, etc.). Metadata
//! items can also depend on properties of these modules."
//!
//! A [`JoinState`] stores the valid elements of one join input. Three
//! implementations are provided — an unordered list ([`ListState`]), a
//! hash table over an integer join key ([`HashState`]) and an ordered
//! B-tree over a numeric key ([`OrderedState`], serving the range probes
//! of band joins) — and each exposes its own metadata (`impl`, `size`,
//! `memory_usage`) through [`MetadataModule`], which the owning join
//! installs under a module scope (`state.left.memory_usage`, …).

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use parking_lot::Mutex;
use streammeta_core::{ItemDef, MetadataModule, MetadataValue, RegistryScope};
use streammeta_streams::Element;
use streammeta_time::Timestamp;

/// Nominal extra work units a hash state spends per insert or probe
/// (hashing cost). This is what makes list vs. hash a genuine trade-off:
/// hash states prune candidates but pay a constant per operation.
pub const HASH_OP_OVERHEAD: u64 = 1;

/// The storage key of an element, derived from the join predicate.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum JoinKey {
    /// No key (cross products, custom predicates).
    None,
    /// Integer equality key.
    Int(i64),
    /// Numeric key for range predicates.
    Float(f64),
}

impl JoinKey {
    fn as_float(self) -> Option<f64> {
        match self {
            JoinKey::Int(v) => Some(v as f64),
            JoinKey::Float(v) => Some(v),
            JoinKey::None => None,
        }
    }
}

/// A candidate probe against a state.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Probe {
    /// Every stored element is a candidate.
    All,
    /// Elements with this integer key.
    Key(i64),
    /// Elements whose numeric key lies in `[lo, hi]`.
    Range {
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
}

/// Total order over `f64` bits (standard sign-flip trick), used by the
/// ordered state's B-tree.
fn float_ord(v: f64) -> u64 {
    let bits = v.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Storage for the valid elements of one join input.
pub trait JoinState: Send {
    /// Inserts an element; `key` is its join-key projection, if the
    /// predicate has one.
    fn insert(&mut self, key: JoinKey, element: Element);

    /// Removes all elements whose validity ended at or before `now`.
    /// Returns how many were removed.
    fn purge_expired(&mut self, now: Timestamp) -> usize;

    /// Calls `f` for every candidate of `probe`. Implementations may
    /// over-approximate (return extra candidates — the join re-checks the
    /// predicate) but must never omit a matching element.
    fn for_candidates(&self, probe: Probe, f: &mut dyn FnMut(&Element));

    /// Number of stored elements.
    fn len(&self) -> usize;

    /// Whether the state is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate memory footprint in bytes.
    fn bytes(&self) -> usize;

    /// Implementation label (static module metadata).
    fn impl_name(&self) -> &'static str;

    /// Extra work units per insert/probe operation (hashing cost).
    fn op_overhead(&self) -> u64 {
        0
    }
}

/// Unordered list state: inserts are O(1), probes scan everything.
#[derive(Default)]
pub struct ListState {
    elements: Vec<Element>,
    bytes: usize,
}

impl ListState {
    /// An empty list state.
    pub fn new() -> Self {
        Self::default()
    }
}

impl JoinState for ListState {
    fn insert(&mut self, _key: JoinKey, element: Element) {
        self.bytes += element.size_bytes();
        self.elements.push(element);
    }

    fn purge_expired(&mut self, now: Timestamp) -> usize {
        let before = self.elements.len();
        let bytes = &mut self.bytes;
        self.elements.retain(|e| {
            let keep = e.is_valid_at(now);
            if !keep {
                *bytes -= e.size_bytes();
            }
            keep
        });
        before - self.elements.len()
    }

    fn for_candidates(&self, _probe: Probe, f: &mut dyn FnMut(&Element)) {
        for e in &self.elements {
            f(e);
        }
    }

    fn len(&self) -> usize {
        self.elements.len()
    }

    fn bytes(&self) -> usize {
        self.bytes
    }

    fn impl_name(&self) -> &'static str {
        "list"
    }
}

/// Hash state over the join key: probes touch only the matching bucket.
/// Falls back to a full scan for keyless probes.
#[derive(Default)]
pub struct HashState {
    buckets: HashMap<i64, Vec<Element>>,
    len: usize,
    bytes: usize,
}

impl HashState {
    /// An empty hash state.
    pub fn new() -> Self {
        Self::default()
    }
}

impl JoinState for HashState {
    fn insert(&mut self, key: JoinKey, element: Element) {
        // The join only selects hash states for equi-predicates, so every
        // element carries an integer key.
        let JoinKey::Int(key) = key else {
            panic!("hash state requires an equi-join key");
        };
        self.bytes += element.size_bytes();
        self.len += 1;
        self.buckets.entry(key).or_default().push(element);
    }

    fn purge_expired(&mut self, now: Timestamp) -> usize {
        let mut removed = 0;
        let (len, bytes) = (&mut self.len, &mut self.bytes);
        self.buckets.retain(|_, bucket| {
            bucket.retain(|e| {
                let keep = e.is_valid_at(now);
                if !keep {
                    removed += 1;
                    *len -= 1;
                    *bytes -= e.size_bytes();
                }
                keep
            });
            !bucket.is_empty()
        });
        removed
    }

    fn for_candidates(&self, probe: Probe, f: &mut dyn FnMut(&Element)) {
        match probe {
            Probe::Key(k) => {
                if let Some(bucket) = self.buckets.get(&k) {
                    for e in bucket {
                        f(e);
                    }
                }
            }
            // Range probes over integer buckets and keyless probes fall
            // back to a full scan (over-approximation is allowed).
            Probe::All | Probe::Range { .. } => {
                for bucket in self.buckets.values() {
                    for e in bucket {
                        f(e);
                    }
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn bytes(&self) -> usize {
        self.bytes
    }

    fn impl_name(&self) -> &'static str {
        "hash"
    }

    fn op_overhead(&self) -> u64 {
        HASH_OP_OVERHEAD
    }
}

/// Ordered state over a numeric key: range probes touch only the
/// matching key interval — the indexed implementation for band joins
/// (`|a - b| <= eps`).
#[derive(Default)]
pub struct OrderedState {
    tree: BTreeMap<u64, Vec<Element>>,
    len: usize,
    bytes: usize,
}

impl OrderedState {
    /// An empty ordered state.
    pub fn new() -> Self {
        Self::default()
    }
}

impl JoinState for OrderedState {
    fn insert(&mut self, key: JoinKey, element: Element) {
        let Some(k) = key.as_float() else {
            panic!("ordered state requires a numeric join key");
        };
        self.bytes += element.size_bytes();
        self.len += 1;
        self.tree.entry(float_ord(k)).or_default().push(element);
    }

    fn purge_expired(&mut self, now: Timestamp) -> usize {
        let mut removed = 0;
        let (len, bytes) = (&mut self.len, &mut self.bytes);
        self.tree.retain(|_, bucket| {
            bucket.retain(|e| {
                let keep = e.is_valid_at(now);
                if !keep {
                    removed += 1;
                    *len -= 1;
                    *bytes -= e.size_bytes();
                }
                keep
            });
            !bucket.is_empty()
        });
        removed
    }

    fn for_candidates(&self, probe: Probe, f: &mut dyn FnMut(&Element)) {
        match probe {
            Probe::Range { lo, hi } => {
                for bucket in self
                    .tree
                    .range(float_ord(lo)..=float_ord(hi))
                    .map(|(_, b)| b)
                {
                    for e in bucket {
                        f(e);
                    }
                }
            }
            Probe::Key(k) => {
                let o = float_ord(k as f64);
                if let Some(bucket) = self.tree.get(&o) {
                    for e in bucket {
                        f(e);
                    }
                }
            }
            Probe::All => {
                for bucket in self.tree.values() {
                    for e in bucket {
                        f(e);
                    }
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn bytes(&self) -> usize {
        self.bytes
    }

    fn impl_name(&self) -> &'static str {
        "ordered"
    }

    fn op_overhead(&self) -> u64 {
        // B-tree navigation cost per insert/probe, comparable to hashing.
        HASH_OP_OVERHEAD
    }
}

/// Which state implementation a join uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StateImpl {
    /// [`ListState`] — works with any predicate.
    List,
    /// [`HashState`] — requires an equi-join predicate.
    Hash,
    /// [`OrderedState`] — requires a numeric (equi or band) predicate.
    Ordered,
}

impl StateImpl {
    /// Instantiates the state.
    pub fn build(self) -> Box<dyn JoinState> {
        match self {
            StateImpl::List => Box::new(ListState::new()),
            StateImpl::Hash => Box::new(HashState::new()),
            StateImpl::Ordered => Box::new(OrderedState::new()),
        }
    }
}

/// A join-state handle shared between the join behavior (mutation) and the
/// metadata compute functions (inspection).
#[derive(Clone)]
pub struct SharedJoinState {
    inner: Arc<Mutex<Box<dyn JoinState>>>,
}

impl SharedJoinState {
    /// Wraps a state implementation.
    pub fn new(state: Box<dyn JoinState>) -> Self {
        SharedJoinState {
            inner: Arc::new(Mutex::new(state)),
        }
    }

    /// Locks the state for processing.
    pub fn lock(&self) -> parking_lot::MutexGuard<'_, Box<dyn JoinState>> {
        self.inner.lock()
    }

    /// Replaces the implementation at runtime, migrating all stored
    /// elements into the new structure (`keyer` recomputes each element's
    /// join key). This is the "exchangeable module" swap of Section 4.5:
    /// the module's metadata items keep working because they read through
    /// this shared handle.
    pub fn replace(&self, new_impl: StateImpl, keyer: &dyn Fn(&Element) -> JoinKey) {
        let mut guard = self.inner.lock();
        let mut elements = Vec::with_capacity(guard.len());
        guard.for_candidates(Probe::All, &mut |e| elements.push(e.clone()));
        let mut fresh = new_impl.build();
        for e in elements {
            let key = keyer(&e);
            fresh.insert(key, e);
        }
        *guard = fresh;
    }

    /// Current number of stored elements.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the state is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current approximate byte size.
    pub fn bytes(&self) -> usize {
        self.inner.lock().bytes()
    }

    /// The implementation label.
    pub fn impl_name(&self) -> &'static str {
        self.inner.lock().impl_name()
    }
}

impl MetadataModule for SharedJoinState {
    fn register_metadata(&self, scope: &RegistryScope<'_>) {
        // On-demand rather than static: the implementation can be
        // exchanged at runtime (plan adaptation), and the item must
        // always report the current one.
        let s = self.clone();
        scope.define(
            ItemDef::on_demand("impl")
                .doc("current state implementation")
                .compute(move |_| MetadataValue::text(s.impl_name()))
                .build(),
        );
        let s = self.clone();
        scope.define(
            ItemDef::on_demand("size")
                .doc("number of stored elements")
                .compute(move |_| MetadataValue::U64(s.len() as u64))
                .build(),
        );
        let s = self.clone();
        scope.define(
            ItemDef::on_demand("memory_usage")
                .doc("approximate state bytes")
                .compute(move |_| MetadataValue::U64(s.bytes() as u64))
                .build(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streammeta_streams::{tuple, Value};
    use streammeta_time::TimeSpan;

    fn elem(ts: u64, window: u64, key: i64) -> Element {
        Element::new(tuple([Value::Int(key)]), Timestamp(ts)).with_window(TimeSpan(window))
    }

    fn count_candidates(s: &dyn JoinState, probe: Probe) -> usize {
        let mut n = 0;
        s.for_candidates(probe, &mut |_| n += 1);
        n
    }

    #[test]
    fn list_state_scan_and_purge() {
        let mut s = ListState::new();
        s.insert(JoinKey::Int(1), elem(0, 10, 1));
        s.insert(JoinKey::Int(2), elem(5, 10, 2));
        assert_eq!(s.len(), 2);
        assert!(s.bytes() > 0);
        // List scans everything regardless of key.
        assert_eq!(count_candidates(&s, Probe::Key(1)), 2);
        assert_eq!(s.purge_expired(Timestamp(10)), 1); // first expires at 10
        assert_eq!(s.len(), 1);
        assert_eq!(s.purge_expired(Timestamp(100)), 1);
        assert_eq!(s.bytes(), 0);
    }

    #[test]
    fn hash_state_probes_only_bucket() {
        let mut s = HashState::new();
        for k in [1, 1, 2, 3] {
            s.insert(JoinKey::Int(k), elem(0, 100, k));
        }
        assert_eq!(s.len(), 4);
        assert_eq!(count_candidates(&s, Probe::Key(1)), 2);
        assert_eq!(count_candidates(&s, Probe::Key(9)), 0);
        assert_eq!(count_candidates(&s, Probe::All), 4);
        assert_eq!(s.purge_expired(Timestamp(100)), 4);
        assert!(s.is_empty());
        assert_eq!(s.bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "equi-join key")]
    fn hash_state_requires_key() {
        let mut s = HashState::new();
        s.insert(JoinKey::None, elem(0, 10, 1));
    }

    #[test]
    fn ordered_state_range_probes() {
        let mut s = OrderedState::new();
        for k in [-5i64, -1, 0, 3, 7, 12] {
            s.insert(JoinKey::Float(k as f64), elem(0, 100, k));
        }
        assert_eq!(s.len(), 6);
        // [-1.5, 3.5] covers -1, 0, 3.
        assert_eq!(count_candidates(&s, Probe::Range { lo: -1.5, hi: 3.5 }), 3);
        // Exact key probe.
        assert_eq!(count_candidates(&s, Probe::Key(7)), 1);
        assert_eq!(count_candidates(&s, Probe::All), 6);
        assert_eq!(s.purge_expired(Timestamp(100)), 6);
        assert_eq!(s.bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "numeric join key")]
    fn ordered_state_requires_numeric_key() {
        let mut s = OrderedState::new();
        s.insert(JoinKey::None, elem(0, 10, 1));
    }

    #[test]
    fn float_order_is_total() {
        let vals = [-10.5, -0.0, 0.0, 0.25, 3.0, 1e9];
        for w in vals.windows(2) {
            assert!(float_ord(w[0]) <= float_ord(w[1]), "{} vs {}", w[0], w[1]);
        }
    }

    #[test]
    fn shared_state_module_metadata() {
        use streammeta_core::{ItemPath, NodeId, NodeRegistry};
        let shared = SharedJoinState::new(StateImpl::Hash.build());
        shared.lock().insert(JoinKey::Int(7), elem(0, 50, 7));
        let reg = NodeRegistry::new(NodeId(0));
        reg.scope("state.left").install(&shared);
        assert!(reg.contains(&ItemPath::new("state.left.impl")));
        assert!(reg.contains(&ItemPath::new("state.left.size")));
        assert!(reg.contains(&ItemPath::new("state.left.memory_usage")));
    }

    #[test]
    fn state_impl_builders() {
        assert_eq!(StateImpl::List.build().impl_name(), "list");
        assert_eq!(StateImpl::Hash.build().impl_name(), "hash");
        assert_eq!(StateImpl::Ordered.build().impl_name(), "ordered");
    }
}
