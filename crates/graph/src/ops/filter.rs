//! Filter operator with measurable, adjustable selectivity.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use streammeta_streams::{Element, Schema, Tuple};
use streammeta_time::Timestamp;

use crate::node::NodeBehavior;

/// A shared, runtime-adjustable pass probability — used by experiments
/// that drift operator selectivities (e.g. the Chain scheduling study).
#[derive(Clone, Debug)]
pub struct SelectivityHandle {
    bits: Arc<AtomicU64>,
}

impl SelectivityHandle {
    /// A handle with initial pass probability `p` in `[0, 1]`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        SelectivityHandle {
            bits: Arc::new(AtomicU64::new(p.to_bits())),
        }
    }

    /// Current pass probability.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Sets the pass probability.
    pub fn set(&self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.bits.store(p.to_bits(), Ordering::Relaxed);
    }
}

/// Comparison operator for column-vs-column predicates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Cmp {
    /// Strictly less than.
    Lt,
    /// Equal to.
    Eq,
    /// Strictly greater than.
    Gt,
}

/// Filter predicates.
#[derive(Clone)]
pub enum FilterPredicate {
    /// `payload[col] < bound` over integers.
    AttrLt {
        /// Column index.
        col: usize,
        /// Exclusive upper bound.
        bound: i64,
    },
    /// `payload[col] == value` over integers.
    AttrEq {
        /// Column index.
        col: usize,
        /// Value to match.
        value: i64,
    },
    /// `payload[col] > bound` over integers.
    AttrGt {
        /// Column index.
        col: usize,
        /// Exclusive lower bound.
        bound: i64,
    },
    /// `payload[left] <cmp> payload[right]` over integers.
    AttrCmpCol {
        /// Left-hand column index.
        left: usize,
        /// Right-hand column index.
        right: usize,
        /// Comparison applied between the two columns.
        cmp: Cmp,
    },
    /// Passes with the handle's probability (seeded, reproducible).
    Prob(SelectivityHandle),
    /// Arbitrary predicate over the payload.
    Custom(Arc<dyn Fn(&Tuple) -> bool + Send + Sync>),
}

/// The filter behavior.
pub struct Filter {
    predicate: FilterPredicate,
    rng: SmallRng,
    schema: Schema,
}

impl Filter {
    /// A filter over `schema`; `seed` drives probabilistic predicates.
    pub fn new(predicate: FilterPredicate, schema: Schema, seed: u64) -> Self {
        Filter {
            predicate,
            rng: SmallRng::seed_from_u64(seed),
            schema,
        }
    }

    fn passes(&mut self, payload: &Tuple) -> bool {
        match &self.predicate {
            FilterPredicate::AttrLt { col, bound } => payload
                .get(*col)
                .and_then(|v| v.as_int())
                .is_some_and(|v| v < *bound),
            FilterPredicate::AttrEq { col, value } => payload
                .get(*col)
                .and_then(|v| v.as_int())
                .is_some_and(|v| v == *value),
            FilterPredicate::AttrGt { col, bound } => payload
                .get(*col)
                .and_then(|v| v.as_int())
                .is_some_and(|v| v > *bound),
            FilterPredicate::AttrCmpCol { left, right, cmp } => {
                let l = payload.get(*left).and_then(|v| v.as_int());
                let r = payload.get(*right).and_then(|v| v.as_int());
                match (l, r) {
                    (Some(l), Some(r)) => match cmp {
                        Cmp::Lt => l < r,
                        Cmp::Eq => l == r,
                        Cmp::Gt => l > r,
                    },
                    _ => false,
                }
            }
            FilterPredicate::Prob(h) => self.rng.gen::<f64>() < h.get(),
            FilterPredicate::Custom(f) => f(payload),
        }
    }
}

impl NodeBehavior for Filter {
    fn process(
        &mut self,
        _port: usize,
        element: &Element,
        _now: Timestamp,
        out: &mut Vec<Element>,
    ) {
        if self.passes(&element.payload) {
            out.push(element.clone());
        }
    }

    fn output_schema(&self) -> Schema {
        self.schema.clone()
    }

    fn implementation(&self) -> &'static str {
        "filter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streammeta_streams::{tuple, Value};

    fn run(f: &mut Filter, key: i64) -> bool {
        let mut out = Vec::new();
        f.process(
            0,
            &Element::new(tuple([Value::Int(key)]), Timestamp(0)),
            Timestamp(0),
            &mut out,
        );
        !out.is_empty()
    }

    #[test]
    fn attr_predicates() {
        let mut lt = Filter::new(
            FilterPredicate::AttrLt { col: 0, bound: 5 },
            Schema::default(),
            0,
        );
        assert!(run(&mut lt, 4));
        assert!(!run(&mut lt, 5));
        let mut eq = Filter::new(
            FilterPredicate::AttrEq { col: 0, value: 3 },
            Schema::default(),
            0,
        );
        assert!(run(&mut eq, 3));
        assert!(!run(&mut eq, 4));
        let mut gt = Filter::new(
            FilterPredicate::AttrGt { col: 0, bound: 5 },
            Schema::default(),
            0,
        );
        assert!(run(&mut gt, 6));
        assert!(!run(&mut gt, 5));
    }

    #[test]
    fn column_vs_column_predicates() {
        let run2 = |f: &mut Filter, a: i64, b: i64| {
            let mut out = Vec::new();
            f.process(
                0,
                &Element::new(tuple([Value::Int(a), Value::Int(b)]), Timestamp(0)),
                Timestamp(0),
                &mut out,
            );
            !out.is_empty()
        };
        for (cmp, lt, eq, gt) in [
            (Cmp::Lt, true, false, false),
            (Cmp::Eq, false, true, false),
            (Cmp::Gt, false, false, true),
        ] {
            let mut f = Filter::new(
                FilterPredicate::AttrCmpCol {
                    left: 0,
                    right: 1,
                    cmp,
                },
                Schema::default(),
                0,
            );
            assert_eq!(run2(&mut f, 1, 2), lt, "{cmp:?} on 1<2");
            assert_eq!(run2(&mut f, 2, 2), eq, "{cmp:?} on 2=2");
            assert_eq!(run2(&mut f, 3, 2), gt, "{cmp:?} on 3>2");
        }
        // A missing column never matches.
        let mut f = Filter::new(
            FilterPredicate::AttrCmpCol {
                left: 0,
                right: 9,
                cmp: Cmp::Eq,
            },
            Schema::default(),
            0,
        );
        assert!(!run2(&mut f, 1, 1));
    }

    #[test]
    fn prob_filter_matches_handle() {
        let h = SelectivityHandle::new(0.3);
        let mut f = Filter::new(FilterPredicate::Prob(h.clone()), Schema::default(), 42);
        let n = 20_000;
        let passed = (0..n).filter(|_| run(&mut f, 0)).count();
        let rate = passed as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
        // Drift the selectivity at runtime.
        h.set(0.9);
        let passed = (0..n).filter(|_| run(&mut f, 0)).count();
        let rate = passed as f64 / n as f64;
        assert!((rate - 0.9).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn custom_predicate() {
        let mut f = Filter::new(
            FilterPredicate::Custom(Arc::new(|p: &Tuple| p[0] == Value::Int(1))),
            Schema::default(),
            0,
        );
        assert!(run(&mut f, 1));
        assert!(!run(&mut f, 2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_probability_rejected() {
        SelectivityHandle::new(1.5);
    }
}
