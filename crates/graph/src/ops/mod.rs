//! Operator implementations.

pub mod aggregate;
pub mod count_window;
pub mod filter;
pub mod join;
pub mod map;
pub mod sink;
pub mod state;
pub mod union;
pub mod window;

pub use aggregate::{AggKind, WindowAggregate};
pub use count_window::CountWindowApprox;
pub use filter::{Cmp, Filter, FilterPredicate, SelectivityHandle};
pub use join::{JoinPredicate, SlidingWindowJoin};
pub use map::{MapFn, Project};
pub use sink::{CollectHandle, CollectSink, CountHandle, CountSink, DiscardSink};
pub use state::{
    HashState, JoinKey, JoinState, ListState, OrderedState, Probe, SharedJoinState, StateImpl,
    HASH_OP_OVERHEAD,
};
pub use union::Union;
pub use window::{TimeWindow, WindowHandle};
