//! Time-based sliding-window join (the running example of the paper's
//! Sections 2.5 and 3.3).
//!
//! The join expects *windowed* inputs: upstream window operators have
//! assigned each element a validity. On an arrival from one input the join
//! (i) purges expired elements from the opposite state, (ii) probes it for
//! predicate matches, and (iii) inserts the new element into its own
//! state — the classic symmetric evaluation.

use std::sync::Arc;

use streammeta_streams::{Element, Schema, Tuple, Value};
use streammeta_time::Timestamp;

use crate::monitors::NodeMonitors;
use crate::node::NodeBehavior;
use crate::ops::state::{JoinKey, Probe, SharedJoinState, StateImpl};

/// Join predicates.
#[derive(Clone)]
pub enum JoinPredicate {
    /// Equality of `left_col` and `right_col` (enables hash states).
    EqAttr {
        /// Column of the left input.
        left: usize,
        /// Column of the right input.
        right: usize,
    },
    /// `|left_col - right_col| <= eps` over floats.
    Within {
        /// Column of the left input.
        left: usize,
        /// Column of the right input.
        right: usize,
        /// Tolerance.
        eps: f64,
    },
    /// Cross product.
    True,
    /// Arbitrary user predicate over the two payloads.
    Custom(Arc<PredicateFn>),
}

/// Custom join predicate signature.
pub type PredicateFn = dyn Fn(&Tuple, &Tuple) -> bool + Send + Sync;

impl JoinPredicate {
    /// Evaluates the predicate on a (left, right) payload pair.
    pub fn eval(&self, left: &Tuple, right: &Tuple) -> bool {
        match self {
            JoinPredicate::EqAttr { left: l, right: r } => left.get(*l) == right.get(*r),
            JoinPredicate::Within {
                left: l,
                right: r,
                eps,
            } => {
                match (
                    left.get(*l).and_then(|v| v.as_float()),
                    right.get(*r).and_then(|v| v.as_float()),
                ) {
                    (Some(a), Some(b)) => (a - b).abs() <= *eps,
                    _ => false,
                }
            }
            JoinPredicate::True => true,
            JoinPredicate::Custom(f) => f(left, right),
        }
    }

    /// The storage key of an element arriving on `port`.
    pub fn key_of(&self, port: usize, payload: &Tuple) -> JoinKey {
        match self {
            JoinPredicate::EqAttr { left, right } => {
                let col = if port == 0 { *left } else { *right };
                payload
                    .get(col)
                    .and_then(|v| v.as_int())
                    .map_or(JoinKey::None, JoinKey::Int)
            }
            JoinPredicate::Within { left, right, .. } => {
                let col = if port == 0 { *left } else { *right };
                payload
                    .get(col)
                    .and_then(|v| v.as_float())
                    .map_or(JoinKey::None, JoinKey::Float)
            }
            _ => JoinKey::None,
        }
    }

    /// The probe an arrival on `port` runs against the opposite state.
    pub fn probe_of(&self, port: usize, payload: &Tuple) -> Probe {
        match self {
            JoinPredicate::EqAttr { left, right } => {
                let col = if port == 0 { *left } else { *right };
                payload
                    .get(col)
                    .and_then(|v| v.as_int())
                    .map_or(Probe::All, Probe::Key)
            }
            JoinPredicate::Within { left, right, eps } => {
                let col = if port == 0 { *left } else { *right };
                match payload.get(col).and_then(|v| v.as_float()) {
                    Some(v) => Probe::Range {
                        lo: v - eps,
                        hi: v + eps,
                    },
                    None => Probe::All,
                }
            }
            _ => Probe::All,
        }
    }

    /// Whether `state` can index this predicate (list always works).
    pub fn supports_state(&self, state: StateImpl) -> bool {
        match state {
            StateImpl::List => true,
            StateImpl::Hash => matches!(self, JoinPredicate::EqAttr { .. }),
            StateImpl::Ordered => matches!(
                self,
                JoinPredicate::EqAttr { .. } | JoinPredicate::Within { .. }
            ),
        }
    }

    /// Nominal cost of one predicate evaluation in abstract work units —
    /// the `predicate_cost` metadata item of Figure 3.
    pub fn nominal_cost(&self) -> f64 {
        match self {
            JoinPredicate::EqAttr { .. } => 1.0,
            JoinPredicate::Within { .. } => 2.0,
            JoinPredicate::True => 0.5,
            JoinPredicate::Custom(_) => 4.0,
        }
    }

    /// Label for static metadata.
    pub fn label(&self) -> &'static str {
        match self {
            JoinPredicate::EqAttr { .. } => "eq",
            JoinPredicate::Within { .. } => "within",
            JoinPredicate::True => "true",
            JoinPredicate::Custom(_) => "custom",
        }
    }
}

fn impl_label(state: StateImpl) -> &'static str {
    match state {
        StateImpl::List => "nested-loops",
        StateImpl::Hash => "hash-based",
        StateImpl::Ordered => "ordered",
    }
}

/// The symmetric sliding-window join behavior.
pub struct SlidingWindowJoin {
    predicate: JoinPredicate,
    left: SharedJoinState,
    right: SharedJoinState,
    monitors: Arc<NodeMonitors>,
    out_schema: Schema,
    implementation: &'static str,
}

impl SlidingWindowJoin {
    /// Builds a join over windowed inputs with the given state
    /// implementation for both sides.
    pub fn new(
        predicate: JoinPredicate,
        state_impl: StateImpl,
        left_schema: &Schema,
        right_schema: &Schema,
        monitors: Arc<NodeMonitors>,
    ) -> Self {
        assert!(
            predicate.supports_state(state_impl),
            "predicate {:?} cannot use {state_impl:?} states",
            predicate.label()
        );
        let implementation = impl_label(state_impl);
        SlidingWindowJoin {
            predicate,
            left: SharedJoinState::new(state_impl.build()),
            right: SharedJoinState::new(state_impl.build()),
            monitors,
            out_schema: left_schema.concat(right_schema),
            implementation,
        }
    }

    /// The shared left state (for module metadata installation).
    pub fn left_state(&self) -> &SharedJoinState {
        &self.left
    }

    /// The shared right state (for module metadata installation).
    pub fn right_state(&self) -> &SharedJoinState {
        &self.right
    }

    /// The predicate (for the `predicate_cost` metadata item).
    pub fn predicate(&self) -> &JoinPredicate {
        &self.predicate
    }

    /// Exchanges both state modules at runtime (Section 4.5), migrating
    /// the stored elements. Requires an equi-join predicate for hash
    /// states. Updates the behavior's implementation label.
    pub fn swap_state(&mut self, new_impl: StateImpl) {
        assert!(
            self.predicate.supports_state(new_impl),
            "predicate {:?} cannot use {new_impl:?} states",
            self.predicate.label()
        );
        let pred = self.predicate.clone();
        self.left.replace(new_impl, &|e| pred.key_of(0, &e.payload));
        let pred = self.predicate.clone();
        self.right
            .replace(new_impl, &|e| pred.key_of(1, &e.payload));
        self.implementation = impl_label(new_impl);
    }

    fn refresh_state_gauges(&self) {
        let len = self.left.len() + self.right.len();
        let bytes = self.left.bytes() + self.right.bytes();
        self.monitors.state_len.set(len as f64);
        self.monitors.state_bytes.set(bytes as f64);
    }
}

impl NodeBehavior for SlidingWindowJoin {
    fn ports(&self) -> usize {
        2
    }

    fn process(&mut self, port: usize, element: &Element, _now: Timestamp, out: &mut Vec<Element>) {
        debug_assert!(port < 2, "join has two inputs");
        let (own, other) = if port == 0 {
            (&self.left, &self.right)
        } else {
            (&self.right, &self.left)
        };
        let t = element.timestamp;
        let mut candidates = 0u64;
        let mut overhead = 0u64;
        {
            let mut other_state = other.lock();
            overhead += other_state.op_overhead(); // probe
            other_state.purge_expired(t);
            let probe = self.predicate.probe_of(port, &element.payload);
            other_state.for_candidates(probe, &mut |cand| {
                candidates += 1;
                let (lp, rp) = if port == 0 {
                    (&element.payload, &cand.payload)
                } else {
                    (&cand.payload, &element.payload)
                };
                if self.predicate.eval(lp, rp) {
                    let payload: Tuple = lp.iter().cloned().chain(rp.iter().cloned()).collect();
                    out.push(Element {
                        payload,
                        timestamp: t,
                        expiry: element.expiry.min(cand.expiry),
                    });
                }
            });
        }
        {
            let mut own_state = own.lock();
            overhead += own_state.op_overhead(); // insert
            own_state.purge_expired(t);
            let own_key = self.predicate.key_of(port, &element.payload);
            own_state.insert(own_key, element.clone());
        }
        // The graph wrapper records one base work unit per element; the
        // join adds one unit per candidate pair considered plus the state
        // modules' per-operation overhead (hashing cost).
        self.monitors.pairs.record_n(candidates);
        self.monitors.work.record_n(candidates + overhead);
        self.refresh_state_gauges();
    }

    fn output_schema(&self) -> Schema {
        self.out_schema.clone()
    }

    fn implementation(&self) -> &'static str {
        self.implementation
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// Convenience for tests: a two-column int payload `(key, seq)`.
pub fn kv_payload(key: i64, seq: i64) -> Tuple {
    [Value::Int(key), Value::Int(seq)].into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use streammeta_streams::ValueType;
    use streammeta_time::TimeSpan;

    fn schema2() -> Schema {
        Schema::of(&[("k", ValueType::Int), ("seq", ValueType::Int)])
    }

    fn windowed(key: i64, seq: i64, ts: u64, window: u64) -> Element {
        Element::new(kv_payload(key, seq), Timestamp(ts)).with_window(TimeSpan(window))
    }

    fn join(state: StateImpl) -> SlidingWindowJoin {
        let m = NodeMonitors::new(2);
        m.pairs.activate();
        m.work.activate();
        m.state_len.activate();
        m.state_bytes.activate();
        SlidingWindowJoin::new(
            JoinPredicate::EqAttr { left: 0, right: 0 },
            state,
            &schema2(),
            &schema2(),
            m,
        )
    }

    #[test]
    fn matching_keys_join_within_window() {
        for state in [StateImpl::List, StateImpl::Hash] {
            let mut j = join(state);
            let mut out = Vec::new();
            j.process(0, &windowed(1, 100, 0, 10), Timestamp(0), &mut out);
            assert!(out.is_empty(), "nothing on the right yet");
            j.process(1, &windowed(1, 200, 5, 10), Timestamp(5), &mut out);
            assert_eq!(out.len(), 1, "{state:?}");
            let e = &out[0];
            assert_eq!(e.payload.len(), 4);
            assert_eq!(e.payload[1], Value::Int(100));
            assert_eq!(e.payload[3], Value::Int(200));
            assert_eq!(e.timestamp, Timestamp(5));
            // Result validity ends with the earlier input (t=0+10).
            assert_eq!(e.expiry, Timestamp(10));
        }
    }

    #[test]
    fn expired_elements_do_not_join() {
        let mut j = join(StateImpl::List);
        let mut out = Vec::new();
        j.process(0, &windowed(1, 1, 0, 10), Timestamp(0), &mut out);
        // Arrives at t=10: the left element expired exactly at 10.
        j.process(1, &windowed(1, 2, 10, 10), Timestamp(10), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn mismatched_keys_do_not_join() {
        let mut j = join(StateImpl::Hash);
        let mut out = Vec::new();
        j.process(0, &windowed(1, 1, 0, 100), Timestamp(0), &mut out);
        j.process(1, &windowed(2, 2, 1, 100), Timestamp(1), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn hash_state_considers_fewer_candidates_than_list() {
        let build = |state| {
            let mut j = join(state);
            let mut out = Vec::new();
            // 10 left elements with distinct keys.
            for k in 0..10 {
                j.process(0, &windowed(k, k, 0, 1000), Timestamp(0), &mut out);
            }
            // One right probe with key 3.
            j.process(1, &windowed(3, 99, 1, 1000), Timestamp(1), &mut out);
            (out.len(), j.monitors.pairs.value())
        };
        let (list_out, list_pairs) = build(StateImpl::List);
        let (hash_out, hash_pairs) = build(StateImpl::Hash);
        assert_eq!(list_out, hash_out, "same results");
        assert_eq!(list_pairs, 10, "list scans all");
        assert_eq!(hash_pairs, 1, "hash probes one bucket");
    }

    #[test]
    fn state_gauges_track_sizes() {
        let mut j = join(StateImpl::List);
        let mut out = Vec::new();
        j.process(0, &windowed(1, 1, 0, 10), Timestamp(0), &mut out);
        j.process(1, &windowed(1, 2, 1, 10), Timestamp(1), &mut out);
        assert_eq!(j.monitors.state_len.value(), 2.0);
        assert!(j.monitors.state_bytes.value() > 0.0);
        // Far in the future both sides purge on the next arrivals.
        j.process(0, &windowed(9, 9, 1000, 10), Timestamp(1000), &mut out);
        j.process(1, &windowed(8, 8, 1001, 10), Timestamp(1001), &mut out);
        assert_eq!(j.monitors.state_len.value(), 2.0, "only the new ones");
    }

    #[test]
    fn predicate_variants() {
        let lt: Tuple = [Value::Float(1.0)].into_iter().collect();
        let rt: Tuple = [Value::Float(1.3)].into_iter().collect();
        assert!(JoinPredicate::Within {
            left: 0,
            right: 0,
            eps: 0.5
        }
        .eval(&lt, &rt));
        assert!(!JoinPredicate::Within {
            left: 0,
            right: 0,
            eps: 0.1
        }
        .eval(&lt, &rt));
        assert!(JoinPredicate::True.eval(&lt, &rt));
        let custom = JoinPredicate::Custom(Arc::new(|l, r| l[0] == r[0]));
        assert!(!custom.eval(&lt, &rt));
        assert_eq!(JoinPredicate::True.key_of(0, &lt), JoinKey::None);
        assert_eq!(JoinPredicate::True.probe_of(0, &lt), Probe::All);
        assert_eq!(
            JoinPredicate::Within {
                left: 0,
                right: 0,
                eps: 0.5
            }
            .probe_of(0, &lt),
            Probe::Range { lo: 0.5, hi: 1.5 }
        );
        assert!(JoinPredicate::EqAttr { left: 0, right: 0 }.nominal_cost() > 0.0);
        assert!(JoinPredicate::Within {
            left: 0,
            right: 0,
            eps: 0.5
        }
        .supports_state(StateImpl::Ordered));
        assert!(!JoinPredicate::True.supports_state(StateImpl::Hash));
    }

    #[test]
    fn ordered_state_prunes_band_join_candidates() {
        let build = |state| {
            let m = NodeMonitors::new(2);
            m.pairs.activate();
            let mut j = SlidingWindowJoin::new(
                JoinPredicate::Within {
                    left: 0,
                    right: 0,
                    eps: 1.0,
                },
                state,
                &schema2(),
                &schema2(),
                m.clone(),
            );
            let mut out = Vec::new();
            // 20 left elements with keys 0..20.
            for k in 0..20 {
                j.process(0, &windowed(k, k, 0, 1000), Timestamp(0), &mut out);
            }
            // One right probe at key 10: matches 9, 10, 11.
            out.clear();
            j.process(1, &windowed(10, 99, 1, 1000), Timestamp(1), &mut out);
            (out.len(), m.pairs.value())
        };
        let (list_out, list_pairs) = build(StateImpl::List);
        let (ord_out, ord_pairs) = build(StateImpl::Ordered);
        assert_eq!(list_out, 3);
        assert_eq!(ord_out, 3, "same results");
        assert_eq!(list_pairs, 20, "list scans all");
        assert_eq!(ord_pairs, 3, "ordered probes the band only");
    }

    #[test]
    fn ordered_join_swaps_in_at_runtime() {
        let m = NodeMonitors::new(2);
        let mut j = SlidingWindowJoin::new(
            JoinPredicate::Within {
                left: 0,
                right: 0,
                eps: 1.0,
            },
            StateImpl::List,
            &schema2(),
            &schema2(),
            m,
        );
        let mut out = Vec::new();
        j.process(0, &windowed(5, 1, 0, 1000), Timestamp(0), &mut out);
        j.swap_state(StateImpl::Ordered);
        assert_eq!(j.implementation(), "ordered");
        // The migrated element still joins.
        j.process(1, &windowed(6, 2, 1, 1000), Timestamp(1), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot use")]
    fn hash_state_rejects_non_equi_predicate() {
        let m = NodeMonitors::new(2);
        SlidingWindowJoin::new(
            JoinPredicate::True,
            StateImpl::Hash,
            &schema2(),
            &schema2(),
            m,
        );
    }
}
