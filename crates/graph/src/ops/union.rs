//! Union operator: merges several schema-compatible input streams.

use streammeta_streams::{Element, Schema};
use streammeta_time::Timestamp;

use crate::node::NodeBehavior;

/// Pass-through merge of `ports` inputs.
pub struct Union {
    ports: usize,
    schema: Schema,
}

impl Union {
    /// A union of `ports` inputs sharing `schema`.
    pub fn new(ports: usize, schema: Schema) -> Self {
        assert!(ports >= 2, "union needs at least two inputs");
        Union { ports, schema }
    }
}

impl NodeBehavior for Union {
    fn ports(&self) -> usize {
        self.ports
    }

    fn process(
        &mut self,
        _port: usize,
        element: &Element,
        _now: Timestamp,
        out: &mut Vec<Element>,
    ) {
        out.push(element.clone());
    }

    fn output_schema(&self) -> Schema {
        self.schema.clone()
    }

    fn implementation(&self) -> &'static str {
        "union"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streammeta_streams::{tuple, Value};

    #[test]
    fn forwards_from_any_port() {
        let mut u = Union::new(3, Schema::default());
        let mut out = Vec::new();
        for port in 0..3 {
            u.process(
                port,
                &Element::new(tuple([Value::Int(port as i64)]), Timestamp(0)),
                Timestamp(0),
                &mut out,
            );
        }
        assert_eq!(out.len(), 3);
        assert_eq!(u.ports(), 3);
    }

    #[test]
    #[should_panic(expected = "two inputs")]
    fn single_input_rejected() {
        Union::new(1, Schema::default());
    }
}
