//! Sinks: connect query results to applications.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use streammeta_streams::{Element, Schema};
use streammeta_time::Timestamp;

use crate::node::NodeBehavior;

/// A sink that collects all results (inspectable through its handle).
pub struct CollectSink {
    buf: Arc<Mutex<Vec<Element>>>,
}

/// Read handle of a [`CollectSink`].
#[derive(Clone)]
pub struct CollectHandle {
    buf: Arc<Mutex<Vec<Element>>>,
}

impl CollectHandle {
    /// Number of collected elements.
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    /// Whether nothing arrived yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the collected elements.
    pub fn snapshot(&self) -> Vec<Element> {
        self.buf.lock().clone()
    }

    /// Removes and returns everything collected so far.
    pub fn drain(&self) -> Vec<Element> {
        std::mem::take(&mut self.buf.lock())
    }
}

impl CollectSink {
    /// A sink plus its read handle.
    pub fn new() -> (Self, CollectHandle) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        (CollectSink { buf: buf.clone() }, CollectHandle { buf })
    }
}

impl NodeBehavior for CollectSink {
    fn process(
        &mut self,
        _port: usize,
        element: &Element,
        _now: Timestamp,
        _out: &mut Vec<Element>,
    ) {
        self.buf.lock().push(element.clone());
    }

    fn output_schema(&self) -> Schema {
        Schema::default()
    }

    fn implementation(&self) -> &'static str {
        "collect-sink"
    }
}

/// A sink that only counts results.
pub struct CountSink {
    count: Arc<AtomicU64>,
}

/// Read handle of a [`CountSink`].
#[derive(Clone)]
pub struct CountHandle {
    count: Arc<AtomicU64>,
}

impl CountHandle {
    /// Number of consumed elements.
    pub fn get(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

impl CountSink {
    /// A sink plus its read handle.
    pub fn new() -> (Self, CountHandle) {
        let count = Arc::new(AtomicU64::new(0));
        (
            CountSink {
                count: count.clone(),
            },
            CountHandle { count },
        )
    }
}

impl NodeBehavior for CountSink {
    fn process(
        &mut self,
        _port: usize,
        _element: &Element,
        _now: Timestamp,
        _out: &mut Vec<Element>,
    ) {
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    fn output_schema(&self) -> Schema {
        Schema::default()
    }

    fn implementation(&self) -> &'static str {
        "count-sink"
    }
}

/// A sink that discards everything (pure load).
#[derive(Default)]
pub struct DiscardSink;

impl NodeBehavior for DiscardSink {
    fn process(
        &mut self,
        _port: usize,
        _element: &Element,
        _now: Timestamp,
        _out: &mut Vec<Element>,
    ) {
    }

    fn output_schema(&self) -> Schema {
        Schema::default()
    }

    fn implementation(&self) -> &'static str {
        "discard-sink"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streammeta_streams::{tuple, Value};

    fn elem(v: i64) -> Element {
        Element::new(tuple([Value::Int(v)]), Timestamp(0))
    }

    #[test]
    fn collect_sink_gathers() {
        let (mut sink, handle) = CollectSink::new();
        let mut out = Vec::new();
        sink.process(0, &elem(1), Timestamp(0), &mut out);
        sink.process(0, &elem(2), Timestamp(0), &mut out);
        assert!(out.is_empty(), "sinks emit nothing");
        assert_eq!(handle.len(), 2);
        assert_eq!(handle.drain().len(), 2);
        assert!(handle.is_empty());
    }

    #[test]
    fn count_sink_counts() {
        let (mut sink, handle) = CountSink::new();
        let mut out = Vec::new();
        for i in 0..5 {
            sink.process(0, &elem(i), Timestamp(0), &mut out);
        }
        assert_eq!(handle.get(), 5);
    }

    #[test]
    fn discard_sink_accepts_everything() {
        let mut sink = DiscardSink;
        let mut out = Vec::new();
        sink.process(0, &elem(0), Timestamp(0), &mut out);
        assert!(out.is_empty());
    }
}
