//! Sliding-window aggregation.
//!
//! Maintains the multiset of currently valid (windowed) elements and emits
//! the aggregate value on every arrival.

use std::collections::VecDeque;
use std::sync::Arc;

use streammeta_streams::{Element, Schema, Value, ValueType};
use streammeta_time::Timestamp;

use crate::monitors::NodeMonitors;
use crate::node::NodeBehavior;

/// Aggregation functions over one column.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AggKind {
    /// Number of valid elements.
    Count,
    /// Sum of the column.
    Sum,
    /// Arithmetic mean of the column.
    Avg,
    /// Minimum of the column.
    Min,
    /// Maximum of the column.
    Max,
}

impl AggKind {
    fn label(self) -> &'static str {
        match self {
            AggKind::Count => "count",
            AggKind::Sum => "sum",
            AggKind::Avg => "avg",
            AggKind::Min => "min",
            AggKind::Max => "max",
        }
    }
}

/// The windowed aggregate behavior.
pub struct WindowAggregate {
    kind: AggKind,
    col: usize,
    state: VecDeque<Element>,
    monitors: Arc<NodeMonitors>,
    schema: Schema,
}

impl WindowAggregate {
    /// Aggregates `col` of the (windowed) input with `kind`.
    pub fn new(kind: AggKind, col: usize, monitors: Arc<NodeMonitors>) -> Self {
        WindowAggregate {
            kind,
            col,
            state: VecDeque::new(),
            monitors,
            schema: Schema::of(&[(kind.label(), ValueType::Float)]),
        }
    }

    fn purge(&mut self, now: Timestamp) {
        while let Some(front) = self.state.front() {
            if front.is_valid_at(now) {
                break;
            }
            self.state.pop_front();
        }
    }

    fn value(&self) -> f64 {
        let vals = || {
            self.state
                .iter()
                .filter_map(|e| e.payload.get(self.col).and_then(|v| v.as_float()))
        };
        match self.kind {
            AggKind::Count => self.state.len() as f64,
            AggKind::Sum => vals().sum(),
            AggKind::Avg => {
                let n = self.state.len();
                if n == 0 {
                    0.0
                } else {
                    vals().sum::<f64>() / n as f64
                }
            }
            AggKind::Min => vals().fold(f64::INFINITY, f64::min),
            AggKind::Max => vals().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

impl NodeBehavior for WindowAggregate {
    fn process(
        &mut self,
        _port: usize,
        element: &Element,
        _now: Timestamp,
        out: &mut Vec<Element>,
    ) {
        // The expiry-ordered purge assumes equal validities (one upstream
        // window), which makes the front-of-queue check sufficient.
        self.purge(element.timestamp);
        self.state.push_back(element.clone());
        self.monitors.state_len.set(self.state.len() as f64);
        self.monitors
            .state_bytes
            .set(self.state.iter().map(|e| e.size_bytes()).sum::<usize>() as f64);
        out.push(Element {
            payload: [Value::Float(self.value())].into_iter().collect(),
            timestamp: element.timestamp,
            expiry: element.expiry,
        });
    }

    fn output_schema(&self) -> Schema {
        self.schema.clone()
    }

    fn implementation(&self) -> &'static str {
        "window-aggregate"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streammeta_streams::tuple;
    use streammeta_time::TimeSpan;

    fn windowed(v: f64, ts: u64, window: u64) -> Element {
        Element::new(tuple([Value::Float(v)]), Timestamp(ts)).with_window(TimeSpan(window))
    }

    fn feed(kind: AggKind, inputs: &[(f64, u64)], window: u64) -> Vec<f64> {
        let mut agg = WindowAggregate::new(kind, 0, NodeMonitors::new(1));
        let mut got = Vec::new();
        for &(v, ts) in inputs {
            let mut out = Vec::new();
            agg.process(0, &windowed(v, ts, window), Timestamp(ts), &mut out);
            got.push(out[0].payload[0].as_float().unwrap());
        }
        got
    }

    #[test]
    fn count_over_sliding_window() {
        // Window 10; arrivals at 0,5,12: at t=12 the first (expiry 10) left.
        let got = feed(AggKind::Count, &[(1.0, 0), (1.0, 5), (1.0, 12)], 10);
        assert_eq!(got, vec![1.0, 2.0, 2.0]);
    }

    #[test]
    fn sum_avg_min_max() {
        let inputs = [(1.0, 0), (3.0, 1), (2.0, 2)];
        assert_eq!(feed(AggKind::Sum, &inputs, 100), vec![1.0, 4.0, 6.0]);
        assert_eq!(feed(AggKind::Avg, &inputs, 100), vec![1.0, 2.0, 2.0]);
        assert_eq!(feed(AggKind::Min, &inputs, 100), vec![1.0, 1.0, 1.0]);
        assert_eq!(feed(AggKind::Max, &inputs, 100), vec![1.0, 3.0, 3.0]);
    }

    #[test]
    fn schema_names_the_aggregate() {
        let agg = WindowAggregate::new(AggKind::Avg, 0, NodeMonitors::new(1));
        assert_eq!(agg.output_schema().to_string(), "avg:float");
    }
}
