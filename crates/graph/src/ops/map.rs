//! Map / projection operators.

use std::sync::Arc;

use streammeta_streams::{Element, Schema, Tuple};
use streammeta_time::Timestamp;

use crate::node::NodeBehavior;

/// Projects the payload onto a subset of columns.
pub struct Project {
    cols: Vec<usize>,
    schema: Schema,
}

impl Project {
    /// Projection onto `cols` of an input with schema `input`.
    pub fn new(cols: Vec<usize>, input: &Schema) -> Self {
        let fields = input.fields();
        for &c in &cols {
            assert!(c < fields.len(), "projection column {c} out of range");
        }
        let schema = Schema::new(cols.iter().map(|&c| fields[c].clone()));
        Project { cols, schema }
    }
}

impl NodeBehavior for Project {
    fn process(
        &mut self,
        _port: usize,
        element: &Element,
        _now: Timestamp,
        out: &mut Vec<Element>,
    ) {
        let payload: Tuple = self
            .cols
            .iter()
            .map(|&c| element.payload[c].clone())
            .collect();
        out.push(Element {
            payload,
            timestamp: element.timestamp,
            expiry: element.expiry,
        });
    }

    fn output_schema(&self) -> Schema {
        self.schema.clone()
    }

    fn implementation(&self) -> &'static str {
        "project"
    }
}

/// Applies a user function to every payload.
pub struct MapFn {
    f: Arc<dyn Fn(&Tuple) -> Tuple + Send + Sync>,
    schema: Schema,
}

impl MapFn {
    /// A map with output schema `schema`.
    pub fn new(f: Arc<dyn Fn(&Tuple) -> Tuple + Send + Sync>, schema: Schema) -> Self {
        MapFn { f, schema }
    }
}

impl NodeBehavior for MapFn {
    fn process(
        &mut self,
        _port: usize,
        element: &Element,
        _now: Timestamp,
        out: &mut Vec<Element>,
    ) {
        out.push(Element {
            payload: (self.f)(&element.payload),
            timestamp: element.timestamp,
            expiry: element.expiry,
        });
    }

    fn output_schema(&self) -> Schema {
        self.schema.clone()
    }

    fn implementation(&self) -> &'static str {
        "map"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streammeta_streams::{tuple, Value, ValueType};

    #[test]
    fn project_keeps_selected_columns() {
        let input = Schema::of(&[("a", ValueType::Int), ("b", ValueType::Int)]);
        let mut p = Project::new(vec![1], &input);
        let mut out = Vec::new();
        p.process(
            0,
            &Element::new(tuple([Value::Int(1), Value::Int(2)]), Timestamp(3)),
            Timestamp(3),
            &mut out,
        );
        assert_eq!(&*out[0].payload, &[Value::Int(2)]);
        assert_eq!(p.output_schema().to_string(), "b:int");
        assert_eq!(out[0].timestamp, Timestamp(3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn project_validates_columns() {
        Project::new(vec![2], &Schema::of(&[("a", ValueType::Int)]));
    }

    #[test]
    fn map_fn_applies() {
        let mut m = MapFn::new(
            Arc::new(|t: &Tuple| {
                [Value::Int(t[0].as_int().unwrap() * 10)]
                    .into_iter()
                    .collect()
            }),
            Schema::of(&[("x10", ValueType::Int)]),
        );
        let mut out = Vec::new();
        m.process(
            0,
            &Element::new(tuple([Value::Int(4)]), Timestamp(0)),
            Timestamp(0),
            &mut out,
        );
        assert_eq!(out[0].payload[0], Value::Int(40));
    }
}
