//! Time-based sliding window operator.
//!
//! "Windowing constructs are usually implemented by a separate operator in
//! SSPS, namely the window operator. In the case of a time-based sliding
//! window, this operator assigns a validity to each incoming stream
//! element according to the window size." (Section 2.5)
//!
//! The window size is *runtime-adjustable* through a [`WindowHandle`]: the
//! adaptive resource manager of Section 3.3 shrinks or grows windows and
//! fires a `window_size_changed` event so dependent cost estimates update.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use streammeta_streams::{Element, Schema};
use streammeta_time::{TimeSpan, Timestamp};

use crate::node::NodeBehavior;

/// Shared, adjustable window size.
#[derive(Clone, Debug)]
pub struct WindowHandle {
    units: Arc<AtomicU64>,
}

impl WindowHandle {
    /// A handle starting at `size`.
    pub fn new(size: TimeSpan) -> Self {
        assert!(!size.is_zero(), "zero window size");
        WindowHandle {
            units: Arc::new(AtomicU64::new(size.units())),
        }
    }

    /// The current window size.
    pub fn get(&self) -> TimeSpan {
        TimeSpan(self.units.load(Ordering::SeqCst))
    }

    /// Sets the window size. The caller is responsible for firing the
    /// node's `window_size_changed` event afterwards (the metadata
    /// framework cannot observe the atomic store itself).
    pub fn set(&self, size: TimeSpan) {
        assert!(!size.is_zero(), "zero window size");
        self.units.store(size.units(), Ordering::SeqCst);
    }
}

/// The time-window behavior: stamps `expiry = timestamp + window` on every
/// element.
pub struct TimeWindow {
    handle: WindowHandle,
    schema: Schema,
}

impl TimeWindow {
    /// A window operator over `schema` with adjustable size.
    pub fn new(handle: WindowHandle, schema: Schema) -> Self {
        TimeWindow { handle, schema }
    }

    /// The shared size handle.
    pub fn handle(&self) -> &WindowHandle {
        &self.handle
    }
}

impl NodeBehavior for TimeWindow {
    fn process(
        &mut self,
        _port: usize,
        element: &Element,
        _now: Timestamp,
        out: &mut Vec<Element>,
    ) {
        out.push(element.with_window(self.handle.get()));
    }

    fn output_schema(&self) -> Schema {
        self.schema.clone()
    }

    fn implementation(&self) -> &'static str {
        "time-window"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streammeta_streams::{tuple, Value};

    #[test]
    fn stamps_validity() {
        let h = WindowHandle::new(TimeSpan(20));
        let mut w = TimeWindow::new(h.clone(), Schema::default());
        let mut out = Vec::new();
        w.process(
            0,
            &Element::new(tuple([Value::Int(1)]), Timestamp(100)),
            Timestamp(100),
            &mut out,
        );
        assert_eq!(out[0].expiry, Timestamp(120));
    }

    #[test]
    fn resizing_applies_to_subsequent_elements() {
        let h = WindowHandle::new(TimeSpan(20));
        let mut w = TimeWindow::new(h.clone(), Schema::default());
        let mut out = Vec::new();
        h.set(TimeSpan(5));
        w.process(
            0,
            &Element::new(tuple([Value::Int(1)]), Timestamp(10)),
            Timestamp(10),
            &mut out,
        );
        assert_eq!(out[0].expiry, Timestamp(15));
        assert_eq!(h.get(), TimeSpan(5));
    }

    #[test]
    #[should_panic(expected = "zero window")]
    fn zero_size_rejected() {
        WindowHandle::new(TimeSpan::ZERO);
    }
}
