//! # streammeta-graph — the query graph substrate
//!
//! A PIPES-like query graph: sources at the bottom provide raw data
//! streams, operators process them, sinks connect results to applications
//! (Figure 1 of the paper). Every node carries
//!
//! * a [`NodeMonitors`] set of activatable probes on its processing path,
//! * a [`streammeta_core::NodeRegistry`] with the standard metadata item
//!   definitions (rates, counts, selectivities, resource usage, the naive
//!   Figure 4 probe), plus operator-specific items — the join installs its
//!   exchangeable state modules' metadata under `state.left` /
//!   `state.right` scopes and overrides `memory_usage` in terms of them.
//!
//! Operators: filter, projection/map, union, time-based sliding window
//! (runtime-resizable), symmetric sliding-window join with list- or
//! hash-based state, sliding-window aggregates, and several sinks.
//! Subquery sharing falls out of the DAG wiring; queries can be removed at
//! runtime without disturbing shared prefixes.

mod graph;
mod items;
mod monitors;
mod node;
pub mod ops;

pub use graph::{NodeSlot, QueryGraph};
pub use items::{
    define_average_item, define_rate_item, define_ratio_item, install_standard_items,
    MetadataConfig, WINDOW_SIZE_CHANGED,
};
pub use monitors::NodeMonitors;
pub use node::{NodeBehavior, NodeKind};
pub use ops::{
    AggKind, Cmp, CollectHandle, CollectSink, CountHandle, CountSink, CountWindowApprox,
    DiscardSink, Filter, FilterPredicate, HashState, JoinPredicate, JoinState, ListState, MapFn,
    Project, SelectivityHandle, SharedJoinState, SlidingWindowJoin, StateImpl, TimeWindow, Union,
    WindowAggregate, WindowHandle, HASH_OP_OVERHEAD,
};
