//! The query graph.
//!
//! "In order to enable subquery sharing, query execution is based on a
//! large graph composed of operators. Metadata may refer to the sources of
//! the query graph, ... the operators inside the graph, or ... the sinks."
//! (Section 1, Figure 1)
//!
//! A [`QueryGraph`] owns the node slots (behavior + monitors + metadata
//! registry), the wiring between them, and the per-node metadata
//! installation. Execution (queues, scheduling) lives in the engine crate,
//! which drives the graph through [`QueryGraph::pull_source`] and
//! [`QueryGraph::process`]. Queries can be installed and removed at
//! runtime; removal detaches the registries of exclusively-owned nodes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use streammeta_core::{
    EventKey, HistogramMonitor, ItemDef, MetadataKey, MetadataManager, MetadataValue, NodeId,
    NodeRegistry,
};
use streammeta_streams::{Element, Generator, Schema};
use streammeta_time::{TimeSpan, Timestamp};

use crate::items::{
    define_ratio_item, install_standard_items, MetadataConfig, WINDOW_SIZE_CHANGED,
};
use crate::monitors::NodeMonitors;
use crate::node::{NodeBehavior, NodeKind};
use crate::ops::{
    AggKind, CollectHandle, CollectSink, CountHandle, CountSink, DiscardSink, Filter,
    FilterPredicate, JoinPredicate, SlidingWindowJoin, StateImpl, TimeWindow, Union,
    WindowAggregate, WindowHandle,
};

/// Global node-id allocator: ids stay unique even across several graphs
/// sharing one metadata manager.
static NEXT_NODE_ID: AtomicU32 = AtomicU32::new(0);

fn fresh_node_id() -> NodeId {
    NodeId(NEXT_NODE_ID.fetch_add(1, Ordering::Relaxed))
}

struct SourceState {
    generator: Box<dyn Generator>,
    lookahead: Option<Element>,
    exhausted: bool,
}

/// One node of the graph.
pub struct NodeSlot {
    /// The node's id.
    pub id: NodeId,
    /// Human-readable name.
    pub name: String,
    /// Source, operator or sink.
    pub kind: NodeKind,
    behavior: Option<Mutex<Box<dyn NodeBehavior>>>,
    source: Option<Mutex<SourceState>>,
    /// Implementation label (also available as static metadata).
    pub implementation: &'static str,
    /// The node's monitors.
    pub monitors: Arc<NodeMonitors>,
    registry: Arc<NodeRegistry>,
    out_schema: Schema,
    downstream: RwLock<Vec<(NodeId, usize)>>,
    upstream: Vec<NodeId>,
    /// Activatable value-distribution probes over output columns.
    histograms: RwLock<Vec<(usize, Arc<HistogramMonitor>)>>,
}

impl NodeSlot {
    /// The node's metadata registry.
    pub fn registry(&self) -> &Arc<NodeRegistry> {
        &self.registry
    }

    /// The node's output schema.
    pub fn output_schema(&self) -> &Schema {
        &self.out_schema
    }
}

/// A query graph bound to a metadata manager.
pub struct QueryGraph {
    manager: Arc<MetadataManager>,
    cfg: MetadataConfig,
    nodes: RwLock<HashMap<NodeId, Arc<NodeSlot>>>,
}

impl QueryGraph {
    /// An empty graph using the default [`MetadataConfig`].
    pub fn new(manager: Arc<MetadataManager>) -> Self {
        Self::with_config(manager, MetadataConfig::default())
    }

    /// An empty graph with an explicit metadata configuration.
    pub fn with_config(manager: Arc<MetadataManager>, cfg: MetadataConfig) -> Self {
        QueryGraph {
            manager,
            cfg,
            nodes: RwLock::new(HashMap::new()),
        }
    }

    /// The bound metadata manager.
    pub fn manager(&self) -> &Arc<MetadataManager> {
        &self.manager
    }

    /// The graph's metadata configuration.
    pub fn config(&self) -> &MetadataConfig {
        &self.cfg
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)] // internal node factory
    fn insert_node(
        &self,
        name: &str,
        kind: NodeKind,
        behavior: Option<Box<dyn NodeBehavior>>,
        source: Option<SourceState>,
        out_schema: Schema,
        implementation: &'static str,
        inputs: &[NodeId],
        monitors: Arc<NodeMonitors>,
    ) -> NodeId {
        let id = fresh_node_id();
        let ports = behavior.as_ref().map_or(0, |b| b.ports());
        if kind != NodeKind::Source {
            assert_eq!(
                inputs.len(),
                ports,
                "node {name} has {ports} ports but {} inputs were wired",
                inputs.len()
            );
        }
        let registry = NodeRegistry::new(id);
        install_standard_items(
            &registry,
            &monitors,
            kind,
            name,
            implementation,
            &out_schema,
            &self.cfg,
        );
        let slot = Arc::new(NodeSlot {
            id,
            name: name.to_owned(),
            kind,
            behavior: behavior.map(Mutex::new),
            source: source.map(Mutex::new),
            implementation,
            monitors,
            registry: registry.clone(),
            out_schema,
            downstream: RwLock::new(Vec::new()),
            upstream: inputs.to_vec(),
            histograms: RwLock::new(Vec::new()),
        });
        {
            let nodes = self.nodes.read();
            for (port, input) in inputs.iter().enumerate() {
                let up = nodes
                    .get(input)
                    .unwrap_or_else(|| panic!("unknown input node {input}"));
                assert!(
                    up.kind != NodeKind::Sink,
                    "cannot consume from sink {}",
                    up.name
                );
                up.downstream.write().push((id, port));
            }
        }
        // Query-level metadata the paper names in Section 1: "frequency
        // of reuse by subquery sharing" — here the live count of
        // downstream consumers. A weak slot reference avoids a
        // slot -> registry -> closure -> slot cycle.
        let weak = Arc::downgrade(&slot);
        registry.define(
            ItemDef::on_demand("reuse_count")
                .doc("number of downstream consumers (subquery sharing)")
                .compute(move |_| match weak.upgrade() {
                    Some(s) => MetadataValue::U64(s.downstream.read().len() as u64),
                    None => MetadataValue::Unavailable,
                })
                .build(),
        );
        self.manager.attach_node(registry);
        self.nodes.write().insert(id, slot);
        id
    }

    /// Adds a source backed by `generator`. Sources expose the
    /// data-distribution item `key_cardinality` (0 = unknown/unbounded).
    pub fn source(&self, name: &str, generator: Box<dyn Generator>) -> NodeId {
        let schema = generator.schema().clone();
        let key_cardinality = generator.key_cardinality().unwrap_or(0);
        let id = self.insert_node(
            name,
            NodeKind::Source,
            None,
            Some(SourceState {
                generator,
                lookahead: None,
                exhausted: false,
            }),
            schema,
            "source",
            &[],
            NodeMonitors::new(1),
        );
        self.slot(id)
            .registry()
            .define(ItemDef::static_value("key_cardinality", key_cardinality));
        id
    }

    /// Adds a custom operator.
    pub fn operator(
        &self,
        name: &str,
        behavior: Box<dyn NodeBehavior>,
        inputs: &[NodeId],
    ) -> NodeId {
        let monitors = NodeMonitors::new(behavior.ports().max(1));
        self.operator_with_monitors(name, behavior, inputs, monitors)
    }

    /// Adds an operator whose behavior shares a pre-built monitor set
    /// (joins and aggregates update state gauges themselves).
    pub fn operator_with_monitors(
        &self,
        name: &str,
        behavior: Box<dyn NodeBehavior>,
        inputs: &[NodeId],
        monitors: Arc<NodeMonitors>,
    ) -> NodeId {
        let schema = behavior.output_schema();
        let implementation = behavior.implementation();
        self.insert_node(
            name,
            NodeKind::Operator,
            Some(behavior),
            None,
            schema,
            implementation,
            inputs,
            monitors,
        )
    }

    /// Adds a filter; `selectivity` is measured as passed/received per
    /// metadata window.
    pub fn filter(
        &self,
        name: &str,
        input: NodeId,
        predicate: FilterPredicate,
        seed: u64,
    ) -> NodeId {
        let schema = self.output_schema(input);
        let id = self.operator(
            name,
            Box::new(Filter::new(predicate, schema, seed)),
            &[input],
        );
        let slot = self.slot(id);
        define_ratio_item(
            &slot.registry,
            "selectivity",
            &slot.monitors.output,
            &slot.monitors.input_total,
            self.cfg.rate_window,
            "measured filter selectivity (passed per received)",
        );
        id
    }

    /// Adds a time-based sliding window; returns the node and its size
    /// handle. The node defines the `window_size` item and the
    /// `window_size_changed` event (fire through
    /// [`QueryGraph::resize_window`]).
    pub fn time_window(&self, name: &str, input: NodeId, size: TimeSpan) -> (NodeId, WindowHandle) {
        let handle = WindowHandle::new(size);
        let schema = self.output_schema(input);
        let id = self.operator(
            name,
            Box::new(TimeWindow::new(handle.clone(), schema)),
            &[input],
        );
        let slot = self.slot(id);
        let h = handle.clone();
        slot.registry.define(
            ItemDef::on_demand("window_size")
                .doc("current window size in time units (adjustable at runtime)")
                .compute(move |_| MetadataValue::Span(h.get()))
                .build(),
        );
        (id, handle)
    }

    /// Adds an approximate count-based window over the last `n` elements.
    /// The operator is a metadata *consumer*: it subscribes to its own
    /// measured `input_rate` and stamps `validity = n / rate` (bounded by
    /// `fallback` until the first measurement) — count semantics realised
    /// through the metadata framework.
    pub fn count_window(&self, name: &str, input: NodeId, n: u64, fallback: TimeSpan) -> NodeId {
        let schema = self.output_schema(input);
        let behavior = crate::ops::CountWindowApprox::new(n, schema, fallback);
        let id = self.operator(name, Box::new(behavior), &[input]);
        let sub = self
            .manager
            .subscribe(MetadataKey::new(id, "input_rate"))
            .expect("standard item exists");
        let slot = self.slot(id);
        let mut guard = slot.behavior.as_ref().expect("operator").lock();
        guard
            .as_any_mut()
            .and_then(|a| a.downcast_mut::<crate::ops::CountWindowApprox>())
            .expect("just created")
            .attach_rate(sub);
        id
    }

    /// Resizes a window operator and fires its `window_size_changed`
    /// event so dependent (triggered) estimates update — the adaptive
    /// resource management loop of Section 3.3.
    pub fn resize_window(&self, window_node: NodeId, handle: &WindowHandle, size: TimeSpan) {
        handle.set(size);
        self.manager
            .fire_event(EventKey::new(window_node, WINDOW_SIZE_CHANGED));
    }

    /// Adds a symmetric sliding-window join over two *windowed* inputs.
    /// Installs `selectivity` (results per candidate pair), the
    /// `predicate_cost` item, the state modules' metadata under
    /// `state.left` / `state.right`, and overrides `memory_usage` to the
    /// sum of the modules' usage (Sections 4.4.2 and 4.5).
    pub fn join(
        &self,
        name: &str,
        left: NodeId,
        right: NodeId,
        predicate: JoinPredicate,
        state_impl: StateImpl,
    ) -> NodeId {
        let (ls, rs) = (self.output_schema(left), self.output_schema(right));
        let monitors = NodeMonitors::new(2);
        let join = SlidingWindowJoin::new(predicate, state_impl, &ls, &rs, monitors.clone());
        let left_state = join.left_state().clone();
        let right_state = join.right_state().clone();
        let predicate_cost = join.predicate().nominal_cost();
        let predicate_label = join.predicate().label();
        let id = self.operator_with_monitors(name, Box::new(join), &[left, right], monitors);
        let slot = self.slot(id);
        define_ratio_item(
            &slot.registry,
            "selectivity",
            &slot.monitors.output,
            &slot.monitors.pairs,
            self.cfg.rate_window,
            "measured join selectivity (results per candidate pair)",
        );
        slot.registry
            .define(ItemDef::static_value("predicate", predicate_label));
        slot.registry
            .define(ItemDef::static_value("predicate_cost", predicate_cost));
        // Module metadata (Section 4.5).
        slot.registry.scope("state.left").install(&left_state);
        slot.registry.scope("state.right").install(&right_state);
        // Override memory_usage in terms of the modules (Section 4.4.2):
        slot.registry.define(
            ItemDef::on_demand("memory_usage")
                .dep_local("state.left.memory_usage")
                .dep_local("state.right.memory_usage")
                .doc("sum of the state modules' memory usage")
                .compute(|ctx| {
                    let l = ctx.dep_f64("state.left.memory_usage").unwrap_or(0.0);
                    let r = ctx.dep_f64("state.right.memory_usage").unwrap_or(0.0);
                    MetadataValue::U64((l + r) as u64)
                })
                .build(),
        );
        id
    }

    /// Adds a union of schema-compatible inputs.
    pub fn union(&self, name: &str, inputs: &[NodeId]) -> NodeId {
        let schema = self.output_schema(inputs[0]);
        self.operator(name, Box::new(Union::new(inputs.len(), schema)), inputs)
    }

    /// Adds a projection.
    pub fn project(&self, name: &str, input: NodeId, cols: Vec<usize>) -> NodeId {
        let schema = self.output_schema(input);
        self.operator(
            name,
            Box::new(crate::ops::Project::new(cols, &schema)),
            &[input],
        )
    }

    /// Adds a sliding-window aggregate over a windowed input.
    pub fn aggregate(&self, name: &str, input: NodeId, kind: AggKind, col: usize) -> NodeId {
        let monitors = NodeMonitors::new(1);
        self.operator_with_monitors(
            name,
            Box::new(WindowAggregate::new(kind, col, monitors.clone())),
            &[input],
            monitors,
        )
    }

    /// Adds a collecting sink; returns the node and a read handle.
    pub fn sink_collect(&self, name: &str, input: NodeId) -> (NodeId, CollectHandle) {
        let (sink, handle) = CollectSink::new();
        let id = self.insert_node(
            name,
            NodeKind::Sink,
            Some(Box::new(sink)),
            None,
            Schema::default(),
            "collect-sink",
            &[input],
            NodeMonitors::new(1),
        );
        (id, handle)
    }

    /// Adds a counting sink; returns the node and a read handle.
    pub fn sink_count(&self, name: &str, input: NodeId) -> (NodeId, CountHandle) {
        let (sink, handle) = CountSink::new();
        let id = self.insert_node(
            name,
            NodeKind::Sink,
            Some(Box::new(sink)),
            None,
            Schema::default(),
            "count-sink",
            &[input],
            NodeMonitors::new(1),
        );
        (id, handle)
    }

    /// Adds a discarding sink.
    pub fn sink_discard(&self, name: &str, input: NodeId) -> NodeId {
        self.insert_node(
            name,
            NodeKind::Sink,
            Some(Box::new(DiscardSink)),
            None,
            Schema::default(),
            "discard-sink",
            &[input],
            NodeMonitors::new(1),
        )
    }

    /// Defines query-level QoS metadata at a sink (static items:
    /// `qos.priority` and `qos.max_latency`).
    pub fn set_sink_qos(&self, sink: NodeId, priority: u64, max_latency: TimeSpan) {
        let slot = self.slot(sink);
        assert_eq!(slot.kind, NodeKind::Sink, "QoS belongs to sinks");
        slot.registry
            .define(ItemDef::static_value("qos.priority", priority));
        slot.registry
            .define(ItemDef::static_value("qos.max_latency", max_latency));
    }

    /// Attaches a value-distribution probe to integer column `col` of
    /// `node`'s output and defines the periodic metadata item
    /// `value_distribution.<col>` over it ("data distributions" are
    /// canonical source metadata in the paper's Section 1). The monitor is
    /// activated only while the item — or something depending on it, such
    /// as a selectivity estimate — is included. Returns the item's key.
    pub fn add_value_histogram(
        &self,
        node: NodeId,
        col: usize,
        lo: i64,
        hi: i64,
        buckets: usize,
    ) -> MetadataKey {
        let slot = self.slot(node);
        let monitor = HistogramMonitor::new(lo, hi, buckets);
        slot.histograms.write().push((col, monitor.clone()));
        let item = format!("value_distribution.{col}");
        slot.registry.define(
            ItemDef::periodic(item.clone(), self.cfg.rate_window)
                .counter(monitor.activation())
                .doc("equi-width histogram of the column's observed values")
                .compute(move |_| MetadataValue::Histogram(monitor.snapshot()))
                .build(),
        );
        MetadataKey::new(node, item)
    }

    /// Exchanges a join's state modules at runtime (list <-> hash),
    /// migrating the stored elements, updating the `implementation`
    /// metadata definition and firing the node's `implementation_changed`
    /// event. Returns `false` if the node's behavior does not support the
    /// swap (not a join).
    ///
    /// Note: a *live* `implementation` handler keeps serving the old
    /// static value (static items compute once); the module item
    /// `state.*.impl` is on-demand and always reports the current
    /// implementation. Consumers of cost estimates should resubscribe
    /// after a plan change (see `streammeta-costmodel`'s optimizer).
    pub fn swap_join_state(&self, join: NodeId, new_impl: StateImpl) -> bool {
        let slot = self.slot(join);
        let Some(behavior) = &slot.behavior else {
            return false;
        };
        {
            let mut guard = behavior.lock();
            let Some(any) = guard.as_any_mut() else {
                return false;
            };
            let Some(j) = any.downcast_mut::<SlidingWindowJoin>() else {
                return false;
            };
            j.swap_state(new_impl);
        }
        let label = match new_impl {
            StateImpl::List => "nested-loops",
            StateImpl::Hash => "hash-based",
            StateImpl::Ordered => "ordered",
        };
        slot.registry
            .define(ItemDef::static_value("implementation", label));
        self.manager
            .fire_event(EventKey::new(join, "implementation_changed"));
        true
    }

    // ------------------------------------------------------------------
    // Topology queries
    // ------------------------------------------------------------------

    fn slot(&self, id: NodeId) -> Arc<NodeSlot> {
        self.nodes
            .read()
            .get(&id)
            .unwrap_or_else(|| panic!("unknown node {id}"))
            .clone()
    }

    /// Looks a node up, if present.
    pub fn get(&self, id: NodeId) -> Option<Arc<NodeSlot>> {
        self.nodes.read().get(&id).cloned()
    }

    /// All node ids, sorted.
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<_> = self.nodes.read().keys().copied().collect();
        v.sort();
        v
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.read().len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.read().is_empty()
    }

    /// The node's kind.
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.slot(id).kind
    }

    /// The node's name.
    pub fn name(&self, id: NodeId) -> String {
        self.slot(id).name.clone()
    }

    /// The node's output schema.
    pub fn output_schema(&self, id: NodeId) -> Schema {
        self.slot(id).out_schema.clone()
    }

    /// The node's implementation label.
    pub fn implementation(&self, id: NodeId) -> &'static str {
        self.slot(id).implementation
    }

    /// The node's monitors.
    pub fn monitors(&self, id: NodeId) -> Arc<NodeMonitors> {
        self.slot(id).monitors.clone()
    }

    /// The consumers wired to a node's output: `(node, input port)`.
    pub fn downstream(&self, id: NodeId) -> Vec<(NodeId, usize)> {
        self.slot(id).downstream.read().clone()
    }

    /// The node's inputs in port order.
    pub fn upstream(&self, id: NodeId) -> Vec<NodeId> {
        self.slot(id).upstream.clone()
    }

    // ------------------------------------------------------------------
    // Execution interface (driven by the engine)
    // ------------------------------------------------------------------

    /// Delivers one element to `node`'s `port`, collecting produced
    /// elements into `out`. Records input/output/work monitors.
    pub fn process(
        &self,
        node: NodeId,
        port: usize,
        element: &Element,
        now: Timestamp,
        out: &mut Vec<Element>,
    ) {
        let slot = self.slot(node);
        slot.monitors.record_input(port);
        slot.monitors.work.record_n(1);
        if slot.kind == NodeKind::Sink {
            // End-to-end latency of the result reaching the application.
            slot.monitors
                .latency_units
                .record_n(now.since(element.timestamp).units());
        }
        let before = out.len();
        if let Some(behavior) = &slot.behavior {
            behavior.lock().process(port, element, now, out);
        }
        slot.monitors.record_output((out.len() - before) as u64);
        Self::observe_histograms(&slot, &out[before..]);
    }

    fn observe_histograms(slot: &NodeSlot, produced: &[Element]) {
        if produced.is_empty() {
            return;
        }
        let histograms = slot.histograms.read();
        for (col, monitor) in histograms.iter() {
            for e in produced {
                if let Some(v) = e.payload.get(*col).and_then(|v| v.as_int()) {
                    monitor.observe(v);
                }
            }
        }
    }

    /// Releases all source elements with `timestamp <= until` into `out`.
    /// Records the source's output monitor.
    pub fn pull_source(&self, node: NodeId, until: Timestamp, out: &mut Vec<Element>) {
        let slot = self.slot(node);
        let mut src = slot
            .source
            .as_ref()
            .expect("pull_source on a non-source node")
            .lock();
        let before = out.len();
        loop {
            if src.lookahead.is_none() && !src.exhausted {
                src.lookahead = src.generator.next_element();
                // A live generator may produce more later; only
                // non-live generators are latched as exhausted.
                if src.lookahead.is_none() {
                    if src.generator.live() {
                        break;
                    }
                    src.exhausted = true;
                }
            }
            match &src.lookahead {
                Some(e) if e.timestamp <= until => {
                    out.push(src.lookahead.take().expect("present"));
                }
                _ => break,
            }
        }
        let produced = (out.len() - before) as u64;
        slot.monitors.record_output(produced);
        slot.monitors.work.record_n(produced);
        Self::observe_histograms(&slot, &out[out.len() - produced as usize..]);
    }

    /// The next pending source arrival time, if any.
    pub fn next_source_arrival(&self, node: NodeId) -> Option<Timestamp> {
        let slot = self.slot(node);
        let mut src = slot.source.as_ref()?.lock();
        if src.lookahead.is_none() && !src.exhausted {
            src.lookahead = src.generator.next_element();
            if src.lookahead.is_none() && !src.generator.live() {
                src.exhausted = true;
            }
        }
        src.lookahead.as_ref().map(|e| e.timestamp)
    }

    // ------------------------------------------------------------------
    // Runtime query removal
    // ------------------------------------------------------------------

    /// Removes the query rooted at `sink`: the sink plus every upstream
    /// node that no other query consumes (subquery sharing keeps shared
    /// prefixes alive). Registries of removed nodes are detached from the
    /// metadata manager. Returns the removed node ids.
    pub fn remove_query(&self, sink: NodeId) -> Vec<NodeId> {
        let mut removed = Vec::new();
        let mut nodes = self.nodes.write();
        let Some(slot) = nodes.get(&sink) else {
            return removed;
        };
        assert_eq!(slot.kind, NodeKind::Sink, "remove_query starts at a sink");
        let mut pending = vec![sink];
        while let Some(id) = pending.pop() {
            let Some(slot) = nodes.get(&id) else { continue };
            if !slot.downstream.read().is_empty() {
                continue; // still consumed by another query
            }
            let slot = nodes.remove(&id).expect("present");
            self.manager.detach_node(id);
            removed.push(id);
            for up in &slot.upstream {
                if let Some(up_slot) = nodes.get(up) {
                    up_slot.downstream.write().retain(|(d, _)| *d != id);
                    pending.push(*up);
                }
            }
        }
        removed.sort();
        removed
    }
}
