//! Standard per-node monitors.
//!
//! Every query-graph node carries the same set of cheap, activatable
//! probes on its processing path. Metadata item definitions reference them
//! and the inclusion hooks switch them on and off (Section 4.4.1 of the
//! paper: "the developer has to add specific monitoring code ... which
//! needs to be activated by the addMetadata method").

use std::sync::Arc;

use streammeta_core::{Counter, Gauge};

/// The monitor set of one node.
#[derive(Clone)]
pub struct NodeMonitors {
    /// Per-input-port element counters.
    pub inputs: Vec<Arc<Counter>>,
    /// Elements received over all ports.
    pub input_total: Arc<Counter>,
    /// Elements emitted.
    pub output: Arc<Counter>,
    /// Candidate pairs considered by a join (predicate evaluations).
    pub pairs: Arc<Counter>,
    /// Elements dropped (by load shedding).
    pub dropped: Arc<Counter>,
    /// Abstract work units spent processing (the "measured CPU" probe).
    pub work: Arc<Counter>,
    /// Current operator state size in bytes.
    pub state_bytes: Arc<Gauge>,
    /// Current operator state size in elements.
    pub state_len: Arc<Gauge>,
    /// Accumulated end-to-end latency (time units) of elements consumed
    /// by a sink.
    pub latency_units: Arc<Counter>,
}

impl NodeMonitors {
    /// Monitors for a node with `ports` input ports.
    pub fn new(ports: usize) -> Arc<Self> {
        Arc::new(NodeMonitors {
            inputs: (0..ports).map(|_| Counter::new()).collect(),
            input_total: Counter::new(),
            output: Counter::new(),
            pairs: Counter::new(),
            dropped: Counter::new(),
            work: Counter::new(),
            state_bytes: Gauge::new(),
            state_len: Gauge::new(),
            latency_units: Counter::new(),
        })
    }

    /// Records the arrival of one element on `port`.
    #[inline]
    pub fn record_input(&self, port: usize) {
        if let Some(c) = self.inputs.get(port) {
            c.record();
        }
        self.input_total.record();
    }

    /// Records `n` emitted elements.
    #[inline]
    pub fn record_output(&self, n: u64) {
        self.output.record_n(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_input_hits_port_and_total() {
        let m = NodeMonitors::new(2);
        m.inputs[1].activate();
        m.input_total.activate();
        m.record_input(1);
        m.record_input(0);
        assert_eq!(m.inputs[1].value(), 1);
        assert_eq!(m.inputs[0].value(), 0, "port 0 counter inactive");
        assert_eq!(m.input_total.value(), 2);
    }

    #[test]
    fn out_of_range_port_only_counts_total() {
        let m = NodeMonitors::new(1);
        m.input_total.activate();
        m.record_input(7);
        assert_eq!(m.input_total.value(), 1);
    }
}
