//! Node abstractions.

use std::fmt;

use streammeta_streams::{Element, Schema};
use streammeta_time::Timestamp;

/// Position of a node in the query graph (Figure 1 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeKind {
    /// Provides raw data streams at the bottom of the graph.
    Source,
    /// Processes data streams.
    Operator,
    /// Connects query results to an application at the top.
    Sink,
}

impl NodeKind {
    /// Lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            NodeKind::Source => "source",
            NodeKind::Operator => "operator",
            NodeKind::Sink => "sink",
        }
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The processing logic of an operator or sink node.
///
/// Behaviors are pure stream transformers; metadata monitors around them
/// are maintained by the graph (inputs/outputs) or by the behavior itself
/// (join candidate pairs, state sizes).
pub trait NodeBehavior: Send {
    /// Number of input ports.
    fn ports(&self) -> usize {
        1
    }

    /// Processes one element arriving on `port` at time `now`, appending
    /// any produced elements to `out`.
    fn process(&mut self, port: usize, element: &Element, now: Timestamp, out: &mut Vec<Element>);

    /// Schema of the produced stream (empty for sinks).
    fn output_schema(&self) -> Schema;

    /// A short implementation label (static metadata).
    fn implementation(&self) -> &'static str;

    /// Downcast support for behaviors that offer runtime reconfiguration
    /// (e.g. exchangeable join state modules). Default: not supported.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}
