//! Standard metadata item definitions installed on every node.
//!
//! These are the "inherited" items of Section 4.4.2: every node class gets
//! the same base set (rates, counts, resource usage, naive probes), and
//! specialised operators add to or override them (the join redefines
//! `memory_usage` in terms of its state modules, filters and joins define
//! `selectivity`).

use std::sync::Arc;

use streammeta_core::{
    Counter, IntervalRate, ItemDef, MetadataValue, NodeRegistry, OnlineAverage, WindowDelta,
};
use streammeta_streams::Schema;
use streammeta_time::{TimeSpan, Timestamp};

use crate::monitors::NodeMonitors;
use crate::node::NodeKind;

/// Name of the event fired when a window operator is resized.
pub const WINDOW_SIZE_CHANGED: &str = "window_size_changed";

/// Per-graph metadata configuration.
#[derive(Clone, Copy, Debug)]
pub struct MetadataConfig {
    /// Window length of periodic measurements (the freshness/overhead
    /// knob of Section 3.1).
    pub rate_window: TimeSpan,
}

impl Default for MetadataConfig {
    fn default() -> Self {
        MetadataConfig {
            rate_window: TimeSpan(100),
        }
    }
}

/// Defines a periodic rate item measuring `counter` per time unit.
pub fn define_rate_item(
    reg: &Arc<NodeRegistry>,
    name: &str,
    counter: &Arc<Counter>,
    window: TimeSpan,
    doc: &str,
) {
    let delta = Arc::new(WindowDelta::new(counter.clone()));
    reg.define(
        ItemDef::periodic(name, window)
            .counter(counter)
            .stateful()
            .doc(doc)
            .compute(move |ctx| match delta.rate_over(ctx.window().unwrap()) {
                Some(r) => MetadataValue::F64(r),
                None => MetadataValue::Unavailable,
            })
            .build(),
    );
}

/// Defines a triggered online average over another (numeric) local item.
pub fn define_average_item(reg: &Arc<NodeRegistry>, name: &str, over: &str, doc: &str) {
    let avg = Arc::new(OnlineAverage::new());
    let over_owned = over.to_owned();
    reg.define(
        ItemDef::triggered(name)
            .dep_local(over)
            .stateful()
            .doc(doc)
            .compute(move |ctx| match ctx.dep_f64(&over_owned) {
                Some(v) => {
                    avg.observe(v);
                    MetadataValue::F64(avg.mean().expect("just observed"))
                }
                None => MetadataValue::Unavailable,
            })
            .build(),
    );
}

/// Defines a periodic ratio of two counters over the measurement window
/// (used for selectivities: passed/input for filters, output/pairs for
/// joins).
pub fn define_ratio_item(
    reg: &Arc<NodeRegistry>,
    name: &str,
    numerator: &Arc<Counter>,
    denominator: &Arc<Counter>,
    window: TimeSpan,
    doc: &str,
) {
    let num = Arc::new(WindowDelta::new(numerator.clone()));
    let den = Arc::new(WindowDelta::new(denominator.clone()));
    reg.define(
        ItemDef::periodic(name, window)
            .counter(numerator)
            .counter(denominator)
            .stateful()
            .doc(doc)
            .compute(move |ctx| {
                if ctx.window().unwrap_or(TimeSpan::ZERO).is_zero() {
                    // Initial evaluation: prime both deltas.
                    num.take_delta();
                    den.take_delta();
                    return MetadataValue::Unavailable;
                }
                let n = num.take_delta() as f64;
                let d = den.take_delta() as f64;
                if d == 0.0 {
                    MetadataValue::Unavailable
                } else {
                    MetadataValue::F64(n / d)
                }
            })
            .build(),
    );
}

/// Installs the base item set shared by all node kinds.
pub fn install_standard_items(
    reg: &Arc<NodeRegistry>,
    monitors: &Arc<NodeMonitors>,
    kind: NodeKind,
    name: &str,
    implementation: &'static str,
    out_schema: &Schema,
    cfg: &MetadataConfig,
) {
    // --- static metadata (Figure 2 left branch) ---
    reg.define(ItemDef::static_value("name", name));
    reg.define(ItemDef::static_value("kind", kind.label()));
    reg.define(ItemDef::static_value("implementation", implementation));
    reg.define(ItemDef::static_value(
        "schema",
        out_schema.to_string().as_str(),
    ));
    reg.define(ItemDef::static_value(
        "element_size",
        out_schema.element_size() as u64,
    ));

    // --- on-demand counts ---
    let c = monitors.input_total.clone();
    reg.define(
        ItemDef::on_demand("input_count")
            .counter(&monitors.input_total)
            .doc("elements received while monitored")
            .compute(move |_| MetadataValue::U64(c.value()))
            .build(),
    );
    let c = monitors.output.clone();
    reg.define(
        ItemDef::on_demand("output_count")
            .counter(&monitors.output)
            .doc("elements emitted while monitored")
            .compute(move |_| MetadataValue::U64(c.value()))
            .build(),
    );
    let c = monitors.dropped.clone();
    reg.define(
        ItemDef::on_demand("dropped_count")
            .counter(&monitors.dropped)
            .doc("elements dropped by load shedding")
            .compute(move |_| MetadataValue::U64(c.value()))
            .build(),
    );

    // --- periodic rates ---
    define_rate_item(
        reg,
        "input_rate",
        &monitors.input_total,
        cfg.rate_window,
        "measured input rate (elements per time unit, periodic)",
    );
    define_rate_item(
        reg,
        "output_rate",
        &monitors.output,
        cfg.rate_window,
        "measured output rate (elements per time unit, periodic)",
    );
    for (port, counter) in monitors.inputs.iter().enumerate() {
        define_rate_item(
            reg,
            &format!("input_rate.{port}"),
            counter,
            cfg.rate_window,
            "per-port measured input rate",
        );
    }
    define_rate_item(
        reg,
        "measured_cpu_usage",
        &monitors.work,
        cfg.rate_window,
        "measured work units per time unit",
    );

    // --- triggered aggregates over the rates (intra-node deps) ---
    define_average_item(
        reg,
        "avg_input_rate",
        "input_rate",
        "running average of the measured input rate",
    );
    define_average_item(
        reg,
        "avg_output_rate",
        "output_rate",
        "running average of the measured output rate",
    );
    reg.define(
        ItemDef::triggered("io_ratio")
            .dep_local("input_rate")
            .dep_local("output_rate")
            .doc("input rate divided by output rate")
            .compute(
                |ctx| match (ctx.dep_f64("input_rate"), ctx.dep_f64("output_rate")) {
                    (Some(i), Some(o)) if o != 0.0 => MetadataValue::F64(i / o),
                    _ => MetadataValue::Unavailable,
                },
            )
            .build(),
    );

    // --- the naive on-demand rate probe (reproduces Figure 4) ---
    let naive = Arc::new(IntervalRate::new(
        monitors.input_total.clone(),
        Timestamp::ZERO,
    ));
    reg.define(
        ItemDef::on_demand("input_rate_naive")
            .counter(&monitors.input_total)
            .reset_on_read()
            .doc("NAIVE reset-on-access rate measurement; interferes under concurrent consumers (Figure 4)")
            .compute(move |ctx| MetadataValue::F64(naive.sample(ctx.now())))
            .build(),
    );

    // --- sink QoS observation ---
    if kind == NodeKind::Sink {
        define_ratio_item(
            reg,
            "avg_latency",
            &monitors.latency_units,
            &monitors.input_total,
            cfg.rate_window,
            "average end-to-end latency of delivered results (time units, periodic)",
        );
    }

    // --- state-derived resource usage (overridable, Section 4.4.2) ---
    let g = monitors.state_len.clone();
    reg.define(
        ItemDef::on_demand("state_size")
            .monitor(monitors.state_len.clone())
            .doc("current operator state size in elements")
            .compute(move |_| MetadataValue::U64(g.value() as u64))
            .build(),
    );
    let g = monitors.state_bytes.clone();
    reg.define(
        ItemDef::on_demand("memory_usage")
            .monitor(monitors.state_bytes.clone())
            .doc("measured memory usage of the operator state in bytes")
            .compute(move |_| MetadataValue::U64(g.value() as u64))
            .build(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use streammeta_core::{MetadataKey, MetadataManager, NodeId};
    use streammeta_time::{Clock, VirtualClock};

    #[test]
    fn standard_items_cover_the_taxonomy() {
        let reg = NodeRegistry::new(NodeId(0));
        let monitors = NodeMonitors::new(2);
        install_standard_items(
            &reg,
            &monitors,
            NodeKind::Operator,
            "probe",
            "test-op",
            &Schema::default(),
            &MetadataConfig::default(),
        );
        for item in [
            "name",
            "kind",
            "implementation",
            "schema",
            "element_size",
            "input_count",
            "output_count",
            "dropped_count",
            "input_rate",
            "output_rate",
            "input_rate.0",
            "input_rate.1",
            "measured_cpu_usage",
            "avg_input_rate",
            "avg_output_rate",
            "io_ratio",
            "input_rate_naive",
            "state_size",
            "memory_usage",
        ] {
            assert!(
                reg.contains(&streammeta_core::ItemPath::new(item)),
                "missing {item}"
            );
        }
    }

    #[test]
    fn rate_and_ratio_items_measure() {
        let clock = VirtualClock::shared();
        let mgr = MetadataManager::new(clock.clone());
        let reg = NodeRegistry::new(NodeId(0));
        let monitors = NodeMonitors::new(1);
        install_standard_items(
            &reg,
            &monitors,
            NodeKind::Operator,
            "op",
            "op",
            &Schema::default(),
            &MetadataConfig {
                rate_window: TimeSpan(10),
            },
        );
        define_ratio_item(
            &reg,
            "selectivity",
            &monitors.output,
            &monitors.input_total,
            TimeSpan(10),
            "passed per input",
        );
        mgr.attach_node(reg);
        let rate = mgr
            .subscribe(MetadataKey::new(NodeId(0), "input_rate"))
            .unwrap();
        let sel = mgr
            .subscribe(MetadataKey::new(NodeId(0), "selectivity"))
            .unwrap();
        // 10 inputs, 5 outputs over one window of 10 units.
        for i in 0..10 {
            monitors.record_input(0);
            if i % 2 == 0 {
                monitors.record_output(1);
            }
        }
        clock.advance(TimeSpan(10));
        mgr.periodic().advance_to(clock.now());
        assert_eq!(rate.get_f64(), Some(1.0));
        assert_eq!(sel.get_f64(), Some(0.5));
    }

    #[test]
    fn io_ratio_combines_rates() {
        let clock = VirtualClock::shared();
        let mgr = MetadataManager::new(clock.clone());
        let reg = NodeRegistry::new(NodeId(0));
        let monitors = NodeMonitors::new(1);
        install_standard_items(
            &reg,
            &monitors,
            NodeKind::Operator,
            "op",
            "op",
            &Schema::default(),
            &MetadataConfig {
                rate_window: TimeSpan(10),
            },
        );
        mgr.attach_node(reg);
        let ratio = mgr
            .subscribe(MetadataKey::new(NodeId(0), "io_ratio"))
            .unwrap();
        for _ in 0..10 {
            monitors.record_input(0);
        }
        monitors.record_output(5);
        clock.advance(TimeSpan(10));
        mgr.periodic().advance_to(clock.now());
        // in 1.0 / out 0.5.
        assert_eq!(ratio.get_f64(), Some(2.0));
    }
}
