//! Clocks, timestamps and periodic-update drivers.
//!
//! The metadata framework of the paper calibrates the freshness/overhead
//! trade-off through *time windows* (Section 3.1) and distributes periodic
//! update tasks over a small pool of worker threads (Section 4.3). Both
//! require a notion of time that the rest of the workspace can share.
//!
//! Two clock implementations are provided:
//!
//! * [`VirtualClock`] — a logical clock that is advanced explicitly by the
//!   execution engine. All correctness experiments (the Figure 4 and
//!   Figure 5 anomalies in particular) run on virtual time so that their
//!   tables are exactly reproducible.
//! * [`WallClock`] — microseconds since an origin `Instant`, used by the
//!   multi-threaded executor and the overhead benchmarks.
//!
//! Periodic metadata handlers are driven by a [`PeriodicRegistry`]. In
//! virtual-time mode the engine calls [`PeriodicRegistry::advance_to`] as it
//! steps the clock; in wall-clock mode a [`WorkerPool`] of one or more
//! threads polls the same registry (the "small pool of worker-threads" of
//! Section 4.3).

mod clock;
mod periodic;
mod pool;
mod timestamp;

pub use clock::{Clock, ClockRef, VirtualClock, WallClock};
pub use periodic::{PeriodicRegistry, PeriodicTask, TaskId};
pub use pool::WorkerPool;
pub use timestamp::{TimeSpan, Timestamp};
