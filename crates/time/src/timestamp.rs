//! Logical time units.
//!
//! A [`Timestamp`] is a number of abstract *time units* since the system
//! origin. The paper's illustrations count in plain time units (e.g. the
//! access period of 50 time units in Figure 4); in wall-clock mode one unit
//! is one microsecond.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in time, in time units since the origin.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

/// A span of time, in time units.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeSpan(pub u64);

impl Timestamp {
    /// The system origin.
    pub const ZERO: Timestamp = Timestamp(0);
    /// The largest representable instant; used as "never expires".
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Raw number of time units since the origin.
    #[inline]
    pub fn units(self) -> u64 {
        self.0
    }

    /// Span elapsed since `earlier`, saturating at zero.
    #[inline]
    pub fn since(self, earlier: Timestamp) -> TimeSpan {
        TimeSpan(self.0.saturating_sub(earlier.0))
    }

    /// Timestamp advanced by `span`, saturating at [`Timestamp::MAX`].
    #[inline]
    pub fn saturating_add(self, span: TimeSpan) -> Timestamp {
        Timestamp(self.0.saturating_add(span.0))
    }
}

impl TimeSpan {
    /// The empty span.
    pub const ZERO: TimeSpan = TimeSpan(0);

    /// Raw number of time units in the span.
    #[inline]
    pub fn units(self) -> u64 {
        self.0
    }

    /// Whether the span is empty.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The span as a floating point number of time units, for rate maths.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl Add<TimeSpan> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn add(self, rhs: TimeSpan) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<TimeSpan> for Timestamp {
    #[inline]
    fn add_assign(&mut self, rhs: TimeSpan) {
        self.0 += rhs.0;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = TimeSpan;
    #[inline]
    fn sub(self, rhs: Timestamp) -> TimeSpan {
        TimeSpan(self.0 - rhs.0)
    }
}

impl Add<TimeSpan> for TimeSpan {
    type Output = TimeSpan;
    #[inline]
    fn add(self, rhs: TimeSpan) -> TimeSpan {
        TimeSpan(self.0 + rhs.0)
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for TimeSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}u", self.0)
    }
}

impl fmt::Display for TimeSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = Timestamp(100);
        let s = TimeSpan(50);
        assert_eq!(t + s, Timestamp(150));
        assert_eq!((t + s) - t, s);
        assert_eq!(t.since(Timestamp(30)), TimeSpan(70));
    }

    #[test]
    fn since_saturates() {
        assert_eq!(Timestamp(10).since(Timestamp(20)), TimeSpan::ZERO);
    }

    #[test]
    fn saturating_add_caps_at_max() {
        assert_eq!(Timestamp::MAX.saturating_add(TimeSpan(1)), Timestamp::MAX);
    }

    #[test]
    fn ordering_matches_units() {
        assert!(Timestamp(1) < Timestamp(2));
        assert!(TimeSpan(3) > TimeSpan(2));
    }

    #[test]
    fn display_is_plain_units() {
        assert_eq!(Timestamp(42).to_string(), "42");
        assert_eq!(TimeSpan(7).to_string(), "7");
        assert_eq!(format!("{:?}", Timestamp(42)), "t42");
    }
}
