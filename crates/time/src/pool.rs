//! Wall-clock worker pool driving a [`PeriodicRegistry`].
//!
//! Section 4.3 of the paper: "A further optimization for scalability is to
//! distribute the periodic update tasks over a small pool of worker-threads.
//! For small query graphs, however, a single thread is sufficient." The pool
//! size is a constructor parameter; one thread is the default.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::{Clock, PeriodicRegistry};

/// A pool of threads that fire due periodic tasks against wall-clock time.
pub struct WorkerPool {
    registry: Arc<PeriodicRegistry>,
    shutdown: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers (at least one) that poll `registry` using
    /// `clock` for the current time.
    pub fn start(registry: Arc<PeriodicRegistry>, clock: Arc<dyn Clock>, threads: usize) -> Self {
        let threads = threads.max(1);
        let shutdown = Arc::new(AtomicBool::new(false));
        let handles = (0..threads)
            .map(|i| {
                let registry = registry.clone();
                let clock = clock.clone();
                let shutdown = shutdown.clone();
                std::thread::Builder::new()
                    .name(format!("md-periodic-{i}"))
                    .spawn(move || worker_loop(&registry, &*clock, &shutdown))
                    .expect("spawn periodic worker")
            })
            .collect();
        Self {
            registry,
            shutdown,
            handles,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Stops all workers and waits for them to finish.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.registry.notify_shutdown();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.stop();
    }
}

fn worker_loop(registry: &PeriodicRegistry, clock: &dyn Clock, shutdown: &AtomicBool) {
    // How long a worker sleeps when the registry is empty.
    const IDLE: Duration = Duration::from_millis(5);
    while !shutdown.load(Ordering::SeqCst) {
        let now = clock.now();
        registry.advance_to(now);
        let sleep = match registry.next_due() {
            Some(due) if due > now => {
                // One time unit == one microsecond under a wall clock.
                Duration::from_micros((due - now).units()).min(IDLE)
            }
            Some(_) => continue, // already due again
            None => IDLE,
        };
        registry.wait_for_work(sleep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PeriodicTask, TimeSpan, Timestamp, WallClock};
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn pool_fires_tasks_against_wall_clock() {
        let registry = PeriodicRegistry::shared();
        let clock = WallClock::shared();
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = n.clone();
        let task: Arc<dyn PeriodicTask> = Arc::new(move |_t: Timestamp| {
            n2.fetch_add(1, Ordering::SeqCst);
        });
        // Fire every 500us starting at 1000us.
        registry.register(Timestamp(1000), TimeSpan(500), task);
        let pool = WorkerPool::start(registry, clock, 1);
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while n.load(Ordering::SeqCst) < 3 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        pool.shutdown();
        assert!(n.load(Ordering::SeqCst) >= 3, "pool fired too few tasks");
    }

    #[test]
    fn pool_with_multiple_threads_shuts_down_cleanly() {
        let registry = PeriodicRegistry::shared();
        let clock = WallClock::shared();
        let pool = WorkerPool::start(registry, clock, 4);
        assert_eq!(pool.threads(), 4);
        pool.shutdown();
    }

    #[test]
    fn drop_stops_workers() {
        let registry = PeriodicRegistry::shared();
        let clock = WallClock::shared();
        let pool = WorkerPool::start(registry.clone(), clock, 2);
        drop(pool);
        // After drop, advancing manually still works (no poisoned state).
        registry.advance_to(Timestamp(1));
    }
}
