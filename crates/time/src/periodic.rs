//! Registry of periodic tasks.
//!
//! Periodic metadata handlers (Section 3.2.2 of the paper) refresh their
//! value at fixed time-window boundaries. The registry keeps all scheduled
//! refreshes in one priority queue so that a single driver — the virtual
//! time engine loop or a [`crate::WorkerPool`] — fires them in due order.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashSet;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::{TimeSpan, Timestamp};

/// Work fired at time-window boundaries.
pub trait PeriodicTask: Send + Sync {
    /// Runs the task. `fired_at` is the *scheduled* boundary instant, which
    /// may be slightly in the past under a wall-clock driver; periodic rate
    /// computations use the boundary so windows have exact lengths.
    fn run(&self, fired_at: Timestamp);
}

impl<F: Fn(Timestamp) + Send + Sync> PeriodicTask for F {
    fn run(&self, fired_at: Timestamp) {
        self(fired_at)
    }
}

/// Identifier of a registered task, used to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId(u64);

#[derive(Clone)]
struct Entry {
    due: Timestamp,
    id: u64,
    period: TimeSpan,
    /// One-shot entries fire once and are not rescheduled.
    once: bool,
    task: Arc<dyn PeriodicTask>,
}

// Ordered by due time; ties broken by registration order so virtual-time
// runs are fully deterministic.
impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.id == other.id
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.id).cmp(&(other.due, other.id))
    }
}

#[derive(Default)]
struct Inner {
    next_id: u64,
    heap: BinaryHeap<Reverse<Entry>>,
    /// Cancelled ids whose heap entry has not been reaped yet. Ids are
    /// removed as the heap drains, so membership here says nothing about
    /// whether an id was ever cancelled — `live` is the authority.
    cancelled: HashSet<u64>,
    /// Ids that are registered and not cancelled. An explicit set, not a
    /// counter: cancellation must be able to tell "live until now" from
    /// "already cancelled or never registered" even after the heap entry
    /// and the `cancelled` marker of an earlier cancellation are gone.
    live: HashSet<u64>,
}

/// A shared priority queue of periodic tasks.
///
/// Tasks are fired by calling [`PeriodicRegistry::advance_to`]; the registry
/// itself owns no thread. Tasks may register or cancel other tasks from
/// within `run` — the registry lock is released while a task runs.
pub struct PeriodicRegistry {
    inner: Mutex<Inner>,
    /// Signalled when an earlier deadline appears or the registry shuts
    /// down, so sleeping wall-clock workers re-evaluate their timeout.
    wakeup: Condvar,
}

impl Default for PeriodicRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl PeriodicRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            wakeup: Condvar::new(),
        }
    }

    /// A new shared registry.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Registers `task` to fire first at `first_due` and then every
    /// `period`. `period` must be non-zero.
    pub fn register(
        &self,
        first_due: Timestamp,
        period: TimeSpan,
        task: Arc<dyn PeriodicTask>,
    ) -> TaskId {
        assert!(!period.is_zero(), "periodic task with zero period");
        self.push(first_due, period, false, task)
    }

    /// Registers `task` to fire once at `due` and then be forgotten. The
    /// returned id can still cancel it before it fires. Used for the
    /// retry/quarantine-probe scheduling of the metadata manager, which
    /// must be deterministic under a virtual clock — a one-shot entry in
    /// the same priority queue fires in the same deadline-then-
    /// registration order as the periodic refreshes.
    pub fn register_once(&self, due: Timestamp, task: Arc<dyn PeriodicTask>) -> TaskId {
        self.push(due, TimeSpan::ZERO, true, task)
    }

    fn push(
        &self,
        first_due: Timestamp,
        period: TimeSpan,
        once: bool,
        task: Arc<dyn PeriodicTask>,
    ) -> TaskId {
        let mut inner = self.inner.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.live.insert(id);
        inner.heap.push(Reverse(Entry {
            due: first_due,
            id,
            period,
            once,
            task,
        }));
        drop(inner);
        self.wakeup.notify_all();
        TaskId(id)
    }

    /// Cancels a task. Cancelling an already-cancelled (or unknown) task
    /// is a no-op — in particular a repeat cancellation after the heap
    /// entry was drained must not touch other tasks' accounting.
    pub fn cancel(&self, id: TaskId) {
        let mut inner = self.inner.lock();
        if inner.live.remove(&id.0) {
            inner.cancelled.insert(id.0);
        }
    }

    /// Number of live (registered, not cancelled) tasks.
    pub fn live_tasks(&self) -> usize {
        self.inner.lock().live.len()
    }

    /// The earliest pending deadline, if any.
    pub fn next_due(&self) -> Option<Timestamp> {
        let mut inner = self.inner.lock();
        // Drop cancelled heads so the reported deadline is a real one.
        while let Some(Reverse(head)) = inner.heap.peek() {
            if inner.cancelled.contains(&head.id) {
                let id = head.id;
                inner.heap.pop();
                inner.cancelled.remove(&id);
            } else {
                return Some(head.due);
            }
        }
        None
    }

    /// Fires every task whose deadline is `<= now`, in deadline order, and
    /// reschedules each at `due + period`. Returns the number of task
    /// firings. A task that falls behind by several periods fires once per
    /// missed boundary, preserving exact window lengths.
    pub fn advance_to(&self, now: Timestamp) -> usize {
        let mut fired = 0;
        loop {
            let entry = {
                let mut inner = self.inner.lock();
                match inner.heap.peek() {
                    Some(Reverse(head)) if head.due <= now => {
                        let Reverse(entry) = inner.heap.pop().expect("peeked");
                        if inner.cancelled.remove(&entry.id) {
                            continue;
                        }
                        entry
                    }
                    _ => break,
                }
            };
            // Run outside the lock: tasks may subscribe/unsubscribe
            // metadata, which registers or cancels periodic tasks.
            entry.task.run(entry.due);
            fired += 1;
            let mut inner = self.inner.lock();
            if inner.cancelled.remove(&entry.id) {
                // Cancelled from within `run` (or concurrently).
                continue;
            }
            if entry.once {
                inner.live.remove(&entry.id);
                continue;
            }
            let next = Entry {
                due: entry.due + entry.period,
                ..entry
            };
            inner.heap.push(Reverse(next));
        }
        fired
    }

    /// Blocks the calling wall-clock worker until roughly `deadline_hint`
    /// or until an earlier deadline is registered. Used by
    /// [`crate::WorkerPool`]; virtual-time drivers never call this.
    pub(crate) fn wait_for_work(&self, timeout: std::time::Duration) {
        let mut guard = self.inner.lock();
        self.wakeup.wait_for(&mut guard, timeout);
    }

    pub(crate) fn notify_shutdown(&self) {
        self.wakeup.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn counting_task(counter: Arc<AtomicUsize>) -> Arc<dyn PeriodicTask> {
        Arc::new(move |_t: Timestamp| {
            counter.fetch_add(1, Ordering::SeqCst);
        })
    }

    #[test]
    fn fires_at_each_boundary() {
        let reg = PeriodicRegistry::new();
        let n = Arc::new(AtomicUsize::new(0));
        reg.register(Timestamp(10), TimeSpan(10), counting_task(n.clone()));
        assert_eq!(reg.advance_to(Timestamp(9)), 0);
        assert_eq!(reg.advance_to(Timestamp(10)), 1);
        assert_eq!(reg.advance_to(Timestamp(35)), 2); // t=20, t=30
        assert_eq!(n.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn catches_up_missed_boundaries_once_each() {
        let reg = PeriodicRegistry::new();
        let fired = Arc::new(Mutex::new(Vec::new()));
        let f = fired.clone();
        reg.register(
            Timestamp(5),
            TimeSpan(5),
            Arc::new(move |t: Timestamp| f.lock().push(t)),
        );
        reg.advance_to(Timestamp(22));
        assert_eq!(
            *fired.lock(),
            vec![Timestamp(5), Timestamp(10), Timestamp(15), Timestamp(20)]
        );
    }

    #[test]
    fn cancel_prevents_future_firings() {
        let reg = PeriodicRegistry::new();
        let n = Arc::new(AtomicUsize::new(0));
        let id = reg.register(Timestamp(1), TimeSpan(1), counting_task(n.clone()));
        reg.advance_to(Timestamp(3));
        assert_eq!(n.load(Ordering::SeqCst), 3);
        reg.cancel(id);
        reg.advance_to(Timestamp(10));
        assert_eq!(n.load(Ordering::SeqCst), 3);
        assert_eq!(reg.live_tasks(), 0);
    }

    #[test]
    fn cancel_twice_is_noop() {
        let reg = PeriodicRegistry::new();
        let n = Arc::new(AtomicUsize::new(0));
        let id = reg.register(Timestamp(1), TimeSpan(1), counting_task(n.clone()));
        reg.cancel(id);
        reg.cancel(id);
        assert_eq!(reg.live_tasks(), 0);
        // A survivor registered after the double-cancel must not be
        // affected by further repeats.
        let keep = reg.register(Timestamp(2), TimeSpan(1), counting_task(n));
        reg.cancel(id);
        assert_eq!(reg.live_tasks(), 1);
        reg.cancel(keep);
        assert_eq!(reg.live_tasks(), 0);
    }

    #[test]
    fn cancel_after_drain_does_not_corrupt_live_count() {
        let reg = PeriodicRegistry::new();
        let n = Arc::new(AtomicUsize::new(0));
        let doomed = reg.register(Timestamp(1), TimeSpan(1), counting_task(n.clone()));
        let _survivor = reg.register(Timestamp(1), TimeSpan(1), counting_task(n.clone()));
        assert_eq!(reg.live_tasks(), 2);
        reg.cancel(doomed);
        assert_eq!(reg.live_tasks(), 1);
        // The drain reaps `doomed`'s heap entry and clears its
        // cancellation marker...
        reg.advance_to(Timestamp(3));
        assert_eq!(n.load(Ordering::SeqCst), 3, "survivor fired at 1, 2, 3");
        // ...after which a repeat cancellation must still be a no-op:
        // the old marker-based accounting re-counted it and stole the
        // survivor's live slot.
        reg.cancel(doomed);
        assert_eq!(reg.live_tasks(), 1, "survivor is still live");
        reg.advance_to(Timestamp(4));
        assert_eq!(n.load(Ordering::SeqCst), 4, "survivor keeps firing");
    }

    #[test]
    fn tasks_fire_in_deadline_then_registration_order() {
        let reg = PeriodicRegistry::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        for tag in 0..3u32 {
            let o = order.clone();
            reg.register(
                Timestamp(10),
                TimeSpan(100),
                Arc::new(move |_t: Timestamp| o.lock().push(tag)),
            );
        }
        reg.advance_to(Timestamp(10));
        assert_eq!(*order.lock(), vec![0, 1, 2]);
    }

    #[test]
    fn next_due_skips_cancelled() {
        let reg = PeriodicRegistry::new();
        let n = Arc::new(AtomicUsize::new(0));
        let a = reg.register(Timestamp(5), TimeSpan(5), counting_task(n.clone()));
        reg.register(Timestamp(8), TimeSpan(5), counting_task(n));
        assert_eq!(reg.next_due(), Some(Timestamp(5)));
        reg.cancel(a);
        assert_eq!(reg.next_due(), Some(Timestamp(8)));
    }

    #[test]
    fn task_may_cancel_itself_while_running() {
        let reg = Arc::new(PeriodicRegistry::new());
        let n = Arc::new(AtomicUsize::new(0));
        let slot: Arc<Mutex<Option<TaskId>>> = Arc::new(Mutex::new(None));
        let (r2, n2, s2) = (reg.clone(), n.clone(), slot.clone());
        let id = reg.register(
            Timestamp(1),
            TimeSpan(1),
            Arc::new(move |_t: Timestamp| {
                n2.fetch_add(1, Ordering::SeqCst);
                if let Some(id) = *s2.lock() {
                    r2.cancel(id);
                }
            }),
        );
        *slot.lock() = Some(id);
        reg.advance_to(Timestamp(10));
        assert_eq!(n.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn task_may_register_new_tasks_while_running() {
        let reg = Arc::new(PeriodicRegistry::new());
        let n = Arc::new(AtomicUsize::new(0));
        let (r2, n2) = (reg.clone(), n.clone());
        let once = AtomicUsize::new(0);
        reg.register(
            Timestamp(1),
            TimeSpan(100),
            Arc::new(move |t: Timestamp| {
                if once.fetch_add(1, Ordering::SeqCst) == 0 {
                    r2.register(t + TimeSpan(1), TimeSpan(100), counting_task(n2.clone()));
                }
            }),
        );
        reg.advance_to(Timestamp(5));
        assert_eq!(n.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn one_shot_fires_once_and_is_forgotten() {
        let reg = PeriodicRegistry::new();
        let n = Arc::new(AtomicUsize::new(0));
        reg.register_once(Timestamp(5), counting_task(n.clone()));
        assert_eq!(reg.live_tasks(), 1);
        assert_eq!(reg.next_due(), Some(Timestamp(5)));
        reg.advance_to(Timestamp(20));
        assert_eq!(n.load(Ordering::SeqCst), 1);
        assert_eq!(reg.live_tasks(), 0);
        assert_eq!(reg.next_due(), None);
        reg.advance_to(Timestamp(100));
        assert_eq!(n.load(Ordering::SeqCst), 1, "one-shot never refires");
    }

    #[test]
    fn one_shot_can_be_cancelled_before_firing() {
        let reg = PeriodicRegistry::new();
        let n = Arc::new(AtomicUsize::new(0));
        let id = reg.register_once(Timestamp(5), counting_task(n.clone()));
        reg.cancel(id);
        assert_eq!(reg.live_tasks(), 0);
        reg.advance_to(Timestamp(20));
        assert_eq!(n.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn one_shot_interleaves_with_periodic_in_deadline_order() {
        let reg = Arc::new(PeriodicRegistry::new());
        let order = Arc::new(Mutex::new(Vec::new()));
        let o = order.clone();
        reg.register(
            Timestamp(10),
            TimeSpan(10),
            Arc::new(move |t: Timestamp| o.lock().push(("periodic", t))),
        );
        let o = order.clone();
        reg.register_once(
            Timestamp(15),
            Arc::new(move |t: Timestamp| o.lock().push(("once", t))),
        );
        reg.advance_to(Timestamp(30));
        assert_eq!(
            *order.lock(),
            vec![
                ("periodic", Timestamp(10)),
                ("once", Timestamp(15)),
                ("periodic", Timestamp(20)),
                ("periodic", Timestamp(30)),
            ]
        );
    }

    #[test]
    fn one_shot_may_register_followups_while_running() {
        // The backoff pattern: a firing retry schedules the next attempt.
        let reg = Arc::new(PeriodicRegistry::new());
        let n = Arc::new(AtomicUsize::new(0));
        let (r2, n2) = (reg.clone(), n.clone());
        reg.register_once(
            Timestamp(1),
            Arc::new(move |t: Timestamp| {
                n2.fetch_add(1, Ordering::SeqCst);
                let n3 = n2.clone();
                r2.register_once(
                    t + TimeSpan(2),
                    Arc::new(move |_t: Timestamp| {
                        n3.fetch_add(1, Ordering::SeqCst);
                    }),
                );
            }),
        );
        reg.advance_to(Timestamp(10));
        assert_eq!(n.load(Ordering::SeqCst), 2);
        assert_eq!(reg.live_tasks(), 0);
    }

    #[test]
    #[should_panic(expected = "zero period")]
    fn zero_period_rejected() {
        let reg = PeriodicRegistry::new();
        reg.register(
            Timestamp(1),
            TimeSpan::ZERO,
            counting_task(Arc::new(AtomicUsize::new(0))),
        );
    }
}
