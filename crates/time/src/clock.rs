//! Clock implementations.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::{TimeSpan, Timestamp};

/// A source of the current time.
///
/// Everything in the workspace reads time through this trait so that the
/// same code runs on deterministic virtual time and on wall-clock time.
pub trait Clock: Send + Sync {
    /// The current instant.
    fn now(&self) -> Timestamp;
}

/// Shared handle to a clock.
pub type ClockRef = Arc<dyn Clock>;

/// A logical clock advanced explicitly by the execution engine.
///
/// Virtual time makes experiments deterministic: the Figure 4 table of the
/// paper, for instance, depends on the exact interleaving of element
/// arrivals and metadata accesses, which only a controlled clock can
/// reproduce.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now: AtomicU64,
}

impl VirtualClock {
    /// A new clock at the origin.
    pub fn new() -> Self {
        Self::default()
    }

    /// A new shared clock at the origin.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Advances the clock by `span` and returns the new instant.
    pub fn advance(&self, span: TimeSpan) -> Timestamp {
        Timestamp(self.now.fetch_add(span.units(), Ordering::SeqCst) + span.units())
    }

    /// Moves the clock to `to`. Panics if `to` lies in the past: logical
    /// time never runs backwards.
    pub fn set(&self, to: Timestamp) {
        let prev = self.now.swap(to.units(), Ordering::SeqCst);
        assert!(
            prev <= to.units(),
            "virtual clock moved backwards: {prev} -> {}",
            to.units()
        );
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Timestamp {
        Timestamp(self.now.load(Ordering::SeqCst))
    }
}

/// Wall-clock time in microseconds since creation of the clock.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A new wall clock whose origin is "now".
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }

    /// A new shared wall clock.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> Timestamp {
        Timestamp(self.origin.elapsed().as_micros() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_starts_at_origin() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), Timestamp::ZERO);
    }

    #[test]
    fn virtual_clock_advances() {
        let c = VirtualClock::new();
        assert_eq!(c.advance(TimeSpan(10)), Timestamp(10));
        assert_eq!(c.advance(TimeSpan(5)), Timestamp(15));
        assert_eq!(c.now(), Timestamp(15));
    }

    #[test]
    fn virtual_clock_set_forward() {
        let c = VirtualClock::new();
        c.set(Timestamp(100));
        assert_eq!(c.now(), Timestamp(100));
        c.set(Timestamp(100)); // setting to the same instant is allowed
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn virtual_clock_rejects_backwards() {
        let c = VirtualClock::new();
        c.set(Timestamp(100));
        c.set(Timestamp(50));
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now();
        let b = c.now();
        assert!(a <= b);
    }

    #[test]
    fn clock_trait_object_works() {
        let c: ClockRef = VirtualClock::shared();
        assert_eq!(c.now(), Timestamp::ZERO);
    }
}
