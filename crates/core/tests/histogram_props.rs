//! Property tests for histogram invariants, driven by a small deterministic
//! pseudo-random generator (no external property-testing dependency).
//!
//! Invariants checked over randomized domains and observation sets:
//! * every selectivity estimate lies in `[0, 1]`
//! * `percentile(p)` stays within the configured `[lo, hi]`
//! * `selectivity_lt` is monotone in `bound`
//! * `selectivity_lt(i64::MAX)` is exactly 1.0 once anything was observed

use streammeta_core::HistogramMonitor;

/// Minimal xorshift-style generator: deterministic across runs/platforms.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform-ish value in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo) as u64) as i64
    }
}

#[test]
fn selectivities_stay_in_unit_interval() {
    let mut rng = Rng(0x9e37_79b9_7f4a_7c15);
    for _ in 0..50 {
        let lo = rng.range_i64(-1_000, 1_000);
        let hi = lo + 1 + rng.below(5_000) as i64;
        let buckets = 1 + rng.below(32) as usize;
        let h = HistogramMonitor::new(lo, hi, buckets);
        h.activation().activate();
        for _ in 0..200 {
            // Deliberately observe well outside the domain too.
            h.observe(rng.range_i64(lo - 2_000, hi + 2_000));
        }
        let s = h.snapshot();
        for _ in 0..50 {
            let v = rng.range_i64(lo - 3_000, hi + 3_000);
            let lt = s.selectivity_lt(v).unwrap();
            assert!((0.0..=1.0).contains(&lt), "selectivity_lt({v}) = {lt}");
            let eq = s.selectivity_eq(v).unwrap();
            assert!((0.0..=1.0).contains(&eq), "selectivity_eq({v}) = {eq}");
        }
        assert_eq!(s.selectivity_lt(i64::MAX), Some(1.0));
    }
}

#[test]
fn percentile_within_configured_domain() {
    let mut rng = Rng(0xd1b5_4a32_d192_ed03);
    for _ in 0..50 {
        let lo = rng.range_i64(-500, 500);
        // Spans indivisible by the bucket count are the interesting case.
        let hi = lo + 1 + rng.below(997) as i64;
        let buckets = 1 + rng.below(13) as usize;
        let h = HistogramMonitor::new(lo, hi, buckets);
        h.activation().activate();
        for _ in 0..100 {
            h.observe(rng.range_i64(lo - 100, hi + 100));
        }
        let s = h.snapshot();
        for p in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = s.percentile(p).unwrap();
            assert!(
                (lo..=hi).contains(&v),
                "percentile({p}) = {v} outside [{lo}, {hi}]"
            );
        }
    }
}

#[test]
fn selectivity_lt_monotone_in_bound() {
    let mut rng = Rng(0x853c_49e6_748f_ea9b);
    for _ in 0..50 {
        let lo = rng.range_i64(-200, 200);
        let hi = lo + 1 + rng.below(2_000) as i64;
        let buckets = 1 + rng.below(16) as usize;
        let h = HistogramMonitor::new(lo, hi, buckets);
        h.activation().activate();
        for _ in 0..150 {
            h.observe(rng.range_i64(lo - 500, hi + 500));
        }
        let s = h.snapshot();
        let mut bounds: Vec<i64> = (0..40).map(|_| rng.range_i64(lo - 800, hi + 800)).collect();
        bounds.push(i64::MIN);
        bounds.push(i64::MAX);
        bounds.sort_unstable();
        let mut prev = -1.0;
        for b in bounds {
            let sel = s.selectivity_lt(b).unwrap();
            assert!(
                sel >= prev - 1e-12,
                "selectivity_lt not monotone at bound {b}: {sel} < {prev}"
            );
            prev = sel;
        }
    }
}
