//! Regression tests for the lifecycle-panic sweep: exclusion racing
//! unsubscription, reads and clones over force-excluded items, epoch
//! origins whose handler vanished mid-epoch, and a multi-threaded fuzz
//! over the whole undefine/exclude/read/clone surface.
//!
//! Before the sweep, four panics lurked here: `decrement` hit
//! `expect("present")` when a concurrent exclusion had already removed
//! the handler, `Subscription` reads and clones hit `expect("item is
//! included while a subscription exists")` after a force-exclusion, the
//! epoch flush sweep assumed every enqueued origin still had a live
//! handler, and `subscribe` re-looked its handler up from the shard
//! index *after* dropping the bookkeeping lock, panicking when a
//! force-exclusion squeezed into that window (found by the fuzz below;
//! the handler is now captured under the lock).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use streammeta_core::{
    EpochConfig, EventKey, ItemDef, MetadataError, MetadataKey, MetadataManager, MetadataValue,
    NodeId, NodeRegistry, PropagationMode,
};
use streammeta_time::{TimeSpan, VirtualClock};

fn setup() -> Arc<MetadataManager> {
    MetadataManager::new(VirtualClock::shared())
}

fn key(item: &str) -> MetadataKey {
    MetadataKey::new(NodeId(1), item)
}

fn counter_registry() -> (Arc<NodeRegistry>, Arc<AtomicU64>) {
    let reg = NodeRegistry::new(NodeId(1));
    let state = Arc::new(AtomicU64::new(7));
    let s = state.clone();
    reg.define(
        ItemDef::triggered("x")
            .on_event("bump")
            .compute(move |_| MetadataValue::U64(s.load(Ordering::SeqCst)))
            .build(),
    );
    (reg, state)
}

/// Dropping a subscription whose handler a concurrent force-exclusion
/// already removed must be an idempotent no-op — this used to panic at
/// `expect("present")` in the removal path.
#[test]
fn unsubscribe_after_force_exclusion_is_idempotent() {
    let mgr = setup();
    let (reg, _) = counter_registry();
    mgr.attach_node(reg);
    let sub = mgr.subscribe(key("x")).unwrap();
    assert_eq!(mgr.handler_count(), 1);

    assert!(mgr.force_exclude(&key("x")), "handler removed");
    assert!(!mgr.force_exclude(&key("x")), "second exclusion is a no-op");
    assert_eq!(mgr.handler_count(), 0);

    // The panic site: the drop must notice its handler is gone and not
    // debit anyone else's refcount.
    drop(sub);
    assert_eq!(mgr.handler_count(), 0);

    // A fresh inclusion after the race starts a clean incarnation.
    let fresh = mgr.subscribe(key("x")).unwrap();
    assert_eq!(fresh.get(), MetadataValue::U64(7));
    assert!(!fresh.is_excluded());
}

/// A force-exclusion must not leave outstanding handles panicking: the
/// drop of the *last* pre-exclusion subscription races the exclusion's
/// own refcount collapse, and both orders must settle at zero handlers.
#[test]
fn exclusion_racing_the_last_unsubscribe_settles_cleanly() {
    let mgr = setup();
    let (reg, _) = counter_registry();
    mgr.attach_node(reg);
    for _ in 0..100 {
        let sub = mgr.subscribe(key("x")).unwrap();
        let m = mgr.clone();
        let racer = std::thread::spawn(move || {
            m.force_exclude(&key("x"));
        });
        drop(sub);
        racer.join().expect("force_exclude must not panic");
        assert_eq!(mgr.handler_count(), 0, "no leaked handler");
        assert!(!mgr.is_included(&key("x")));
    }
}

/// Reads and clones over a force-excluded item surface the exclusion
/// instead of panicking: plain reads keep the last good value marked
/// degraded, fallible reads report `Err(Excluded)`, and clones pin the
/// same defunct handler.
#[test]
fn reads_and_clones_surface_exclusion_instead_of_panicking() {
    let mgr = setup();
    let (reg, state) = counter_registry();
    mgr.attach_node(reg);
    let sub = mgr.subscribe(key("x")).unwrap();
    assert_eq!(sub.get(), MetadataValue::U64(7));
    assert!(sub.try_versioned().is_ok());

    state.store(9, Ordering::SeqCst);
    mgr.fire_event(EventKey::new(NodeId(1), "bump"));
    assert_eq!(sub.get(), MetadataValue::U64(9));

    assert!(mgr.force_exclude(&key("x")));

    // Tolerant consumers keep the last good value, marked degraded.
    assert!(sub.is_excluded());
    assert_eq!(sub.get(), MetadataValue::U64(9));
    assert!(sub.versioned().degraded);
    // Strict consumers get the error.
    assert_eq!(sub.try_versioned(), Err(MetadataError::Excluded(key("x"))));

    // Cloning used to panic; now the clone shares the defunct handler.
    let clone = sub.clone();
    assert!(clone.is_excluded());
    assert_eq!(clone.get(), MetadataValue::U64(9));
    assert_eq!(
        clone.try_versioned(),
        Err(MetadataError::Excluded(key("x")))
    );

    // Both drops are no-ops against the already-removed handler, even
    // with a fresh incarnation in place.
    let fresh = mgr.subscribe(key("x")).unwrap();
    drop(sub);
    drop(clone);
    assert!(
        !fresh.is_excluded(),
        "fresh incarnation must not be debited"
    );
    assert_eq!(fresh.get(), MetadataValue::U64(9));
}

/// Epoch mode: an origin enqueued into the pending epoch whose handler
/// is force-excluded before the flush must be skipped by the sweep, not
/// panicked on — and later epochs keep flowing.
#[test]
fn epoch_flush_skips_origins_excluded_mid_epoch() {
    let mgr = setup();
    let (reg, state) = counter_registry();
    let s = state.clone();
    reg.define(
        ItemDef::triggered("y")
            .dep_local("x")
            .compute(move |ctx| match ctx.dep("x").as_u64() {
                Some(x) => MetadataValue::U64(x + s.load(Ordering::SeqCst)),
                None => MetadataValue::Unavailable,
            })
            .build(),
    );
    mgr.attach_node(reg);
    let y = mgr.subscribe(key("y")).unwrap();
    mgr.set_propagation_mode(PropagationMode::Epoch(EpochConfig {
        max_batch: 100,
        max_delay: TimeSpan(u64::MAX),
    }));

    // Store `x` inside the open epoch: the origin is enqueued, the
    // recompute of `y` deferred.
    state.store(10, Ordering::SeqCst);
    mgr.fire_event(EventKey::new(NodeId(1), "bump"));
    assert!(mgr.pending_update_count() > 0, "origin enqueued");

    // The origin's handler vanishes mid-epoch (`y` keeps its own).
    assert!(mgr.force_exclude(&key("x")));

    // The flush must sweep without panicking on the vanished origin.
    mgr.flush_epoch();
    assert_eq!(mgr.pending_update_count(), 0);

    // Later epochs keep flowing for the surviving item.
    mgr.fire_event(EventKey::new(NodeId(1), "bump"));
    mgr.flush_epoch();
    drop(y);
    assert_eq!(mgr.handler_count(), 0);
}

/// Fuzz: readers, cloners, subscribers, force-excluders and
/// undefiners all race over one item. The only assertion that matters
/// is zero panics — every thread must run its full schedule.
#[test]
fn concurrent_lifecycle_fuzz_never_panics() {
    const ITERS: usize = 2000;
    let mgr = setup();
    let (reg, _) = counter_registry();
    mgr.attach_node(reg.clone());

    let mut threads = Vec::new();
    // Reader/cloner threads.
    for _ in 0..3 {
        let m = mgr.clone();
        threads.push(std::thread::spawn(move || {
            for _ in 0..ITERS {
                if let Ok(sub) = m.subscribe(key("x")) {
                    let _ = sub.get();
                    let _ = sub.try_versioned();
                    let clone = sub.clone();
                    let _ = clone.versioned();
                    drop(sub);
                    let _ = clone.is_excluded();
                }
            }
        }));
    }
    // Force-excluder.
    {
        let m = mgr.clone();
        threads.push(std::thread::spawn(move || {
            for _ in 0..ITERS {
                let _ = m.force_exclude(&key("x"));
            }
        }));
    }
    // Undefiner/redefiner: refused with `ItemInUse` while a handler is
    // live, so it only wins in the gaps — exactly the interleaving the
    // sweep hardened.
    {
        let m = mgr.clone();
        threads.push(std::thread::spawn(move || {
            for _ in 0..ITERS {
                if m.undefine(NodeId(1), &"x".into()).is_ok() {
                    let _ = m.redefine(
                        NodeId(1),
                        ItemDef::triggered("x")
                            .on_event("bump")
                            .compute(|_| MetadataValue::U64(1))
                            .build(),
                    );
                }
            }
        }));
    }
    for t in threads {
        t.join().expect("no fuzz thread may panic");
    }
}
