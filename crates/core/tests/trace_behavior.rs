//! Behaviour of the trace bus through the public API: inclusion order,
//! exclusion countdown, propagation rounds, periodic firings and failure
//! events, plus the JSONL export.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use streammeta_core::{
    ItemDef, MetadataKey, MetadataManager, MetadataValue, NodeId, NodeRegistry, RingBufferSink,
    TraceEvent,
};
use streammeta_time::{Clock, TimeSpan, VirtualClock};

/// A three-item dependency chain `a -> b -> c` on node 0: `c` reads a
/// shared cell on demand, `b` and `a` are triggered.
fn chain_setup() -> (Arc<VirtualClock>, Arc<MetadataManager>, Arc<AtomicU64>) {
    let clock = VirtualClock::shared();
    let mgr = MetadataManager::new(clock.clone());
    let reg = NodeRegistry::new(NodeId(0));
    let cell = Arc::new(AtomicU64::new(1));
    let c_cell = cell.clone();
    reg.define(
        ItemDef::on_demand("c")
            .compute(move |_| MetadataValue::U64(c_cell.load(Ordering::Relaxed)))
            .build(),
    );
    reg.define(
        ItemDef::triggered("b")
            .dep_local("c")
            .compute(|ctx| match ctx.dep_f64("c") {
                Some(v) => MetadataValue::F64(v * 10.0),
                None => MetadataValue::Unavailable,
            })
            .build(),
    );
    reg.define(
        ItemDef::triggered("a")
            .dep_local("b")
            .compute(|ctx| match ctx.dep_f64("b") {
                Some(v) => MetadataValue::F64(v + 1.0),
                None => MetadataValue::Unavailable,
            })
            .build(),
    );
    mgr.attach_node(reg);
    (clock, mgr, cell)
}

fn key(path: &str) -> MetadataKey {
    MetadataKey::new(NodeId(0), path)
}

#[test]
fn includes_appear_in_dfs_dependency_order_and_excludes_count_to_zero() {
    let (_clock, mgr, _cell) = chain_setup();
    let sink = RingBufferSink::new(64);
    mgr.set_trace_sink(Some(sink.clone()));

    let sub = mgr.subscribe(key("a")).unwrap();
    let includes: Vec<(MetadataKey, usize)> = sink
        .snapshot()
        .iter()
        .filter_map(|r| match &r.event {
            TraceEvent::Include { key, depth, .. } => Some((key.clone(), *depth)),
            _ => None,
        })
        .collect();
    // Dependencies are materialised before their dependents, with the
    // depth below the subscription root attached.
    assert_eq!(includes, vec![(key("c"), 2), (key("b"), 1), (key("a"), 0)]);

    sink.clear();
    drop(sub);
    let excludes: Vec<(MetadataKey, usize)> = sink
        .snapshot()
        .iter()
        .filter_map(|r| match &r.event {
            TraceEvent::Exclude { key, remaining } => Some((key.clone(), *remaining)),
            _ => None,
        })
        .collect();
    assert_eq!(excludes.len(), 3);
    // The countdown ends at zero live handlers.
    assert_eq!(
        excludes.iter().map(|(_, r)| *r).collect::<Vec<_>>(),
        vec![2, 1, 0]
    );
    assert_eq!(mgr.handler_count(), 0);
}

#[test]
fn propagation_steps_carry_round_and_depth() {
    let (_clock, mgr, cell) = chain_setup();
    let sub = mgr.subscribe(key("a")).unwrap();
    assert_eq!(sub.get_f64(), Some(11.0));

    let sink = RingBufferSink::new(64);
    mgr.set_trace_sink(Some(sink.clone()));
    cell.store(2, Ordering::Relaxed);
    mgr.notify_changed(key("c"));
    assert_eq!(sub.get_f64(), Some(21.0));

    let steps: Vec<(u64, MetadataKey, usize, bool)> = sink
        .snapshot()
        .iter()
        .filter_map(|r| match &r.event {
            TraceEvent::PropagationStep {
                round,
                key,
                depth,
                changed,
            } => Some((*round, key.clone(), *depth, *changed)),
            _ => None,
        })
        .collect();
    assert_eq!(steps.len(), 2);
    let round = steps[0].0;
    assert!(round >= 1);
    assert_eq!(steps[0], (round, key("b"), 1, true));
    assert_eq!(steps[1], (round, key("a"), 2, true));
    assert_eq!(mgr.last_propagation_depth(), 2);
}

#[test]
fn periodic_firings_and_failures_are_traced_and_exported() {
    let clock = VirtualClock::shared();
    let mgr = MetadataManager::new(clock.clone());
    let reg = NodeRegistry::new(NodeId(0));
    reg.define(
        ItemDef::periodic("tick", TimeSpan(5))
            .compute(|ctx| MetadataValue::U64(ctx.now().units()))
            .build(),
    );
    reg.define(
        ItemDef::on_demand("boom")
            .compute(|_| panic!("intentional"))
            .build(),
    );
    mgr.attach_node(reg);
    let sink = RingBufferSink::new(64);
    mgr.set_trace_sink(Some(sink.clone()));

    let tick = mgr.subscribe(key("tick")).unwrap();
    clock.advance(TimeSpan(5));
    mgr.periodic().advance_to(clock.now());
    // One on-time firing at t=5.
    let fired: Vec<bool> = sink
        .snapshot()
        .iter()
        .filter_map(|r| match &r.event {
            TraceEvent::PeriodicFired { missed, .. } => Some(*missed),
            _ => None,
        })
        .collect();
    assert_eq!(fired, vec![false]);
    // Jumping two windows at once makes the t=10 catch-up firing late.
    clock.advance(TimeSpan(10));
    mgr.periodic().advance_to(clock.now());
    let missed: Vec<bool> = sink
        .snapshot()
        .iter()
        .filter_map(|r| match &r.event {
            TraceEvent::PeriodicFired { missed, .. } => Some(*missed),
            _ => None,
        })
        .collect();
    assert_eq!(missed, vec![false, true, false]);
    assert_eq!(mgr.stats().deadline_misses, 1);

    let boom = mgr.subscribe(key("boom")).unwrap();
    assert_eq!(boom.get(), MetadataValue::Unavailable);
    assert!(sink.snapshot().iter().any(
        |r| matches!(&r.event, TraceEvent::ComputeFailed { key } if key.item.as_str() == "boom")
    ));

    let jsonl = sink.to_jsonl();
    assert!(jsonl.lines().count() >= 5);
    assert!(jsonl.contains("\"event\":\"periodic_fired\""));
    assert!(jsonl.contains("\"event\":\"compute_failed\""));
    drop(tick);
}

#[test]
fn removing_the_sink_stops_emission() {
    let (_clock, mgr, _cell) = chain_setup();
    let sink = RingBufferSink::new(16);
    mgr.set_trace_sink(Some(sink.clone()));
    assert!(mgr.trace_enabled());
    mgr.set_trace_sink(None);
    assert!(!mgr.trace_enabled());
    let _sub = mgr.subscribe(key("a")).unwrap();
    assert!(sink.is_empty());
}
