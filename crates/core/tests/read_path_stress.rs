//! Multi-threaded stress of the lock-free read paths.
//!
//! Cached-subscription readers and key-based readers run full tilt while
//! other threads churn subscriptions (include/exclude rewriting the
//! sharded handler index) and drive trigger propagation (concurrent
//! stores through the seqlock snapshot cell). The invariants:
//!
//! * no panics and no torn reads — every observed value is one that was
//!   actually stored;
//! * versions observed through one subscription never go backwards;
//! * after all subscriptions drop, the manager tears down to zero
//!   handlers and the sharded index agrees.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use streammeta_core::{ItemDef, MetadataKey, MetadataManager, MetadataValue, NodeId, NodeRegistry};
use streammeta_time::VirtualClock;

fn key(node: u32, item: &str) -> MetadataKey {
    MetadataKey::new(NodeId(node), item)
}

#[test]
fn concurrent_reads_survive_churn_and_propagation() {
    let clock = VirtualClock::shared();
    let mgr = MetadataManager::new(clock);

    // Node 1: raw (on-demand, driven by an atomic) -> b (x2) -> a (+1).
    let reg = NodeRegistry::new(NodeId(1));
    let source = Arc::new(AtomicU64::new(1));
    let s2 = source.clone();
    reg.define(
        ItemDef::on_demand("raw")
            .compute(move |_| MetadataValue::U64(s2.load(Ordering::SeqCst)))
            .build(),
    );
    reg.define(
        ItemDef::triggered("b")
            .dep_local("raw")
            .compute(|ctx| match ctx.dep("raw").as_u64() {
                Some(v) => MetadataValue::U64(v * 2),
                None => MetadataValue::Unavailable,
            })
            .build(),
    );
    reg.define(
        ItemDef::triggered("a")
            .dep_local("b")
            .compute(|ctx| match ctx.dep("b").as_u64() {
                Some(v) => MetadataValue::U64(v + 1),
                None => MetadataValue::Unavailable,
            })
            .build(),
    );
    mgr.attach_node(reg);

    // Node 2: a bank of static items for subscription churn.
    let churn_items = 16u32;
    let reg2 = NodeRegistry::new(NodeId(2));
    for i in 0..churn_items {
        reg2.define(ItemDef::static_value(format!("s{i}"), u64::from(i)));
    }
    mgr.attach_node(reg2);

    let a = Arc::new(mgr.subscribe(key(1, "a")).unwrap());
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        // Cached-subscription readers: monotonic versions, sane values.
        for _ in 0..2 {
            let a = a.clone();
            let stop = stop.clone();
            scope.spawn(move || {
                let mut last_version = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let v = a.versioned();
                    assert!(
                        v.version >= last_version,
                        "version went backwards: {} after {last_version}",
                        v.version
                    );
                    last_version = v.version;
                    // a = raw * 2 + 1: always odd and at least 3.
                    let val = v.value.as_u64().expect("a is numeric");
                    assert!(val >= 3 && !val.is_multiple_of(2), "torn value: {val}");
                }
            });
        }
        // Key-based readers through the sharded index. `b` is pinned by
        // the main thread's subscription to `a`, so lookups never miss.
        {
            let mgr = mgr.clone();
            let stop = stop.clone();
            scope.spawn(move || {
                let kb = key(1, "b");
                while !stop.load(Ordering::Relaxed) {
                    let v = mgr.read(&kb).expect("pinned by the `a` subscription");
                    let val = v.as_u64().expect("b is numeric");
                    assert!(val >= 2 && val.is_multiple_of(2), "torn value: {val}");
                    assert!(mgr.is_included(&kb));
                }
            });
        }
        // Churn: include/exclude static items, rewriting the shards.
        {
            let mgr = mgr.clone();
            let stop = stop.clone();
            scope.spawn(move || {
                let mut round = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    let item = format!("s{}", round % churn_items);
                    let k = key(2, &item);
                    let sub = mgr.subscribe(k.clone()).unwrap();
                    assert_eq!(sub.get().as_u64(), Some(u64::from(round % churn_items)));
                    drop(sub);
                    round += 1;
                }
            });
        }
        // Trigger propagation: bump the source, push through raw -> b -> a.
        let trigger = {
            let mgr = mgr.clone();
            scope.spawn(move || {
                let kraw = key(1, "raw");
                for _ in 0..2_000 {
                    source.fetch_add(1, Ordering::SeqCst);
                    mgr.notify_changed(kraw.clone());
                }
            })
        };
        trigger.join().unwrap();
        stop.store(true, Ordering::SeqCst);
    });

    // The chain saw updates end to end.
    let final_val = a.versioned();
    assert!(final_val.version >= 2, "propagation stored new versions");
    assert_eq!(final_val.value.as_u64(), Some(2_001 * 2 + 1));

    // Teardown: dropping the last subscription excludes the whole chain.
    let stats_before = mgr.stats();
    assert!(stats_before.fast_reads > 0, "cached path was exercised");
    assert!(stats_before.shard_reads > 0, "sharded path was exercised");
    drop(a);
    assert_eq!(mgr.handler_count(), 0);
    assert!(!mgr.is_included(&key(1, "a")));
    assert!(!mgr.is_included(&key(1, "b")));
    assert!(!mgr.is_included(&key(1, "raw")));
    assert_eq!(mgr.stats().handlers, 0);
}
