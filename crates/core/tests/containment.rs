//! Chaos tests of the failure-containment layer: deadlines, bounded
//! retry with exponential backoff, quarantine with stale serving, and
//! the fault-injection harness driving them — all under virtual time,
//! so every schedule is deterministic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use streammeta_core::{
    FallbackPolicy, FaultAction, FaultPlan, FaultSchedule, ItemDef, MetadataError, MetadataKey,
    MetadataManager, MetadataValue, NodeId, NodeRegistry, RingBufferSink, TraceEvent,
};
use streammeta_time::{Clock, TimeSpan, VirtualClock};

fn setup() -> (Arc<VirtualClock>, Arc<MetadataManager>) {
    let clock = VirtualClock::shared();
    let manager = MetadataManager::new(clock.clone());
    (clock, manager)
}

fn key(item: &str) -> MetadataKey {
    MetadataKey::new(NodeId(1), item)
}

const POLICY: FallbackPolicy = FallbackPolicy {
    max_retries: 2,
    backoff: TimeSpan(3),
    quarantine_after: 3,
    cool_down: TimeSpan(100),
};

/// A periodic item (window 10) whose compute panics while `broken` is
/// non-zero; successful evaluations return the evaluation count.
fn flaky_registry(broken: Arc<AtomicU64>) -> (Arc<NodeRegistry>, Arc<AtomicU64>) {
    let reg = NodeRegistry::new(NodeId(1));
    let evals = Arc::new(AtomicU64::new(0));
    let e = evals.clone();
    reg.define(
        ItemDef::periodic("flaky", TimeSpan(10))
            .fallback(POLICY)
            .compute(move |_| {
                let n = e.fetch_add(1, Ordering::SeqCst) + 1;
                if broken.load(Ordering::SeqCst) != 0 {
                    panic!("injected");
                }
                MetadataValue::U64(n)
            })
            .build(),
    );
    (reg, evals)
}

#[test]
fn failure_serves_last_good_value_marked_degraded() {
    let (clock, mgr) = setup();
    let broken = Arc::new(AtomicU64::new(0));
    let (reg, _) = flaky_registry(broken.clone());
    mgr.attach_node(reg);
    let sub = mgr.subscribe(key("flaky")).unwrap();
    // Healthy first window: value 2 (initial eval + boundary eval).
    clock.advance(TimeSpan(10));
    mgr.periodic().advance_to(clock.now());
    let healthy = sub.versioned();
    assert!(!healthy.degraded);
    assert_eq!(healthy.value, MetadataValue::U64(2));

    // Break the compute: the next boundary fails, but consumers keep the
    // last good value — marked degraded, with an explicit staleness bound.
    broken.store(1, Ordering::SeqCst);
    clock.advance(TimeSpan(10));
    mgr.periodic().advance_to(clock.now());
    let degraded = sub.versioned();
    assert_eq!(degraded.value, MetadataValue::U64(2), "last good value");
    assert!(degraded.degraded);
    assert_eq!(degraded.version, healthy.version, "no version bump");
    assert_eq!(degraded.staleness(clock.now()), Some(TimeSpan(10)));
    // read_fresh refuses the stale value explicitly.
    assert_eq!(
        mgr.read_fresh(&key("flaky")),
        Err(MetadataError::Degraded(key("flaky")))
    );
}

#[test]
fn retries_back_off_exponentially_and_stop_at_the_bound() {
    let (clock, mgr) = setup();
    let broken = Arc::new(AtomicU64::new(1));
    let (reg, evals) = flaky_registry(broken.clone());
    mgr.attach_node(reg);
    let sink = RingBufferSink::new(256);
    mgr.set_trace_sink(Some(sink.clone()));
    let _sub = mgr.subscribe(key("flaky")).unwrap();
    // The inclusion-time evaluation failed (attempt 1 of the episode);
    // retries fire at +3 and then +3*2=6 later, and max_retries=2 stops
    // the episode before the third failure would quarantine.
    assert_eq!(evals.load(Ordering::SeqCst), 1);
    clock.advance(TimeSpan(3));
    mgr.periodic().advance_to(clock.now());
    assert_eq!(evals.load(Ordering::SeqCst), 2, "first retry at +3");
    clock.advance(TimeSpan(6));
    mgr.periodic().advance_to(clock.now());
    assert_eq!(evals.load(Ordering::SeqCst), 3, "second retry at +3+6");
    assert_eq!(mgr.retry_count(), 2);
    // Third failure reached quarantine_after=3: the breaker tripped, so
    // the t=10 boundary refresh is skipped entirely.
    assert_eq!(mgr.quarantine_trip_count(), 1);
    clock.advance(TimeSpan(1));
    mgr.periodic().advance_to(clock.now());
    assert_eq!(evals.load(Ordering::SeqCst), 3, "no evaluation while open");

    let delays: Vec<TimeSpan> = sink
        .snapshot()
        .into_iter()
        .filter_map(|r| match r.event {
            TraceEvent::RetryScheduled { delay, .. } => Some(delay),
            _ => None,
        })
        .collect();
    assert_eq!(delays, vec![TimeSpan(3), TimeSpan(6)]);
}

#[test]
fn quarantine_trips_blocks_computes_and_recovers_after_cool_down() {
    let (clock, mgr) = setup();
    let broken = Arc::new(AtomicU64::new(1));
    let (reg, evals) = flaky_registry(broken.clone());
    mgr.attach_node(reg);
    let sink = RingBufferSink::new(256);
    mgr.set_trace_sink(Some(sink.clone()));
    let sub = mgr.subscribe(key("flaky")).unwrap();
    // Drive through the retry episode into quarantine (see above).
    clock.advance(TimeSpan(9));
    mgr.periodic().advance_to(clock.now());
    assert_eq!(mgr.quarantine_trip_count(), 1);
    assert!(mgr.is_key_quarantined(&key("flaky")));
    assert_eq!(
        mgr.read_fresh(&key("flaky")),
        Err(MetadataError::Quarantined(key("flaky")))
    );
    // While the circuit is open, boundary refreshes are skipped: no
    // evaluation happens for the whole cool-down.
    let before = evals.load(Ordering::SeqCst);
    clock.advance(TimeSpan(90));
    mgr.periodic().advance_to(clock.now());
    assert_eq!(evals.load(Ordering::SeqCst), before);
    // Heal the compute; the probe at the end of the cool-down recovers.
    broken.store(0, Ordering::SeqCst);
    clock.advance(TimeSpan(20));
    mgr.periodic().advance_to(clock.now());
    assert!(!mgr.is_key_quarantined(&key("flaky")));
    let v = sub.versioned();
    assert!(!v.degraded, "healthy again after the probe");
    assert!(mgr.read_fresh(&key("flaky")).is_ok());
    let kinds: Vec<&'static str> = sink.snapshot().iter().map(|r| r.event.kind()).collect();
    assert!(kinds.contains(&"quarantine_tripped"));
    assert!(kinds.contains(&"quarantine_recovered"));
}

#[test]
fn failed_probe_re_trips_the_breaker() {
    let (clock, mgr) = setup();
    let broken = Arc::new(AtomicU64::new(1));
    let (reg, evals) = flaky_registry(broken.clone());
    mgr.attach_node(reg);
    let _sub = mgr.subscribe(key("flaky")).unwrap();
    clock.advance(TimeSpan(9));
    mgr.periodic().advance_to(clock.now());
    assert_eq!(mgr.quarantine_trip_count(), 1);
    let probes_before = evals.load(Ordering::SeqCst);
    // Still broken at the end of the cool-down: the probe fails once and
    // the breaker re-trips for another cool-down.
    clock.advance(TimeSpan(101));
    mgr.periodic().advance_to(clock.now());
    assert_eq!(evals.load(Ordering::SeqCst), probes_before + 1);
    assert_eq!(mgr.quarantine_trip_count(), 2);
    assert!(mgr.is_key_quarantined(&key("flaky")));
}

#[test]
fn deadline_without_policy_is_observation_only() {
    let (clock, mgr) = setup();
    let reg = NodeRegistry::new(NodeId(1));
    reg.define(
        ItemDef::on_demand("slow")
            .deadline(TimeSpan(5))
            .compute(|_| MetadataValue::U64(9))
            .build(),
    );
    mgr.attach_node(reg);
    let c = clock.clone();
    let plan = FaultPlan::new()
        .inject(
            key("slow"),
            FaultSchedule::Always,
            FaultAction::Delay(TimeSpan(8)),
        )
        .with_delayer(move |d| {
            c.advance(d);
        });
    mgr.set_fault_plan(Some(Arc::new(plan)));
    let sub = mgr.subscribe(key("slow")).unwrap();
    // The evaluation overruns its 5-unit budget (the injected delay
    // advances the very clock deadlines are measured against), but with
    // no fallback policy the late value is still stored.
    assert_eq!(sub.get(), MetadataValue::U64(9));
    assert_eq!(mgr.deadline_overrun_count(), 1);
    mgr.set_fault_plan(None);
    assert!(!sub.versioned().degraded);
    assert_eq!(mgr.stats().deadline_overruns, 1);
}

#[test]
fn deadline_overrun_with_policy_discards_the_late_value() {
    let (clock, mgr) = setup();
    let reg = NodeRegistry::new(NodeId(1));
    let evals = Arc::new(AtomicU64::new(0));
    let e = evals.clone();
    reg.define(
        ItemDef::on_demand("slow")
            .deadline(TimeSpan(5))
            .fallback(POLICY)
            .compute(move |_| MetadataValue::U64(e.fetch_add(1, Ordering::SeqCst) + 1))
            .build(),
    );
    mgr.attach_node(reg);
    let sub = mgr.subscribe(key("slow")).unwrap();
    // First read is healthy and stores 1.
    assert_eq!(sub.get(), MetadataValue::U64(1));
    // Make every second evaluation slow: its (late) result is discarded
    // and the consumer keeps the last good value, degraded.
    let c = clock.clone();
    let plan = FaultPlan::new()
        .inject(
            key("slow"),
            FaultSchedule::Always,
            FaultAction::Delay(TimeSpan(8)),
        )
        .with_delayer(move |d| {
            c.advance(d);
        });
    mgr.set_fault_plan(Some(Arc::new(plan)));
    let v = sub.versioned();
    assert_eq!(v.value, MetadataValue::U64(1), "late result discarded");
    assert!(v.degraded);
    assert!(mgr.stale_serve_count() > 0);
    // Healthy again once the faults stop: next access recomputes.
    mgr.set_fault_plan(None);
    let v = sub.versioned();
    assert!(!v.degraded);
}

#[test]
fn error_faults_with_policy_degrade_instead_of_clobbering() {
    let (_clock, mgr) = setup();
    let reg = NodeRegistry::new(NodeId(1));
    reg.define(
        ItemDef::on_demand("probe")
            .fallback(POLICY)
            .compute(|_| MetadataValue::U64(4))
            .build(),
    );
    mgr.attach_node(reg);
    let sub = mgr.subscribe(key("probe")).unwrap();
    assert_eq!(sub.get(), MetadataValue::U64(4));
    // From now on the source is "unavailable" (a dead remote): without a
    // policy that would overwrite the value; with one it degrades.
    let plan = FaultPlan::new().inject(key("probe"), FaultSchedule::Always, FaultAction::Error);
    mgr.set_fault_plan(Some(Arc::new(plan)));
    let v = sub.versioned();
    assert_eq!(v.value, MetadataValue::U64(4));
    assert!(v.degraded);
}

#[test]
fn policy_less_items_keep_pre_containment_semantics() {
    let (_clock, mgr) = setup();
    let reg = NodeRegistry::new(NodeId(1));
    reg.define(
        ItemDef::on_demand("boom")
            .compute(|_| panic!("intentional"))
            .build(),
    );
    mgr.attach_node(reg);
    let sub = mgr.subscribe(key("boom")).unwrap();
    // No policy: the panic is contained and `Unavailable` is stored, the
    // pre-containment behaviour. Nothing is degraded, nothing retries.
    assert_eq!(sub.get(), MetadataValue::Unavailable);
    assert_eq!(mgr.stats().compute_failures, 1);
    assert!(!sub.versioned().degraded);
    assert_eq!(mgr.retry_count(), 0);
    assert_eq!(mgr.quarantine_trip_count(), 0);
}

#[test]
fn meta_items_reflect_containment_state() {
    let (clock, mgr) = setup();
    let broken = Arc::new(AtomicU64::new(1));
    let (reg, _) = flaky_registry(broken);
    mgr.attach_node(reg);
    mgr.install_meta_node(TimeSpan(10));
    let meta = |name: &str| MetadataKey::new(streammeta_core::META_NODE, name);
    let retries = mgr.subscribe(meta("meta.retries")).unwrap();
    let quarantined = mgr.subscribe(meta("meta.quarantined")).unwrap();
    let stale = mgr.subscribe(meta("meta.stale_serves")).unwrap();
    let sub = mgr.subscribe(key("flaky")).unwrap();
    clock.advance(TimeSpan(9));
    mgr.periodic().advance_to(clock.now());
    let _ = sub.versioned(); // one degraded read
    assert_eq!(retries.get().as_u64(), Some(2));
    assert_eq!(quarantined.get().as_u64(), Some(1));
    assert!(stale.get().as_u64().unwrap() >= 1);
}

#[test]
fn redefine_all_refuses_whole_batch_when_any_item_is_live() {
    let (_clock, mgr) = setup();
    let reg = NodeRegistry::new(NodeId(1));
    reg.define(ItemDef::static_value("a", 1u64));
    reg.define(ItemDef::static_value("b", 2u64));
    mgr.attach_node(reg.clone());
    let _sub = mgr.subscribe(key("b")).unwrap();
    // `b` is live, so the whole batch is refused — `a` keeps its old
    // definition too (atomicity).
    let err = mgr
        .redefine_all(
            NodeId(1),
            vec![
                ItemDef::static_value("a", 10u64),
                ItemDef::static_value("b", 20u64),
            ],
        )
        .unwrap_err();
    assert_eq!(err, MetadataError::ItemInUse(key("b")));
    drop(_sub);
    let a = mgr.subscribe(key("a")).unwrap();
    assert_eq!(a.get().as_u64(), Some(1), "old definition kept");
    drop(a);
    // With nothing live the batch goes through.
    mgr.redefine_all(
        NodeId(1),
        vec![
            ItemDef::static_value("a", 10u64),
            ItemDef::static_value("b", 20u64),
        ],
    )
    .unwrap();
    let a = mgr.subscribe(key("a")).unwrap();
    assert_eq!(a.get().as_u64(), Some(10));
}
