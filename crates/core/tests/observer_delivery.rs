//! Push-observer delivery guarantees.
//!
//! Two properties of `subscribe_with`:
//!
//! * the callback synchronously receives the item's current snapshot at
//!   registration (inclusion pre-computes static, periodic and triggered
//!   items, so a consumer registering after inclusion must not miss the
//!   value that already exists);
//! * each observer sees a strictly increasing version sequence, even
//!   when stores race the registration or each other.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use streammeta_core::{ItemDef, MetadataKey, MetadataManager, MetadataValue, NodeId, NodeRegistry};
use streammeta_time::VirtualClock;

fn key(node: u32, item: &str) -> MetadataKey {
    MetadataKey::new(NodeId(node), item)
}

#[test]
fn subscribe_with_delivers_snapshot_at_registration() {
    let clock = VirtualClock::shared();
    let mgr = MetadataManager::new(clock);
    let reg = NodeRegistry::new(NodeId(1));
    reg.define(ItemDef::static_value("cfg", 42u64));
    mgr.attach_node(reg);

    let seen: Arc<Mutex<Vec<(u64, MetadataValue)>>> = Arc::new(Mutex::new(Vec::new()));
    let s2 = seen.clone();
    let _sub = mgr
        .subscribe_with(key(1, "cfg"), move |v| {
            s2.lock().unwrap().push((v.version, v.value.clone()));
        })
        .unwrap();

    // The static value is stored by inclusion, before the observer is
    // attached — without the registration snapshot the consumer would
    // never hear of it.
    let seen = seen.lock().unwrap();
    assert_eq!(seen.len(), 1, "registration delivered the current value");
    assert_eq!(seen[0], (1, MetadataValue::U64(42)));
}

#[test]
fn subscribe_with_on_never_stored_item_stays_silent() {
    let clock = VirtualClock::shared();
    let mgr = MetadataManager::new(clock);
    let reg = NodeRegistry::new(NodeId(1));
    // On-demand items are not pre-computed at inclusion: nothing has
    // ever been stored, so registration must not fabricate a delivery.
    reg.define(
        ItemDef::on_demand("lazy")
            .compute(|_| MetadataValue::U64(7))
            .build(),
    );
    mgr.attach_node(reg);

    let calls = Arc::new(AtomicU64::new(0));
    let c2 = calls.clone();
    let sub = mgr
        .subscribe_with(key(1, "lazy"), move |_| {
            c2.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
    assert_eq!(
        calls.load(Ordering::SeqCst),
        0,
        "version 0 is not delivered"
    );
    // The first access stores the computed value and notifies.
    assert_eq!(sub.get(), MetadataValue::U64(7));
    assert_eq!(calls.load(Ordering::SeqCst), 1);
}

#[test]
fn observer_versions_are_strictly_increasing_under_concurrent_stores() {
    let clock = VirtualClock::shared();
    let mgr = MetadataManager::new(clock);
    let reg = NodeRegistry::new(NodeId(1));
    let ticks = Arc::new(AtomicU64::new(0));
    let t2 = ticks.clone();
    // Every access stores a fresh value, so concurrent readers generate
    // concurrent stores (and thus concurrent observer notifications).
    reg.define(
        ItemDef::on_demand("tick")
            .compute(move |_| MetadataValue::U64(t2.fetch_add(1, Ordering::SeqCst)))
            .build(),
    );
    mgr.attach_node(reg);

    let versions: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let v2 = versions.clone();
    let sub = mgr
        .subscribe_with(key(1, "tick"), move |v| {
            v2.lock().unwrap().push(v.version);
        })
        .unwrap();

    std::thread::scope(|scope| {
        for _ in 0..4 {
            let mgr = mgr.clone();
            let sub = &sub;
            scope.spawn(move || {
                let k = key(1, "tick");
                for i in 0..2_000u32 {
                    if i % 2 == 0 {
                        let _ = sub.get();
                    } else {
                        let _ = mgr.read(&k);
                    }
                }
            });
        }
    });

    let versions = versions.lock().unwrap();
    assert!(!versions.is_empty());
    for pair in versions.windows(2) {
        assert!(
            pair[1] > pair[0],
            "delivery went backwards: {} after {}",
            pair[1],
            pair[0]
        );
    }
}
