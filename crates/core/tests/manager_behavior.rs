//! Behavioural tests of the metadata manager: subscription cascades,
//! reference counting, update mechanisms, trigger propagation, events,
//! dynamic dependencies, and inheritance.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use streammeta_core::{
    Counter, DepTarget, Dependency, EventKey, ItemDef, MetadataError, MetadataKey, MetadataManager,
    MetadataValue, NodeId, NodeRegistry, WindowDelta,
};
use streammeta_time::{Clock, TimeSpan, Timestamp, VirtualClock};

fn setup() -> (Arc<VirtualClock>, Arc<MetadataManager>) {
    let clock = VirtualClock::shared();
    let manager = MetadataManager::new(clock.clone());
    (clock, manager)
}

fn key(node: u32, item: &str) -> MetadataKey {
    MetadataKey::new(NodeId(node), item)
}

/// A node with a chain a -> b -> c of triggered items plus a static leaf.
fn chain_registry(node: NodeId) -> Arc<NodeRegistry> {
    let reg = NodeRegistry::new(node);
    reg.define(ItemDef::static_value("c", 1.0));
    reg.define(
        ItemDef::triggered("b")
            .dep_local("c")
            .compute(|ctx| match ctx.dep_f64("c") {
                Some(c) => MetadataValue::F64(c * 2.0),
                None => MetadataValue::Unavailable,
            })
            .build(),
    );
    reg.define(
        ItemDef::triggered("a")
            .dep_local("b")
            .compute(|ctx| match ctx.dep_f64("b") {
                Some(b) => MetadataValue::F64(b + 1.0),
                None => MetadataValue::Unavailable,
            })
            .build(),
    );
    reg
}

#[test]
fn subscribe_includes_transitive_dependencies() {
    let (_clock, mgr) = setup();
    mgr.attach_node(chain_registry(NodeId(1)));
    assert_eq!(mgr.handler_count(), 0);
    let sub = mgr.subscribe(key(1, "a")).unwrap();
    // a, b and c are all included by one subscription.
    assert_eq!(mgr.handler_count(), 3);
    assert!(mgr.is_included(&key(1, "b")));
    assert!(mgr.is_included(&key(1, "c")));
    // Pre-computed at inclusion: c=1, b=2, a=3.
    assert_eq!(sub.get_f64(), Some(3.0));
    drop(sub);
    assert_eq!(mgr.handler_count(), 0);
}

#[test]
fn shared_handlers_are_reference_counted() {
    let (_clock, mgr) = setup();
    mgr.attach_node(chain_registry(NodeId(1)));
    let s1 = mgr.subscribe(key(1, "a")).unwrap();
    let s2 = mgr.subscribe(key(1, "a")).unwrap();
    assert_eq!(mgr.subscription_count(&key(1, "a")), 2);
    // Dependencies are shared, not duplicated: the second traversal stops
    // at the already-provided item `a`, so `b` keeps one reference (from
    // `a`'s single handler).
    assert_eq!(mgr.handler_count(), 3);
    assert_eq!(mgr.subscription_count(&key(1, "b")), 1);
    drop(s1);
    assert_eq!(mgr.handler_count(), 3);
    assert_eq!(mgr.subscription_count(&key(1, "a")), 1);
    drop(s2);
    assert_eq!(mgr.handler_count(), 0);
}

#[test]
fn clone_of_subscription_counts() {
    let (_clock, mgr) = setup();
    mgr.attach_node(chain_registry(NodeId(1)));
    let s1 = mgr.subscribe(key(1, "c")).unwrap();
    let s2 = s1.clone();
    assert_eq!(mgr.subscription_count(&key(1, "c")), 2);
    drop(s1);
    assert!(mgr.is_included(&key(1, "c")));
    assert_eq!(s2.get_f64(), Some(1.0));
    drop(s2);
    assert!(!mgr.is_included(&key(1, "c")));
}

#[test]
fn direct_subscription_to_shared_dependency_survives_cascade_exclusion() {
    let (_clock, mgr) = setup();
    mgr.attach_node(chain_registry(NodeId(1)));
    let sa = mgr.subscribe(key(1, "a")).unwrap();
    let sc = mgr.subscribe(key(1, "c")).unwrap();
    assert_eq!(mgr.subscription_count(&key(1, "c")), 2);
    drop(sa);
    // a and b are gone, c survives through the direct subscription.
    assert_eq!(mgr.handler_count(), 1);
    assert_eq!(sc.get_f64(), Some(1.0));
}

#[test]
fn diamond_dependencies_refcount_correctly() {
    let (_clock, mgr) = setup();
    let reg = NodeRegistry::new(NodeId(1));
    reg.define(ItemDef::static_value("base", 2.0));
    for (name, factor) in [("l", 10.0), ("r", 100.0)] {
        reg.define(
            ItemDef::triggered(name)
                .dep_local("base")
                .compute(move |ctx| MetadataValue::F64(ctx.dep_f64("base").unwrap_or(0.0) * factor))
                .build(),
        );
    }
    reg.define(
        ItemDef::triggered("top")
            .dep_local("l")
            .dep_local("r")
            .compute(|ctx| {
                MetadataValue::F64(
                    ctx.dep_f64("l").unwrap_or(0.0) + ctx.dep_f64("r").unwrap_or(0.0),
                )
            })
            .build(),
    );
    mgr.attach_node(reg);
    let sub = mgr.subscribe(key(1, "top")).unwrap();
    assert_eq!(mgr.handler_count(), 4);
    // base is included via two paths.
    assert_eq!(mgr.subscription_count(&key(1, "base")), 2);
    assert_eq!(sub.get_f64(), Some(220.0));
    drop(sub);
    assert_eq!(mgr.handler_count(), 0);
}

#[test]
fn cyclic_dependencies_are_rejected_and_rolled_back() {
    let (_clock, mgr) = setup();
    let reg = NodeRegistry::new(NodeId(1));
    reg.define(
        ItemDef::triggered("x")
            .dep_local("y")
            .compute(|_| MetadataValue::Unavailable)
            .build(),
    );
    reg.define(
        ItemDef::triggered("y")
            .dep_local("x")
            .compute(|_| MetadataValue::Unavailable)
            .build(),
    );
    mgr.attach_node(reg);
    let err = mgr.subscribe(key(1, "x")).unwrap_err();
    assert!(matches!(err, MetadataError::CyclicDependency(_)));
    // Nothing leaks.
    assert_eq!(mgr.handler_count(), 0);
    assert_eq!(mgr.stats().subscriptions, 0);
}

#[test]
fn failed_inclusion_of_missing_dependency_rolls_back_shared_counts() {
    let (_clock, mgr) = setup();
    let reg = NodeRegistry::new(NodeId(1));
    reg.define(ItemDef::static_value("ok", 1.0));
    reg.define(
        ItemDef::triggered("broken")
            .dep_local("ok")
            .dep_local("missing")
            .compute(|_| MetadataValue::Unavailable)
            .build(),
    );
    mgr.attach_node(reg);
    let pre = mgr.subscribe(key(1, "ok")).unwrap();
    let err = mgr.subscribe(key(1, "broken")).unwrap_err();
    assert!(matches!(err, MetadataError::ItemUndefined(_)));
    // The pre-existing subscription's count is untouched by the rollback.
    assert_eq!(mgr.subscription_count(&key(1, "ok")), 1);
    drop(pre);
    assert_eq!(mgr.handler_count(), 0);
}

#[test]
fn unknown_node_and_undefined_item_errors() {
    let (_clock, mgr) = setup();
    assert!(matches!(
        mgr.subscribe(key(9, "a")).unwrap_err(),
        MetadataError::NodeUnknown(NodeId(9))
    ));
    mgr.attach_node(NodeRegistry::new(NodeId(1)));
    assert!(matches!(
        mgr.subscribe(key(1, "a")).unwrap_err(),
        MetadataError::ItemUndefined(_)
    ));
    assert!(matches!(
        mgr.read(&key(1, "a")).unwrap_err(),
        MetadataError::NotIncluded(_)
    ));
}

#[test]
fn periodic_handler_updates_at_window_boundaries() {
    let (clock, mgr) = setup();
    let node = NodeId(1);
    let reg = NodeRegistry::new(node);
    let arrivals = Counter::new();
    let delta = Arc::new(WindowDelta::new(arrivals.clone()));
    reg.define(
        ItemDef::periodic("input_rate", TimeSpan(50))
            .counter(&arrivals)
            .compute(move |ctx| match delta.rate_over(ctx.window().unwrap()) {
                Some(r) => MetadataValue::F64(r),
                None => MetadataValue::Unavailable,
            })
            .build(),
    );
    mgr.attach_node(reg);
    let sub = mgr.subscribe(key(1, "input_rate")).unwrap();
    // Before the first boundary the value is unavailable.
    assert_eq!(sub.get(), MetadataValue::Unavailable);
    // One element every 10 units: true rate 0.1.
    for _ in 0..5 {
        clock.advance(TimeSpan(10));
        arrivals.record();
        mgr.periodic().advance_to(clock.now());
    }
    assert_eq!(sub.get_f64(), Some(0.1));
    // Reading repeatedly within a period returns the same version:
    // the paper's isolation condition.
    let v1 = sub.versioned();
    let v2 = sub.versioned();
    assert_eq!(v1.version, v2.version);
    assert_eq!(v1.value, v2.value);
}

#[test]
fn unsubscription_cancels_periodic_task() {
    let (clock, mgr) = setup();
    let reg = NodeRegistry::new(NodeId(1));
    reg.define(
        ItemDef::periodic("p", TimeSpan(10))
            .compute(|ctx| MetadataValue::U64(ctx.now().units()))
            .build(),
    );
    mgr.attach_node(reg);
    let sub = mgr.subscribe(key(1, "p")).unwrap();
    assert_eq!(mgr.periodic().live_tasks(), 1);
    drop(sub);
    assert_eq!(mgr.periodic().live_tasks(), 0);
    clock.advance(TimeSpan(100));
    assert_eq!(mgr.periodic().advance_to(clock.now()), 0);
}

#[test]
fn triggered_updates_propagate_from_periodic_source() {
    let (clock, mgr) = setup();
    let node = NodeId(1);
    let reg = NodeRegistry::new(node);
    let arrivals = Counter::new();
    let delta = Arc::new(WindowDelta::new(arrivals.clone()));
    reg.define(
        ItemDef::periodic("input_rate", TimeSpan(10))
            .counter(&arrivals)
            .compute(move |ctx| match delta.rate_over(ctx.window().unwrap()) {
                Some(r) => MetadataValue::F64(r),
                None => MetadataValue::Unavailable,
            })
            .build(),
    );
    // Triggered running average of the rate (the paper's canonical
    // intra-node dependency example).
    let avg = Arc::new(streammeta_core::OnlineAverage::new());
    let avg2 = avg.clone();
    reg.define(
        ItemDef::triggered("avg_input_rate")
            .dep_local("input_rate")
            .compute(move |ctx| match ctx.dep_f64("input_rate") {
                Some(r) => {
                    avg2.observe(r);
                    MetadataValue::F64(avg2.mean().unwrap())
                }
                None => MetadataValue::Unavailable,
            })
            .build(),
    );
    mgr.attach_node(reg);
    let sub = mgr.subscribe(key(1, "avg_input_rate")).unwrap();
    // Window 1: 2 arrivals -> rate 0.2. Window 2: 4 arrivals -> 0.4.
    for n in [2u32, 4] {
        for _ in 0..n {
            arrivals.record();
        }
        clock.advance(TimeSpan(10));
        mgr.periodic().advance_to(clock.now());
    }
    // Average of 0.2 and 0.4.
    let got = sub.get_f64().unwrap();
    assert!((got - 0.3).abs() < 1e-12, "avg was {got}");
}

#[test]
fn propagation_stops_when_value_unchanged() {
    let (clock, mgr) = setup();
    let reg = NodeRegistry::new(NodeId(1));
    // Periodic source that always produces the same value.
    reg.define(
        ItemDef::periodic("const", TimeSpan(10))
            .compute(|_| MetadataValue::F64(5.0))
            .build(),
    );
    let recomputes = Arc::new(AtomicU64::new(0));
    let r2 = recomputes.clone();
    reg.define(
        ItemDef::triggered("dep")
            .dep_local("const")
            .compute(move |ctx| {
                r2.fetch_add(1, Ordering::SeqCst);
                ctx.dep("const")
            })
            .build(),
    );
    mgr.attach_node(reg);
    let _sub = mgr.subscribe(key(1, "dep")).unwrap();
    let initial = recomputes.load(Ordering::SeqCst);
    assert_eq!(initial, 1, "pre-computed once at inclusion");
    // Every boundary recomputes the constant to the same value, so the
    // dependent triggered handler is never notified again.
    for _ in 0..10 {
        clock.advance(TimeSpan(10));
        mgr.periodic().advance_to(clock.now());
    }
    assert_eq!(recomputes.load(Ordering::SeqCst), initial);
}

#[test]
fn diamond_propagation_recomputes_each_item_once() {
    let (clock, mgr) = setup();
    let reg = NodeRegistry::new(NodeId(1));
    reg.define(
        ItemDef::periodic("src", TimeSpan(10))
            .compute(|ctx| MetadataValue::U64(ctx.now().units()))
            .build(),
    );
    for name in ["l", "r"] {
        reg.define(
            ItemDef::triggered(name)
                .dep_local("src")
                .compute(|ctx| ctx.dep("src"))
                .build(),
        );
    }
    let top_computes = Arc::new(AtomicU64::new(0));
    let tc = top_computes.clone();
    reg.define(
        ItemDef::triggered("top")
            .dep_local("l")
            .dep_local("r")
            .compute(move |ctx| {
                tc.fetch_add(1, Ordering::SeqCst);
                MetadataValue::F64(
                    ctx.dep_f64("l").unwrap_or(0.0) + ctx.dep_f64("r").unwrap_or(0.0),
                )
            })
            .build(),
    );
    mgr.attach_node(reg);
    let sub = mgr.subscribe(key(1, "top")).unwrap();
    let baseline = top_computes.load(Ordering::SeqCst);
    clock.advance(TimeSpan(10));
    mgr.periodic().advance_to(clock.now());
    // One boundary -> exactly one recomputation of `top` (after both l,r).
    assert_eq!(top_computes.load(Ordering::SeqCst), baseline + 1);
    assert_eq!(sub.get_f64(), Some(20.0));
}

#[test]
fn events_trigger_dependent_handlers() {
    let (_clock, mgr) = setup();
    let node = NodeId(1);
    let reg = NodeRegistry::new(node);
    let window_size = Arc::new(AtomicU64::new(100));
    let ws = window_size.clone();
    reg.define(
        ItemDef::on_demand("window_size")
            .compute(move |_| MetadataValue::U64(ws.load(Ordering::SeqCst)))
            .build(),
    );
    reg.define(
        ItemDef::triggered("validity")
            .dep_local("window_size")
            .on_event("window_size_changed")
            .compute(|ctx| match ctx.dep_f64("window_size") {
                Some(w) => MetadataValue::F64(w),
                None => MetadataValue::Unavailable,
            })
            .build(),
    );
    mgr.attach_node(reg);
    let sub = mgr.subscribe(key(1, "validity")).unwrap();
    assert_eq!(sub.get_f64(), Some(100.0));
    // Change the underlying state, then fire the event (Section 3.2.3:
    // manual notifications bridge on-demand sources).
    window_size.store(40, Ordering::SeqCst);
    assert_eq!(sub.get_f64(), Some(100.0), "not yet notified");
    mgr.fire_event(EventKey::new(node, "window_size_changed"));
    assert_eq!(sub.get_f64(), Some(40.0));
}

#[test]
fn notify_changed_retriggers_dependents_of_on_demand_items() {
    let (_clock, mgr) = setup();
    let node = NodeId(1);
    let reg = NodeRegistry::new(node);
    let state = Arc::new(AtomicU64::new(7));
    let s2 = state.clone();
    reg.define(
        ItemDef::on_demand("state_size")
            .compute(move |_| MetadataValue::U64(s2.load(Ordering::SeqCst)))
            .build(),
    );
    reg.define(
        ItemDef::triggered("memory_usage")
            .dep_local("state_size")
            .compute(|ctx| match ctx.dep_f64("state_size") {
                Some(s) => MetadataValue::F64(s * 16.0),
                None => MetadataValue::Unavailable,
            })
            .build(),
    );
    mgr.attach_node(reg);
    let sub = mgr.subscribe(key(1, "memory_usage")).unwrap();
    assert_eq!(sub.get_f64(), Some(112.0));
    state.store(10, Ordering::SeqCst);
    mgr.notify_changed(key(1, "state_size"));
    assert_eq!(sub.get_f64(), Some(160.0));
}

#[test]
fn dynamic_dependency_prefers_included_alternative() {
    let (_clock, mgr) = setup();
    let node = NodeId(1);
    let reg = NodeRegistry::new(node);
    reg.define(ItemDef::static_value("b", 1.0));
    reg.define(ItemDef::static_value("c", 2.0));
    let kb = key(1, "b");
    let kc = key(1, "c");
    let (kb2, kc2) = (kb.clone(), kc.clone());
    reg.define(
        ItemDef::triggered("a")
            .dynamic_deps(move |ctx| {
                let pick = if ctx.is_included(&kc2) { &kc2 } else { &kb2 };
                vec![Dependency::new("src", DepTarget::Remote(pick.clone()))]
            })
            .compute(|ctx| ctx.dep("src"))
            .build(),
    );
    mgr.attach_node(reg);

    // Nothing else included: a resolves to b.
    let sa = mgr.subscribe(key(1, "a")).unwrap();
    assert!(mgr.is_included(&kb));
    assert!(!mgr.is_included(&kc));
    assert_eq!(sa.get_f64(), Some(1.0));
    drop(sa);

    // c already included: a resolves to c, b is never included — the
    // resource saving of Section 4.4.3.
    let _sc = mgr.subscribe(kc.clone()).unwrap();
    let sa = mgr.subscribe(key(1, "a")).unwrap();
    assert!(!mgr.is_included(&kb));
    assert_eq!(sa.get_f64(), Some(2.0));
}

#[test]
fn monitors_and_hooks_follow_inclusion() {
    let (_clock, mgr) = setup();
    let reg = NodeRegistry::new(NodeId(1));
    let counter = Counter::new();
    let includes = Arc::new(AtomicU64::new(0));
    let excludes = Arc::new(AtomicU64::new(0));
    let (inc, exc) = (includes.clone(), excludes.clone());
    reg.define(
        ItemDef::on_demand("count")
            .counter(&counter)
            .on_include(move || {
                inc.fetch_add(1, Ordering::SeqCst);
            })
            .on_exclude(move || {
                exc.fetch_add(1, Ordering::SeqCst);
            })
            .compute({
                let c = counter.clone();
                move |_| MetadataValue::U64(c.value())
            })
            .build(),
    );
    mgr.attach_node(reg);
    counter.record(); // inactive: not counted
    let s1 = mgr.subscribe(key(1, "count")).unwrap();
    let s2 = mgr.subscribe(key(1, "count")).unwrap();
    // Hooks run once per handler creation, not per subscription.
    assert_eq!(includes.load(Ordering::SeqCst), 1);
    assert!(counter.is_active());
    counter.record();
    assert_eq!(s1.get(), MetadataValue::U64(1));
    drop(s1);
    assert!(counter.is_active(), "still one subscriber");
    drop(s2);
    assert!(!counter.is_active());
    assert_eq!(excludes.load(Ordering::SeqCst), 1);
}

#[test]
fn redefinition_applies_to_new_inclusions() {
    let (_clock, mgr) = setup();
    let node = NodeId(1);
    let reg = NodeRegistry::new(node);
    reg.define(ItemDef::static_value("memory_usage", 100u64));
    mgr.attach_node(reg.clone());
    {
        let sub = mgr.subscribe(key(1, "memory_usage")).unwrap();
        assert_eq!(sub.get(), MetadataValue::U64(100));
    }
    // A specialised operator overrides the inherited definition
    // (Section 4.4.2): extra data structures add to the memory usage.
    reg.define(
        ItemDef::on_demand("memory_usage")
            .compute(|_| MetadataValue::U64(100 + 24))
            .build(),
    );
    let sub = mgr.subscribe(key(1, "memory_usage")).unwrap();
    assert_eq!(sub.get(), MetadataValue::U64(124));
}

#[test]
fn guarded_redefinition_refuses_live_items() {
    let (_clock, mgr) = setup();
    mgr.attach_node(chain_registry(NodeId(1)));
    let sub = mgr.subscribe(key(1, "c")).unwrap();
    let err = mgr
        .redefine(NodeId(1), ItemDef::static_value("c", 9.0))
        .unwrap_err();
    assert!(matches!(err, MetadataError::ItemInUse(_)));
    assert_eq!(sub.get_f64(), Some(1.0), "old definition still serves");
    drop(sub);
    mgr.redefine(NodeId(1), ItemDef::static_value("c", 9.0))
        .unwrap();
    let sub = mgr.subscribe(key(1, "c")).unwrap();
    assert_eq!(sub.get_f64(), Some(9.0));
    // Unknown node is reported as such.
    assert!(matches!(
        mgr.redefine(NodeId(77), ItemDef::static_value("x", 1.0)),
        Err(MetadataError::NodeUnknown(NodeId(77)))
    ));
}

#[test]
fn guarded_undefine_refuses_live_items() {
    let (_clock, mgr) = setup();
    mgr.attach_node(chain_registry(NodeId(1)));
    // "a" transitively includes "c", so even the dependency is in use.
    let sub = mgr.subscribe(key(1, "a")).unwrap();
    let err = mgr.undefine(NodeId(1), &"c".into()).unwrap_err();
    assert!(matches!(err, MetadataError::ItemInUse(k) if k == key(1, "c")));
    assert_eq!(sub.get_f64(), Some(3.0), "chain still serves");
    drop(sub);
    // After the last unsubscribe the whole chain is excluded and the
    // definition can be removed; the removed definition is returned.
    let removed = mgr.undefine(NodeId(1), &"c".into()).unwrap();
    assert!(removed.is_some());
    // Undefine-then-define now behaves like a redefinition: the next
    // subscription resolves against the new semantics...
    mgr.redefine(NodeId(1), ItemDef::static_value("c", 9.0))
        .unwrap();
    let sub = mgr.subscribe(key(1, "c")).unwrap();
    assert_eq!(sub.get_f64(), Some(9.0));
    // ...and removing an item that was never defined is not an error.
    assert!(mgr.undefine(NodeId(1), &"ghost".into()).unwrap().is_none());
    assert!(matches!(
        mgr.undefine(NodeId(77), &"x".into()),
        Err(MetadataError::NodeUnknown(NodeId(77)))
    ));
}

#[test]
fn undefined_item_fails_new_subscriptions_but_not_live_ones() {
    let (_clock, mgr) = setup();
    mgr.attach_node(chain_registry(NodeId(1)));
    let live = mgr.subscribe(key(1, "b")).unwrap();
    // "a" is not included; its definition can be removed while b/c live.
    assert!(mgr.undefine(NodeId(1), &"a".into()).unwrap().is_some());
    assert!(matches!(
        mgr.subscribe(key(1, "a")),
        Err(MetadataError::ItemUndefined(_))
    ));
    assert_eq!(live.get_f64(), Some(2.0), "unrelated chain unaffected");
}

#[test]
fn inter_node_dependencies_propagate_across_nodes() {
    let (clock, mgr) = setup();
    // Source node with a periodic output rate.
    let src = NodeId(1);
    let src_reg = NodeRegistry::new(src);
    let out = Counter::new();
    let delta = Arc::new(WindowDelta::new(out.clone()));
    src_reg.define(
        ItemDef::periodic("output_rate", TimeSpan(10))
            .counter(&out)
            .compute(move |ctx| match delta.rate_over(ctx.window().unwrap()) {
                Some(r) => MetadataValue::F64(r),
                None => MetadataValue::Unavailable,
            })
            .build(),
    );
    // Downstream operator estimating CPU usage from the upstream rate.
    let op = NodeId(2);
    let op_reg = NodeRegistry::new(op);
    op_reg.define(
        ItemDef::triggered("estimated_cpu_usage")
            .dep_remote("in_rate", key(1, "output_rate"))
            .compute(|ctx| match ctx.dep_f64("in_rate") {
                Some(r) => MetadataValue::F64(r * 3.0),
                None => MetadataValue::Unavailable,
            })
            .build(),
    );
    mgr.attach_node(src_reg);
    mgr.attach_node(op_reg);
    let sub = mgr.subscribe(key(2, "estimated_cpu_usage")).unwrap();
    // Subscribing at the operator automatically included the upstream item.
    assert!(mgr.is_included(&key(1, "output_rate")));
    for _ in 0..10 {
        out.record();
        clock.advance(TimeSpan(5));
        mgr.periodic().advance_to(clock.now());
    }
    // Rate 0.2 -> CPU 0.6.
    assert!((sub.get_f64().unwrap() - 0.6).abs() < 1e-12);
    drop(sub);
    assert!(!mgr.is_included(&key(1, "output_rate")));
}

#[test]
fn subscribe_all_matches_available_items() {
    let (_clock, mgr) = setup();
    mgr.attach_node(chain_registry(NodeId(1)));
    let subs = mgr.subscribe_all(NodeId(1)).unwrap();
    assert_eq!(subs.len(), 3);
    assert_eq!(mgr.handler_count(), 3);
    assert_eq!(
        mgr.stats().subscriptions,
        3 + 2 /* dependent inclusions */
    );
    drop(subs);
    assert_eq!(mgr.handler_count(), 0);
}

#[test]
fn stats_track_accesses_and_updates() {
    let (_clock, mgr) = setup();
    mgr.attach_node(chain_registry(NodeId(1)));
    let sub = mgr.subscribe(key(1, "a")).unwrap();
    let before = mgr.stats();
    sub.get();
    sub.get();
    let after = mgr.stats();
    assert_eq!(after.accesses, before.accesses + 2);
    let hs = mgr.handler_stats(&key(1, "a")).unwrap();
    assert_eq!(hs.accesses, 2);
    assert_eq!(hs.subscriptions, 1);
}

#[test]
fn on_demand_items_recompute_on_every_access() {
    let (_clock, mgr) = setup();
    let reg = NodeRegistry::new(NodeId(1));
    let calls = Arc::new(AtomicU64::new(0));
    let c2 = calls.clone();
    reg.define(
        ItemDef::on_demand("fresh")
            .compute(move |_| MetadataValue::U64(c2.fetch_add(1, Ordering::SeqCst)))
            .build(),
    );
    mgr.attach_node(reg);
    let sub = mgr.subscribe(key(1, "fresh")).unwrap();
    assert_eq!(sub.get(), MetadataValue::U64(0));
    assert_eq!(sub.get(), MetadataValue::U64(1));
    assert_eq!(sub.get(), MetadataValue::U64(2));
}

#[test]
fn static_items_compute_once() {
    let (_clock, mgr) = setup();
    let reg = NodeRegistry::new(NodeId(1));
    let calls = Arc::new(AtomicU64::new(0));
    // A triggered item with no dependencies behaves like instrumented
    // static metadata: computed once at inclusion, never again.
    let c2 = calls.clone();
    reg.define(
        ItemDef::triggered("counted_static")
            .compute(move |_| MetadataValue::U64(c2.fetch_add(1, Ordering::SeqCst)))
            .build(),
    );
    reg.define(ItemDef::static_value("schema", "x:int"));
    mgr.attach_node(reg);
    let sub = mgr.subscribe(key(1, "counted_static")).unwrap();
    sub.get();
    sub.get();
    assert_eq!(
        calls.load(Ordering::SeqCst),
        1,
        "computed only at inclusion"
    );
    let schema = mgr.subscribe(key(1, "schema")).unwrap();
    assert_eq!(schema.get(), MetadataValue::text("x:int"));
}

#[test]
fn detach_node_blocks_new_subscriptions_but_keeps_handlers() {
    let (_clock, mgr) = setup();
    mgr.attach_node(chain_registry(NodeId(1)));
    let sub = mgr.subscribe(key(1, "c")).unwrap();
    assert!(mgr.detach_node(NodeId(1)).is_some());
    // `a` was never included, and the registry is gone: subscription fails.
    assert!(mgr.subscribe(key(1, "a")).is_err());
    // Already-included items keep working (and remain subscribable) from
    // their snapshotted definitions.
    let again = mgr.subscribe(key(1, "c")).unwrap();
    assert_eq!(sub.get_f64(), Some(1.0));
    assert_eq!(again.get_f64(), Some(1.0));
}

#[test]
fn introspection_reports_edges_and_dot() {
    let (_clock, mgr) = setup();
    mgr.attach_node(chain_registry(NodeId(1)));
    let _sub = mgr.subscribe(key(1, "a")).unwrap();
    let edges = mgr.dependency_edges();
    assert_eq!(edges.len(), 2, "a->b and b->c inverted edges");
    assert_eq!(
        mgr.dependents_of(&streammeta_core::DepSource::Item(key(1, "c"))),
        vec![key(1, "b")]
    );
    let deps = mgr.dependencies_of(&key(1, "a")).unwrap();
    assert_eq!(deps.len(), 1);
    assert_eq!(&*deps[0].role, "b");
    let dot = mgr.to_dot();
    assert!(dot.contains("digraph metadata"));
    assert!(dot.contains("\"n1/c\" -> \"n1/b\""));
    assert!(dot.contains("(triggered)"));
}

#[test]
fn concurrent_subscribe_unsubscribe_is_safe() {
    let (_clock, mgr) = setup();
    mgr.attach_node(chain_registry(NodeId(1)));
    std::thread::scope(|s| {
        for _ in 0..8 {
            let mgr = mgr.clone();
            s.spawn(move || {
                for _ in 0..200 {
                    let sub = mgr.subscribe(key(1, "a")).unwrap();
                    let _ = sub.get();
                }
            });
        }
    });
    assert_eq!(mgr.handler_count(), 0);
    assert_eq!(mgr.stats().subscriptions, 0);
}

#[test]
fn one_event_fires_each_dependent_once() {
    let (_clock, mgr) = setup();
    let reg = NodeRegistry::new(NodeId(1));
    let counters: Vec<Arc<AtomicU64>> = (0..3).map(|_| Arc::new(AtomicU64::new(0))).collect();
    for (i, c) in counters.iter().enumerate() {
        let c = c.clone();
        reg.define(
            ItemDef::triggered(format!("dep{i}"))
                .on_event("tick")
                .compute(move |_| MetadataValue::U64(c.fetch_add(1, Ordering::SeqCst)))
                .build(),
        );
    }
    mgr.attach_node(reg);
    let _subs: Vec<_> = (0..3)
        .map(|i| mgr.subscribe(key(1, &format!("dep{i}"))).unwrap())
        .collect();
    let base: Vec<u64> = counters.iter().map(|c| c.load(Ordering::SeqCst)).collect();
    mgr.fire_event(EventKey::new(NodeId(1), "tick"));
    for (i, c) in counters.iter().enumerate() {
        assert_eq!(
            c.load(Ordering::SeqCst),
            base[i] + 1,
            "dep{i} recomputed exactly once"
        );
    }
}

#[test]
fn duplicate_dependencies_on_one_source_notify_once() {
    let (_clock, mgr) = setup();
    let reg = NodeRegistry::new(NodeId(1));
    let cell = Arc::new(AtomicU64::new(1));
    let c2 = cell.clone();
    reg.define(
        ItemDef::on_demand("src")
            .compute(move |_| MetadataValue::U64(c2.load(Ordering::SeqCst)))
            .build(),
    );
    let computes = Arc::new(AtomicU64::new(0));
    let c3 = computes.clone();
    // Two roles targeting the same item (Section 3.2.3: duplicate
    // subscriptions are detected to avoid redundant notifications).
    reg.define(
        ItemDef::triggered("double")
            .dep("a", streammeta_core::DepTarget::Local("src".into()))
            .dep("b", streammeta_core::DepTarget::Local("src".into()))
            .compute(move |ctx| {
                c3.fetch_add(1, Ordering::SeqCst);
                MetadataValue::F64(
                    ctx.dep_f64("a").unwrap_or(0.0) + ctx.dep_f64("b").unwrap_or(0.0),
                )
            })
            .build(),
    );
    mgr.attach_node(reg);
    let sub = mgr.subscribe(key(1, "double")).unwrap();
    // The source is refcounted twice (two dependency edges)...
    assert_eq!(mgr.subscription_count(&key(1, "src")), 2);
    let before = computes.load(Ordering::SeqCst);
    cell.store(5, Ordering::SeqCst);
    mgr.notify_changed(key(1, "src"));
    // ...but one change recomputes the dependent once.
    assert_eq!(computes.load(Ordering::SeqCst), before + 1);
    assert_eq!(sub.get_f64(), Some(10.0));
    drop(sub);
    assert_eq!(mgr.handler_count(), 0);
}

#[test]
fn external_periodic_registry_survives_manager_drop() {
    let clock = VirtualClock::shared();
    let registry = streammeta_time::PeriodicRegistry::shared();
    let mgr = MetadataManager::with_periodic(clock.clone(), registry.clone());
    let reg = NodeRegistry::new(NodeId(1));
    reg.define(
        ItemDef::periodic("p", TimeSpan(10))
            .compute(|ctx| MetadataValue::U64(ctx.now().units()))
            .build(),
    );
    mgr.attach_node(reg);
    let sub = mgr.subscribe(key(1, "p")).unwrap();
    assert_eq!(registry.live_tasks(), 1);
    // Dropping subscription and manager leaves the external registry
    // functional (tasks hold only weak manager references).
    drop(sub);
    drop(mgr);
    clock.advance(TimeSpan(100));
    registry.advance_to(clock.now());
    assert_eq!(registry.live_tasks(), 0);
}

#[test]
fn updated_at_reflects_the_window_boundary() {
    let (clock, mgr) = setup();
    let reg = NodeRegistry::new(NodeId(1));
    reg.define(
        ItemDef::periodic("p", TimeSpan(10))
            .compute(|ctx| MetadataValue::U64(ctx.now().units()))
            .build(),
    );
    mgr.attach_node(reg);
    let sub = mgr.subscribe(key(1, "p")).unwrap();
    // Advance in one jump past several boundaries: the catch-up fires at
    // exact boundaries, and the final stored timestamp is the boundary.
    clock.advance(TimeSpan(35));
    mgr.periodic().advance_to(clock.now());
    let v = sub.versioned();
    assert_eq!(v.value, MetadataValue::U64(30));
    assert_eq!(v.updated_at, Timestamp(30));
}

#[test]
fn mixed_event_and_item_chain_propagates_in_order() {
    let (_clock, mgr) = setup();
    let reg = NodeRegistry::new(NodeId(1));
    let state = Arc::new(AtomicU64::new(1));
    let s2 = state.clone();
    reg.define(
        ItemDef::on_demand("raw")
            .compute(move |_| MetadataValue::U64(s2.load(Ordering::SeqCst)))
            .build(),
    );
    // first <- event + raw; second <- first.
    reg.define(
        ItemDef::triggered("first")
            .dep_local("raw")
            .on_event("poke")
            .compute(|ctx| match ctx.dep_f64("raw") {
                Some(v) => MetadataValue::F64(v * 10.0),
                None => MetadataValue::Unavailable,
            })
            .build(),
    );
    reg.define(
        ItemDef::triggered("second")
            .dep_local("first")
            .compute(|ctx| match ctx.dep_f64("first") {
                Some(v) => MetadataValue::F64(v + 1.0),
                None => MetadataValue::Unavailable,
            })
            .build(),
    );
    mgr.attach_node(reg);
    let second = mgr.subscribe(key(1, "second")).unwrap();
    assert_eq!(second.get_f64(), Some(11.0));
    state.store(4, Ordering::SeqCst);
    mgr.fire_event(EventKey::new(NodeId(1), "poke"));
    assert_eq!(second.get_f64(), Some(41.0));
}

#[test]
fn panicking_compute_functions_are_contained() {
    let (clock, mgr) = setup();
    let reg = NodeRegistry::new(NodeId(1));
    let trip = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let t2 = trip.clone();
    reg.define(
        ItemDef::on_demand("faulty")
            .compute(move |_| {
                if t2.load(Ordering::SeqCst) {
                    panic!("injected metadata fault");
                }
                MetadataValue::F64(1.0)
            })
            .build(),
    );
    reg.define(
        ItemDef::triggered("dependent")
            .dep_local("faulty")
            .compute(|ctx| ctx.dep("faulty"))
            .build(),
    );
    // A periodic item that panics on every boundary.
    let t3 = trip.clone();
    reg.define(
        ItemDef::periodic("faulty_periodic", TimeSpan(10))
            .compute(move |_| {
                if t3.load(Ordering::SeqCst) {
                    panic!("injected periodic fault");
                }
                MetadataValue::F64(2.0)
            })
            .build(),
    );
    mgr.attach_node(reg);
    let dep = mgr.subscribe(key(1, "dependent")).unwrap();
    let per = mgr.subscribe(key(1, "faulty_periodic")).unwrap();
    assert_eq!(dep.get_f64(), Some(1.0));

    // Inject the fault: accesses survive, report Unavailable, and the
    // failure counter records it.
    trip.store(true, Ordering::SeqCst);
    mgr.notify_changed(key(1, "faulty"));
    assert_eq!(dep.get(), MetadataValue::Unavailable);
    clock.advance(TimeSpan(25));
    mgr.periodic().advance_to(clock.now()); // two panicking boundaries
    assert!(mgr.stats().compute_failures >= 3);

    // Recovery: once the fault clears, values come back.
    trip.store(false, Ordering::SeqCst);
    mgr.notify_changed(key(1, "faulty"));
    assert_eq!(dep.get_f64(), Some(1.0));
    clock.advance(TimeSpan(10));
    mgr.periodic().advance_to(clock.now());
    assert_eq!(per.get_f64(), Some(2.0));
    // The framework stayed fully functional.
    drop((dep, per));
    assert_eq!(mgr.handler_count(), 0);
}

#[test]
fn push_observers_fire_on_every_stored_change() {
    let (clock, mgr) = setup();
    let reg = NodeRegistry::new(NodeId(1));
    reg.define(
        ItemDef::periodic("p", TimeSpan(10))
            .compute(|ctx| MetadataValue::U64(ctx.now().units()))
            .build(),
    );
    mgr.attach_node(reg);
    let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let s2 = seen.clone();
    let sub = mgr
        .subscribe_with(key(1, "p"), move |v| {
            s2.lock().push((v.version, v.value.clone()));
        })
        .unwrap();
    for _ in 0..3 {
        clock.advance(TimeSpan(10));
        mgr.periodic().advance_to(clock.now());
    }
    {
        let seen = seen.lock();
        // Version 1 is the inclusion-time pre-computation (t=0); the
        // registration-time snapshot delivers it so no update between
        // inclusion and observer attachment is missed. Boundaries then
        // push versions 2..4.
        assert_eq!(
            seen.len(),
            4,
            "registration snapshot + one push per boundary"
        );
        assert_eq!(seen[0], (1, MetadataValue::U64(0)));
        assert_eq!(seen[1], (2, MetadataValue::U64(10)));
        assert_eq!(seen[3], (4, MetadataValue::U64(30)));
    }
    // Dropping the subscription deregisters the observer.
    let keep_alive = mgr.subscribe(key(1, "p")).unwrap();
    drop(sub);
    clock.advance(TimeSpan(10));
    mgr.periodic().advance_to(clock.now());
    assert_eq!(seen.lock().len(), 4, "no pushes after drop");
    drop(keep_alive);
}

#[test]
fn push_observers_fire_on_trigger_propagation() {
    let (_clock, mgr) = setup();
    mgr.attach_node(chain_registry(NodeId(1)));
    let count = Arc::new(AtomicU64::new(0));
    let c2 = count.clone();
    // Observe the top of the chain; notify the bottom.
    let _sub = mgr
        .subscribe_with(key(1, "a"), move |_| {
            c2.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
    // Registration delivers the inclusion-time snapshot once.
    assert_eq!(count.load(Ordering::SeqCst), 1, "registration snapshot");
    // Redefining c is refused while included, so instead fire an event
    // chain: notify_changed on c recomputes b then a (values unchanged
    // since c is static -> no pushes).
    mgr.notify_changed(key(1, "c"));
    assert_eq!(count.load(Ordering::SeqCst), 1, "values did not change");
}

#[test]
fn concurrent_readers_see_consistent_versions() {
    let (clock, mgr) = setup();
    let reg = NodeRegistry::new(NodeId(1));
    reg.define(
        ItemDef::periodic("p", TimeSpan(1))
            .compute(|ctx| MetadataValue::U64(ctx.now().units()))
            .build(),
    );
    mgr.attach_node(reg);
    let sub = Arc::new(mgr.subscribe(key(1, "p")).unwrap());
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    std::thread::scope(|s| {
        for _ in 0..4 {
            let sub = sub.clone();
            let stop = stop.clone();
            s.spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    let v = sub.versioned();
                    // Value and version are read under one lock: a value
                    // observed with version N is the value stored at N.
                    if v.version > 0 {
                        assert!(v.value.is_available());
                    }
                }
            });
        }
        for _ in 0..500 {
            clock.advance(TimeSpan(1));
            mgr.periodic().advance_to(clock.now());
        }
        stop.store(true, Ordering::SeqCst);
    });
}
