//! End-to-end tests of the partitioned metadata plane: cross-partition
//! dependency resolution through proxy items, link teardown on
//! exclusion, partition-unreachable degradation (fresh-or-degraded
//! serving, cool-down recovery), fault-injected flaky links, and the
//! plane's catalog relations.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use streammeta_core::{
    EventKey, FaultAction, FaultPlan, FaultSchedule, ItemDef, MetadataKey, MetadataValue, NodeId,
    NodeRegistry, PartitionedMetadataPlane, SystemRelation,
};
use streammeta_time::{Clock, TimeSpan, VirtualClock};

/// A source node publishing `rate` (triggered by the `bump` event) from
/// a shared counter.
fn source_registry(node: NodeId, state: &Arc<AtomicU64>) -> Arc<NodeRegistry> {
    let reg = NodeRegistry::new(node);
    let s = state.clone();
    reg.define(
        ItemDef::triggered("rate")
            .on_event("bump")
            .compute(move |_| MetadataValue::U64(s.load(Ordering::SeqCst)))
            .build(),
    );
    reg
}

/// A dependent node whose `double` item reads the remote `rate`.
fn dependent_registry(node: NodeId, src: NodeId) -> Arc<NodeRegistry> {
    let reg = NodeRegistry::new(node);
    reg.define(
        ItemDef::triggered("double")
            .dep_remote("r", MetadataKey::new(src, "rate"))
            .compute(|ctx| match ctx.dep("r").as_u64() {
                Some(v) => MetadataValue::U64(v * 2),
                None => MetadataValue::Unavailable,
            })
            .build(),
    );
    reg
}

/// A plane, a source node and a dependent node guaranteed to live on
/// different partitions.
fn split_topology() -> (
    Arc<PartitionedMetadataPlane>,
    NodeId,
    NodeId,
    Arc<AtomicU64>,
    Arc<VirtualClock>,
) {
    let clock = VirtualClock::shared();
    let plane = PartitionedMetadataPlane::new(clock.clone(), 4);
    let src = NodeId(1);
    let dep = (2..200)
        .map(NodeId)
        .find(|n| plane.owner_of(*n) != plane.owner_of(src))
        .expect("some node lands on another partition");
    let state = Arc::new(AtomicU64::new(0));
    plane.attach_node(source_registry(src, &state));
    plane.attach_node(dependent_registry(dep, src));
    (plane, src, dep, state, clock)
}

fn bump(plane: &PartitionedMetadataPlane, src: NodeId, state: &AtomicU64, v: u64) {
    state.store(v, Ordering::SeqCst);
    plane.fire_event(EventKey::new(src, "bump"));
}

#[test]
fn remote_dependency_resolves_through_the_proxy() {
    let (plane, src, dep, state, _clock) = split_topology();
    assert_eq!(plane.remote_link_count(), 0, "nothing included yet");

    // Subscribing to the dependent transitively includes the local
    // proxy, which establishes the owner-side subscription.
    let sub = plane.subscribe(MetadataKey::new(dep, "double")).unwrap();
    assert_eq!(plane.remote_link_count(), 1);
    let home = plane.owner_of(dep);
    let owner = plane.owner_of(src);
    assert_eq!(plane.partition(home).remote_subscription_count(), 1);
    assert!(
        plane.partition(owner).handler_count() >= 1,
        "the real source item is included on its owner"
    );
    assert_eq!(sub.get(), MetadataValue::U64(0), "seeded initial value");

    // An owner-side update flows over the channel on the next pump.
    bump(&plane, src, &state, 5);
    assert_eq!(sub.get(), MetadataValue::U64(0), "not applied before pump");
    assert!(plane.pump() >= 1);
    assert_eq!(sub.get(), MetadataValue::U64(10));

    // Proxy versions are monotone across updates.
    let proxy_key = MetadataKey::new(src, "rate");
    let v1 = plane.partition(home).read_versioned(&proxy_key).unwrap();
    bump(&plane, src, &state, 6);
    plane.pump();
    let v2 = plane.partition(home).read_versioned(&proxy_key).unwrap();
    assert!(v2.version > v1.version);
    assert_eq!(sub.get(), MetadataValue::U64(12));

    // Dropping the dependent cascades: proxy excluded, link released,
    // owner-side inclusion withdrawn.
    drop(sub);
    assert_eq!(plane.remote_link_count(), 0);
    assert_eq!(plane.partition(home).remote_subscription_count(), 0);
    assert_eq!(plane.partition(home).handler_count(), 0);
    assert_eq!(plane.partition(owner).handler_count(), 0);
}

#[test]
fn dead_link_serves_fresh_or_degraded_and_recovers() {
    let (plane, src, dep, state, _clock) = split_topology();
    let sub = plane.subscribe(MetadataKey::new(dep, "double")).unwrap();
    let home = plane.owner_of(dep);
    let owner = plane.owner_of(src);
    let proxy_key = MetadataKey::new(src, "rate");

    bump(&plane, src, &state, 5);
    plane.pump();
    let healthy = plane.partition(home).read_versioned(&proxy_key).unwrap();
    assert_eq!(healthy.value, MetadataValue::U64(5));
    assert!(!healthy.degraded);

    // Partition failure: the proxy immediately degrades to its last
    // good value instead of serving nothing or lying.
    plane.kill_partition(owner);
    assert!(!plane.is_link_up(owner));
    let degraded = plane.partition(home).read_versioned(&proxy_key).unwrap();
    assert_eq!(degraded.value, MetadataValue::U64(5), "last good value");
    assert!(degraded.degraded);
    assert_eq!(sub.get(), MetadataValue::U64(10), "dependent keeps serving");

    // Owner-side updates during the outage are lost in transit; the
    // proxy stays on its degraded last-good value.
    bump(&plane, src, &state, 7);
    assert_eq!(plane.pump(), 0, "message dropped on the dead link");
    let still = plane.partition(home).read_versioned(&proxy_key).unwrap();
    assert_eq!(still.value, MetadataValue::U64(5));
    assert!(still.degraded);

    // Recovery re-seeds from the owner's current state: the missed
    // update is caught up and the degraded episode ends.
    plane.revive_partition(owner);
    let recovered = plane.partition(home).read_versioned(&proxy_key).unwrap();
    assert_eq!(recovered.value, MetadataValue::U64(7));
    assert!(!recovered.degraded);
    assert!(
        recovered.version > healthy.version,
        "monotone across outage"
    );
    assert_eq!(sub.get(), MetadataValue::U64(14));
}

#[test]
fn flaky_link_reads_stay_fresh_or_degraded_under_fault_plan() {
    let (plane, src, dep, state, _clock) = split_topology();
    let sub = plane.subscribe(MetadataKey::new(dep, "double")).unwrap();
    let home = plane.owner_of(dep);
    let proxy_key = MetadataKey::new(src, "rate");
    bump(&plane, src, &state, 1);
    plane.pump();

    // Every second proxy refresh fails: a flaky (not dead) link. The
    // PR 4 containment machinery turns each failure into degraded
    // last-good serving — never an unavailable or stale-silent read.
    let plan = FaultPlan::new().inject(
        proxy_key.clone(),
        FaultSchedule::EveryNth(2),
        FaultAction::Error,
    );
    plane.partition(home).set_fault_plan(Some(Arc::new(plan)));

    let mut last_fresh = 1u64;
    for i in 2..=12u64 {
        bump(&plane, src, &state, i);
        plane.pump();
        let v = plane.partition(home).read_versioned(&proxy_key).unwrap();
        match v.value {
            MetadataValue::U64(got) => {
                if v.degraded {
                    assert_eq!(got, last_fresh, "degraded read serves last good");
                } else {
                    assert_eq!(got, i, "fresh read serves the current value");
                    last_fresh = i;
                }
            }
            other => panic!("read must stay fresh-or-degraded, got {other:?}"),
        }
    }
    assert!(
        plane.partition(home).stale_serve_count() > 0,
        "some reads were served degraded"
    );
    drop(sub);
}

#[test]
fn plane_catalog_relations_reflect_links_and_reachability() {
    let (plane, src, dep, _state, _clock) = split_topology();
    let home = plane.owner_of(dep);
    let owner = plane.owner_of(src);

    let parts = plane.partition(0).catalog_rows(SystemRelation::Partitions);
    assert_eq!(parts.len(), 4);
    // No links before anything subscribes.
    assert!(plane
        .partition(0)
        .catalog_rows(SystemRelation::RemoteSubscriptions)
        .is_empty());

    let sub = plane.subscribe(MetadataKey::new(dep, "double")).unwrap();
    let links = plane
        .partition(home)
        .catalog_rows(SystemRelation::RemoteSubscriptions);
    assert_eq!(links.len(), 1);
    let row = &links[0];
    assert_eq!(
        row[0],
        MetadataValue::text(MetadataKey::new(src, "rate").to_string())
    );
    assert_eq!(row[1], MetadataValue::U64(home as u64));
    assert_eq!(row[2], MetadataValue::U64(owner as u64));
    assert_eq!(row[3], MetadataValue::text("up"));

    plane.kill_partition(owner);
    let links = plane
        .partition(home)
        .catalog_rows(SystemRelation::RemoteSubscriptions);
    assert_eq!(links[0][3], MetadataValue::text("down"));
    let parts = plane
        .partition(home)
        .catalog_rows(SystemRelation::Partitions);
    assert_eq!(parts[owner][4], MetadataValue::Bool(false));
    plane.revive_partition(owner);
    drop(sub);

    // A stand-alone manager serves the same relations as empty sets.
    let lone = streammeta_core::MetadataManager::new(VirtualClock::shared());
    assert!(lone.catalog_rows(SystemRelation::Partitions).is_empty());
    assert!(lone
        .catalog_rows(SystemRelation::RemoteSubscriptions)
        .is_empty());
}

#[test]
fn periodic_proxy_probes_recover_quarantined_links() {
    // Drive the failure far enough to trip the proxy's quarantine
    // breaker, then verify the cool-down probe recovers it once the
    // partition is reachable again.
    let (plane, src, dep, state, clock) = split_topology();
    let sub = plane.subscribe(MetadataKey::new(dep, "double")).unwrap();
    let home = plane.owner_of(dep);
    let owner = plane.owner_of(src);
    let proxy_key = MetadataKey::new(src, "rate");
    bump(&plane, src, &state, 3);
    plane.pump();

    plane.kill_partition(owner);
    // Failure 1 is the kill-time re-trigger; walk the retry/backoff
    // ladder (and keep re-triggering) until the breaker trips.
    for _ in 0..6 {
        clock.advance(TimeSpan(10));
        plane.tick(clock.now());
        plane.partitions()[home].fire_event(EventKey::new(src, "rate.__remote".to_string()));
    }
    assert!(
        plane.partition(home).quarantine_trip_count() >= 1,
        "repeated link failures must trip the proxy breaker"
    );
    let v = plane.partition(home).read_versioned(&proxy_key).unwrap();
    assert_eq!(v.value, MetadataValue::U64(3));
    assert!(v.degraded, "quarantined proxy serves degraded last-good");

    // Revive, then advance past the cool-down: the probe sees a live
    // cell and recovers.
    plane.revive_partition(owner);
    clock.advance(TimeSpan(200));
    plane.tick(clock.now());
    let recovered = plane.partition(home).read_versioned(&proxy_key).unwrap();
    assert!(!recovered.degraded, "cool-down probe recovered the proxy");
    assert_eq!(recovered.value, MetadataValue::U64(3));
    assert_eq!(sub.get(), MetadataValue::U64(6));
}
