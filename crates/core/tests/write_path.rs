//! Regression tests for the write-path correctness sweep: the
//! phase-1/phase-2 liveness race in trigger propagation, the
//! cross-round `last_propagation_depth` interleaving, and the
//! timestamp skew of deep-chain recomputes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use streammeta_core::{
    EventKey, ItemDef, MetadataKey, MetadataManager, MetadataValue, NodeId, NodeRegistry,
    Subscription,
};
use streammeta_time::{Clock, TimeSpan, VirtualClock};

fn setup() -> (Arc<VirtualClock>, Arc<MetadataManager>) {
    let clock = VirtualClock::shared();
    let manager = MetadataManager::new(clock.clone());
    (clock, manager)
}

fn key(node: u32, item: &str) -> MetadataKey {
    MetadataKey::new(NodeId(node), item)
}

/// Phase 1 snapshots the affected subgraph, phase 2 recomputes it
/// outside the bookkeeping lock — so a handler captured in the plan can
/// be excluded before phase 2 reaches it. Recomputing the dead handler
/// would resurrect a removed item's value; the sweep must re-check
/// liveness against the registry before each refresh.
///
/// The exclusion is driven deterministically from inside the sweep
/// itself: the upstream item's compute function drops the downstream
/// subscription, so by the time phase 2 reaches the dependent, it is
/// guaranteed to be gone.
#[test]
fn propagation_skips_handlers_excluded_after_the_snapshot() {
    let (_clock, mgr) = setup();
    let node = NodeId(1);
    let reg = NodeRegistry::new(node);
    // The slot through which `a`'s compute drops `b`'s subscription
    // mid-sweep.
    let doomed: Arc<Mutex<Option<Subscription>>> = Arc::new(Mutex::new(None));
    let a_calls = Arc::new(AtomicU64::new(0));
    let b_calls = Arc::new(AtomicU64::new(0));
    {
        let doomed = doomed.clone();
        let a_calls = a_calls.clone();
        reg.define(
            ItemDef::triggered("a")
                .on_event("evt")
                .compute(move |_| {
                    drop(doomed.lock().take());
                    MetadataValue::U64(a_calls.fetch_add(1, Ordering::SeqCst))
                })
                .build(),
        );
    }
    {
        let b_calls = b_calls.clone();
        reg.define(
            ItemDef::triggered("b")
                .dep_local("a")
                .compute(move |_| MetadataValue::U64(b_calls.fetch_add(1, Ordering::SeqCst)))
                .build(),
        );
    }
    mgr.attach_node(reg);
    // `a` is kept alive by its own subscription; `b` lives only through
    // the doomed one.
    let _sub_a = mgr.subscribe(key(1, "a")).unwrap();
    *doomed.lock() = Some(mgr.subscribe(key(1, "b")).unwrap());
    let b_computes_before = b_calls.load(Ordering::SeqCst);
    assert!(mgr.is_included(&key(1, "b")));

    // The sweep plans [a, b]; recomputing `a` drops `b`'s subscription,
    // so `b` is excluded before phase 2 reaches it.
    mgr.fire_event(EventKey::new(node, "evt"));

    assert!(!mgr.is_included(&key(1, "b")), "b was excluded mid-sweep");
    assert_eq!(
        b_calls.load(Ordering::SeqCst),
        b_computes_before,
        "the sweep must not recompute a handler excluded after the snapshot"
    );
}

/// `last_propagation_depth` is a high-water mark per observation window:
/// a later (or concurrent) shallow round must not overwrite the deeper
/// one. Previously each round plain-stored its own max depth, so the
/// gauge could report a stale shallow round over a live deep one.
#[test]
fn propagation_depth_gauge_is_monotonic_across_rounds() {
    let (_clock, mgr) = setup();
    let node = NodeId(1);
    let reg = NodeRegistry::new(node);
    // Deep chain d1 <- d2 <- d3 off one event (depth 3) and a single
    // shallow item off another (depth 1). Counter-valued computes change
    // every evaluation, so propagation never stops early.
    let mk_counter = || {
        let c = Arc::new(AtomicU64::new(0));
        move |_: &streammeta_core::EvalCtx| MetadataValue::U64(c.fetch_add(1, Ordering::SeqCst))
    };
    reg.define(
        ItemDef::triggered("d1")
            .on_event("deep")
            .compute(mk_counter())
            .build(),
    );
    reg.define(
        ItemDef::triggered("d2")
            .dep_local("d1")
            .compute(mk_counter())
            .build(),
    );
    reg.define(
        ItemDef::triggered("d3")
            .dep_local("d2")
            .compute(mk_counter())
            .build(),
    );
    reg.define(
        ItemDef::triggered("s1")
            .on_event("shallow")
            .compute(mk_counter())
            .build(),
    );
    mgr.attach_node(reg);
    let _deep = mgr.subscribe(key(1, "d3")).unwrap();
    let _shallow = mgr.subscribe(key(1, "s1")).unwrap();

    // Deterministic interleaving: a deep round followed by a shallow
    // one. Before the fix, the shallow round's store left the gauge at 1.
    mgr.fire_event(EventKey::new(node, "deep"));
    assert_eq!(mgr.last_propagation_depth(), 3);
    mgr.fire_event(EventKey::new(node, "shallow"));
    assert_eq!(
        mgr.last_propagation_depth(),
        3,
        "a shallow round must not overwrite the deeper high-water mark"
    );

    // Taking the gauge resets the observation window.
    assert_eq!(mgr.take_propagation_depth(), 3);
    assert_eq!(mgr.last_propagation_depth(), 0);
    mgr.fire_event(EventKey::new(node, "shallow"));
    assert_eq!(mgr.last_propagation_depth(), 1);

    // Two racing rounds: whatever the interleaving, the gauge ends at
    // the max of both rounds' depths.
    mgr.take_propagation_depth();
    std::thread::scope(|s| {
        let deep_mgr = &mgr;
        let shallow_mgr = &mgr;
        s.spawn(move || {
            for _ in 0..200 {
                deep_mgr.fire_event(EventKey::new(node, "deep"));
            }
        });
        s.spawn(move || {
            for _ in 0..200 {
                shallow_mgr.fire_event(EventKey::new(node, "shallow"));
            }
        });
    });
    assert_eq!(
        mgr.last_propagation_depth(),
        3,
        "racing rounds must leave the max depth, not the last store"
    );
}

/// Every refresh in a propagation sweep is stamped at its own compute
/// time. Previously the whole sweep used the single `now` captured
/// before it began, so deep-chain recomputes that finished well after
/// `now` understated `staleness()`.
#[test]
fn deep_chain_refreshes_are_stamped_at_their_own_compute_time() {
    let (clock, mgr) = setup();
    let node = NodeId(1);
    let reg = NodeRegistry::new(node);
    // Each compute takes 5 time units (the closure advances the virtual
    // clock, simulating compute cost) and changes its value every time.
    let mk_slow = |clock: Arc<VirtualClock>| {
        let c = Arc::new(AtomicU64::new(0));
        move |_: &streammeta_core::EvalCtx| {
            clock.advance(TimeSpan(5));
            MetadataValue::U64(c.fetch_add(1, Ordering::SeqCst))
        }
    };
    reg.define(
        ItemDef::triggered("t1")
            .on_event("evt")
            .compute(mk_slow(clock.clone()))
            .build(),
    );
    reg.define(
        ItemDef::triggered("t2")
            .dep_local("t1")
            .compute(mk_slow(clock.clone()))
            .build(),
    );
    reg.define(
        ItemDef::triggered("t3")
            .dep_local("t2")
            .compute(mk_slow(clock.clone()))
            .build(),
    );
    mgr.attach_node(reg);
    let _sub = mgr.subscribe(key(1, "t3")).unwrap();

    let start = clock.now();
    mgr.fire_event(EventKey::new(node, "evt"));
    let u1 = mgr.read_versioned(&key(1, "t1")).unwrap().updated_at;
    let u2 = mgr.read_versioned(&key(1, "t2")).unwrap().updated_at;
    let u3 = mgr.read_versioned(&key(1, "t3")).unwrap().updated_at;
    // t1 starts at the sweep origin; t2 and t3 start after their
    // upstream computes finished, 5 units apart each.
    assert_eq!(u1, start);
    assert_eq!(u2, start + TimeSpan(5));
    assert_eq!(u3, start + TimeSpan(10));
    assert!(
        u1 < u2 && u2 < u3,
        "deep-chain stamps must increase with depth"
    );
    // The staleness a consumer computes right after the sweep reflects
    // each item's true age, not the sweep's start instant.
    let now = clock.now();
    assert_eq!(now.since(u3), TimeSpan(5), "t3 is 5 units old, not 15");
}
