//! Behavioural tests of the epoch (batch) propagation mode: coalescing,
//! cross-epoch observer ordering, the quarantine skip inside an epoch,
//! and partial-epoch drains.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use streammeta_core::{
    EpochConfig, EventKey, FallbackPolicy, ItemDef, MetadataKey, MetadataManager, MetadataValue,
    NodeId, NodeRegistry, PropagationMode, TraceEvent,
};
use streammeta_time::{Clock, TimeSpan, VirtualClock};

fn setup() -> (Arc<VirtualClock>, Arc<MetadataManager>) {
    let clock = VirtualClock::shared();
    let manager = MetadataManager::new(clock.clone());
    (clock, manager)
}

fn key(node: u32, item: &str) -> MetadataKey {
    MetadataKey::new(NodeId(node), item)
}

/// A node with `fanout` triggered dependents of the event `tick`, each
/// republishing the shared counter state.
fn fanout_registry(node: NodeId, fanout: usize, state: &Arc<AtomicU64>) -> Arc<NodeRegistry> {
    let reg = NodeRegistry::new(node);
    for i in 0..fanout {
        let state = state.clone();
        reg.define(
            ItemDef::triggered(format!("dep{i}"))
                .on_event("tick")
                .compute(move |_| MetadataValue::U64(state.load(Ordering::SeqCst)))
                .build(),
        );
    }
    reg
}

/// K updates to one source within an epoch coalesce into one recompute
/// of each dependent — and at most one observer notification per item.
#[test]
fn coalescing_recomputes_each_dependent_once_per_epoch() {
    let (_clock, mgr) = setup();
    let node = NodeId(1);
    let state = Arc::new(AtomicU64::new(0));
    mgr.attach_node(fanout_registry(node, 3, &state));
    let subs: Vec<_> = (0..3)
        .map(|i| mgr.subscribe(key(1, &format!("dep{i}"))).unwrap())
        .collect();
    let notifications = Arc::new(AtomicU64::new(0));
    let _observer = {
        let notifications = notifications.clone();
        mgr.subscribe_with(key(1, "dep0"), move |_| {
            notifications.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap()
    };
    mgr.set_propagation_mode(PropagationMode::Epoch(EpochConfig {
        max_batch: 100,
        max_delay: TimeSpan(u64::MAX),
    }));

    let computes_before = mgr.stats().computes;
    let notified_before = notifications.load(Ordering::SeqCst);
    // Five updates of the same source: nothing recomputes until the
    // epoch flushes, and four of the five coalesce away.
    for i in 1..=5 {
        state.store(i, Ordering::SeqCst);
        mgr.fire_event(EventKey::new(node, "tick"));
    }
    assert_eq!(mgr.stats().computes, computes_before, "no sweep yet");
    assert_eq!(mgr.pending_update_count(), 1);
    assert_eq!(mgr.coalesced_update_count(), 4);

    assert_eq!(mgr.flush_epoch(), 1, "one distinct origin swept");
    assert_eq!(
        mgr.stats().computes,
        computes_before + 3,
        "each dependent recomputed exactly once for 5 source updates"
    );
    assert_eq!(
        notifications.load(Ordering::SeqCst),
        notified_before + 1,
        "one observer notification per item per epoch"
    );
    assert_eq!(mgr.epoch_count(), 1);
    assert_eq!(mgr.pending_update_count(), 0);
    for sub in &subs {
        assert_eq!(sub.get().as_u64(), Some(5), "flush sees the latest state");
    }
}

/// Observers never see epoch N+1 before epoch N: values arrive in epoch
/// order with strictly increasing versions, and the trace records the
/// flushes in sequence order.
#[test]
fn cross_epoch_ordering_is_preserved_for_observers() {
    let (_clock, mgr) = setup();
    let node = NodeId(1);
    let state = Arc::new(AtomicU64::new(0));
    mgr.attach_node(fanout_registry(node, 2, &state));
    let trace = mgr.enable_catalog_trace(4096);
    let seen: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let _observer = {
        let seen = seen.clone();
        mgr.subscribe_with(key(1, "dep0"), move |v| {
            seen.lock().push((v.version, v.value.as_u64().unwrap_or(0)));
        })
        .unwrap()
    };
    let _other = mgr.subscribe(key(1, "dep1")).unwrap();
    mgr.set_propagation_mode(PropagationMode::Epoch(EpochConfig {
        max_batch: 100,
        max_delay: TimeSpan(u64::MAX),
    }));

    for epoch_value in 1..=4u64 {
        state.store(epoch_value, Ordering::SeqCst);
        mgr.fire_event(EventKey::new(node, "tick"));
        assert_eq!(mgr.flush_epoch(), 1);
    }

    let seen = seen.lock();
    let values: Vec<u64> = seen.iter().map(|(_, v)| *v).collect();
    // First entry is the subscribe-time delivery of the initial value.
    assert_eq!(values, vec![0, 1, 2, 3, 4], "epochs delivered in order");
    assert!(
        seen.windows(2).all(|w| w[0].0 < w[1].0),
        "observer versions strictly increase across epochs"
    );
    let epochs: Vec<u64> = trace
        .snapshot()
        .into_iter()
        .filter_map(|rec| match rec.event {
            TraceEvent::EpochFlushed { epoch, .. } => Some(epoch),
            _ => None,
        })
        .collect();
    assert_eq!(epochs, vec![1, 2, 3, 4], "flushes traced in epoch order");
}

/// A quarantined item inside an epoch's plan is skipped: it keeps its
/// degraded last-good value while healthy siblings recompute.
#[test]
fn quarantined_items_are_skipped_inside_an_epoch() {
    let (_clock, mgr) = setup();
    let node = NodeId(1);
    let reg = NodeRegistry::new(node);
    let poison = Arc::new(AtomicBool::new(false));
    let state = Arc::new(AtomicU64::new(1));
    {
        let poison = poison.clone();
        let state = state.clone();
        reg.define(
            ItemDef::triggered("flaky")
                .on_event("tick")
                .fallback(FallbackPolicy {
                    max_retries: 0,
                    backoff: TimeSpan(10),
                    quarantine_after: 1,
                    cool_down: TimeSpan(1_000_000),
                })
                .compute(move |_| {
                    if poison.load(Ordering::SeqCst) {
                        panic!("intentional failure");
                    }
                    MetadataValue::U64(state.load(Ordering::SeqCst))
                })
                .build(),
        );
    }
    {
        let state = state.clone();
        reg.define(
            ItemDef::triggered("healthy")
                .on_event("tick")
                .compute(move |_| MetadataValue::U64(state.load(Ordering::SeqCst)))
                .build(),
        );
    }
    mgr.attach_node(reg);
    let flaky = mgr.subscribe(key(1, "flaky")).unwrap();
    let healthy = mgr.subscribe(key(1, "healthy")).unwrap();
    assert_eq!(flaky.get().as_u64(), Some(1), "pre-computed at inclusion");
    mgr.set_propagation_mode(PropagationMode::Epoch(EpochConfig {
        max_batch: 100,
        max_delay: TimeSpan(u64::MAX),
    }));

    // Epoch 1: the flaky compute fails once, which trips its
    // single-strike quarantine; the last good value keeps serving.
    poison.store(true, Ordering::SeqCst);
    state.store(2, Ordering::SeqCst);
    mgr.fire_event(EventKey::new(node, "tick"));
    mgr.flush_epoch();
    assert!(mgr.is_key_quarantined(&key(1, "flaky")));
    assert_eq!(flaky.versioned().value.as_u64(), Some(1));
    assert!(flaky.versioned().degraded, "stale last-good while broken");
    assert_eq!(healthy.get().as_u64(), Some(2));

    // Epoch 2: the quarantined item is skipped entirely — no compute
    // attempt, circuit stays open — while the healthy sibling updates.
    poison.store(false, Ordering::SeqCst);
    state.store(3, Ordering::SeqCst);
    let flaky_computes = mgr.handler_stats(&key(1, "flaky")).unwrap().computes;
    mgr.fire_event(EventKey::new(node, "tick"));
    mgr.flush_epoch();
    assert_eq!(
        mgr.handler_stats(&key(1, "flaky")).unwrap().computes,
        flaky_computes,
        "quarantined item not recomputed inside the epoch"
    );
    assert_eq!(flaky.versioned().value.as_u64(), Some(1));
    assert_eq!(healthy.get().as_u64(), Some(3));
}

/// The time-slice flush: a partial epoch below `max_batch` flushes once
/// its oldest pending update has aged past `max_delay`, and not before.
#[test]
fn partial_epoch_flushes_when_the_time_slice_expires() {
    let (clock, mgr) = setup();
    let node = NodeId(1);
    let state = Arc::new(AtomicU64::new(0));
    mgr.attach_node(fanout_registry(node, 2, &state));
    let _subs: Vec<_> = (0..2)
        .map(|i| mgr.subscribe(key(1, &format!("dep{i}"))).unwrap())
        .collect();
    mgr.set_propagation_mode(PropagationMode::Epoch(EpochConfig {
        max_batch: 100,
        max_delay: TimeSpan(50),
    }));

    state.store(7, Ordering::SeqCst);
    mgr.fire_event(EventKey::new(node, "tick"));
    assert_eq!(mgr.pending_update_count(), 1);
    // Not due yet: the oldest pending update is younger than max_delay.
    clock.advance(TimeSpan(49));
    assert_eq!(mgr.flush_epoch_if_due(clock.now()), 0);
    assert_eq!(mgr.pending_update_count(), 1);
    // One more unit: due.
    clock.advance(TimeSpan(1));
    assert_eq!(mgr.flush_epoch_if_due(clock.now()), 1);
    assert_eq!(mgr.pending_update_count(), 0);
    assert_eq!(mgr.read(&key(1, "dep0")).unwrap().as_u64(), Some(7));
}

/// `max_batch` distinct origins flush synchronously on the enqueueing
/// thread, without waiting for a time-slice driver.
#[test]
fn full_batch_flushes_synchronously() {
    let (_clock, mgr) = setup();
    let node = NodeId(1);
    let reg = NodeRegistry::new(node);
    let calls = Arc::new(AtomicU64::new(0));
    {
        let calls = calls.clone();
        reg.define(
            ItemDef::triggered("sink")
                .on_event("e0")
                .on_event("e1")
                .on_event("e2")
                .compute(move |_| MetadataValue::U64(calls.fetch_add(1, Ordering::SeqCst)))
                .build(),
        );
    }
    mgr.attach_node(reg);
    let _sub = mgr.subscribe(key(1, "sink")).unwrap();
    mgr.set_propagation_mode(PropagationMode::Epoch(EpochConfig {
        max_batch: 3,
        max_delay: TimeSpan(u64::MAX),
    }));

    let before = calls.load(Ordering::SeqCst);
    mgr.fire_event(EventKey::new(node, "e0"));
    mgr.fire_event(EventKey::new(node, "e1"));
    assert_eq!(calls.load(Ordering::SeqCst), before, "below max_batch");
    // The third distinct origin fills the batch: the epoch flushes here,
    // and the three origins collapse into one recompute of the sink.
    mgr.fire_event(EventKey::new(node, "e2"));
    assert_eq!(mgr.epoch_count(), 1);
    assert_eq!(mgr.pending_update_count(), 0);
    assert_eq!(
        calls.load(Ordering::SeqCst),
        before + 1,
        "union of affected subgraphs recomputed once"
    );
}

/// Switching back to per-event mode drains the partial epoch first, so
/// no queued update is lost — the shutdown-drain contract the executors
/// rely on (they call `flush_epoch()` when a run ends).
#[test]
fn leaving_epoch_mode_drains_the_partial_epoch() {
    let (_clock, mgr) = setup();
    let node = NodeId(1);
    let state = Arc::new(AtomicU64::new(0));
    mgr.attach_node(fanout_registry(node, 2, &state));
    let sub = mgr.subscribe(key(1, "dep0")).unwrap();
    let _other = mgr.subscribe(key(1, "dep1")).unwrap();
    mgr.set_propagation_mode(PropagationMode::Epoch(EpochConfig {
        max_batch: 100,
        max_delay: TimeSpan(u64::MAX),
    }));
    assert_eq!(
        mgr.propagation_mode(),
        PropagationMode::Epoch(EpochConfig {
            max_batch: 100,
            max_delay: TimeSpan(u64::MAX),
        })
    );

    state.store(9, Ordering::SeqCst);
    mgr.fire_event(EventKey::new(node, "tick"));
    assert_eq!(mgr.pending_update_count(), 1);
    assert_eq!(sub.get().as_u64(), Some(0), "still pending");

    mgr.set_propagation_mode(PropagationMode::PerEvent);
    assert_eq!(mgr.propagation_mode(), PropagationMode::PerEvent);
    assert_eq!(mgr.pending_update_count(), 0);
    assert_eq!(sub.get().as_u64(), Some(9), "partial epoch was drained");

    // Back in per-event mode, updates sweep immediately again.
    state.store(10, Ordering::SeqCst);
    mgr.fire_event(EventKey::new(node, "tick"));
    assert_eq!(sub.get().as_u64(), Some(10));
    assert_eq!(mgr.epoch_count(), 1, "per-event sweeps are not epochs");
}
