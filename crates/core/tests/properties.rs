//! Property-based tests of the metadata framework's central invariants:
//!
//! * inclusion equals the transitive dependency closure of all live
//!   subscriptions — nothing more (tailored provision), nothing less;
//! * arbitrary subscribe/unsubscribe sequences never leak handlers,
//!   reference counts, periodic tasks or monitor activations;
//! * periodic rate measurement is exact for arbitrary arrival patterns;
//! * trigger propagation updates exactly the transitive dependents.

#![allow(clippy::needless_range_loop)] // index loops mirror the maths

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use proptest::prelude::*;
use streammeta_core::{
    Counter, ItemDef, MetadataKey, MetadataManager, MetadataValue, NodeId, NodeRegistry,
    Subscription, WindowDelta,
};
use streammeta_time::{Clock, TimeSpan, VirtualClock};

/// Builds a random DAG of `n` triggered items where item `i` may depend
/// only on items `j < i` (guaranteeing acyclicity). Returns the adjacency
/// list (dependencies per item).
fn random_dag(n: usize, edges: &[(usize, usize)]) -> Vec<Vec<usize>> {
    let mut deps = vec![Vec::new(); n];
    for &(a, b) in edges {
        let (hi, lo) = (a.max(b), a.min(b));
        if hi != lo && hi < n && !deps[hi].contains(&lo) {
            deps[hi].push(lo);
        }
    }
    deps
}

fn install_dag(mgr: &Arc<MetadataManager>, deps: &[Vec<usize>]) {
    let reg = NodeRegistry::new(NodeId(0));
    for (i, ds) in deps.iter().enumerate() {
        let mut b = ItemDef::triggered(format!("i{i}"));
        for d in ds {
            b = b.dep_local(format!("i{d}"));
        }
        reg.define(b.compute(move |_| MetadataValue::U64(i as u64)).build());
    }
    mgr.attach_node(reg);
}

fn closure(deps: &[Vec<usize>], roots: &BTreeSet<usize>) -> BTreeSet<usize> {
    let mut seen = BTreeSet::new();
    let mut stack: Vec<usize> = roots.iter().copied().collect();
    while let Some(i) = stack.pop() {
        if seen.insert(i) {
            stack.extend(deps[i].iter().copied());
        }
    }
    seen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any sequence of subscribes and drops, the set of live
    /// handlers is exactly the transitive closure of the directly
    /// subscribed items.
    #[test]
    fn inclusion_is_exactly_the_dependency_closure(
        n in 1usize..12,
        edges in proptest::collection::vec((0usize..12, 0usize..12), 0..40),
        ops in proptest::collection::vec((0usize..12, prop::bool::ANY), 1..40),
    ) {
        let deps = random_dag(n, &edges);
        let clock = VirtualClock::shared();
        let mgr = MetadataManager::new(clock);
        install_dag(&mgr, &deps);

        // Live direct subscriptions, keyed by item index (latest wins).
        let mut live: BTreeMap<usize, Subscription> = BTreeMap::new();
        for (raw, subscribe) in ops {
            let i = raw % n;
            if subscribe {
                let sub = mgr
                    .subscribe(MetadataKey::new(NodeId(0), format!("i{i}")))
                    .unwrap();
                live.insert(i, sub);
            } else {
                live.remove(&i);
            }
            let roots: BTreeSet<usize> = live.keys().copied().collect();
            let expect = closure(&deps, &roots);
            let got: BTreeSet<usize> = mgr
                .included_keys()
                .into_iter()
                .map(|k| k.item.as_str()[1..].parse::<usize>().unwrap())
                .collect();
            prop_assert_eq!(&got, &expect);
        }
        drop(live);
        prop_assert_eq!(mgr.handler_count(), 0);
        prop_assert_eq!(mgr.stats().subscriptions, 0);
    }

    /// Subscribe/unsubscribe never leaves periodic tasks or active
    /// monitors behind.
    #[test]
    fn no_task_or_monitor_leaks(
        rounds in 1usize..30,
        windows in proptest::collection::vec(1u64..50, 1..6),
    ) {
        let clock = VirtualClock::shared();
        let mgr = MetadataManager::new(clock);
        let reg = NodeRegistry::new(NodeId(0));
        let mut counters = Vec::new();
        for (i, w) in windows.iter().enumerate() {
            let c = Counter::new();
            let d = Arc::new(WindowDelta::new(c.clone()));
            reg.define(
                ItemDef::periodic(format!("rate{i}"), TimeSpan(*w))
                    .counter(&c)
                    .compute(move |ctx| match d.rate_over(ctx.window().unwrap()) {
                        Some(r) => MetadataValue::F64(r),
                        None => MetadataValue::Unavailable,
                    })
                    .build(),
            );
            counters.push(c);
        }
        mgr.attach_node(reg);
        for r in 0..rounds {
            let subs: Vec<_> = (0..windows.len())
                .filter(|i| (i + r) % 2 == 0)
                .map(|i| {
                    mgr.subscribe(MetadataKey::new(NodeId(0), format!("rate{i}")))
                        .unwrap()
                })
                .collect();
            prop_assert_eq!(mgr.periodic().live_tasks(), subs.len());
            drop(subs);
            prop_assert_eq!(mgr.periodic().live_tasks(), 0);
        }
        for c in &counters {
            prop_assert!(!c.is_active());
        }
    }

    /// Periodic rate measurement over fixed windows is exact for any
    /// arrival pattern: the reported rate after each boundary equals the
    /// number of arrivals in that window divided by the window length.
    #[test]
    fn periodic_rate_is_exact_per_window(
        window in 1u64..20,
        arrivals_per_window in proptest::collection::vec(0u64..30, 1..20),
    ) {
        let clock = VirtualClock::shared();
        let mgr = MetadataManager::new(clock.clone());
        let reg = NodeRegistry::new(NodeId(0));
        let c = Counter::new();
        let d = Arc::new(WindowDelta::new(c.clone()));
        reg.define(
            ItemDef::periodic("rate", TimeSpan(window))
                .counter(&c)
                .compute(move |ctx| match d.rate_over(ctx.window().unwrap()) {
                    Some(r) => MetadataValue::F64(r),
                    None => MetadataValue::Unavailable,
                })
                .build(),
        );
        mgr.attach_node(reg);
        let sub = mgr.subscribe(MetadataKey::new(NodeId(0), "rate")).unwrap();
        for &k in &arrivals_per_window {
            c.record_n(k);
            clock.advance(TimeSpan(window));
            mgr.periodic().advance_to(clock.now());
            let got = sub.get_f64().unwrap();
            let want = k as f64 / window as f64;
            prop_assert!((got - want).abs() < 1e-12, "got {got}, want {want}");
        }
    }

    /// Firing a change at a DAG source updates exactly its transitive
    /// dependents (and every final value is consistent with its deps).
    #[test]
    fn propagation_updates_exactly_the_transitive_dependents(
        n in 2usize..10,
        edges in proptest::collection::vec((0usize..10, 0usize..10), 1..30),
        source_raw in 0usize..10,
    ) {
        let deps = random_dag(n, &edges);
        let source = source_raw % n;
        let clock = VirtualClock::shared();
        let mgr = MetadataManager::new(clock);
        // Item i computes source_value + i when it (transitively) depends
        // on the source; a changing source must update exactly those.
        let reg = NodeRegistry::new(NodeId(0));
        let source_cell = Arc::new(std::sync::atomic::AtomicU64::new(0));
        for (i, ds) in deps.iter().enumerate() {
            if i == source {
                let cell = source_cell.clone();
                let mut b = ItemDef::on_demand(format!("i{i}"));
                for d in ds {
                    b = b.dep_local(format!("i{d}"));
                }
                reg.define(
                    b.compute(move |_| {
                        MetadataValue::U64(cell.load(std::sync::atomic::Ordering::SeqCst))
                    })
                    .build(),
                );
            } else {
                let mut b = ItemDef::triggered(format!("i{i}"));
                for d in ds {
                    b = b.dep_local(format!("i{d}"));
                }
                reg.define(
                    b.compute(move |ctx| {
                        let sum: f64 = ctx
                            .roles()
                            .map(|r| r.to_owned())
                            .collect::<Vec<_>>()
                            .iter()
                            .filter_map(|r| ctx.dep_f64(r))
                            .sum();
                        MetadataValue::F64(sum + i as f64)
                    })
                    .build(),
                );
            }
        }
        mgr.attach_node(reg);
        // Subscribe to every item so all are included.
        let subs: Vec<_> = (0..n)
            .map(|i| mgr.subscribe(MetadataKey::new(NodeId(0), format!("i{i}"))).unwrap())
            .collect();
        let before: Vec<u64> = (0..n)
            .map(|i| mgr.handler_stats(&MetadataKey::new(NodeId(0), format!("i{i}"))).unwrap().updates)
            .collect();
        // Change the source and notify.
        source_cell.store(1000, std::sync::atomic::Ordering::SeqCst);
        mgr.notify_changed(MetadataKey::new(NodeId(0), format!("i{source}")));
        // Which items transitively depend on the source?
        let mut dependents = BTreeSet::new();
        loop {
            let mut grew = false;
            for i in 0..n {
                if dependents.contains(&i) || i == source {
                    continue;
                }
                if deps[i].iter().any(|d| *d == source || dependents.contains(d)) {
                    dependents.insert(i);
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        for i in 0..n {
            let after = mgr
                .handler_stats(&MetadataKey::new(NodeId(0), format!("i{i}")))
                .unwrap()
                .updates;
            if dependents.contains(&i) {
                prop_assert!(after > before[i], "item i{i} should have updated");
            } else if i != source {
                prop_assert_eq!(after, before[i], "item i{} must not update", i);
            }
        }
        drop(subs);
    }

    /// The declarative analysis flags (`stateful`, `reset_on_read`,
    /// `implied_window`) survive definition, registry lookup, and a
    /// guarded redefinition unchanged — the static analyzer's model
    /// extraction depends on this being lossless.
    #[test]
    fn declarative_flags_round_trip_through_define_and_redefine(
        combos in proptest::collection::vec(
            (prop::bool::ANY, prop::bool::ANY, proptest::option::of(1u64..500)),
            1..8,
        ),
    ) {
        let clock = VirtualClock::shared();
        let mgr = MetadataManager::new(clock);
        let reg = NodeRegistry::new(NodeId(0));
        for (i, (stateful, reset, window)) in combos.iter().enumerate() {
            let mut b = ItemDef::on_demand(format!("f{i}"));
            if *stateful {
                b = b.stateful();
            }
            if *reset {
                b = b.reset_on_read();
            }
            if let Some(w) = window {
                b = b.implied_window(TimeSpan(*w));
            }
            reg.define(b.compute(|_| MetadataValue::U64(0)).build());
        }
        mgr.attach_node(reg);
        for (i, (stateful, reset, window)) in combos.iter().enumerate() {
            let def = mgr
                .registry(NodeId(0))
                .unwrap()
                .get(&format!("f{i}").into())
                .unwrap();
            // reset_on_read and implied_window both imply statefulness.
            let expect_stateful = *stateful || *reset || window.is_some();
            prop_assert_eq!(def.is_stateful(), expect_stateful);
            prop_assert_eq!(def.resets_on_read(), *reset);
            prop_assert_eq!(def.implied_window(), window.map(TimeSpan));
        }
        // A guarded redefinition with inverted flags replaces them fully —
        // nothing from the old definition bleeds through.
        for (i, (_, reset, _)) in combos.iter().enumerate() {
            let mut b = ItemDef::on_demand(format!("f{i}"));
            if !*reset {
                b = b.reset_on_read();
            }
            mgr.redefine(NodeId(0), b.compute(|_| MetadataValue::U64(1)).build())
                .unwrap();
            let def = mgr
                .registry(NodeId(0))
                .unwrap()
                .get(&format!("f{i}").into())
                .unwrap();
            prop_assert_eq!(def.resets_on_read(), !*reset);
            prop_assert_eq!(def.is_stateful(), !*reset);
            prop_assert_eq!(def.implied_window(), None);
        }
    }
}
