//! Metadata item definitions.
//!
//! A node *defines* the metadata items it can provide; the manager
//! materialises a handler per item when a consumer subscribes. A definition
//! carries (Section 4.4.1 of the paper):
//!
//! 1. its **dependencies** — local (intra-node), remote (inter-node) or
//!    event sources, either as a fixed list or as a *dynamic* resolver
//!    (Section 4.4.3) evaluated at inclusion time;
//! 2. its **update mechanism** — static, on-demand, periodic, or triggered
//!    (Section 3.2);
//! 3. its **compute function**, which may use locally available
//!    information (monitors, state) and the values of its declared
//!    dependencies;
//! 4. optional **activation hooks** that enable/disable monitoring code.

use std::sync::Arc;

use streammeta_time::{TimeSpan, Timestamp};

use crate::monitor::{Counter, Gauge};
use crate::{EventKey, ItemPath, MetadataKey, MetadataValue, NodeId};

/// How a handler keeps its value up to date (Figure 2 / Section 3.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mechanism {
    /// Invariable metadata, computed once at inclusion.
    Static,
    /// Recomputed on every access.
    OnDemand,
    /// Recomputed at fixed time-window boundaries; the window size
    /// calibrates the freshness/overhead trade-off (Section 3.1).
    Periodic {
        /// Length of the update window.
        window: TimeSpan,
    },
    /// Recomputed when a dependency changes or an event fires; updates
    /// propagate along the inverted dependency graph (Section 3.2.3).
    Triggered,
}

impl Mechanism {
    /// Short label used in taxonomy listings.
    pub fn label(&self) -> &'static str {
        match self {
            Mechanism::Static => "static",
            Mechanism::OnDemand => "on-demand",
            Mechanism::Periodic { .. } => "periodic",
            Mechanism::Triggered => "triggered",
        }
    }

    /// Whether the item is dynamic metadata (changes at runtime).
    pub fn is_dynamic(&self) -> bool {
        !matches!(self, Mechanism::Static)
    }
}

/// Failure-containment policy of one item: bounded retry with
/// exponential backoff, then quarantine with stale serving.
///
/// While an item with a policy is failing (panic, deadline overrun, or an
/// `Unavailable` result), the manager keeps serving the last good value —
/// marked degraded, with an explicit staleness bound
/// ([`crate::VersionedValue::staleness`]) — instead of overwriting it
/// with `Unavailable`. After `quarantine_after` consecutive failures the
/// item is quarantined: evaluations stop entirely for `cool_down`, after
/// which a single probe evaluation decides between recovery and another
/// quarantine round.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FallbackPolicy {
    /// Retries scheduled per failure episode (beyond the failing
    /// evaluation itself). Zero disables retries.
    pub max_retries: u32,
    /// Delay before the first retry; doubles on each further retry.
    pub backoff: TimeSpan,
    /// Consecutive failures that trip the quarantine circuit breaker.
    pub quarantine_after: u32,
    /// How long a quarantined item rests before the recovery probe.
    pub cool_down: TimeSpan,
}

impl FallbackPolicy {
    /// A conservative default: 3 retries starting at 10 time units,
    /// quarantine after 5 consecutive failures, cool down for 1000 units.
    pub fn conservative() -> Self {
        FallbackPolicy {
            max_retries: 3,
            backoff: TimeSpan(10),
            quarantine_after: 5,
            cool_down: TimeSpan(1000),
        }
    }

    /// The delay before retry number `attempt` (0-based): `backoff`
    /// doubled `attempt` times, saturating.
    pub fn retry_delay(&self, attempt: u32) -> TimeSpan {
        TimeSpan(self.backoff.0.saturating_mul(1u64 << attempt.min(63)))
    }
}

/// Target of a declared dependency, relative to the defining node.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DepTarget {
    /// An item of the same node (intra-node dependency).
    Local(ItemPath),
    /// An item of another node (inter-node dependency).
    Remote(MetadataKey),
    /// A manually fired event of the same node.
    LocalEvent(ItemPath),
    /// A manually fired event of another node.
    RemoteEvent(EventKey),
}

impl DepTarget {
    /// Resolves the target to a concrete source given the defining node.
    pub fn resolve(&self, node: NodeId) -> DepSource {
        match self {
            DepTarget::Local(p) => DepSource::Item(MetadataKey::new(node, p.clone())),
            DepTarget::Remote(k) => DepSource::Item(k.clone()),
            DepTarget::LocalEvent(p) => DepSource::Event(EventKey::new(node, p.clone())),
            DepTarget::RemoteEvent(e) => DepSource::Event(e.clone()),
        }
    }
}

/// A concrete dependency source in the runtime dependency graph.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum DepSource {
    /// Another metadata item; its inclusion is managed automatically.
    Item(MetadataKey),
    /// A manual event notification.
    Event(EventKey),
}

/// One declared dependency: a role name (how the compute function refers
/// to the value) and a target.
#[derive(Clone, Debug)]
pub struct Dependency {
    /// Name under which [`EvalCtx::dep`] exposes the value.
    pub role: Arc<str>,
    /// Where the value comes from.
    pub target: DepTarget,
}

impl Dependency {
    /// Builds a dependency.
    pub fn new(role: impl AsRef<str>, target: DepTarget) -> Self {
        Dependency {
            role: Arc::from(role.as_ref()),
            target,
        }
    }
}

/// Context handed to dynamic dependency resolvers (Section 4.4.3).
pub struct ResolveCtx<'a> {
    pub(crate) node: NodeId,
    pub(crate) is_included: &'a dyn Fn(&MetadataKey) -> bool,
}

impl<'a> ResolveCtx<'a> {
    /// The node whose item is being included.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Whether `key` currently has a live handler. Dynamic resolvers use
    /// this to prefer an alternative that is already maintained ("if item C
    /// has already been included, but B has not, the dependency for A can
    /// be redefined such that A points to C").
    pub fn is_included(&self, key: &MetadataKey) -> bool {
        (self.is_included)(key)
    }
}

/// Dynamic dependency resolver signature (Section 4.4.3).
pub type DepResolverFn = dyn Fn(&ResolveCtx<'_>) -> Vec<Dependency> + Send + Sync;

/// The dependency declaration of an item.
#[derive(Clone)]
pub enum DepSpec {
    /// A fixed list, resolved once at inclusion time.
    Fixed(Vec<Dependency>),
    /// A resolver run at inclusion time. It must not call back into the
    /// metadata manager; it decides only from the [`ResolveCtx`].
    Dynamic {
        /// The resolver evaluated at inclusion time (Section 4.4.3).
        resolver: Arc<DepResolverFn>,
        /// The declared superset of dependencies the resolver may ever
        /// return. Static analysis treats every alternative as a
        /// potential edge (cycles that are only reachable through an
        /// alternative are still cycles); the runtime ignores this list.
        alternatives: Vec<Dependency>,
    },
}

impl std::fmt::Debug for DepSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DepSpec::Fixed(d) => f.debug_tuple("Fixed").field(d).finish(),
            DepSpec::Dynamic { alternatives, .. } => f
                .debug_struct("Dynamic")
                .field("alternatives", alternatives)
                .finish_non_exhaustive(),
        }
    }
}

/// A dependency with its resolved concrete source.
#[derive(Clone, Debug)]
pub struct ResolvedDep {
    /// Role name for [`EvalCtx::dep`].
    pub role: Arc<str>,
    /// Concrete source.
    pub source: DepSource,
}

/// Reads dependency values for a compute function. Implemented by the
/// metadata manager.
pub trait DepReader {
    /// The current value of `key`; on-demand items are computed on this
    /// access. `Unavailable` if the item has no handler.
    fn read_dep(&self, key: &MetadataKey) -> MetadataValue;
}

/// Evaluation context of a compute function.
pub struct EvalCtx<'a> {
    pub(crate) now: Timestamp,
    pub(crate) window: Option<TimeSpan>,
    pub(crate) reader: &'a dyn DepReader,
    pub(crate) deps: &'a [ResolvedDep],
}

impl<'a> EvalCtx<'a> {
    /// The evaluation instant. For periodic updates this is the exact
    /// window boundary.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// For periodic updates: the window length. Zero-length at the very
    /// first (inclusion-time) evaluation.
    pub fn window(&self) -> Option<TimeSpan> {
        self.window
    }

    /// The value of the dependency declared under `role`.
    /// `Unavailable` for unknown roles and event dependencies.
    pub fn dep(&self, role: &str) -> MetadataValue {
        for d in self.deps {
            if &*d.role == role {
                if let DepSource::Item(key) = &d.source {
                    return self.reader.read_dep(key);
                }
                return MetadataValue::Unavailable;
            }
        }
        MetadataValue::Unavailable
    }

    /// Numeric dependency value, if available and numeric.
    pub fn dep_f64(&self, role: &str) -> Option<f64> {
        self.dep(role).as_f64()
    }

    /// Time-span dependency value, if available.
    pub fn dep_span(&self, role: &str) -> Option<TimeSpan> {
        self.dep(role).as_span()
    }

    /// The roles of all resolved dependencies, in declaration order.
    pub fn roles(&self) -> impl Iterator<Item = &str> {
        self.deps.iter().map(|d| &*d.role)
    }
}

/// Compute function signature.
pub type ComputeFn = dyn Fn(&EvalCtx<'_>) -> MetadataValue + Send + Sync;
/// Activation hook signature.
pub type HookFn = dyn Fn() + Send + Sync;

/// Monitoring state that can be switched on and off by inclusion hooks.
pub trait Activatable: Send + Sync {
    /// Registers a user.
    fn activate(&self);
    /// Deregisters a user.
    fn deactivate(&self);
}

impl Activatable for Counter {
    fn activate(&self) {
        Counter::activate(self)
    }
    fn deactivate(&self) {
        Counter::deactivate(self)
    }
}

impl Activatable for Gauge {
    fn activate(&self) {
        Gauge::activate(self)
    }
    fn deactivate(&self) {
        Gauge::deactivate(self)
    }
}

/// A complete metadata item definition.
#[derive(Clone)]
pub struct ItemDef {
    pub(crate) path: ItemPath,
    pub(crate) mechanism: Mechanism,
    pub(crate) deps: DepSpec,
    pub(crate) compute: Arc<ComputeFn>,
    pub(crate) monitors: Vec<Arc<dyn Activatable>>,
    pub(crate) on_include: Option<Arc<HookFn>>,
    pub(crate) on_exclude: Option<Arc<HookFn>>,
    pub(crate) doc: Option<Arc<str>>,
    /// The compute function carries state across evaluations (a running
    /// aggregate, a counter delta). Declarative only: the runtime treats
    /// stateful and stateless computes identically, but static analysis
    /// uses the flag to find sampling anomalies (paper Figure 5).
    pub(crate) stateful: bool,
    /// Every evaluation resets the underlying measurement (an interval
    /// rate that restarts its window on access). Declarative only; flags
    /// the shared-consumer interference of the paper's Figure 4.
    pub(crate) reset_on_read: bool,
    /// For stateful aggregates: the sampling interval the aggregate was
    /// designed for (how often its consumer is expected to access it).
    /// Compared against dependency update periods by static analysis.
    pub(crate) implied_window: Option<TimeSpan>,
    /// Per-evaluation compute budget. An evaluation that takes longer
    /// counts as a deadline overrun: with a fallback policy it is treated
    /// as a failure (its result is discarded); without one it is only
    /// counted and traced — static analysis flags that combination.
    pub(crate) deadline: Option<TimeSpan>,
    /// Failure-containment policy (retry, backoff, quarantine). `None`
    /// keeps the pre-containment behaviour: failures store `Unavailable`.
    pub(crate) fallback: Option<FallbackPolicy>,
}

impl std::fmt::Debug for ItemDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ItemDef")
            .field("path", &self.path)
            .field("mechanism", &self.mechanism)
            .field("deps", &self.deps)
            .finish_non_exhaustive()
    }
}

impl ItemDef {
    /// A static item holding `value`.
    pub fn static_value(path: impl Into<ItemPath>, value: impl Into<MetadataValue>) -> ItemDef {
        let v = value.into();
        ItemDefBuilder::new(path.into(), Mechanism::Static)
            .compute(move |_| v.clone())
            .build()
    }

    /// Builder for an on-demand item.
    pub fn on_demand(path: impl Into<ItemPath>) -> ItemDefBuilder {
        ItemDefBuilder::new(path.into(), Mechanism::OnDemand)
    }

    /// Builder for a periodic item updated every `window`.
    pub fn periodic(path: impl Into<ItemPath>, window: TimeSpan) -> ItemDefBuilder {
        assert!(!window.is_zero(), "periodic item with zero window");
        ItemDefBuilder::new(path.into(), Mechanism::Periodic { window })
    }

    /// Builder for a triggered item.
    pub fn triggered(path: impl Into<ItemPath>) -> ItemDefBuilder {
        ItemDefBuilder::new(path.into(), Mechanism::Triggered)
    }

    /// The item's path.
    pub fn path(&self) -> &ItemPath {
        &self.path
    }

    /// The item's update mechanism.
    pub fn mechanism(&self) -> Mechanism {
        self.mechanism
    }

    /// The item's documentation string, if any.
    pub fn doc(&self) -> Option<&str> {
        self.doc.as_deref()
    }

    /// The item's dependency declaration.
    pub fn deps(&self) -> &DepSpec {
        &self.deps
    }

    /// Whether the compute function carries state across evaluations.
    pub fn is_stateful(&self) -> bool {
        self.stateful
    }

    /// Whether an evaluation resets the underlying measurement.
    pub fn resets_on_read(&self) -> bool {
        self.reset_on_read
    }

    /// The declared sampling interval of a stateful aggregate, if any.
    pub fn implied_window(&self) -> Option<TimeSpan> {
        self.implied_window
    }

    /// The per-evaluation compute budget, if any.
    pub fn deadline(&self) -> Option<TimeSpan> {
        self.deadline
    }

    /// The failure-containment policy, if any.
    pub fn fallback(&self) -> Option<FallbackPolicy> {
        self.fallback
    }

    /// Every dependency static analysis should consider when the item is
    /// defined at `node`, paired with whether the edge is *certain*
    /// (declared fixed) or an *alternative* (a dynamic resolver may or
    /// may not pick it at inclusion time).
    ///
    /// Fixed declarations are returned as-is. For dynamic resolvers the
    /// set is the union of the declared alternatives and the resolutions
    /// under the two extreme inclusion states (nothing included /
    /// everything included) — resolvers are pure functions of the
    /// [`ResolveCtx`], so probing them executes no compute function.
    pub fn analysis_deps(&self, node: NodeId) -> Vec<(Dependency, bool)> {
        match &self.deps {
            DepSpec::Fixed(d) => d.iter().map(|d| (d.clone(), true)).collect(),
            DepSpec::Dynamic {
                resolver,
                alternatives,
            } => {
                let mut out: Vec<(Dependency, bool)> = Vec::new();
                let mut push = |d: Dependency| {
                    if !out
                        .iter()
                        .any(|(e, _)| e.role == d.role && e.target == d.target)
                    {
                        out.push((d, false));
                    }
                };
                for d in alternatives {
                    push(d.clone());
                }
                for probe in [false, true] {
                    let ctx = ResolveCtx {
                        node,
                        is_included: &|_| probe,
                    };
                    for d in resolver(&ctx) {
                        push(d);
                    }
                }
                out
            }
        }
    }

    /// Resolves the declared dependencies for inclusion at `node`.
    pub(crate) fn resolve_deps(
        &self,
        node: NodeId,
        is_included: &dyn Fn(&MetadataKey) -> bool,
    ) -> Vec<ResolvedDep> {
        let deps = match &self.deps {
            DepSpec::Fixed(d) => d.clone(),
            DepSpec::Dynamic { resolver, .. } => resolver(&ResolveCtx { node, is_included }),
        };
        deps.into_iter()
            .map(|d| ResolvedDep {
                role: d.role,
                source: d.target.resolve(node),
            })
            .collect()
    }

    /// Returns a copy with a different path (used when installing shared
    /// item specs under module scopes).
    pub fn with_path(mut self, path: impl Into<ItemPath>) -> ItemDef {
        self.path = path.into();
        self
    }
}

/// Fluent builder for [`ItemDef`].
pub struct ItemDefBuilder {
    def: ItemDef,
}

impl ItemDefBuilder {
    fn new(path: ItemPath, mechanism: Mechanism) -> Self {
        ItemDefBuilder {
            def: ItemDef {
                path,
                mechanism,
                deps: DepSpec::Fixed(Vec::new()),
                compute: Arc::new(|_| MetadataValue::Unavailable),
                monitors: Vec::new(),
                on_include: None,
                on_exclude: None,
                doc: None,
                stateful: false,
                reset_on_read: false,
                implied_window: None,
                deadline: None,
                fallback: None,
            },
        }
    }

    /// Declares a dependency with an explicit role and target.
    pub fn dep(mut self, role: impl AsRef<str>, target: DepTarget) -> Self {
        match &mut self.def.deps {
            DepSpec::Fixed(v) => v.push(Dependency::new(role, target)),
            DepSpec::Dynamic { .. } => {
                panic!("cannot mix fixed dependencies with a dynamic resolver")
            }
        }
        self
    }

    /// Declares an intra-node dependency; the role equals the path.
    pub fn dep_local(self, path: impl Into<ItemPath>) -> Self {
        let p = path.into();
        let role = p.as_str().to_owned();
        self.dep(role, DepTarget::Local(p))
    }

    /// Declares an inter-node dependency under `role`.
    pub fn dep_remote(self, role: impl AsRef<str>, key: MetadataKey) -> Self {
        self.dep(role, DepTarget::Remote(key))
    }

    /// Declares a local event trigger.
    pub fn on_event(self, name: impl Into<ItemPath>) -> Self {
        let n = name.into();
        let role = format!("event:{n}");
        self.dep(role, DepTarget::LocalEvent(n))
    }

    /// Declares a remote event trigger.
    pub fn on_remote_event(self, event: EventKey) -> Self {
        let role = format!("event:{event}");
        self.dep(role, DepTarget::RemoteEvent(event))
    }

    /// Replaces the dependency declaration with a dynamic resolver
    /// (Section 4.4.3). Any previously declared fixed dependencies are
    /// discarded.
    pub fn dynamic_deps(
        mut self,
        f: impl Fn(&ResolveCtx<'_>) -> Vec<Dependency> + Send + Sync + 'static,
    ) -> Self {
        self.def.deps = DepSpec::Dynamic {
            resolver: Arc::new(f),
            alternatives: Vec::new(),
        };
        self
    }

    /// Like [`Self::dynamic_deps`], with the declared superset of
    /// dependencies the resolver may return. Static analysis considers
    /// every alternative a potential edge; the runtime only uses the
    /// resolver.
    pub fn dynamic_deps_with_alternatives(
        mut self,
        f: impl Fn(&ResolveCtx<'_>) -> Vec<Dependency> + Send + Sync + 'static,
        alternatives: Vec<Dependency>,
    ) -> Self {
        self.def.deps = DepSpec::Dynamic {
            resolver: Arc::new(f),
            alternatives,
        };
        self
    }

    /// Declares the compute function stateful (a running aggregate or
    /// delta that carries state across evaluations). Purely declarative:
    /// static analysis uses it to find sampling anomalies (Figure 5).
    pub fn stateful(mut self) -> Self {
        self.def.stateful = true;
        self
    }

    /// Declares that every evaluation resets the underlying measurement
    /// (reset-on-access interval rates). Purely declarative: static
    /// analysis uses it to find shared-consumer interference (Figure 4).
    pub fn reset_on_read(mut self) -> Self {
        self.def.reset_on_read = true;
        self.def.stateful = true;
        self
    }

    /// Declares the sampling interval a stateful aggregate was designed
    /// for. Implies [`Self::stateful`].
    pub fn implied_window(mut self, window: TimeSpan) -> Self {
        self.def.implied_window = Some(window);
        self.def.stateful = true;
        self
    }

    /// Sets a per-evaluation compute budget. Pair it with
    /// [`Self::fallback`]: a deadline without a fallback policy is
    /// observation-only (overruns are counted and traced, late results
    /// still stored) and static analysis warns about it.
    pub fn deadline(mut self, budget: TimeSpan) -> Self {
        assert!(!budget.is_zero(), "zero compute deadline");
        self.def.deadline = Some(budget);
        self
    }

    /// Sets the failure-containment policy (see [`FallbackPolicy`]).
    pub fn fallback(mut self, policy: FallbackPolicy) -> Self {
        self.def.fallback = Some(policy);
        self
    }

    /// Sets the compute function.
    pub fn compute(
        mut self,
        f: impl Fn(&EvalCtx<'_>) -> MetadataValue + Send + Sync + 'static,
    ) -> Self {
        self.def.compute = Arc::new(f);
        self
    }

    /// Attaches a monitor activated while the item is included.
    pub fn monitor(mut self, m: Arc<dyn Activatable>) -> Self {
        self.def.monitors.push(m);
        self
    }

    /// Attaches a counter monitor (convenience over [`Self::monitor`]).
    pub fn counter(self, c: &Arc<Counter>) -> Self {
        self.monitor(c.clone() as Arc<dyn Activatable>)
    }

    /// Sets a hook run when the item is first included.
    pub fn on_include(mut self, f: impl Fn() + Send + Sync + 'static) -> Self {
        self.def.on_include = Some(Arc::new(f));
        self
    }

    /// Sets a hook run when the item's last subscription is cancelled.
    pub fn on_exclude(mut self, f: impl Fn() + Send + Sync + 'static) -> Self {
        self.def.on_exclude = Some(Arc::new(f));
        self
    }

    /// Sets a documentation string shown by discovery.
    pub fn doc(mut self, s: impl AsRef<str>) -> Self {
        self.def.doc = Some(Arc::from(s.as_ref()));
        self
    }

    /// Finishes the definition.
    pub fn build(self) -> ItemDef {
        self.def
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NoDeps;
    impl DepReader for NoDeps {
        fn read_dep(&self, _k: &MetadataKey) -> MetadataValue {
            MetadataValue::Unavailable
        }
    }

    struct ConstReader(f64);
    impl DepReader for ConstReader {
        fn read_dep(&self, _k: &MetadataKey) -> MetadataValue {
            MetadataValue::F64(self.0)
        }
    }

    #[test]
    fn static_item_computes_constant() {
        let def = ItemDef::static_value("schema", "int,int");
        assert_eq!(def.mechanism(), Mechanism::Static);
        assert!(!def.mechanism().is_dynamic());
        let ctx = EvalCtx {
            now: Timestamp(0),
            window: None,
            reader: &NoDeps,
            deps: &[],
        };
        assert_eq!((def.compute)(&ctx), MetadataValue::text("int,int"));
    }

    #[test]
    fn mechanism_labels() {
        assert_eq!(Mechanism::Static.label(), "static");
        assert_eq!(Mechanism::OnDemand.label(), "on-demand");
        assert_eq!(
            Mechanism::Periodic {
                window: TimeSpan(5)
            }
            .label(),
            "periodic"
        );
        assert_eq!(Mechanism::Triggered.label(), "triggered");
        assert!(Mechanism::Triggered.is_dynamic());
    }

    #[test]
    fn dep_targets_resolve_relative_to_node() {
        let n = NodeId(7);
        assert_eq!(
            DepTarget::Local(ItemPath::new("input_rate")).resolve(n),
            DepSource::Item(MetadataKey::new(n, "input_rate"))
        );
        let remote = MetadataKey::new(NodeId(2), "output_rate");
        assert_eq!(
            DepTarget::Remote(remote.clone()).resolve(n),
            DepSource::Item(remote)
        );
        assert_eq!(
            DepTarget::LocalEvent(ItemPath::new("resized")).resolve(n),
            DepSource::Event(EventKey::new(n, "resized"))
        );
    }

    #[test]
    fn eval_ctx_reads_roles() {
        let deps = vec![
            ResolvedDep {
                role: Arc::from("rate"),
                source: DepSource::Item(MetadataKey::new(NodeId(1), "output_rate")),
            },
            ResolvedDep {
                role: Arc::from("event:x"),
                source: DepSource::Event(EventKey::new(NodeId(1), "x")),
            },
        ];
        let ctx = EvalCtx {
            now: Timestamp(10),
            window: Some(TimeSpan(5)),
            reader: &ConstReader(2.5),
            deps: &deps,
        };
        assert_eq!(ctx.dep_f64("rate"), Some(2.5));
        assert_eq!(ctx.dep("event:x"), MetadataValue::Unavailable);
        assert_eq!(ctx.dep("missing"), MetadataValue::Unavailable);
        assert_eq!(ctx.roles().collect::<Vec<_>>(), vec!["rate", "event:x"]);
        assert_eq!(ctx.now(), Timestamp(10));
        assert_eq!(ctx.window(), Some(TimeSpan(5)));
    }

    #[test]
    fn builder_collects_fixed_deps() {
        let def = ItemDef::triggered("io_ratio")
            .dep_local("input_rate")
            .dep_local("output_rate")
            .compute(
                |ctx| match (ctx.dep_f64("input_rate"), ctx.dep_f64("output_rate")) {
                    (Some(i), Some(o)) if o != 0.0 => MetadataValue::F64(i / o),
                    _ => MetadataValue::Unavailable,
                },
            )
            .doc("input/output ratio")
            .build();
        let resolved = def.resolve_deps(NodeId(3), &|_| false);
        assert_eq!(resolved.len(), 2);
        assert_eq!(&*resolved[0].role, "input_rate");
        assert_eq!(def.doc(), Some("input/output ratio"));
    }

    #[test]
    fn dynamic_resolver_sees_inclusion_state() {
        let b = MetadataKey::new(NodeId(1), "b");
        let c = MetadataKey::new(NodeId(1), "c");
        let (b2, c2) = (b.clone(), c.clone());
        let def = ItemDef::triggered("a")
            .dynamic_deps(move |ctx| {
                // Prefer the already-included alternative (Section 4.4.3).
                let pick = if ctx.is_included(&c2) { &c2 } else { &b2 };
                vec![Dependency::new("src", DepTarget::Remote(pick.clone()))]
            })
            .compute(|ctx| ctx.dep("src"))
            .build();
        let included = c.clone();
        let resolved = def.resolve_deps(NodeId(1), &|k| *k == included);
        assert_eq!(resolved[0].source, DepSource::Item(c));
        let resolved = def.resolve_deps(NodeId(1), &|_| false);
        assert_eq!(resolved[0].source, DepSource::Item(b));
    }

    #[test]
    #[should_panic(expected = "cannot mix")]
    fn mixing_fixed_and_dynamic_panics() {
        let _ = ItemDef::triggered("a")
            .dynamic_deps(|_| Vec::new())
            .dep_local("b");
    }

    #[test]
    #[should_panic(expected = "zero window")]
    fn periodic_zero_window_rejected() {
        ItemDef::periodic("rate", TimeSpan::ZERO);
    }

    #[test]
    fn with_path_rewrites_path() {
        let def = ItemDef::static_value("size", 4u64).with_path("state.size");
        assert_eq!(def.path().as_str(), "state.size");
    }

    #[test]
    fn declarative_flags_default_off_and_round_trip() {
        let plain = ItemDef::on_demand("x").build();
        assert!(!plain.is_stateful());
        assert!(!plain.resets_on_read());
        assert_eq!(plain.implied_window(), None);

        let flagged = ItemDef::on_demand("rate_naive")
            .reset_on_read()
            .implied_window(TimeSpan(50))
            .build();
        assert!(flagged.is_stateful(), "reset_on_read implies stateful");
        assert!(flagged.resets_on_read());
        assert_eq!(flagged.implied_window(), Some(TimeSpan(50)));
        // Flags survive path rewriting (module scoping).
        let scoped = flagged.with_path("probe.rate_naive");
        assert!(scoped.resets_on_read());
    }

    #[test]
    fn containment_knobs_round_trip_and_backoff_doubles() {
        let plain = ItemDef::on_demand("x").build();
        assert_eq!(plain.deadline(), None);
        assert_eq!(plain.fallback(), None);

        let policy = FallbackPolicy {
            max_retries: 2,
            backoff: TimeSpan(3),
            quarantine_after: 4,
            cool_down: TimeSpan(100),
        };
        let def = ItemDef::periodic("rate", TimeSpan(10))
            .deadline(TimeSpan(5))
            .fallback(policy)
            .build();
        assert_eq!(def.deadline(), Some(TimeSpan(5)));
        assert_eq!(def.fallback(), Some(policy));
        // Containment knobs survive path rewriting (module scoping).
        let scoped = def.with_path("probe.rate");
        assert_eq!(scoped.deadline(), Some(TimeSpan(5)));

        assert_eq!(policy.retry_delay(0), TimeSpan(3));
        assert_eq!(policy.retry_delay(1), TimeSpan(6));
        assert_eq!(policy.retry_delay(2), TimeSpan(12));
        // Saturates instead of overflowing for absurd attempts.
        assert_eq!(policy.retry_delay(80), TimeSpan(u64::MAX));
    }

    #[test]
    #[should_panic(expected = "zero compute deadline")]
    fn zero_deadline_rejected() {
        let _ = ItemDef::on_demand("x").deadline(TimeSpan::ZERO);
    }

    #[test]
    fn analysis_deps_of_fixed_items_are_certain() {
        let def = ItemDef::triggered("a")
            .dep_local("b")
            .dep_local("c")
            .build();
        let deps = def.analysis_deps(NodeId(1));
        assert_eq!(deps.len(), 2);
        assert!(deps.iter().all(|(_, certain)| *certain));
    }

    #[test]
    fn analysis_deps_union_alternatives_and_probes() {
        let b = MetadataKey::new(NodeId(1), "b");
        let c = MetadataKey::new(NodeId(1), "c");
        let d = MetadataKey::new(NodeId(1), "d");
        let (b2, c2) = (b.clone(), c.clone());
        let def = ItemDef::triggered("a")
            .dynamic_deps_with_alternatives(
                move |ctx| {
                    let pick = if ctx.is_included(&c2) { &c2 } else { &b2 };
                    vec![Dependency::new("src", DepTarget::Remote(pick.clone()))]
                },
                // Declared alternative never returned by the probes.
                vec![Dependency::new("extra", DepTarget::Remote(d.clone()))],
            )
            .compute(|ctx| ctx.dep("src"))
            .build();
        let deps = def.analysis_deps(NodeId(1));
        let targets: Vec<_> = deps.iter().map(|(dep, _)| dep.target.clone()).collect();
        assert!(targets.contains(&DepTarget::Remote(b)), "empty-graph probe");
        assert!(targets.contains(&DepTarget::Remote(c)), "full-graph probe");
        assert!(
            targets.contains(&DepTarget::Remote(d)),
            "declared alternative"
        );
        assert!(deps.iter().all(|(_, certain)| !*certain));
    }
}
