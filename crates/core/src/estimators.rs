//! Statistical helpers used by metadata compute functions.
//!
//! These little estimators embody the measurement styles discussed in
//! Section 3 of the paper:
//!
//! * [`WindowDelta`] — counts per fixed time window, the building block of
//!   *periodic* rate handlers (Figure 4's correct solution).
//! * [`IntervalRate`] — the *naive on-demand* rate measurement that resets
//!   its counter on every access; it exists to reproduce the Figure 4
//!   anomaly and to demonstrate why the periodic mechanism is needed.
//! * [`OnlineAverage`], [`OnlineVariance`], [`Ewma`] — online aggregates
//!   for intra-node dependencies ("the average or variance of the join
//!   selectivity", Section 2.3).

use std::sync::Arc;

use parking_lot::Mutex;
use streammeta_time::{TimeSpan, Timestamp};

use crate::monitor::Counter;

/// Per-window delta of a shared [`Counter`].
///
/// `take_delta` returns how many events were recorded since the previous
/// call; periodic handlers call it exactly once per window boundary, so
/// `delta / window` is the exact rate over the window.
#[derive(Debug)]
pub struct WindowDelta {
    counter: Arc<Counter>,
    last: Mutex<u64>,
}

impl WindowDelta {
    /// Tracks deltas of `counter`, starting from its current value.
    pub fn new(counter: Arc<Counter>) -> Self {
        let last = Mutex::new(counter.value());
        WindowDelta { counter, last }
    }

    /// Events recorded since the previous call.
    pub fn take_delta(&self) -> u64 {
        let now = self.counter.value();
        let mut last = self.last.lock();
        let delta = now.saturating_sub(*last);
        *last = now;
        delta
    }

    /// Rate over a window of length `window`: `delta / window`.
    /// `None` for an empty window (before the first boundary).
    pub fn rate_over(&self, window: TimeSpan) -> Option<f64> {
        if window.is_zero() {
            // Consume the delta anyway so the first real window starts clean.
            self.take_delta();
            return None;
        }
        Some(self.take_delta() as f64 / window.as_f64())
    }
}

/// The naive reset-on-access rate measurement of Section 3.1.
///
/// Every sample computes `events since last sample / time since last
/// sample` and resets both. When two consumers share the item, their
/// accesses interfere — exactly the anomaly of Figure 4.
#[derive(Debug)]
pub struct IntervalRate {
    counter: Arc<Counter>,
    last: Mutex<(u64, Timestamp)>,
}

impl IntervalRate {
    /// Tracks `counter` starting at `origin`.
    pub fn new(counter: Arc<Counter>, origin: Timestamp) -> Self {
        let last = Mutex::new((counter.value(), origin));
        IntervalRate { counter, last }
    }

    /// Samples the rate at `now`, resetting the measurement interval.
    /// A zero-length interval reports rate 0 (the paper: "the value
    /// returned to the second consumer will often be zero").
    pub fn sample(&self, now: Timestamp) -> f64 {
        let count = self.counter.value();
        let mut last = self.last.lock();
        let (last_count, last_time) = *last;
        *last = (count, now);
        let elapsed = now.since(last_time);
        if elapsed.is_zero() {
            return 0.0;
        }
        count.saturating_sub(last_count) as f64 / elapsed.as_f64()
    }
}

/// Running arithmetic mean.
#[derive(Debug, Default)]
pub struct OnlineAverage {
    state: Mutex<(u64, f64)>, // (count, sum)
}

impl OnlineAverage {
    /// An empty average.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    pub fn observe(&self, x: f64) {
        let mut s = self.state.lock();
        s.0 += 1;
        s.1 += x;
    }

    /// The mean of all observations, `None` before the first.
    pub fn mean(&self) -> Option<f64> {
        let s = self.state.lock();
        (s.0 > 0).then(|| s.1 / s.0 as f64)
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.state.lock().0
    }

    /// Forgets all observations.
    pub fn reset(&self) {
        *self.state.lock() = (0, 0.0);
    }
}

/// Running variance (Welford's algorithm).
#[derive(Debug, Default)]
pub struct OnlineVariance {
    state: Mutex<(u64, f64, f64)>, // (count, mean, m2)
}

impl OnlineVariance {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    pub fn observe(&self, x: f64) {
        let mut s = self.state.lock();
        s.0 += 1;
        let delta = x - s.1;
        s.1 += delta / s.0 as f64;
        let delta2 = x - s.1;
        s.2 += delta * delta2;
    }

    /// The population variance, `None` before the first observation.
    pub fn variance(&self) -> Option<f64> {
        let s = self.state.lock();
        (s.0 > 0).then(|| s.2 / s.0 as f64)
    }

    /// The running mean, `None` before the first observation.
    pub fn mean(&self) -> Option<f64> {
        let s = self.state.lock();
        (s.0 > 0).then(|| s.1)
    }
}

/// Exponentially weighted moving average.
#[derive(Debug)]
pub struct Ewma {
    alpha: f64,
    state: Mutex<Option<f64>>,
}

impl Ewma {
    /// Smoothing factor `alpha` in `(0, 1]`: weight of the newest
    /// observation.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "EWMA alpha must be in (0,1]");
        Ewma {
            alpha,
            state: Mutex::new(None),
        }
    }

    /// Adds an observation.
    pub fn observe(&self, x: f64) {
        let mut s = self.state.lock();
        *s = Some(match *s {
            None => x,
            Some(prev) => prev + self.alpha * (x - prev),
        });
    }

    /// The smoothed value, `None` before the first observation.
    pub fn value(&self) -> Option<f64> {
        *self.state.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_delta_counts_per_window() {
        let c = Counter::always_on();
        let d = WindowDelta::new(c.clone());
        c.record_n(5);
        assert_eq!(d.take_delta(), 5);
        assert_eq!(d.take_delta(), 0);
        c.record_n(3);
        assert_eq!(d.rate_over(TimeSpan(30)), Some(0.1));
    }

    #[test]
    fn window_delta_zero_window_consumes() {
        let c = Counter::always_on();
        let d = WindowDelta::new(c.clone());
        c.record_n(4);
        assert_eq!(d.rate_over(TimeSpan::ZERO), None);
        // The pending events were consumed; the next window starts clean.
        assert_eq!(d.take_delta(), 0);
    }

    #[test]
    fn interval_rate_measures_since_last_access() {
        let c = Counter::always_on();
        let r = IntervalRate::new(c.clone(), Timestamp(0));
        c.record_n(5);
        assert_eq!(r.sample(Timestamp(50)), 0.1);
        // Immediately re-sampling sees nothing: the Figure 4 anomaly.
        assert_eq!(r.sample(Timestamp(50)), 0.0);
        c.record_n(1);
        assert_eq!(r.sample(Timestamp(60)), 0.1);
    }

    #[test]
    fn online_average() {
        let a = OnlineAverage::new();
        assert_eq!(a.mean(), None);
        a.observe(1.0);
        a.observe(3.0);
        assert_eq!(a.mean(), Some(2.0));
        assert_eq!(a.count(), 2);
        a.reset();
        assert_eq!(a.mean(), None);
    }

    #[test]
    fn online_variance_matches_direct_formula() {
        let v = OnlineVariance::new();
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        for x in xs {
            v.observe(x);
        }
        assert!((v.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((v.variance().unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn ewma_converges_towards_constant() {
        let e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        for _ in 0..50 {
            e.observe(10.0);
        }
        assert!((e.value().unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        Ewma::new(0.0);
    }
}
