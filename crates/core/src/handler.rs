//! Metadata handlers.
//!
//! "An incoming subscription causes the system to create and return a
//! so-called metadata handler. There is a 1-to-1 relationship between
//! metadata items and metadata handlers." (Section 2.1)
//!
//! The handler is the proxy that (i) synchronizes the possibly concurrent
//! access of multiple consumers and (ii) guarantees a consistent view on a
//! metadata item during updates. Handlers are created on first subscription,
//! shared by reference count, and removed when the count reaches zero.

use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::sync::{LockTier, TieredMutex, TieredRwLock};
use streammeta_time::{TaskId, Timestamp};

use crate::histogram::HistogramMonitor;
use crate::item::{ItemDef, Mechanism, ResolvedDep};
use crate::trace::SpanContext;
use crate::{MetadataKey, MetadataValue, VersionedValue};

/// Domain of the compute-latency histogram: [0, ~1.05 ms) in 256 buckets
/// of 4096 ns; slower computes land in the overflow bucket and saturate
/// the percentile estimate at the upper edge.
const LATENCY_HI_NS: i64 = 1 << 20;
const LATENCY_BUCKETS: usize = 256;

/// Push observer signature: called with each stored value change.
pub type ObserverFn = dyn Fn(&VersionedValue) + Send + Sync;

/// Span-aware push observer (crate-internal): called with each stored
/// value change plus the causal span of the store, if the store was
/// sampled. The partitioned plane uses this to carry lineage across
/// partition boundaries.
pub(crate) type SpanObserverFn = dyn Fn(&VersionedValue, Option<&SpanContext>) + Send + Sync;

/// Lock-free snapshot cell for scalar values (seqlock over atomics).
///
/// Every word is individually atomic, so readers never observe a torn
/// word; the sequence check rejects snapshots that mixed two
/// generations. Writers are serialized by the handler's value write
/// lock, which they hold while publishing. Values that do not fit in a
/// word (`Text`, `Histogram`) park the cell in the `TAG_UNCACHED`
/// state and readers fall back to the value lock.
struct ScalarCell {
    /// Even = stable, odd = write in progress.
    seq: AtomicU64,
    tag: AtomicU64,
    bits: AtomicU64,
    version: AtomicU64,
    updated_at: AtomicU64,
    /// 0 = healthy, 1 = serving last good value (degraded).
    degraded: AtomicU64,
}

const TAG_UNAVAILABLE: u64 = 0;
const TAG_F64: u64 = 1;
const TAG_I64: u64 = 2;
const TAG_U64: u64 = 3;
const TAG_BOOL: u64 = 4;
const TAG_SPAN: u64 = 5;
const TAG_TIME: u64 = 6;
const TAG_UNCACHED: u64 = 7;

fn pack_value(value: &MetadataValue) -> Option<(u64, u64)> {
    Some(match value {
        MetadataValue::Unavailable => (TAG_UNAVAILABLE, 0),
        MetadataValue::F64(v) => (TAG_F64, v.to_bits()),
        MetadataValue::I64(v) => (TAG_I64, *v as u64),
        MetadataValue::U64(v) => (TAG_U64, *v),
        MetadataValue::Bool(v) => (TAG_BOOL, *v as u64),
        MetadataValue::Span(s) => (TAG_SPAN, s.0),
        MetadataValue::Time(t) => (TAG_TIME, t.0),
        MetadataValue::Text(_) | MetadataValue::Histogram(_) => return None,
    })
}

fn unpack_value(tag: u64, bits: u64) -> MetadataValue {
    match tag {
        TAG_F64 => MetadataValue::F64(f64::from_bits(bits)),
        TAG_I64 => MetadataValue::I64(bits as i64),
        TAG_U64 => MetadataValue::U64(bits),
        TAG_BOOL => MetadataValue::Bool(bits != 0),
        TAG_SPAN => MetadataValue::Span(streammeta_time::TimeSpan(bits)),
        TAG_TIME => MetadataValue::Time(Timestamp(bits)),
        _ => MetadataValue::Unavailable,
    }
}

impl ScalarCell {
    /// Matches `VersionedValue::unavailable()`.
    fn new() -> Self {
        ScalarCell {
            seq: AtomicU64::new(0),
            tag: AtomicU64::new(TAG_UNAVAILABLE),
            bits: AtomicU64::new(0),
            version: AtomicU64::new(0),
            updated_at: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
        }
    }

    /// Publishes a new snapshot. Caller holds the value write lock, so
    /// publications never race each other.
    fn publish(&self, value: &VersionedValue) {
        let seq = self.seq.load(Ordering::Relaxed);
        self.seq.store(seq.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        match pack_value(&value.value) {
            Some((tag, bits)) => {
                self.tag.store(tag, Ordering::Relaxed);
                self.bits.store(bits, Ordering::Relaxed);
                self.version.store(value.version, Ordering::Relaxed);
                self.updated_at.store(value.updated_at.0, Ordering::Relaxed);
                self.degraded
                    .store(value.degraded as u64, Ordering::Relaxed);
            }
            None => self.tag.store(TAG_UNCACHED, Ordering::Relaxed),
        }
        self.seq.store(seq.wrapping_add(2), Ordering::Release);
    }

    /// One optimistic read attempt; `None` means a write was in flight,
    /// raced this read, or the stored value is not cacheable.
    fn try_read(&self) -> Option<VersionedValue> {
        let s1 = self.seq.load(Ordering::Acquire);
        if s1 & 1 != 0 {
            return None;
        }
        let tag = self.tag.load(Ordering::Relaxed);
        let bits = self.bits.load(Ordering::Relaxed);
        let version = self.version.load(Ordering::Relaxed);
        let updated_at = self.updated_at.load(Ordering::Relaxed);
        let degraded = self.degraded.load(Ordering::Relaxed);
        fence(Ordering::Acquire);
        if self.seq.load(Ordering::Relaxed) != s1 || tag == TAG_UNCACHED {
            return None;
        }
        Some(VersionedValue {
            value: unpack_value(tag, bits),
            version,
            updated_at: Timestamp(updated_at),
            degraded: degraded != 0,
        })
    }
}

/// Failure-containment bookkeeping of one handler, guarded by its own
/// mutex (touched only on the failure path and on recovery, never on
/// healthy reads).
#[derive(Default)]
pub(crate) struct ContainmentState {
    /// Consecutive failed evaluations (reset on success).
    pub(crate) streak: u32,
    /// Retries already scheduled for the current failure episode.
    pub(crate) attempt: u32,
    /// While `Some`, the item is quarantined until the instant given and
    /// scheduled evaluations are skipped.
    pub(crate) quarantined_until: Option<Timestamp>,
    /// Total quarantine entries over the handler's lifetime (never
    /// reset) — surfaced by the `sys.quarantine` catalog relation.
    pub(crate) trips: u64,
    /// A pending one-shot retry/probe task, cancelled on success.
    pub(crate) retry_task: Option<TaskId>,
}

/// One registered push observer. `last_delivered` makes delivery
/// monotonic per observer: two concurrent stores release the value lock
/// in one order but may reach the observer lock in the other, and
/// without the version gate that would deliver version 2 before
/// version 1.
struct Observer {
    id: u64,
    last_delivered: u64,
    f: Box<SpanObserverFn>,
}

/// Runtime state of one included metadata item.
pub(crate) struct Handler {
    pub(crate) key: MetadataKey,
    pub(crate) def: ItemDef,
    /// Dependencies resolved at inclusion time.
    pub(crate) resolved_deps: Vec<ResolvedDep>,
    /// Subscription refcount (direct + dependent inclusions). Mutated
    /// only under the manager's bookkeeping mutex; read lock-free by
    /// `subscription_count` / `handler_stats`.
    pub(crate) subscriptions: AtomicUsize,
    /// Whether the item recomputes on access (`Mechanism::OnDemand`),
    /// predecoded for the read hot path.
    pub(crate) on_demand: bool,
    /// Item-level lock of the three-level scheme (Section 4.2).
    /// Tier: [`LockTier::ItemValue`].
    value: TieredRwLock<VersionedValue>,
    /// Lock-free mirror of `value` for scalar values; readers try it
    /// first and only take the value lock for uncacheable values or
    /// when a write is in flight.
    cell: ScalarCell,
    /// Serializes computations so stateful compute functions (counters
    /// that reset on sampling) see one evaluation at a time.
    /// Tier: [`LockTier::ItemCompute`] — the only self-nesting tier
    /// (nested dependency computes follow the acyclic dependency DAG).
    pub(crate) compute_lock: TieredMutex<()>,
    /// The periodic refresh task, if the mechanism is periodic.
    /// Tier: [`LockTier::ItemState`] (leaf).
    pub(crate) periodic_task: TieredMutex<Option<TaskId>>,
    /// Retry/quarantine state of items with a fallback policy.
    /// Tier: [`LockTier::ItemState`] (leaf).
    pub(crate) containment: TieredMutex<ContainmentState>,
    /// Push observers, notified after every stored change (Section 2.1's
    /// consumers as listeners — e.g. a monitoring tool plotting values).
    /// Tier: [`LockTier::Observers`] — ranked *before* the value lock
    /// because registration snapshots the value under the observer list.
    observers: TieredMutex<Vec<Observer>>,
    next_observer: AtomicU64,
    accesses: AtomicU64,
    updates: AtomicU64,
    computes: AtomicU64,
    /// Id of the last epoch flush that recomputed this item (0 = never
    /// swept in epoch mode) — surfaced by the `sys.handlers` relation.
    last_epoch: AtomicU64,
    /// Set when the item is force-excluded from under live
    /// subscriptions: the handler keeps serving its last good value
    /// (marked degraded) to handles that pinned it, but fallible reads
    /// report [`crate::MetadataError::Excluded`] and dropping a pinned
    /// handle must not decrement a fresh re-inclusion's refcount.
    defunct: AtomicBool,
    /// Compute-latency distribution in nanoseconds. Observed only while
    /// the manager's latency profiling switch is on.
    pub(crate) latency: Arc<HistogramMonitor>,
}

impl Handler {
    pub(crate) fn new(key: MetadataKey, def: ItemDef, resolved_deps: Vec<ResolvedDep>) -> Self {
        let on_demand = def.mechanism() == Mechanism::OnDemand;
        Handler {
            key,
            def,
            resolved_deps,
            on_demand,
            // Created by the subscription that materialises the item.
            subscriptions: AtomicUsize::new(1),
            value: TieredRwLock::new(LockTier::ItemValue, VersionedValue::unavailable()),
            cell: ScalarCell::new(),
            compute_lock: TieredMutex::new(LockTier::ItemCompute, ()),
            periodic_task: TieredMutex::new(LockTier::ItemState, None),
            containment: TieredMutex::new(LockTier::ItemState, ContainmentState::default()),
            observers: TieredMutex::new(LockTier::Observers, Vec::new()),
            next_observer: AtomicU64::new(0),
            accesses: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            computes: AtomicU64::new(0),
            last_epoch: AtomicU64::new(0),
            defunct: AtomicBool::new(false),
            latency: {
                let h = HistogramMonitor::new(0, LATENCY_HI_NS, LATENCY_BUCKETS);
                // The manager's profiling flag is the real gate; the
                // histogram itself stays armed for the handler's lifetime.
                h.activation().activate();
                h
            },
        }
    }

    pub(crate) fn mechanism(&self) -> Mechanism {
        self.def.mechanism()
    }

    /// A consistent snapshot of the current value. Scalar values are
    /// served by the lock-free cell; the value lock is taken only for
    /// uncacheable values or when a concurrent write is in flight.
    pub(crate) fn snapshot(&self) -> VersionedValue {
        match self.cell.try_read() {
            Some(v) => v,
            None => self.value.read().clone(),
        }
    }

    /// Stores `value` if it differs from the current one. Returns `None`
    /// if nothing changed, `Some(n)` if the value changed and `n` push
    /// observers were actually notified (drives trigger propagation and
    /// the `notified` trace event). Push observers are notified after
    /// the value lock is released; deliveries whose version is ≤ the
    /// observer's last delivered one are skipped, so each observer sees
    /// a strictly increasing version sequence even when concurrent
    /// stores reach the observer lock out of order.
    #[cfg(test)]
    pub(crate) fn store_if_changed(&self, value: MetadataValue, now: Timestamp) -> Option<usize> {
        self.store_if_changed_spanned(value, now, None)
    }

    /// Like [`Self::store_if_changed`], additionally handing the causal
    /// span of the store to span-aware observers (remote-subscription
    /// forwarders carry it across partition boundaries).
    pub(crate) fn store_if_changed_spanned(
        &self,
        value: MetadataValue,
        now: Timestamp,
        span: Option<&SpanContext>,
    ) -> Option<usize> {
        let snapshot = {
            let mut cur = self.value.write();
            if cur.value == value {
                // A successful evaluation that reproduced the current
                // value still ends a degraded episode: the value is
                // fresh again, even though nothing propagates.
                if cur.degraded {
                    cur.degraded = false;
                    self.cell.publish(&cur);
                }
                return None;
            }
            cur.value = value;
            cur.version += 1;
            cur.updated_at = now;
            cur.degraded = false;
            // Published while the write lock is held: publications are
            // serialized and the cell never lags a released write.
            self.cell.publish(&cur);
            cur.clone()
        };
        self.updates.fetch_add(1, Ordering::Relaxed);
        let mut observers = self.observers.lock();
        let mut delivered = 0;
        for obs in observers.iter_mut() {
            if snapshot.version > obs.last_delivered {
                obs.last_delivered = snapshot.version;
                (obs.f)(&snapshot, span);
                delivered += 1;
            }
        }
        Some(delivered)
    }

    /// Marks the handler defunct: force-excluded from under live
    /// subscriptions. Irreversible for this handler instance; a fresh
    /// inclusion creates a new one.
    pub(crate) fn mark_defunct(&self) {
        self.defunct.store(true, Ordering::Release);
    }

    /// Whether the handler was force-excluded under live subscriptions.
    pub(crate) fn is_defunct(&self) -> bool {
        self.defunct.load(Ordering::Acquire)
    }

    /// Marks the current value as degraded: the compute path failed and
    /// consumers are now served the last good value. Neither bumps the
    /// version nor notifies observers — the value did not change, only
    /// its freshness did; `read_fresh` and `staleness()` expose it.
    pub(crate) fn mark_degraded(&self) {
        let mut cur = self.value.write();
        if !cur.degraded {
            cur.degraded = true;
            self.cell.publish(&cur);
        }
    }

    /// Whether the current value is marked degraded.
    #[cfg(test)]
    pub(crate) fn is_degraded(&self) -> bool {
        self.snapshot().degraded
    }

    /// Registers a push observer and synchronously delivers the current
    /// snapshot to it (if a value was ever stored), closing the gap
    /// between inclusion-time pre-computation and observer registration:
    /// without the initial delivery, a `subscribe_with` consumer would
    /// miss every update stored before the observer was attached. The
    /// snapshot is read under the observer lock, so no concurrent store
    /// can slip a *newer* version in front of the initial delivery.
    pub(crate) fn add_observer_with_snapshot(&self, f: Box<ObserverFn>) -> u64 {
        self.add_span_observer_with_snapshot(Box::new(move |v, _span| f(v)))
    }

    /// Span-aware variant of [`Self::add_observer_with_snapshot`]. The
    /// initial synchronous delivery carries no span (it replays a store
    /// whose span context is gone).
    pub(crate) fn add_span_observer_with_snapshot(&self, f: Box<SpanObserverFn>) -> u64 {
        let id = self.next_observer.fetch_add(1, Ordering::Relaxed);
        let mut observers = self.observers.lock();
        let snapshot = self.snapshot();
        let obs = Observer {
            id,
            last_delivered: snapshot.version,
            f,
        };
        if snapshot.version > 0 {
            (obs.f)(&snapshot, None);
        }
        observers.push(obs);
        id
    }

    /// Removes a push observer.
    pub(crate) fn remove_observer(&self, id: u64) {
        self.observers.lock().retain(|obs| obs.id != id);
    }

    pub(crate) fn record_access(&self) {
        self.accesses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_compute(&self) {
        self.computes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn access_count(&self) -> u64 {
        self.accesses.load(Ordering::Relaxed)
    }

    pub(crate) fn update_count(&self) -> u64 {
        self.updates.load(Ordering::Relaxed)
    }

    pub(crate) fn compute_count(&self) -> u64 {
        self.computes.load(Ordering::Relaxed)
    }

    /// Records that epoch `epoch` recomputed this item.
    pub(crate) fn note_epoch(&self, epoch: u64) {
        self.last_epoch.store(epoch, Ordering::Relaxed);
    }

    /// The last epoch flush that recomputed this item (0 = never).
    pub(crate) fn last_epoch(&self) -> u64 {
        self.last_epoch.load(Ordering::Relaxed)
    }
}

/// Per-item statistics, exposed for profiling and the overhead benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HandlerStats {
    /// Consumer accesses through `read`/`Subscription::get`.
    pub accesses: u64,
    /// Stored value changes.
    pub updates: u64,
    /// Compute-function evaluations.
    pub computes: u64,
    /// Current number of subscriptions (direct + dependent inclusions).
    pub subscriptions: usize,
    /// Median compute latency in nanoseconds, if latency profiling
    /// observed any evaluation (see
    /// [`crate::MetadataManager::set_latency_profiling`]).
    pub latency_p50: Option<u64>,
    /// 95th-percentile compute latency in nanoseconds.
    pub latency_p95: Option<u64>,
    /// 99th-percentile compute latency in nanoseconds.
    pub latency_p99: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ItemDef, NodeId};

    fn handler() -> Handler {
        Handler::new(
            MetadataKey::new(NodeId(1), "x"),
            ItemDef::static_value("x", 1u64),
            Vec::new(),
        )
    }

    #[test]
    fn starts_unavailable() {
        let h = handler();
        let v = h.snapshot();
        assert_eq!(v.value, MetadataValue::Unavailable);
        assert_eq!(v.version, 0);
    }

    #[test]
    fn store_bumps_version_only_on_change() {
        let h = handler();
        assert!(h
            .store_if_changed(MetadataValue::F64(0.1), Timestamp(5))
            .is_some());
        assert!(h
            .store_if_changed(MetadataValue::F64(0.1), Timestamp(9))
            .is_none());
        let v = h.snapshot();
        assert_eq!(v.version, 1);
        assert_eq!(v.updated_at, Timestamp(5));
        assert!(h
            .store_if_changed(MetadataValue::F64(0.2), Timestamp(9))
            .is_some());
        assert_eq!(h.snapshot().version, 2);
        assert_eq!(h.update_count(), 2);
    }

    #[test]
    fn degraded_marking_survives_cell_and_clears_on_store() {
        let h = handler();
        assert!(h
            .store_if_changed(MetadataValue::U64(1), Timestamp(5))
            .is_some());
        assert!(!h.is_degraded());
        h.mark_degraded();
        let v = h.snapshot();
        assert!(v.degraded);
        // Freshness changed, the value did not.
        assert_eq!(v.version, 1);
        assert_eq!(v.value, MetadataValue::U64(1));
        // A successful store of the *same* value clears the flag without
        // bumping the version.
        assert!(h
            .store_if_changed(MetadataValue::U64(1), Timestamp(9))
            .is_none());
        let v = h.snapshot();
        assert!(!v.degraded);
        assert_eq!(v.version, 1);
        // And a changed value clears it too.
        h.mark_degraded();
        assert!(h
            .store_if_changed(MetadataValue::U64(2), Timestamp(11))
            .is_some());
        assert!(!h.is_degraded());
    }

    #[test]
    fn counters_accumulate() {
        let h = handler();
        h.record_access();
        h.record_access();
        h.record_compute();
        assert_eq!(h.access_count(), 2);
        assert_eq!(h.compute_count(), 1);
    }
}
