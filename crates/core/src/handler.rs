//! Metadata handlers.
//!
//! "An incoming subscription causes the system to create and return a
//! so-called metadata handler. There is a 1-to-1 relationship between
//! metadata items and metadata handlers." (Section 2.1)
//!
//! The handler is the proxy that (i) synchronizes the possibly concurrent
//! access of multiple consumers and (ii) guarantees a consistent view on a
//! metadata item during updates. Handlers are created on first subscription,
//! shared by reference count, and removed when the count reaches zero.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use streammeta_time::{TaskId, Timestamp};

use crate::histogram::HistogramMonitor;
use crate::item::{ItemDef, Mechanism, ResolvedDep};
use crate::{MetadataKey, MetadataValue, VersionedValue};

/// Domain of the compute-latency histogram: [0, ~1.05 ms) in 256 buckets
/// of 4096 ns; slower computes land in the overflow bucket and saturate
/// the percentile estimate at the upper edge.
const LATENCY_HI_NS: i64 = 1 << 20;
const LATENCY_BUCKETS: usize = 256;

/// Push observer signature: called with each stored value change.
pub type ObserverFn = dyn Fn(&VersionedValue) + Send + Sync;

/// Runtime state of one included metadata item.
pub(crate) struct Handler {
    pub(crate) key: MetadataKey,
    pub(crate) def: ItemDef,
    /// Dependencies resolved at inclusion time.
    pub(crate) resolved_deps: Vec<ResolvedDep>,
    /// Item-level lock of the three-level scheme (Section 4.2).
    value: RwLock<VersionedValue>,
    /// Serializes computations so stateful compute functions (counters
    /// that reset on sampling) see one evaluation at a time.
    pub(crate) compute_lock: Mutex<()>,
    /// The periodic refresh task, if the mechanism is periodic.
    pub(crate) periodic_task: Mutex<Option<TaskId>>,
    /// Push observers, notified after every stored change (Section 2.1's
    /// consumers as listeners — e.g. a monitoring tool plotting values).
    observers: Mutex<Vec<(u64, Box<ObserverFn>)>>,
    next_observer: AtomicU64,
    accesses: AtomicU64,
    updates: AtomicU64,
    computes: AtomicU64,
    /// Compute-latency distribution in nanoseconds. Observed only while
    /// the manager's latency profiling switch is on.
    pub(crate) latency: Arc<HistogramMonitor>,
}

impl Handler {
    pub(crate) fn new(key: MetadataKey, def: ItemDef, resolved_deps: Vec<ResolvedDep>) -> Self {
        Handler {
            key,
            def,
            resolved_deps,
            value: RwLock::new(VersionedValue::unavailable()),
            compute_lock: Mutex::new(()),
            periodic_task: Mutex::new(None),
            observers: Mutex::new(Vec::new()),
            next_observer: AtomicU64::new(0),
            accesses: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            computes: AtomicU64::new(0),
            latency: {
                let h = HistogramMonitor::new(0, LATENCY_HI_NS, LATENCY_BUCKETS);
                // The manager's profiling flag is the real gate; the
                // histogram itself stays armed for the handler's lifetime.
                h.activation().activate();
                h
            },
        }
    }

    pub(crate) fn mechanism(&self) -> Mechanism {
        self.def.mechanism()
    }

    /// A consistent snapshot of the current value.
    pub(crate) fn snapshot(&self) -> VersionedValue {
        self.value.read().clone()
    }

    /// Stores `value` if it differs from the current one. Returns whether
    /// anything changed (drives trigger propagation). Push observers are
    /// notified after the value lock is released.
    pub(crate) fn store_if_changed(&self, value: MetadataValue, now: Timestamp) -> bool {
        let snapshot = {
            let mut cur = self.value.write();
            if cur.value == value {
                return false;
            }
            cur.value = value;
            cur.version += 1;
            cur.updated_at = now;
            cur.clone()
        };
        self.updates.fetch_add(1, Ordering::Relaxed);
        let observers = self.observers.lock();
        for (_, f) in observers.iter() {
            f(&snapshot);
        }
        true
    }

    /// Registers a push observer; returns its id for deregistration.
    pub(crate) fn add_observer(&self, f: Box<ObserverFn>) -> u64 {
        let id = self.next_observer.fetch_add(1, Ordering::Relaxed);
        self.observers.lock().push((id, f));
        id
    }

    /// Removes a push observer.
    pub(crate) fn remove_observer(&self, id: u64) {
        self.observers.lock().retain(|(i, _)| *i != id);
    }

    pub(crate) fn record_access(&self) {
        self.accesses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_compute(&self) {
        self.computes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn access_count(&self) -> u64 {
        self.accesses.load(Ordering::Relaxed)
    }

    pub(crate) fn update_count(&self) -> u64 {
        self.updates.load(Ordering::Relaxed)
    }

    pub(crate) fn compute_count(&self) -> u64 {
        self.computes.load(Ordering::Relaxed)
    }
}

/// Per-item statistics, exposed for profiling and the overhead benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HandlerStats {
    /// Consumer accesses through `read`/`Subscription::get`.
    pub accesses: u64,
    /// Stored value changes.
    pub updates: u64,
    /// Compute-function evaluations.
    pub computes: u64,
    /// Current number of subscriptions (direct + dependent inclusions).
    pub subscriptions: usize,
    /// Median compute latency in nanoseconds, if latency profiling
    /// observed any evaluation (see
    /// [`crate::MetadataManager::set_latency_profiling`]).
    pub latency_p50: Option<u64>,
    /// 95th-percentile compute latency in nanoseconds.
    pub latency_p95: Option<u64>,
    /// 99th-percentile compute latency in nanoseconds.
    pub latency_p99: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ItemDef, NodeId};

    fn handler() -> Handler {
        Handler::new(
            MetadataKey::new(NodeId(1), "x"),
            ItemDef::static_value("x", 1u64),
            Vec::new(),
        )
    }

    #[test]
    fn starts_unavailable() {
        let h = handler();
        let v = h.snapshot();
        assert_eq!(v.value, MetadataValue::Unavailable);
        assert_eq!(v.version, 0);
    }

    #[test]
    fn store_bumps_version_only_on_change() {
        let h = handler();
        assert!(h.store_if_changed(MetadataValue::F64(0.1), Timestamp(5)));
        assert!(!h.store_if_changed(MetadataValue::F64(0.1), Timestamp(9)));
        let v = h.snapshot();
        assert_eq!(v.version, 1);
        assert_eq!(v.updated_at, Timestamp(5));
        assert!(h.store_if_changed(MetadataValue::F64(0.2), Timestamp(9)));
        assert_eq!(h.snapshot().version, 2);
        assert_eq!(h.update_count(), 2);
    }

    #[test]
    fn counters_accumulate() {
        let h = handler();
        h.record_access();
        h.record_access();
        h.record_compute();
        assert_eq!(h.access_count(), 2);
        assert_eq!(h.compute_count(), 1);
    }
}
