//! Error type of the metadata framework.

use std::fmt;

use crate::{MetadataKey, NodeId};

/// Errors raised by metadata operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetadataError {
    /// The node has no registry attached to the manager.
    NodeUnknown(NodeId),
    /// The node's registry does not define the requested item.
    ItemUndefined(MetadataKey),
    /// A dependency cycle was found while including items; the vector is
    /// the inclusion path that closed the cycle.
    CyclicDependency(Vec<MetadataKey>),
    /// The item has no handler (it was never subscribed, or already fully
    /// unsubscribed).
    NotIncluded(MetadataKey),
    /// An item definition cannot be replaced while a handler for it is
    /// live (redefinition requires exclusion first, Section 4.4.2).
    ItemInUse(MetadataKey),
    /// The subscription was denied by an installed validator (static
    /// analysis under a deny policy); the strings are the violations.
    ValidationFailed(MetadataKey, Vec<String>),
    /// The item's handler is quarantined: its compute function failed
    /// repeatedly and the circuit breaker excludes it from evaluation
    /// until the cool-down elapses. Reads still serve the last good
    /// value (marked degraded); [`crate::MetadataManager::read_fresh`]
    /// reports this error instead.
    Quarantined(MetadataKey),
    /// The item is being served from its last good value because recent
    /// evaluations failed (panic, deadline overrun, or an unavailable
    /// result under a fallback policy). Only
    /// [`crate::MetadataManager::read_fresh`] surfaces this; plain reads
    /// return the degraded-marked value.
    Degraded(MetadataKey),
    /// The item was force-excluded (administratively, or by a remote
    /// partition withdrawing it) while subscriptions to it were still
    /// live. The surviving subscription handles keep serving the last
    /// good value through [`crate::Subscription::get`], but fallible
    /// reads ([`crate::Subscription::try_versioned`]) and clones report
    /// this error instead of panicking.
    Excluded(MetadataKey),
}

impl fmt::Display for MetadataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetadataError::NodeUnknown(n) => {
                write!(f, "node {n} has no metadata registry")
            }
            MetadataError::ItemUndefined(k) => {
                write!(f, "metadata item {k} is not defined")
            }
            MetadataError::CyclicDependency(path) => {
                write!(f, "cyclic metadata dependency: ")?;
                for (i, k) in path.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{k}")?;
                }
                Ok(())
            }
            MetadataError::NotIncluded(k) => {
                write!(f, "metadata item {k} is not included (no handler)")
            }
            MetadataError::ItemInUse(k) => {
                write!(f, "metadata item {k} cannot be redefined while included")
            }
            MetadataError::ValidationFailed(k, violations) => {
                write!(f, "subscription to {k} denied by validator: ")?;
                for (i, v) in violations.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{v}")?;
                }
                Ok(())
            }
            MetadataError::Quarantined(k) => {
                write!(
                    f,
                    "metadata item {k} is quarantined after repeated compute failures"
                )
            }
            MetadataError::Degraded(k) => {
                write!(
                    f,
                    "metadata item {k} is serving its last good value (degraded)"
                )
            }
            MetadataError::Excluded(k) => {
                write!(
                    f,
                    "metadata item {k} was force-excluded under a live subscription"
                )
            }
        }
    }
}

impl std::error::Error for MetadataError {}

/// Result alias for metadata operations.
pub type Result<T> = std::result::Result<T, MetadataError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key() {
        let k = MetadataKey::new(NodeId(4), "selectivity");
        let e = MetadataError::ItemUndefined(k.clone());
        assert!(e.to_string().contains("n4/selectivity"));
        let c = MetadataError::CyclicDependency(vec![k.clone(), k]);
        assert!(c.to_string().contains("->"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&MetadataError::NodeUnknown(NodeId(1)));
    }
}
