//! Per-node metadata registries.
//!
//! Metadata items are stored at the respective graph nodes (Section 2.2):
//! every node owns a [`NodeRegistry`] holding its item *definitions*. The
//! registry also powers metadata **discovery** ("each node gives
//! information about available metadata items"), **inheritance** (a more
//! specific operator redefines inherited items, Section 4.4.2) and
//! **module scoping** (metadata of exchangeable modules, Section 4.5).

use std::collections::HashMap;
use std::sync::Arc;

use crate::item::{DepSpec, DepTarget, ItemDef};
use crate::sync::{LockTier, TieredRwLock};
use crate::{ItemPath, NodeId};

/// Registry of the metadata items one node can provide.
pub struct NodeRegistry {
    node: NodeId,
    /// Node-level lock of the three-level locking scheme (Section 4.2).
    /// Tier: [`LockTier::Node`].
    items: TieredRwLock<HashMap<ItemPath, ItemDef>>,
}

impl NodeRegistry {
    /// An empty registry for `node`.
    pub fn new(node: NodeId) -> Arc<Self> {
        Arc::new(NodeRegistry {
            node,
            items: TieredRwLock::new(LockTier::Node, HashMap::new()),
        })
    }

    /// The owning node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Defines an item, replacing any previous definition of the same path
    /// (inheritance/overriding, Section 4.4.2). Returns the replaced
    /// definition, if any.
    ///
    /// Replacing the definition of an item that currently has a live
    /// handler does not affect the handler; the new definition applies
    /// from the next inclusion. The manager refuses redefinition of live
    /// items at subscription level where consistency matters.
    pub fn define(&self, def: ItemDef) -> Option<ItemDef> {
        self.items.write().insert(def.path().clone(), def)
    }

    /// Defines several items at once, replacing any previous definitions
    /// of the same paths.
    ///
    /// Like [`Self::define`], this is the *unguarded* registry-level
    /// operation: it performs no live-handler check, so a batch that
    /// replaces an included item silently leaves existing consumers on
    /// the old semantics while new dependents resolve against the new
    /// one. Intended for initial registry population (before anything
    /// subscribes); to replace definitions at runtime use
    /// [`crate::MetadataManager::redefine_all`], which refuses the whole
    /// batch if any item in it has a live handler.
    pub fn define_all(&self, defs: impl IntoIterator<Item = ItemDef>) {
        let mut items = self.items.write();
        for def in defs {
            items.insert(def.path().clone(), def);
        }
    }

    /// Removes an item definition, returning it if it existed.
    ///
    /// Like [`Self::define`], this is the *unguarded* registry-level
    /// operation: a live handler for the removed item keeps the
    /// definition it was created with and continues to be maintained;
    /// only new inclusions are affected. Use
    /// [`crate::MetadataManager::undefine`] for the consistency-checked
    /// variant that refuses to remove an item while it has a handler —
    /// without the guard, an `undefine` + `define` pair silently
    /// bypasses the manager's redefinition check (Section 4.4.2).
    pub fn undefine(&self, path: &ItemPath) -> Option<ItemDef> {
        self.items.write().remove(path)
    }

    /// A clone of the definition at `path`.
    pub fn get(&self, path: &ItemPath) -> Option<ItemDef> {
        self.items.read().get(path).cloned()
    }

    /// Whether `path` is defined.
    pub fn contains(&self, path: &ItemPath) -> bool {
        self.items.read().contains_key(path)
    }

    /// All available item paths, sorted (metadata discovery, Section 2.2).
    pub fn available(&self) -> Vec<ItemPath> {
        let mut v: Vec<_> = self.items.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Clones of all item definitions, sorted by path. Powers static
    /// analysis: the full definition set of a node can be inspected
    /// without subscribing to (or computing) anything.
    pub fn definitions(&self) -> Vec<ItemDef> {
        let mut v: Vec<_> = self.items.read().values().cloned().collect();
        v.sort_by(|a, b| a.path().cmp(b.path()));
        v
    }

    /// Number of defined items.
    pub fn len(&self) -> usize {
        self.items.read().len()
    }

    /// Whether no items are defined.
    pub fn is_empty(&self) -> bool {
        self.items.read().is_empty()
    }

    /// A module scope: items defined through it live under
    /// `prefix.<name>` and their local dependencies are rewritten into the
    /// same scope, so module metadata nests recursively (Section 4.5).
    pub fn scope<'a>(self: &'a Arc<Self>, prefix: &str) -> RegistryScope<'a> {
        assert!(!prefix.is_empty(), "module scope prefix must be non-empty");
        RegistryScope {
            registry: self,
            prefix: prefix.to_owned(),
        }
    }
}

/// A metadata module that installs its items into a scope (Section 4.5).
///
/// Exchangeable operator parts (a join's state data structures, for
/// instance) implement this so the owning operator can expose their
/// metadata under its own registry, whatever implementation is plugged in.
pub trait MetadataModule {
    /// Installs the module's item definitions into `scope`.
    fn register_metadata(&self, scope: &RegistryScope<'_>);
}

/// A view of a [`NodeRegistry`] under a path prefix.
pub struct RegistryScope<'a> {
    registry: &'a Arc<NodeRegistry>,
    prefix: String,
}

impl<'a> RegistryScope<'a> {
    /// The owning node.
    pub fn node(&self) -> NodeId {
        self.registry.node()
    }

    /// The scope's path prefix.
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// The absolute path of `name` within this scope.
    pub fn path(&self, name: impl Into<ItemPath>) -> ItemPath {
        name.into().scoped(&self.prefix)
    }

    /// Defines an item inside the scope. The item's path and its
    /// `Local`/`LocalEvent` dependency targets are rewritten under the
    /// scope prefix; `Remote` targets and dynamic resolvers are left
    /// untouched (dynamic resolvers see the node, not the scope).
    pub fn define(&self, def: ItemDef) {
        let mut def = def;
        def = def.clone().with_path(def.path().scoped(&self.prefix));
        if let DepSpec::Fixed(deps) = &mut def.deps {
            for d in deps.iter_mut() {
                d.target =
                    match std::mem::replace(&mut d.target, DepTarget::Local(ItemPath::new("_"))) {
                        DepTarget::Local(p) => DepTarget::Local(p.scoped(&self.prefix)),
                        DepTarget::LocalEvent(p) => DepTarget::LocalEvent(p.scoped(&self.prefix)),
                        other => other,
                    };
            }
        }
        self.registry.define(def);
    }

    /// Defines an item whose path is prefixed but whose dependencies are
    /// already absolute within the node.
    pub fn define_raw(&self, def: ItemDef) {
        let scoped = def.path().scoped(&self.prefix);
        self.registry.define(def.with_path(scoped));
    }

    /// A nested scope `prefix.name` (recursive modules).
    pub fn child(&self, name: &str) -> RegistryScope<'a> {
        RegistryScope {
            registry: self.registry,
            prefix: format!("{}.{name}", self.prefix),
        }
    }

    /// Installs a module's metadata into this scope.
    pub fn install(&self, module: &dyn MetadataModule) {
        module.register_metadata(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::DepSpec;
    use crate::MetadataValue;

    #[test]
    fn define_and_discover() {
        let reg = NodeRegistry::new(NodeId(1));
        assert!(reg.is_empty());
        reg.define(ItemDef::static_value("schema", "a,b"));
        reg.define(ItemDef::static_value("element_size", 16u64));
        assert_eq!(reg.len(), 2);
        assert!(reg.contains(&ItemPath::new("schema")));
        let avail = reg.available();
        assert_eq!(
            avail,
            vec![ItemPath::new("element_size"), ItemPath::new("schema")]
        );
    }

    #[test]
    fn redefinition_replaces_and_returns_old() {
        let reg = NodeRegistry::new(NodeId(1));
        assert!(reg.define(ItemDef::static_value("x", 1u64)).is_none());
        let old = reg.define(ItemDef::static_value("x", 2u64));
        assert!(old.is_some());
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn undefine_removes() {
        let reg = NodeRegistry::new(NodeId(1));
        reg.define(ItemDef::static_value("x", 1u64));
        assert!(reg.undefine(&ItemPath::new("x")).is_some());
        assert!(reg.undefine(&ItemPath::new("x")).is_none());
        assert!(!reg.contains(&ItemPath::new("x")));
    }

    #[test]
    fn scope_rewrites_paths_and_local_deps() {
        let reg = NodeRegistry::new(NodeId(1));
        let scope = reg.scope("state");
        scope.define(
            ItemDef::triggered("memory_usage")
                .dep_local("size")
                .on_event("resized")
                .compute(|_| MetadataValue::Unavailable)
                .build(),
        );
        let def = reg.get(&ItemPath::new("state.memory_usage")).unwrap();
        match &def.deps {
            DepSpec::Fixed(deps) => {
                assert_eq!(
                    deps[0].target,
                    DepTarget::Local(ItemPath::new("state.size"))
                );
                assert_eq!(
                    deps[1].target,
                    DepTarget::LocalEvent(ItemPath::new("state.resized"))
                );
            }
            _ => panic!("expected fixed deps"),
        }
    }

    #[test]
    fn scope_leaves_remote_deps_untouched() {
        let reg = NodeRegistry::new(NodeId(1));
        let remote = crate::MetadataKey::new(NodeId(2), "output_rate");
        let scope = reg.scope("state");
        scope.define(
            ItemDef::triggered("x")
                .dep_remote("r", remote.clone())
                .compute(|_| MetadataValue::Unavailable)
                .build(),
        );
        let def = reg.get(&ItemPath::new("state.x")).unwrap();
        match &def.deps {
            DepSpec::Fixed(deps) => {
                assert_eq!(deps[0].target, DepTarget::Remote(remote));
            }
            _ => panic!("expected fixed deps"),
        }
    }

    #[test]
    fn nested_scopes_compose() {
        let reg = NodeRegistry::new(NodeId(1));
        let scope = reg.scope("state");
        let left = scope.child("left");
        left.define(ItemDef::static_value("size", 0u64));
        assert!(reg.contains(&ItemPath::new("state.left.size")));
        assert_eq!(left.path("size").as_str(), "state.left.size");
    }

    #[test]
    fn module_installation() {
        struct ListState;
        impl MetadataModule for ListState {
            fn register_metadata(&self, scope: &RegistryScope<'_>) {
                scope.define(ItemDef::static_value("impl", "list"));
                scope.define(ItemDef::static_value("size", 0u64));
            }
        }
        let reg = NodeRegistry::new(NodeId(1));
        reg.scope("state.left").install(&ListState);
        assert!(reg.contains(&ItemPath::new("state.left.impl")));
        assert!(reg.contains(&ItemPath::new("state.left.size")));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_scope_prefix_rejected() {
        let reg = NodeRegistry::new(NodeId(1));
        let _ = reg.scope("");
    }
}
