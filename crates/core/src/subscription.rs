//! Subscription handles.

use std::fmt;
use std::sync::Arc;

use crate::handler::Handler;
use crate::manager::MetadataManager;
use crate::{MetadataError, MetadataKey, MetadataValue, VersionedValue};

/// A live subscription to one metadata item.
///
/// Created by [`MetadataManager::subscribe`]. While at least one
/// subscription (or dependent inclusion) exists, the item's handler is
/// maintained; dropping the last subscription excludes the item and all
/// dependencies that are no longer needed (Section 2.1 of the paper).
///
/// The subscription caches its `Arc<Handler>` at creation — it is
/// exactly what guarantees the handler stays alive — so [`Self::get`] /
/// [`Self::versioned`] never consult the manager's bookkeeping state:
/// reads go straight to the item-level value lock.
pub struct Subscription {
    manager: Arc<MetadataManager>,
    key: MetadataKey,
    /// The item's handler, pinned for the subscription's lifetime.
    handler: Arc<Handler>,
    /// Push-observer registered with this subscription, if any.
    observer: Option<u64>,
}

impl Subscription {
    pub(crate) fn new(
        manager: Arc<MetadataManager>,
        key: MetadataKey,
        handler: Arc<Handler>,
    ) -> Self {
        Subscription {
            manager,
            key,
            handler,
            observer: None,
        }
    }

    /// The cached handler (crate-internal: observer registration).
    pub(crate) fn cached_handler(&self) -> &Arc<Handler> {
        &self.handler
    }

    pub(crate) fn with_observer(mut self, id: u64) -> Self {
        self.observer = Some(id);
        self
    }

    /// The subscribed item.
    pub fn key(&self) -> &MetadataKey {
        &self.key
    }

    /// The item's current value. On-demand items are recomputed by this
    /// access. Served through the cached handler: no manager bookkeeping
    /// lock, no key lookup.
    pub fn get(&self) -> MetadataValue {
        self.manager.read_cached(&self.handler).value
    }

    /// Like [`Self::get`], with version and update instant.
    pub fn versioned(&self) -> VersionedValue {
        self.manager.read_cached(&self.handler)
    }

    /// Fallible read: like [`Self::versioned`] but reporting
    /// [`MetadataError::Excluded`] when the item was force-excluded from
    /// under this subscription (e.g. by an administrative
    /// [`MetadataManager::force_exclude`] or a remote partition
    /// withdrawing it). Plain [`Self::get`] keeps serving the last good
    /// value, marked degraded, for consumers that tolerate staleness.
    pub fn try_versioned(&self) -> crate::Result<VersionedValue> {
        if self.handler.is_defunct() {
            return Err(MetadataError::Excluded(self.key.clone()));
        }
        Ok(self.manager.read_cached(&self.handler))
    }

    /// Whether the item was force-excluded from under this subscription.
    pub fn is_excluded(&self) -> bool {
        self.handler.is_defunct()
    }

    /// Numeric shortcut: the value coerced to `f64`, if possible.
    pub fn get_f64(&self) -> Option<f64> {
        self.get().as_f64()
    }

    /// The manager this subscription belongs to.
    pub fn manager(&self) -> &Arc<MetadataManager> {
        &self.manager
    }
}

impl Clone for Subscription {
    /// Cloning registers an additional subscription on the same item.
    ///
    /// If the item was force-excluded (or its node detached) since this
    /// handle was created, the clone pins the same last-good handler
    /// instead of panicking: it reads like the original (degraded) and
    /// reports [`MetadataError::Excluded`] via [`Self::try_versioned`].
    fn clone(&self) -> Self {
        self.manager.resubscribe(&self.key, &self.handler)
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        if let Some(id) = self.observer {
            self.handler.remove_observer(id);
        }
        // Identity-checked: a defunct handler was already removed from
        // the manager's bookkeeping by force-exclusion, and a plain
        // unsubscribe would decrement a fresh re-inclusion's refcount
        // instead. The manager compares handler identity under its
        // bookkeeping lock, so the check cannot race a concurrent
        // force-exclusion.
        self.manager.unsubscribe_handle(&self.key, &self.handler);
    }
}

impl fmt::Debug for Subscription {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Subscription({})", self.key)
    }
}
