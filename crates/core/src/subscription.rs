//! Subscription handles.

use std::fmt;
use std::sync::Arc;

use crate::handler::Handler;
use crate::manager::MetadataManager;
use crate::{MetadataKey, MetadataValue, VersionedValue};

/// A live subscription to one metadata item.
///
/// Created by [`MetadataManager::subscribe`]. While at least one
/// subscription (or dependent inclusion) exists, the item's handler is
/// maintained; dropping the last subscription excludes the item and all
/// dependencies that are no longer needed (Section 2.1 of the paper).
///
/// The subscription caches its `Arc<Handler>` at creation — it is
/// exactly what guarantees the handler stays alive — so [`Self::get`] /
/// [`Self::versioned`] never consult the manager's bookkeeping state:
/// reads go straight to the item-level value lock.
pub struct Subscription {
    manager: Arc<MetadataManager>,
    key: MetadataKey,
    /// The item's handler, pinned for the subscription's lifetime.
    handler: Arc<Handler>,
    /// Push-observer registered with this subscription, if any.
    observer: Option<u64>,
}

impl Subscription {
    pub(crate) fn new(
        manager: Arc<MetadataManager>,
        key: MetadataKey,
        handler: Arc<Handler>,
    ) -> Self {
        Subscription {
            manager,
            key,
            handler,
            observer: None,
        }
    }

    /// The cached handler (crate-internal: observer registration).
    pub(crate) fn cached_handler(&self) -> &Arc<Handler> {
        &self.handler
    }

    pub(crate) fn with_observer(mut self, id: u64) -> Self {
        self.observer = Some(id);
        self
    }

    /// The subscribed item.
    pub fn key(&self) -> &MetadataKey {
        &self.key
    }

    /// The item's current value. On-demand items are recomputed by this
    /// access. Served through the cached handler: no manager bookkeeping
    /// lock, no key lookup.
    pub fn get(&self) -> MetadataValue {
        self.manager.read_cached(&self.handler).value
    }

    /// Like [`Self::get`], with version and update instant.
    pub fn versioned(&self) -> VersionedValue {
        self.manager.read_cached(&self.handler)
    }

    /// Numeric shortcut: the value coerced to `f64`, if possible.
    pub fn get_f64(&self) -> Option<f64> {
        self.get().as_f64()
    }

    /// The manager this subscription belongs to.
    pub fn manager(&self) -> &Arc<MetadataManager> {
        &self.manager
    }
}

impl Clone for Subscription {
    /// Cloning registers an additional subscription on the same item.
    fn clone(&self) -> Self {
        self.manager
            .subscribe(self.key.clone())
            .expect("item is included while a subscription exists")
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        if let Some(id) = self.observer {
            self.handler.remove_observer(id);
        }
        self.manager.unsubscribe(&self.key);
    }
}

impl fmt::Debug for Subscription {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Subscription({})", self.key)
    }
}
