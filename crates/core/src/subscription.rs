//! Subscription handles.

use std::fmt;
use std::sync::Arc;

use crate::manager::MetadataManager;
use crate::{MetadataKey, MetadataValue, VersionedValue};

/// A live subscription to one metadata item.
///
/// Created by [`MetadataManager::subscribe`]. While at least one
/// subscription (or dependent inclusion) exists, the item's handler is
/// maintained; dropping the last subscription excludes the item and all
/// dependencies that are no longer needed (Section 2.1 of the paper).
pub struct Subscription {
    manager: Arc<MetadataManager>,
    key: MetadataKey,
    /// Push-observer registered with this subscription, if any.
    observer: Option<u64>,
}

impl Subscription {
    pub(crate) fn new(manager: Arc<MetadataManager>, key: MetadataKey) -> Self {
        Subscription {
            manager,
            key,
            observer: None,
        }
    }

    pub(crate) fn with_observer(mut self, id: u64) -> Self {
        self.observer = Some(id);
        self
    }

    /// The subscribed item.
    pub fn key(&self) -> &MetadataKey {
        &self.key
    }

    /// The item's current value. On-demand items are recomputed by this
    /// access.
    pub fn get(&self) -> MetadataValue {
        self.manager
            .read(&self.key)
            .expect("subscription keeps the handler alive")
    }

    /// Like [`Self::get`], with version and update instant.
    pub fn versioned(&self) -> VersionedValue {
        self.manager
            .read_versioned(&self.key)
            .expect("subscription keeps the handler alive")
    }

    /// Numeric shortcut: the value coerced to `f64`, if possible.
    pub fn get_f64(&self) -> Option<f64> {
        self.get().as_f64()
    }

    /// The manager this subscription belongs to.
    pub fn manager(&self) -> &Arc<MetadataManager> {
        &self.manager
    }
}

impl Clone for Subscription {
    /// Cloning registers an additional subscription on the same item.
    fn clone(&self) -> Self {
        self.manager
            .subscribe(self.key.clone())
            .expect("item is included while a subscription exists")
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        if let Some(id) = self.observer {
            self.manager.remove_observer(&self.key, id);
        }
        self.manager.unsubscribe(&self.key);
    }
}

impl fmt::Debug for Subscription {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Subscription({})", self.key)
    }
}
