//! Tiered lock shim: the declared lock hierarchy as a checked artifact.
//!
//! The locking discipline of the manager/handler/shard stack used to be
//! prose in `manager.rs`. This module turns it into code: every
//! synchronization primitive on the metadata path is a [`TieredMutex`] or
//! [`TieredRwLock`] tagged with a [`LockTier`], and the total order over
//! tiers *is* the lock hierarchy. With the `lock-audit` cargo feature the
//! shim additionally records per-thread acquisition stacks into a global
//! event log that `streammeta-analyze`'s `lockorder` module replays to
//! detect rank inversions, cross-thread same-tier cycles, and locks held
//! across user compute closures. Without the feature the wrappers are
//! `#[inline]` pass-throughs over `parking_lot` and compile to the same
//! code as before.
//!
//! ## The hierarchy
//!
//! Tiers are acquired in ascending [`LockTier::rank`] order; holding a
//! higher-ranked lock while taking a lower-ranked one is an inversion.
//! The ranking below is the machine-verified refinement of the original
//! three-level prose scheme (graph → node → item), extended with the
//! epoch-flush and containment locks that grew around it:
//!
//! | rank | tier           | lock(s)                                      |
//! |------|----------------|----------------------------------------------|
//! | 0    | `FlushSerial`  | `MetadataManager::flush_serial`              |
//! | 1    | `EpochQueue`   | `MetadataManager::epoch_queue`               |
//! | 2    | `ItemCompute`  | `Handler::compute_lock` (self-nesting: deps) |
//! | 3    | `Bookkeeping`  | `MetadataManager::inner`                     |
//! | 4    | `Graph`        | `MetadataManager::registries`                |
//! | 5    | `Node`         | `NodeRegistry::items`                        |
//! | 6    | `Shard`        | `HandlerShards` partitions                   |
//! | 7    | `Observers`    | `Handler::observers`                         |
//! | 8    | `ItemValue`    | `Handler::value`                             |
//! | 9    | `ItemState`    | `Handler::containment`, `periodic_task`      |
//!
//! Two orderings are non-obvious and load-bearing: `ItemCompute` ranks
//! *below* `Bookkeeping` because meta-node compute closures call
//! `MetadataManager::stats()` (which takes `inner`) while their compute
//! lock is held, and `Observers` ranks *below* `ItemValue` because
//! `Handler::add_observer_with_snapshot` holds the observer list while
//! the snapshot may fall back to a `value` read. `ItemCompute` is the
//! only tier that may nest *distinct* instances of itself: nested
//! dependency computes follow the dependency DAG, whose acyclicity the
//! static analyzer checks separately (rule A3).
//!
//! Only `ItemCompute` and `FlushSerial` may be held across user compute
//! closures (the `catch_unwind` region): the compute lock by design, and
//! the flush-serial mutex because epoch sweeps recompute items under it.

#![allow(dead_code)]

use std::ops::{Deref, DerefMut};

use parking_lot::{Mutex, RwLock};

/// Position of a lock in the declared hierarchy. Locks must be acquired
/// in ascending [`rank`](LockTier::rank) order within a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LockTier {
    /// Epoch-flush serialization (`flush_serial`): held across an entire
    /// snapshot/number/sweep cycle, so it must come before everything.
    FlushSerial,
    /// The epoch coalescing queue (`epoch_queue`).
    EpochQueue,
    /// A handler's compute lock. The only self-nesting tier: a compute
    /// may take the compute lock of a *different* handler it depends on.
    ItemCompute,
    /// The manager's bookkeeping mutex (`inner`): refcounts, handler
    /// map, inverted dependency edges.
    Bookkeeping,
    /// The graph-level registries map.
    Graph,
    /// A node registry's item-definition map.
    Node,
    /// One partition of the sharded handler index.
    Shard,
    /// A handler's observer list.
    Observers,
    /// A handler's versioned value slot.
    ItemValue,
    /// Per-handler containment / periodic-task state: leaf locks, never
    /// held while acquiring anything else.
    ItemState,
}

impl LockTier {
    /// Numeric rank; lower acquires first.
    pub fn rank(self) -> u8 {
        match self {
            LockTier::FlushSerial => 0,
            LockTier::EpochQueue => 1,
            LockTier::ItemCompute => 2,
            LockTier::Bookkeeping => 3,
            LockTier::Graph => 4,
            LockTier::Node => 5,
            LockTier::Shard => 6,
            LockTier::Observers => 7,
            LockTier::ItemValue => 8,
            LockTier::ItemState => 9,
        }
    }

    /// Whether *distinct* locks of this tier may nest within one thread.
    /// True only for [`LockTier::ItemCompute`], whose nesting follows the
    /// (acyclic) dependency DAG.
    pub fn allows_self_nesting(self) -> bool {
        matches!(self, LockTier::ItemCompute)
    }

    /// Whether this tier may legally be held across a user compute
    /// closure (the `catch_unwind` region).
    pub fn allowed_across_compute(self) -> bool {
        matches!(self, LockTier::ItemCompute | LockTier::FlushSerial)
    }

    /// Stable lowercase name, e.g. `"bookkeeping"`.
    pub fn name(self) -> &'static str {
        match self {
            LockTier::FlushSerial => "flush_serial",
            LockTier::EpochQueue => "epoch_queue",
            LockTier::ItemCompute => "item_compute",
            LockTier::Bookkeeping => "bookkeeping",
            LockTier::Graph => "graph",
            LockTier::Node => "node",
            LockTier::Shard => "shard",
            LockTier::Observers => "observers",
            LockTier::ItemValue => "item_value",
            LockTier::ItemState => "item_state",
        }
    }
}

impl std::fmt::Display for LockTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded synchronization event (only produced under the
/// `lock-audit` feature, but the type exists unconditionally so the
/// analyzer's detector compiles and tests against synthetic streams).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockEvent {
    /// A lock acquisition: which tier/instance, on which thread, and the
    /// (tier, instance) stack already held by that thread.
    Acquire {
        /// Per-process dense thread id (not the OS id).
        thread: u64,
        /// Declared tier of the acquired lock.
        tier: LockTier,
        /// Unique instance id of the acquired lock.
        id: u64,
        /// Locks already held by this thread, outermost first.
        held: Vec<(LockTier, u64)>,
    },
    /// Entry into a user compute closure with the thread's held stack.
    Compute {
        /// Per-process dense thread id.
        thread: u64,
        /// Locks held while the user closure runs, outermost first.
        held: Vec<(LockTier, u64)>,
    },
}

/// Runtime control over lock-event recording.
///
/// Recording is opt-in per test even in `lock-audit` builds: the
/// per-thread held stacks are always maintained (cheap, thread-local),
/// but the global event log only fills between [`start`](lock_audit::start)
/// and [`finish`](lock_audit::finish), so an audited build pays one
/// relaxed atomic load per acquisition when idle.
pub mod lock_audit {
    use super::LockEvent;

    #[cfg(feature = "lock-audit")]
    mod imp {
        use super::LockEvent;
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
        // std Mutex, deliberately: the log must not recurse into the
        // shim it observes.
        use std::sync::Mutex;

        static RECORDING: AtomicBool = AtomicBool::new(false);
        static EVENTS: Mutex<Vec<LockEvent>> = Mutex::new(Vec::new());
        static NEXT_LOCK_ID: AtomicU64 = AtomicU64::new(1);
        static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

        thread_local! {
            static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
            static HELD: std::cell::RefCell<Vec<(super::super::LockTier, u64)>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }

        pub fn fresh_lock_id() -> u64 {
            NEXT_LOCK_ID.fetch_add(1, Ordering::Relaxed)
        }

        /// Dense per-process id of the calling thread.
        pub fn thread_id() -> u64 {
            THREAD_ID.with(|id| *id)
        }

        pub fn is_recording() -> bool {
            RECORDING.load(Ordering::Relaxed)
        }

        pub fn start() {
            EVENTS.lock().unwrap().clear();
            RECORDING.store(true, Ordering::SeqCst);
        }

        pub fn finish() -> Vec<LockEvent> {
            RECORDING.store(false, Ordering::SeqCst);
            std::mem::take(&mut *EVENTS.lock().unwrap())
        }

        /// Records an acquisition and pushes it onto the thread's held
        /// stack. Always maintains the stack; only logs when recording.
        pub fn on_acquire(tier: super::super::LockTier, id: u64) {
            HELD.with(|held| {
                if is_recording() {
                    let snapshot = held.borrow().clone();
                    EVENTS.lock().unwrap().push(LockEvent::Acquire {
                        thread: thread_id(),
                        tier,
                        id,
                        held: snapshot,
                    });
                }
                held.borrow_mut().push((tier, id));
            });
        }

        /// Removes an instance from the held stack. Removal is by id —
        /// guards may drop out of LIFO order.
        pub fn on_release(id: u64) {
            HELD.with(|held| {
                let mut held = held.borrow_mut();
                if let Some(pos) = held.iter().rposition(|&(_, i)| i == id) {
                    held.remove(pos);
                }
            });
        }

        /// Records entry into a user compute closure.
        pub fn on_compute() {
            if is_recording() {
                let snapshot = HELD.with(|held| held.borrow().clone());
                EVENTS.lock().unwrap().push(LockEvent::Compute {
                    thread: thread_id(),
                    held: snapshot,
                });
            }
        }
    }

    /// Starts recording lock events (clears any previous log).
    pub fn start() {
        #[cfg(feature = "lock-audit")]
        imp::start();
    }

    /// Stops recording and drains the event log.
    pub fn finish() -> Vec<LockEvent> {
        #[cfg(feature = "lock-audit")]
        return imp::finish();
        #[cfg(not(feature = "lock-audit"))]
        Vec::new()
    }

    /// Whether events are currently being recorded (always false without
    /// the `lock-audit` feature).
    pub fn is_recording() -> bool {
        #[cfg(feature = "lock-audit")]
        return imp::is_recording();
        #[cfg(not(feature = "lock-audit"))]
        false
    }

    #[cfg(feature = "lock-audit")]
    pub(crate) use imp::{fresh_lock_id, on_acquire, on_compute, on_release};

    /// Dense per-process id of the calling thread, as used in recorded
    /// events. Lets a test filter the global log down to its own thread.
    #[cfg(feature = "lock-audit")]
    pub use imp::thread_id;

    /// Marks entry into a user compute closure (no-op unless auditing).
    #[cfg(not(feature = "lock-audit"))]
    pub(crate) fn on_compute() {}
}

/// Notes that the current thread is about to run a user compute closure,
/// so the auditor can flag locks illegally held across it.
#[inline]
pub(crate) fn note_user_compute() {
    lock_audit::on_compute();
}

/// A [`parking_lot::Mutex`] tagged with its position in the lock
/// hierarchy. Transparent without the `lock-audit` feature.
pub struct TieredMutex<T> {
    tier: LockTier,
    #[cfg(feature = "lock-audit")]
    id: u64,
    inner: Mutex<T>,
}

impl<T> TieredMutex<T> {
    /// Creates a mutex at the given tier.
    #[inline]
    pub fn new(tier: LockTier, value: T) -> Self {
        TieredMutex {
            tier,
            #[cfg(feature = "lock-audit")]
            id: lock_audit::fresh_lock_id(),
            inner: Mutex::new(value),
        }
    }

    /// The declared tier.
    #[inline]
    pub fn tier(&self) -> LockTier {
        self.tier
    }

    /// Acquires the mutex, recording the acquisition when auditing.
    #[inline]
    pub fn lock(&self) -> TieredMutexGuard<'_, T> {
        let guard = self.inner.lock();
        #[cfg(feature = "lock-audit")]
        lock_audit::on_acquire(self.tier, self.id);
        TieredMutexGuard {
            guard,
            #[cfg(feature = "lock-audit")]
            id: self.id,
        }
    }

    /// Attempts the mutex without blocking; records only on success.
    #[inline]
    pub fn try_lock(&self) -> Option<TieredMutexGuard<'_, T>> {
        let guard = self.inner.try_lock()?;
        #[cfg(feature = "lock-audit")]
        lock_audit::on_acquire(self.tier, self.id);
        Some(TieredMutexGuard {
            guard,
            #[cfg(feature = "lock-audit")]
            id: self.id,
        })
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for TieredMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TieredMutex")
            .field("tier", &self.tier)
            .field("inner", &self.inner)
            .finish()
    }
}

/// Guard for a [`TieredMutex`]; pops the held-stack entry on drop.
pub struct TieredMutexGuard<'a, T> {
    guard: parking_lot::MutexGuard<'a, T>,
    #[cfg(feature = "lock-audit")]
    id: u64,
}

impl<T> Deref for TieredMutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for TieredMutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(feature = "lock-audit")]
impl<T> Drop for TieredMutexGuard<'_, T> {
    fn drop(&mut self) {
        lock_audit::on_release(self.id);
    }
}

/// A [`parking_lot::RwLock`] tagged with its position in the lock
/// hierarchy. Read and write acquisitions are both audited: the
/// hierarchy must hold regardless of sharing mode.
pub struct TieredRwLock<T> {
    tier: LockTier,
    #[cfg(feature = "lock-audit")]
    id: u64,
    inner: RwLock<T>,
}

impl<T> TieredRwLock<T> {
    /// Creates an rwlock at the given tier.
    #[inline]
    pub fn new(tier: LockTier, value: T) -> Self {
        TieredRwLock {
            tier,
            #[cfg(feature = "lock-audit")]
            id: lock_audit::fresh_lock_id(),
            inner: RwLock::new(value),
        }
    }

    /// The declared tier.
    #[inline]
    pub fn tier(&self) -> LockTier {
        self.tier
    }

    /// Acquires a shared read guard.
    #[inline]
    pub fn read(&self) -> TieredRwLockReadGuard<'_, T> {
        let guard = self.inner.read();
        #[cfg(feature = "lock-audit")]
        lock_audit::on_acquire(self.tier, self.id);
        TieredRwLockReadGuard {
            guard,
            #[cfg(feature = "lock-audit")]
            id: self.id,
        }
    }

    /// Acquires an exclusive write guard.
    #[inline]
    pub fn write(&self) -> TieredRwLockWriteGuard<'_, T> {
        let guard = self.inner.write();
        #[cfg(feature = "lock-audit")]
        lock_audit::on_acquire(self.tier, self.id);
        TieredRwLockWriteGuard {
            guard,
            #[cfg(feature = "lock-audit")]
            id: self.id,
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for TieredRwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TieredRwLock")
            .field("tier", &self.tier)
            .field("inner", &self.inner)
            .finish()
    }
}

/// Shared-read guard for a [`TieredRwLock`].
pub struct TieredRwLockReadGuard<'a, T> {
    guard: parking_lot::RwLockReadGuard<'a, T>,
    #[cfg(feature = "lock-audit")]
    id: u64,
}

impl<T> Deref for TieredRwLockReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.guard
    }
}

#[cfg(feature = "lock-audit")]
impl<T> Drop for TieredRwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        lock_audit::on_release(self.id);
    }
}

/// Exclusive-write guard for a [`TieredRwLock`].
pub struct TieredRwLockWriteGuard<'a, T> {
    guard: parking_lot::RwLockWriteGuard<'a, T>,
    #[cfg(feature = "lock-audit")]
    id: u64,
}

impl<T> Deref for TieredRwLockWriteGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for TieredRwLockWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(feature = "lock-audit")]
impl<T> Drop for TieredRwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        lock_audit::on_release(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_total_and_stable() {
        let tiers = [
            LockTier::FlushSerial,
            LockTier::EpochQueue,
            LockTier::ItemCompute,
            LockTier::Bookkeeping,
            LockTier::Graph,
            LockTier::Node,
            LockTier::Shard,
            LockTier::Observers,
            LockTier::ItemValue,
            LockTier::ItemState,
        ];
        for (i, t) in tiers.iter().enumerate() {
            assert_eq!(t.rank() as usize, i, "{t} rank drifted");
        }
        assert!(LockTier::ItemCompute.allows_self_nesting());
        assert!(!LockTier::Bookkeeping.allows_self_nesting());
        assert!(LockTier::FlushSerial.allowed_across_compute());
        assert!(LockTier::ItemCompute.allowed_across_compute());
        assert!(!LockTier::ItemValue.allowed_across_compute());
    }

    #[test]
    fn guards_deref_like_the_raw_primitives() {
        let m = TieredMutex::new(LockTier::Bookkeeping, 1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let rw = TieredRwLock::new(LockTier::ItemValue, vec![1, 2]);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
        assert_eq!(rw.tier(), LockTier::ItemValue);
    }

    #[cfg(feature = "lock-audit")]
    #[test]
    fn audit_records_nested_acquisitions() {
        let outer = TieredMutex::new(LockTier::Bookkeeping, ());
        let inner = TieredRwLock::new(LockTier::Shard, ());
        lock_audit::start();
        {
            let _a = outer.lock();
            let _b = inner.read();
        }
        let events = lock_audit::finish();
        // Other tests in the harness may interleave unrelated events on
        // other threads; filter the log down to this thread's.
        let me = lock_audit::thread_id();
        let ours: Vec<&LockEvent> = events
            .iter()
            .filter(|e| matches!(e, LockEvent::Acquire { thread, .. } if *thread == me))
            .collect();
        assert_eq!(ours.len(), 2);
        match ours[1] {
            LockEvent::Acquire { tier, held, .. } => {
                assert_eq!(*tier, LockTier::Shard);
                assert!(held.iter().any(|(t, _)| *t == LockTier::Bookkeeping));
            }
            _ => unreachable!(),
        }
    }
}
