//! Trace bus: structured observability events for the metadata framework
//! itself.
//!
//! The manager narrates its own lifecycle — subscriptions, the automatic
//! DFS inclusion/exclusion of dependencies (Section 2.4 of the paper),
//! trigger-propagation rounds (Section 3.2.3), periodic firings and
//! compute failures — to an installed [`TraceSink`]. With no sink
//! installed the hot path pays a single relaxed atomic load; event
//! construction is behind that gate.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use streammeta_time::{TimeSpan, Timestamp};

use crate::MetadataKey;

/// Sampling policy for causal lineage spans (see [`SpanContext`]).
///
/// Like the trace gate, the decision is one relaxed atomic load on the
/// hot path: with `Off` (the default) no span is ever minted and
/// propagation pays nothing beyond that load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpanSampling {
    /// No spans are minted (the default).
    #[default]
    Off,
    /// One of every `n` source updates mints a root span and carries
    /// lineage through its whole cascade. `Ratio(1)` traces everything.
    Ratio(u64),
}

/// Causal span context carried by a [`TraceRecord`].
///
/// A *root* span (`parent == None`, `roots == [span]`) is minted per
/// sampled source update — a `fire_event`/`notify_changed` call, a
/// periodic firing, or a subscription — and every downstream hop
/// (propagation recompute, retry, quarantine trip, observer
/// notification) gets a child span whose `parent` is the hop it was
/// caused by. In epoch propagation mode several coalesced source
/// updates feed one recompute, so `roots` lists *all* contributing root
/// span ids (sorted, deduplicated); in per-event mode it has exactly
/// one element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanContext {
    /// This hop's span id (unique per manager, minted from 1).
    pub span: u64,
    /// The causing hop's span id; `None` for root spans.
    pub parent: Option<u64>,
    /// Root span ids (trace ids) this hop descends from — more than one
    /// when coalesced epoch updates merged several cascades.
    pub roots: Vec<u64>,
    /// Hop count below the root (root = 0).
    pub depth: u32,
    /// When the hop started (the record's `at` is when it was emitted,
    /// i.e. the hop's end).
    pub start: Timestamp,
}

impl SpanContext {
    /// A root span: its own id is the trace id.
    pub fn root(span: u64, start: Timestamp) -> Self {
        SpanContext {
            span,
            parent: None,
            roots: vec![span],
            depth: 0,
            start,
        }
    }

    /// A child hop of `self` with a freshly minted id, inheriting the
    /// root set.
    pub fn child(&self, span: u64, start: Timestamp) -> Self {
        SpanContext {
            span,
            parent: Some(self.span),
            roots: self.roots.clone(),
            depth: self.depth + 1,
            start,
        }
    }
}

/// One structured event on the trace bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// An external subscription request arrived for `key`.
    Subscribe {
        /// The requested item.
        key: MetadataKey,
    },
    /// An external unsubscription arrived for `key`.
    Unsubscribe {
        /// The released item.
        key: MetadataKey,
    },
    /// The inclusion DFS materialised a handler for `key`.
    Include {
        /// The included item.
        key: MetadataKey,
        /// The item's provision mechanism.
        mechanism: &'static str,
        /// Dependency depth below the subscription root (root = 0).
        depth: usize,
    },
    /// Exclusion dropped the handler of `key`.
    Exclude {
        /// The excluded item.
        key: MetadataKey,
        /// Handlers still alive after this drop.
        remaining: usize,
    },
    /// One handler was recomputed during a trigger-propagation round.
    PropagationStep {
        /// Identifier of the propagation round (monotone per manager).
        round: u64,
        /// The recomputed item.
        key: MetadataKey,
        /// Distance from the origin in the inverted dependency graph.
        depth: usize,
        /// Whether the recomputation changed the stored value.
        changed: bool,
    },
    /// A periodic handler fired at a window boundary.
    PeriodicFired {
        /// The refreshed item.
        key: MetadataKey,
        /// The scheduled window boundary.
        boundary: Timestamp,
        /// The actual instant the refresh ran.
        fired_at: Timestamp,
        /// Whether the refresh ran a full window late (deadline miss).
        missed: bool,
    },
    /// A compute function panicked; the value became `Unavailable`.
    ComputeFailed {
        /// The failing item.
        key: MetadataKey,
    },
    /// An evaluation overran its declared compute budget.
    DeadlineExceeded {
        /// The slow item.
        key: MetadataKey,
        /// The declared budget.
        budget: TimeSpan,
        /// The measured evaluation time.
        elapsed: TimeSpan,
    },
    /// A failed evaluation scheduled a backoff retry.
    RetryScheduled {
        /// The failing item.
        key: MetadataKey,
        /// Retry number within the current failure episode (1-based).
        attempt: u32,
        /// Delay until the retry fires.
        delay: TimeSpan,
    },
    /// Repeated failures tripped the quarantine circuit breaker.
    QuarantineTripped {
        /// The quarantined item.
        key: MetadataKey,
        /// When the cool-down ends and the recovery probe runs.
        until: Timestamp,
    },
    /// A quarantined item's recovery probe succeeded.
    QuarantineRecovered {
        /// The recovered item.
        key: MetadataKey,
    },
    /// A refresh stored a changed value (the version is the handler's
    /// monotone store counter — the tracelint T1 monotonicity witness).
    ValueStored {
        /// The updated item.
        key: MetadataKey,
        /// The stored value's version.
        version: u64,
    },
    /// A sampled source update minted a root span: the anchor every
    /// downstream hop's lineage must resolve to (tracelint rule T8).
    /// Emitted once per sampled `fire_event` / `notify_changed` call,
    /// before the update is swept (per-event mode) or enqueued (epoch
    /// mode).
    SourceUpdate {
        /// The updated source, rendered (`n1/rate` item or `n1!tick`
        /// event).
        origin: String,
        /// `"item"` or `"event"`.
        origin_kind: &'static str,
    },
    /// A stored value change was delivered to push observers — the end
    /// of a causal cascade, and the event whose lineage tracelint T8
    /// verifies back to a [`TraceEvent::SourceUpdate`] anchor.
    Notified {
        /// The updated item.
        key: MetadataKey,
        /// The delivered value's version.
        version: u64,
        /// Observers the snapshot was delivered to.
        observers: usize,
    },
    /// An epoch flush swept a batch of coalesced source updates
    /// (epoch propagation mode only; the per-item recomputations still
    /// emit their own [`TraceEvent::PropagationStep`] records).
    EpochFlushed {
        /// Identifier of the epoch (monotone per manager).
        epoch: u64,
        /// Distinct source updates swept by this epoch.
        origins: usize,
        /// Handlers recomputed by the sweep.
        recomputed: usize,
        /// Deepest recomputed handler's BFS distance from its origin.
        max_depth: usize,
    },
}

impl TraceEvent {
    /// Short machine-readable event name (used by the JSONL export and
    /// the profiler's pretty-printer).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Subscribe { .. } => "subscribe",
            TraceEvent::Unsubscribe { .. } => "unsubscribe",
            TraceEvent::Include { .. } => "include",
            TraceEvent::Exclude { .. } => "exclude",
            TraceEvent::PropagationStep { .. } => "propagation_step",
            TraceEvent::PeriodicFired { .. } => "periodic_fired",
            TraceEvent::ComputeFailed { .. } => "compute_failed",
            TraceEvent::DeadlineExceeded { .. } => "deadline_exceeded",
            TraceEvent::RetryScheduled { .. } => "retry_scheduled",
            TraceEvent::QuarantineTripped { .. } => "quarantine_tripped",
            TraceEvent::QuarantineRecovered { .. } => "quarantine_recovered",
            TraceEvent::ValueStored { .. } => "value_stored",
            TraceEvent::SourceUpdate { .. } => "source_update",
            TraceEvent::Notified { .. } => "notified",
            TraceEvent::EpochFlushed { .. } => "epoch_flushed",
        }
    }

    /// The item the event concerns, if any (manager-wide events like
    /// [`TraceEvent::EpochFlushed`] have none).
    pub fn key(&self) -> Option<&MetadataKey> {
        match self {
            TraceEvent::Subscribe { key }
            | TraceEvent::Unsubscribe { key }
            | TraceEvent::Include { key, .. }
            | TraceEvent::Exclude { key, .. }
            | TraceEvent::PropagationStep { key, .. }
            | TraceEvent::PeriodicFired { key, .. }
            | TraceEvent::ComputeFailed { key }
            | TraceEvent::DeadlineExceeded { key, .. }
            | TraceEvent::RetryScheduled { key, .. }
            | TraceEvent::QuarantineTripped { key, .. }
            | TraceEvent::QuarantineRecovered { key }
            | TraceEvent::ValueStored { key, .. }
            | TraceEvent::Notified { key, .. } => Some(key),
            TraceEvent::SourceUpdate { .. } | TraceEvent::EpochFlushed { .. } => None,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Subscribe { key } => write!(f, "subscribe {key}"),
            TraceEvent::Unsubscribe { key } => write!(f, "unsubscribe {key}"),
            TraceEvent::Include {
                key,
                mechanism,
                depth,
            } => write!(f, "include {key} mechanism={mechanism} depth={depth}"),
            TraceEvent::Exclude { key, remaining } => {
                write!(f, "exclude {key} remaining={remaining}")
            }
            TraceEvent::PropagationStep {
                round,
                key,
                depth,
                changed,
            } => write!(
                f,
                "propagation round={round} {key} depth={depth} changed={changed}"
            ),
            TraceEvent::PeriodicFired {
                key,
                boundary,
                fired_at,
                missed,
            } => write!(
                f,
                "periodic {key} boundary={boundary} fired_at={fired_at} missed={missed}"
            ),
            TraceEvent::ComputeFailed { key } => write!(f, "compute_failed {key}"),
            TraceEvent::DeadlineExceeded {
                key,
                budget,
                elapsed,
            } => write!(
                f,
                "deadline_exceeded {key} budget={budget} elapsed={elapsed}"
            ),
            TraceEvent::RetryScheduled {
                key,
                attempt,
                delay,
            } => write!(f, "retry_scheduled {key} attempt={attempt} delay={delay}"),
            TraceEvent::QuarantineTripped { key, until } => {
                write!(f, "quarantine_tripped {key} until={until}")
            }
            TraceEvent::QuarantineRecovered { key } => {
                write!(f, "quarantine_recovered {key}")
            }
            TraceEvent::ValueStored { key, version } => {
                write!(f, "value_stored {key} version={version}")
            }
            TraceEvent::SourceUpdate {
                origin,
                origin_kind,
            } => write!(f, "source_update {origin} kind={origin_kind}"),
            TraceEvent::Notified {
                key,
                version,
                observers,
            } => write!(f, "notified {key} version={version} observers={observers}"),
            TraceEvent::EpochFlushed {
                epoch,
                origins,
                recomputed,
                max_depth,
            } => write!(
                f,
                "epoch_flushed epoch={epoch} origins={origins} recomputed={recomputed} max_depth={max_depth}"
            ),
        }
    }
}

/// One sequenced, timestamped trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Per-manager emission sequence number.
    pub seq: u64,
    /// Clock instant of emission.
    pub at: Timestamp,
    /// The event.
    pub event: TraceEvent,
    /// Causal lineage, when span sampling caught this hop.
    pub span: Option<SpanContext>,
    /// Compact emitting-thread id (assigned first-sight per manager),
    /// when [`crate::MetadataManager::set_trace_thread_ids`] is on — the
    /// Chrome-trace exporter's flame track.
    pub tid: Option<u64>,
    /// Partition id of the emitting manager, when it is part of a
    /// [`crate::PartitionedMetadataPlane`] (see
    /// [`crate::MetadataManager::set_trace_partition`]). Merged
    /// multi-partition traces key per-item lint state by
    /// `(part, key)`.
    pub part: Option<u64>,
}

impl TraceRecord {
    /// A record with no span context, thread id or partition tag.
    pub fn new(seq: u64, at: Timestamp, event: TraceEvent) -> Self {
        TraceRecord {
            seq,
            at,
            event,
            span: None,
            tid: None,
            part: None,
        }
    }

    /// The record as one JSON object (a JSONL line, without the newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"seq\":");
        out.push_str(&self.seq.to_string());
        out.push_str(",\"at\":");
        out.push_str(&self.at.units().to_string());
        out.push_str(",\"event\":\"");
        out.push_str(self.event.kind());
        out.push('"');
        if let Some(key) = self.event.key() {
            out.push_str(",\"key\":\"");
            push_escaped(&mut out, &key.to_string());
            out.push('"');
        }
        match &self.event {
            TraceEvent::Include {
                mechanism, depth, ..
            } => {
                out.push_str(",\"mechanism\":\"");
                push_escaped(&mut out, mechanism);
                out.push_str("\",\"depth\":");
                out.push_str(&depth.to_string());
            }
            TraceEvent::Exclude { remaining, .. } => {
                out.push_str(",\"remaining\":");
                out.push_str(&remaining.to_string());
            }
            TraceEvent::PropagationStep {
                round,
                depth,
                changed,
                ..
            } => {
                out.push_str(",\"round\":");
                out.push_str(&round.to_string());
                out.push_str(",\"depth\":");
                out.push_str(&depth.to_string());
                out.push_str(",\"changed\":");
                out.push_str(if *changed { "true" } else { "false" });
            }
            TraceEvent::PeriodicFired {
                boundary,
                fired_at,
                missed,
                ..
            } => {
                out.push_str(",\"boundary\":");
                out.push_str(&boundary.units().to_string());
                out.push_str(",\"fired_at\":");
                out.push_str(&fired_at.units().to_string());
                out.push_str(",\"missed\":");
                out.push_str(if *missed { "true" } else { "false" });
            }
            TraceEvent::DeadlineExceeded {
                budget, elapsed, ..
            } => {
                out.push_str(",\"budget\":");
                out.push_str(&budget.units().to_string());
                out.push_str(",\"elapsed\":");
                out.push_str(&elapsed.units().to_string());
            }
            TraceEvent::RetryScheduled { attempt, delay, .. } => {
                out.push_str(",\"attempt\":");
                out.push_str(&attempt.to_string());
                out.push_str(",\"delay\":");
                out.push_str(&delay.units().to_string());
            }
            TraceEvent::QuarantineTripped { until, .. } => {
                out.push_str(",\"until\":");
                out.push_str(&until.units().to_string());
            }
            TraceEvent::ValueStored { version, .. } => {
                out.push_str(",\"version\":");
                out.push_str(&version.to_string());
            }
            TraceEvent::EpochFlushed {
                epoch,
                origins,
                recomputed,
                max_depth,
            } => {
                out.push_str(",\"epoch\":");
                out.push_str(&epoch.to_string());
                out.push_str(",\"origins\":");
                out.push_str(&origins.to_string());
                out.push_str(",\"recomputed\":");
                out.push_str(&recomputed.to_string());
                out.push_str(",\"max_depth\":");
                out.push_str(&max_depth.to_string());
            }
            TraceEvent::SourceUpdate {
                origin,
                origin_kind,
            } => {
                out.push_str(",\"origin\":\"");
                push_escaped(&mut out, origin);
                out.push_str("\",\"origin_kind\":\"");
                push_escaped(&mut out, origin_kind);
                out.push('"');
            }
            TraceEvent::Notified {
                version, observers, ..
            } => {
                out.push_str(",\"version\":");
                out.push_str(&version.to_string());
                out.push_str(",\"observers\":");
                out.push_str(&observers.to_string());
            }
            TraceEvent::Subscribe { .. }
            | TraceEvent::Unsubscribe { .. }
            | TraceEvent::ComputeFailed { .. }
            | TraceEvent::QuarantineRecovered { .. } => {}
        }
        if let Some(span) = &self.span {
            out.push_str(",\"span\":");
            out.push_str(&span.span.to_string());
            if let Some(parent) = span.parent {
                out.push_str(",\"parent\":");
                out.push_str(&parent.to_string());
            }
            // Roots are string-encoded (comma-separated) because the
            // flat JSONL dialect tracelint parses has scalar values only.
            out.push_str(",\"roots\":\"");
            for (i, r) in span.roots.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&r.to_string());
            }
            out.push_str("\",\"span_depth\":");
            out.push_str(&span.depth.to_string());
            out.push_str(",\"span_start\":");
            out.push_str(&span.start.units().to_string());
        }
        if let Some(tid) = self.tid {
            out.push_str(",\"tid\":");
            out.push_str(&tid.to_string());
        }
        if let Some(part) = self.part {
            out.push_str(",\"part\":");
            out.push_str(&part.to_string());
        }
        out.push('}');
        out
    }
}

fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Receives trace records from a [`crate::MetadataManager`].
///
/// Implementations must be cheap and non-blocking — records are emitted
/// from inside subscription and propagation paths.
pub trait TraceSink: Send + Sync {
    /// Accepts one record.
    fn record(&self, record: TraceRecord);
}

/// A bounded in-memory trace sink: keeps the most recent `capacity`
/// records, counting the ones it had to evict.
pub struct RingBufferSink {
    capacity: usize,
    buf: Mutex<VecDeque<TraceRecord>>,
    dropped: AtomicU64,
}

impl RingBufferSink {
    /// A ring buffer holding at most `capacity` records (at least 1).
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(RingBufferSink {
            capacity: capacity.max(1),
            buf: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 1024))),
            dropped: AtomicU64::new(0),
        })
    }

    /// Maximum retained records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Retained records, oldest first.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.buf.lock().iter().cloned().collect()
    }

    /// The most recent `n` retained records, oldest first.
    pub fn tail(&self, n: usize) -> Vec<TraceRecord> {
        let buf = self.buf.lock();
        let skip = buf.len().saturating_sub(n);
        buf.iter().skip(skip).cloned().collect()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.lock().is_empty()
    }

    /// Discards all retained records (the drop counter is kept).
    pub fn clear(&self) {
        self.buf.lock().clear();
    }

    /// The retained records as JSON Lines (one object per line).
    pub fn to_jsonl(&self) -> String {
        let buf = self.buf.lock();
        let mut out = String::with_capacity(buf.len() * 96);
        for rec in buf.iter() {
            out.push_str(&rec.to_json());
            out.push('\n');
        }
        out
    }
}

impl TraceSink for RingBufferSink {
    fn record(&self, record: TraceRecord) {
        let mut buf = self.buf.lock();
        if buf.len() == self.capacity {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(record);
    }
}

/// A bounded-file JSONL trace sink with rotation.
///
/// [`RingBufferSink`] silently evicts once wrapped, so a long chaos run
/// lints an incomplete trace. This sink streams every record to
/// `path` as JSON Lines and, when the active file exceeds `max_bytes`,
/// rotates it to `<path>.1` (overwriting any previous rotation) and
/// starts a fresh file — so the two files together always hold the most
/// recent window *without gaps inside it*, and no record is dropped
/// mid-file. The rotation count is exported through the `sys.trace`
/// catalog relation.
pub struct RotatingFileSink {
    path: std::path::PathBuf,
    max_bytes: u64,
    state: Mutex<FileState>,
    rotations: AtomicU64,
    records: AtomicU64,
}

struct FileState {
    file: std::fs::File,
    written: u64,
}

impl RotatingFileSink {
    /// Creates (truncating) `path` and writes JSONL records to it,
    /// rotating to `<path>.1` whenever the active file would exceed
    /// `max_bytes` (at least 4 KiB).
    pub fn create(
        path: impl Into<std::path::PathBuf>,
        max_bytes: u64,
    ) -> std::io::Result<Arc<Self>> {
        let path = path.into();
        let file = std::fs::File::create(&path)?;
        Ok(Arc::new(RotatingFileSink {
            path,
            max_bytes: max_bytes.max(4096),
            state: Mutex::new(FileState { file, written: 0 }),
            rotations: AtomicU64::new(0),
            records: AtomicU64::new(0),
        }))
    }

    /// The active file's path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// The rotated file's path (`<path>.1`), whether or not it exists yet.
    pub fn rotated_path(&self) -> std::path::PathBuf {
        let mut os = self.path.as_os_str().to_owned();
        os.push(".1");
        std::path::PathBuf::from(os)
    }

    /// How many times the active file has been rotated out.
    pub fn rotations(&self) -> u64 {
        self.rotations.load(Ordering::Relaxed)
    }

    /// Total records written across all rotations.
    pub fn records_written(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    /// Flushes OS buffers on the active file.
    pub fn flush(&self) -> std::io::Result<()> {
        use std::io::Write;
        self.state.lock().file.flush()
    }

    /// Reads the full retained trace back (rotated file first, then the
    /// active one), as JSONL.
    pub fn read_retained(&self) -> std::io::Result<String> {
        let _guard = self.state.lock();
        let mut out = String::new();
        if let Ok(older) = std::fs::read_to_string(self.rotated_path()) {
            out.push_str(&older);
        }
        out.push_str(&std::fs::read_to_string(&self.path)?);
        Ok(out)
    }
}

impl TraceSink for RotatingFileSink {
    fn record(&self, record: TraceRecord) {
        use std::io::Write;
        let line = record.to_json();
        let mut state = self.state.lock();
        if state.written > 0 && state.written + line.len() as u64 + 1 > self.max_bytes {
            // Rotate: flush, move aside, reopen. Failures degrade to
            // keeping the current file (the sink must never panic on the
            // propagation path).
            let _ = state.file.flush();
            let _ = std::fs::rename(&self.path, self.rotated_path());
            if let Ok(fresh) = std::fs::File::create(&self.path) {
                state.file = fresh;
                state.written = 0;
                self.rotations.fetch_add(1, Ordering::Relaxed);
            }
        }
        if writeln!(state.file, "{line}").is_ok() {
            state.written += line.len() as u64 + 1;
            self.records.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// One finished causal hop, as materialised by the `sys.spans` catalog
/// relation (see [`SpanStore`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The hop's span id.
    pub span: u64,
    /// The causing hop's span id; `None` for roots.
    pub parent: Option<u64>,
    /// The first contributing root span id (the trace id).
    pub root: u64,
    /// Number of contributing roots (> 1 for coalesced epoch hops).
    pub roots: usize,
    /// The item the hop concerned, if any.
    pub key: Option<MetadataKey>,
    /// Kind of the trace event that closed the hop.
    pub kind: &'static str,
    /// Hop count below the root.
    pub depth: u32,
    /// When the hop started.
    pub start: Timestamp,
    /// When the hop's event was emitted.
    pub end: Timestamp,
}

impl SpanRecord {
    /// The hop's duration in clock units.
    pub fn duration(&self) -> u64 {
        self.end.units().saturating_sub(self.start.units())
    }
}

/// A bounded ring of finished spans backing the `sys.spans` catalog
/// relation, installed by
/// [`crate::MetadataManager::enable_catalog_spans`]. Independent of the
/// trace sink: spans are recorded here whenever sampling mints them,
/// even with no trace sink installed.
pub struct SpanStore {
    capacity: usize,
    buf: Mutex<VecDeque<SpanRecord>>,
    dropped: AtomicU64,
}

impl SpanStore {
    /// A span ring holding at most `capacity` records (at least 1).
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(SpanStore {
            capacity: capacity.max(1),
            buf: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 1024))),
            dropped: AtomicU64::new(0),
        })
    }

    /// Maximum retained spans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Spans evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Appends one finished span, evicting the oldest when full.
    pub fn record(&self, record: SpanRecord) {
        let mut buf = self.buf.lock();
        if buf.len() == self.capacity {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(record);
    }

    /// Retained spans, oldest first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.buf.lock().iter().cloned().collect()
    }

    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.lock().is_empty()
    }

    /// Discards all retained spans (the drop counter is kept).
    pub fn clear(&self) {
        self.buf.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn rec(seq: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord::new(seq, Timestamp(seq), event)
    }

    fn key(path: &str) -> MetadataKey {
        MetadataKey::new(NodeId(1), path)
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let sink = RingBufferSink::new(2);
        for i in 0..4 {
            sink.record(rec(i, TraceEvent::Subscribe { key: key("a") }));
        }
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 2);
        let snap = sink.snapshot();
        assert_eq!(snap[0].seq, 2);
        assert_eq!(snap[1].seq, 3);
        sink.clear();
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 2);
    }

    #[test]
    fn jsonl_renders_one_object_per_line() {
        let sink = RingBufferSink::new(8);
        sink.record(rec(
            0,
            TraceEvent::Include {
                key: key("rate"),
                mechanism: "periodic",
                depth: 2,
            },
        ));
        sink.record(rec(
            1,
            TraceEvent::PeriodicFired {
                key: key("rate"),
                boundary: Timestamp(100),
                fired_at: Timestamp(105),
                missed: false,
            },
        ));
        let jsonl = sink.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"event\":\"include\""));
        assert!(lines[0].contains("\"mechanism\":\"periodic\""));
        assert!(lines[0].contains("\"depth\":2"));
        assert!(lines[1].contains("\"boundary\":100"));
        assert!(lines[1].contains("\"missed\":false"));
    }

    #[test]
    fn containment_events_render() {
        let e = TraceEvent::DeadlineExceeded {
            key: key("rate"),
            budget: TimeSpan(5),
            elapsed: TimeSpan(9),
        };
        assert_eq!(e.kind(), "deadline_exceeded");
        let json = rec(0, e).to_json();
        assert!(json.contains("\"budget\":5"));
        assert!(json.contains("\"elapsed\":9"));

        let e = TraceEvent::RetryScheduled {
            key: key("rate"),
            attempt: 2,
            delay: TimeSpan(12),
        };
        let json = rec(1, e).to_json();
        assert!(json.contains("\"attempt\":2"));
        assert!(json.contains("\"delay\":12"));

        let e = TraceEvent::QuarantineTripped {
            key: key("rate"),
            until: Timestamp(400),
        };
        assert_eq!(format!("{e}"), "quarantine_tripped n1/rate until=400");
        assert!(rec(2, e).to_json().contains("\"until\":400"));

        let e = TraceEvent::QuarantineRecovered { key: key("rate") };
        assert_eq!(e.key(), Some(&key("rate")));
        assert!(rec(3, e)
            .to_json()
            .contains("\"event\":\"quarantine_recovered\""));
    }

    #[test]
    fn epoch_flushed_is_keyless_and_renders() {
        let e = TraceEvent::EpochFlushed {
            epoch: 7,
            origins: 3,
            recomputed: 12,
            max_depth: 2,
        };
        assert_eq!(e.kind(), "epoch_flushed");
        assert_eq!(e.key(), None);
        assert_eq!(
            format!("{e}"),
            "epoch_flushed epoch=7 origins=3 recomputed=12 max_depth=2"
        );
        let json = rec(0, e).to_json();
        assert!(!json.contains("\"key\""));
        assert!(json.contains("\"epoch\":7"));
        assert!(json.contains("\"origins\":3"));
        assert!(json.contains("\"recomputed\":12"));
        assert!(json.contains("\"max_depth\":2"));
    }

    #[test]
    fn value_stored_renders() {
        let e = TraceEvent::ValueStored {
            key: key("rate"),
            version: 17,
        };
        assert_eq!(e.kind(), "value_stored");
        assert_eq!(e.key(), Some(&key("rate")));
        assert_eq!(format!("{e}"), "value_stored n1/rate version=17");
        let json = rec(4, e).to_json();
        assert!(json.contains("\"event\":\"value_stored\""));
        assert!(json.contains("\"version\":17"));
    }

    #[test]
    fn rotating_file_sink_rotates_without_gaps() {
        let dir = std::env::temp_dir().join(format!(
            "streammeta_rot_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let sink = RotatingFileSink::create(&path, 4096).unwrap();
        // Each line is ~60 bytes; write enough to force >1 rotation.
        for i in 0..200 {
            sink.record(rec(i, TraceEvent::Subscribe { key: key("a") }));
        }
        sink.flush().unwrap();
        assert!(sink.rotations() >= 1, "expected at least one rotation");
        assert_eq!(sink.records_written(), 200);
        // The retained window (rotated + active) is contiguous: seqs
        // strictly increase line over line and end at the last record.
        let retained = sink.read_retained().unwrap();
        let seqs: Vec<u64> = retained
            .lines()
            .map(|l| {
                let rest = l.strip_prefix("{\"seq\":").unwrap();
                rest[..rest.find(',').unwrap()].parse().unwrap()
            })
            .collect();
        assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1), "gap in window");
        assert_eq!(*seqs.last().unwrap(), 199);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn span_and_tid_fields_render() {
        let mut r = rec(
            9,
            TraceEvent::Notified {
                key: key("rate"),
                version: 3,
                observers: 2,
            },
        );
        r.span = Some(SpanContext {
            span: 12,
            parent: Some(7),
            roots: vec![1, 4],
            depth: 2,
            start: Timestamp(5),
        });
        r.tid = Some(1);
        let json = r.to_json();
        assert!(json.contains("\"event\":\"notified\""));
        assert!(json.contains("\"version\":3"));
        assert!(json.contains("\"observers\":2"));
        assert!(json.contains("\"span\":12"));
        assert!(json.contains("\"parent\":7"));
        assert!(json.contains("\"roots\":\"1,4\""));
        assert!(json.contains("\"span_depth\":2"));
        assert!(json.contains("\"span_start\":5"));
        assert!(json.contains("\"tid\":1"));

        let root = SpanContext::root(4, Timestamp(1));
        assert_eq!(root.roots, vec![4]);
        let child = root.child(9, Timestamp(2));
        assert_eq!(child.parent, Some(4));
        assert_eq!(child.roots, vec![4]);
        assert_eq!(child.depth, 1);
        let mut r = rec(
            0,
            TraceEvent::SourceUpdate {
                origin: "n1!tick".into(),
                origin_kind: "event",
            },
        );
        r.span = Some(root);
        let json = r.to_json();
        assert!(json.contains("\"origin\":\"n1!tick\""));
        assert!(json.contains("\"origin_kind\":\"event\""));
        assert!(json.contains("\"span\":4"));
        assert!(!json.contains("\"parent\""), "roots carry no parent");
    }

    #[test]
    fn span_store_evicts_oldest_and_counts_drops() {
        let store = SpanStore::new(2);
        for i in 0..4u64 {
            store.record(SpanRecord {
                span: i + 1,
                parent: None,
                root: i + 1,
                roots: 1,
                key: None,
                kind: "source_update",
                depth: 0,
                start: Timestamp(i),
                end: Timestamp(i + 3),
            });
        }
        assert_eq!(store.len(), 2);
        assert_eq!(store.dropped(), 2);
        let snap = store.snapshot();
        assert_eq!(snap[0].span, 3);
        assert_eq!(snap[0].duration(), 3);
        store.clear();
        assert!(store.is_empty());
    }

    #[test]
    fn rotation_boundary_keeps_the_exact_fit_line_in_one_file() {
        let dir = std::env::temp_dir().join(format!(
            "streammeta_rotb_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        // A key long enough that a fixed number of identical lines fills
        // the minimum file size exactly.
        let line_len = rec(0, TraceEvent::Subscribe { key: key("a") })
            .to_json()
            .len();
        let pad = 512 - (line_len + 1);
        let long_key = key(&format!("a{}", "x".repeat(pad)));
        let one = |seq: u64| {
            rec(
                seq,
                TraceEvent::Subscribe {
                    key: long_key.clone(),
                },
            )
        };
        assert_eq!(one(0).to_json().len() + 1, 512, "line length is exact");
        let sink = RotatingFileSink::create(&path, 4096).unwrap();
        // Eight 512-byte lines land exactly on the 4096-byte limit: the
        // eighth fits (written + len + 1 == max_bytes is not over) and
        // must NOT rotate — it stays wholly in the active file.
        for i in 0..8 {
            sink.record(one(i));
        }
        sink.flush().unwrap();
        assert_eq!(sink.rotations(), 0, "exact fit must not rotate");
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            4096,
            "active file filled to the limit"
        );
        assert!(!sink.rotated_path().exists());
        // The ninth line overflows: rotate first, then write — the line
        // appears exactly once, wholly in the fresh active file.
        sink.record(one(8));
        sink.flush().unwrap();
        assert_eq!(sink.rotations(), 1);
        let active = std::fs::read_to_string(&path).unwrap();
        let rotated = std::fs::read_to_string(sink.rotated_path()).unwrap();
        assert_eq!(active.lines().count(), 1);
        assert_eq!(rotated.lines().count(), 8);
        assert!(active.contains("\"seq\":8"));
        assert!(!rotated.contains("\"seq\":8"), "boundary line duplicated");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_under_concurrent_writers_never_tears_a_line() {
        let dir = std::env::temp_dir().join(format!(
            "streammeta_rotc_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let sink = RotatingFileSink::create(&path, 4096).unwrap();
        let per_thread = 200u64;
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let sink = sink.clone();
                scope.spawn(move || {
                    for i in 0..per_thread {
                        sink.record(rec(
                            t * per_thread + i,
                            TraceEvent::ValueStored {
                                key: key("concurrent"),
                                version: i + 1,
                            },
                        ));
                    }
                });
            }
        });
        sink.flush().unwrap();
        assert_eq!(sink.records_written(), 4 * per_thread);
        assert!(sink.rotations() >= 1, "workload must rotate");
        // Every retained line is a complete JSONL object — rotation must
        // never interleave two writers' partial lines.
        let retained = sink.read_retained().unwrap();
        let mut lines = 0usize;
        for line in retained.lines() {
            assert!(
                line.starts_with("{\"seq\":") && line.ends_with('}'),
                "torn line: {line:?}"
            );
            assert!(
                line.contains("\"event\":\"value_stored\""),
                "torn line: {line:?}"
            );
            lines += 1;
        }
        assert!(lines > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partition_tag_renders_only_when_present() {
        let bare = rec(0, TraceEvent::Subscribe { key: key("a") });
        assert!(!bare.to_json().contains("\"part\""));
        let mut tagged = rec(
            1,
            TraceEvent::ValueStored {
                key: key("a"),
                version: 2,
            },
        );
        tagged.part = Some(5);
        assert!(tagged.to_json().contains("\"part\":5"));
    }

    #[test]
    fn event_kind_and_key_are_uniform() {
        let e = TraceEvent::Exclude {
            key: key("x"),
            remaining: 3,
        };
        assert_eq!(e.kind(), "exclude");
        assert_eq!(e.key(), Some(&key("x")));
        assert_eq!(format!("{e}"), "exclude n1/x remaining=3");
    }
}
