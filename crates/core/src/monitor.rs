//! Activatable monitors.
//!
//! Some metadata items require the node to gather information on the hot
//! processing path — e.g. the input rate requires counting incoming
//! elements (Section 4.4.1). The paper's `addMetadata` activates such
//! monitoring code when an item is first included and `removeMetadata`
//! deactivates it again, so *unused* items cost nothing at runtime.
//!
//! A monitor is therefore a cheap atomic cell guarded by an activation
//! count. The hot path calls [`Counter::record`], which is a single relaxed
//! load when inactive. Several items may share a monitor (the input counter
//! feeds both `input_rate` and `input_count`), hence activation counts
//! rather than a flag.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared activation state of a monitor.
#[derive(Debug, Default)]
struct Activation {
    users: AtomicU64,
}

impl Activation {
    #[inline]
    fn is_active(&self) -> bool {
        self.users.load(Ordering::Relaxed) > 0
    }
    fn activate(&self) {
        self.users.fetch_add(1, Ordering::Relaxed);
    }
    fn deactivate(&self) {
        let prev = self.users.fetch_sub(1, Ordering::Relaxed);
        debug_assert!(prev > 0, "monitor deactivated more often than activated");
    }
}

/// An activatable event counter.
#[derive(Debug, Default)]
pub struct Counter {
    activation: Activation,
    count: AtomicU64,
}

impl Counter {
    /// A new, inactive counter.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// A counter that is permanently active (for information the node
    /// needs anyway, independent of metadata).
    pub fn always_on() -> Arc<Self> {
        let c = Self::default();
        c.activation.activate();
        Arc::new(c)
    }

    /// Records one event if the monitor is active. Hot path.
    #[inline]
    pub fn record(&self) {
        self.record_n(1);
    }

    /// Records `n` events if the monitor is active. Hot path.
    #[inline]
    pub fn record_n(&self, n: u64) {
        if self.activation.is_active() {
            self.count.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The number of events recorded while active.
    pub fn value(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Registers one user of the monitor (typically an `on_include` hook).
    pub fn activate(&self) {
        self.activation.activate();
    }

    /// Deregisters one user (typically an `on_exclude` hook).
    pub fn deactivate(&self) {
        self.activation.deactivate();
    }

    /// Whether any user keeps the monitor active.
    pub fn is_active(&self) -> bool {
        self.activation.is_active()
    }
}

/// An activatable gauge holding an `f64`.
#[derive(Debug)]
pub struct Gauge {
    activation: Activation,
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            activation: Activation::default(),
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// A new, inactive gauge reading 0.0.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// A gauge that is permanently active.
    pub fn always_on() -> Arc<Self> {
        let g = Self::default();
        g.activation.activate();
        Arc::new(g)
    }

    /// Stores `v` if the monitor is active. Hot path.
    #[inline]
    pub fn set(&self, v: f64) {
        if self.activation.is_active() {
            self.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Adds `v` if the monitor is active (compare-and-swap loop).
    #[inline]
    pub fn add(&self, v: f64) {
        if !self.activation.is_active() {
            return;
        }
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The current reading.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Registers one user of the monitor.
    pub fn activate(&self) {
        self.activation.activate();
    }

    /// Deregisters one user.
    pub fn deactivate(&self) {
        self.activation.deactivate();
    }

    /// Whether any user keeps the monitor active.
    pub fn is_active(&self) -> bool {
        self.activation.is_active()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_counter_records_nothing() {
        let c = Counter::new();
        c.record();
        c.record_n(10);
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn active_counter_records() {
        let c = Counter::new();
        c.activate();
        c.record();
        c.record_n(4);
        assert_eq!(c.value(), 5);
        c.deactivate();
        c.record();
        assert_eq!(c.value(), 5);
    }

    #[test]
    fn activation_counts_nest() {
        let c = Counter::new();
        c.activate();
        c.activate();
        c.deactivate();
        assert!(c.is_active());
        c.record();
        assert_eq!(c.value(), 1);
        c.deactivate();
        assert!(!c.is_active());
    }

    #[test]
    fn always_on_counter() {
        let c = Counter::always_on();
        c.record();
        assert_eq!(c.value(), 1);
    }

    #[test]
    fn gauge_set_and_add() {
        let g = Gauge::new();
        g.set(3.0); // inactive: ignored
        assert_eq!(g.value(), 0.0);
        g.activate();
        g.set(3.0);
        g.add(1.5);
        assert_eq!(g.value(), 4.5);
    }

    #[test]
    fn gauge_add_from_many_threads() {
        let g = Gauge::always_on();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        g.add(1.0);
                    }
                });
            }
        });
        assert_eq!(g.value(), 4000.0);
    }

    #[test]
    fn counter_concurrent_records() {
        let c = Counter::always_on();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.record();
                    }
                });
            }
        });
        assert_eq!(c.value(), 4000);
    }
}
