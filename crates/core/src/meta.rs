//! Reflexive meta-metadata: the manager's own runtime statistics exposed
//! as ordinary metadata items.
//!
//! The paper motivates runtime metadata with "analysis gives insight into
//! system behavior" — and the metadata framework itself is a system worth
//! observing. [`MetadataManager::install_meta_node`] attaches a synthetic
//! node ([`META_NODE`]) whose items describe the manager: handler counts,
//! compute/update/access totals, the compute rate over a window, trigger
//! propagation depth, deadline misses, contained compute failures, and the
//! failure-containment state (retries, quarantined items, stale serves).
//! Consumers — a profiler's `Recorder`, a load shedder, an optimizer —
//! subscribe to them through the normal pub-sub API, with the usual
//! tailored-provision guarantee: nothing is maintained until subscribed.

use std::sync::Arc;

use streammeta_time::TimeSpan;

use crate::estimators::WindowDelta;
use crate::item::ItemDef;
use crate::manager::MetadataManager;
use crate::registry::NodeRegistry;
use crate::{MetadataValue, NodeId};

/// The synthetic query-graph node owning the manager's self-describing
/// metadata items. Reserved; real graph nodes must not use this id.
pub const META_NODE: NodeId = NodeId(u32::MAX);

impl MetadataManager {
    /// Attaches the reflexive meta node and returns its registry.
    ///
    /// All items are on-demand snapshots of manager counters except
    /// `meta.computes_rate`, a periodic rate (computes per time unit) over
    /// `rate_window`. Installation defines items only — no handler exists
    /// and nothing is computed until something subscribes.
    pub fn install_meta_node(self: &Arc<Self>, rate_window: TimeSpan) -> Arc<NodeRegistry> {
        let reg = NodeRegistry::new(META_NODE);
        let stat = |name: &str, doc: &str, read: fn(&MetadataManager) -> MetadataValue| {
            let weak = self.weak_self();
            ItemDef::on_demand(name)
                .doc(doc)
                .compute(move |_ctx| match weak.upgrade() {
                    Some(mgr) => read(&mgr),
                    None => MetadataValue::Unavailable,
                })
                .build()
        };
        reg.define(stat("meta.handlers", "live metadata handlers", |m| {
            MetadataValue::U64(m.handler_count() as u64)
        }));
        reg.define(stat(
            "meta.subscriptions",
            "sum of all subscription counts",
            |m| MetadataValue::U64(m.stats().subscriptions as u64),
        ));
        reg.define(stat(
            "meta.computes",
            "total compute-function evaluations",
            |m| MetadataValue::U64(m.stats().computes),
        ));
        reg.define(stat("meta.updates", "total stored value changes", |m| {
            MetadataValue::U64(m.stats().updates)
        }));
        reg.define(stat("meta.accesses", "total consumer accesses", |m| {
            MetadataValue::U64(m.stats().accesses)
        }));
        reg.define(stat(
            "meta.propagations",
            "total trigger-propagation rounds",
            |m| MetadataValue::U64(m.stats().propagations),
        ));
        reg.define(stat(
            "meta.propagation_depth",
            "high-water BFS depth of recent propagation rounds",
            |m| MetadataValue::U64(m.last_propagation_depth()),
        ));
        reg.define(stat(
            "meta.epochs",
            "epoch flushes performed in epoch propagation mode",
            |m| MetadataValue::U64(m.epoch_count()),
        ));
        reg.define(stat(
            "meta.coalesced_updates",
            "source updates coalesced into an already-pending epoch",
            |m| MetadataValue::U64(m.coalesced_update_count()),
        ));
        reg.define(stat(
            "meta.deadline_misses",
            "periodic refreshes that ran a full window late",
            |m| MetadataValue::U64(m.deadline_miss_count()),
        ));
        reg.define(stat(
            "meta.compute_failures",
            "contained compute-function panics",
            |m| MetadataValue::U64(m.stats().compute_failures),
        ));
        reg.define(stat(
            "meta.deadline_overruns",
            "evaluations that overran their declared compute deadline",
            |m| MetadataValue::U64(m.deadline_overrun_count()),
        ));
        reg.define(stat(
            "meta.retries",
            "backoff retries scheduled after failed evaluations",
            |m| MetadataValue::U64(m.retry_count()),
        ));
        reg.define(stat(
            "meta.quarantined",
            "currently quarantined metadata items",
            |m| MetadataValue::U64(m.quarantined_count() as u64),
        ));
        reg.define(stat(
            "meta.quarantine_trips",
            "times the quarantine circuit breaker tripped",
            |m| MetadataValue::U64(m.quarantine_trip_count()),
        ));
        reg.define(stat(
            "meta.stale_serves",
            "reads served a degraded (stale last-good) value",
            |m| MetadataValue::U64(m.stale_serve_count()),
        ));
        // Eviction accounting is split by sink kind: `trace_dropped` is
        // ring-buffer evictions only (records lost), `trace_rotated` is
        // file-sink rotations (records retired to the rotated file, not
        // lost). Conflating them made a healthy rotating file look like
        // data loss.
        reg.define(stat(
            "meta.trace_dropped",
            "records evicted from the catalog trace ring buffer",
            |m| match m.catalog_trace() {
                Some(sink) => MetadataValue::U64(sink.dropped()),
                None => MetadataValue::Unavailable,
            },
        ));
        reg.define(stat(
            "meta.trace_rotated",
            "size-limit rotations of the registered trace file sink",
            |m| match m.file_trace() {
                Some(sink) => MetadataValue::U64(sink.rotations()),
                None => MetadataValue::Unavailable,
            },
        ));
        reg.define(stat(
            "meta.spans_dropped",
            "finished spans evicted from the sys.spans ring",
            |m| match m.catalog_spans() {
                Some(store) => MetadataValue::U64(store.dropped()),
                None => MetadataValue::Unavailable,
            },
        ));
        reg.define(stat(
            "meta.remote_subscriptions",
            "live cross-partition proxy links homed on this partition",
            |m| MetadataValue::U64(m.remote_subscription_count()),
        ));
        reg.define(stat(
            "meta.remote_updates",
            "cross-partition update messages applied to local proxies",
            |m| MetadataValue::U64(m.remote_update_count()),
        ));
        reg.define(stat(
            "meta.fast_reads",
            "reads served through cached subscription handlers (no manager lock)",
            |m| MetadataValue::U64(m.fast_read_count()),
        ));
        reg.define(stat(
            "meta.shard_reads",
            "key-based handler lookups served by the sharded index",
            |m| MetadataValue::U64(m.shard_read_count()),
        ));
        let delta = WindowDelta::new(self.computes_counter().clone());
        reg.define(
            ItemDef::periodic("meta.computes_rate", rate_window)
                .doc("compute evaluations per time unit, per window")
                .compute(
                    move |ctx| match delta.rate_over(ctx.window().unwrap_or(TimeSpan::ZERO)) {
                        Some(r) => MetadataValue::F64(r),
                        None => MetadataValue::Unavailable,
                    },
                )
                .build(),
        );
        self.attach_node(reg.clone());
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ItemDef, MetadataKey};
    use streammeta_time::{Clock, TimeSpan, VirtualClock};

    fn setup() -> (Arc<VirtualClock>, Arc<MetadataManager>) {
        let clock = VirtualClock::shared();
        let mgr = MetadataManager::new(clock.clone());
        let reg = NodeRegistry::new(NodeId(0));
        reg.define(
            ItemDef::on_demand("x")
                .compute(|_| MetadataValue::U64(7))
                .build(),
        );
        mgr.attach_node(reg);
        mgr.install_meta_node(TimeSpan(10));
        (clock, mgr)
    }

    #[test]
    fn install_defines_without_computing() {
        let (_clock, mgr) = setup();
        assert!(mgr.registry(META_NODE).is_some());
        assert_eq!(mgr.handler_count(), 0);
        assert_eq!(mgr.stats().computes, 0);
    }

    #[test]
    fn meta_handlers_counts_itself() {
        let (_clock, mgr) = setup();
        let handlers = mgr
            .subscribe(MetadataKey::new(META_NODE, "meta.handlers"))
            .unwrap();
        // The meta item's own handler is part of the count it reports.
        assert_eq!(handlers.get().as_u64(), Some(1));
        let _x = mgr.subscribe(MetadataKey::new(NodeId(0), "x")).unwrap();
        assert_eq!(handlers.get().as_u64(), Some(2));
    }

    #[test]
    fn computes_rate_measures_manager_activity() {
        let (clock, mgr) = setup();
        let rate = mgr
            .subscribe(MetadataKey::new(META_NODE, "meta.computes_rate"))
            .unwrap();
        let x = mgr.subscribe(MetadataKey::new(NodeId(0), "x")).unwrap();
        assert!(!rate.get().is_available());
        for _ in 0..20 {
            x.get(); // one on-demand compute each
        }
        clock.advance(TimeSpan(10));
        mgr.periodic().advance_to(clock.now());
        // 20 accesses of `x` in a 10-unit window, plus the boundary
        // evaluation of the rate item itself: (20 + 1) / 10.
        assert_eq!(rate.get_f64(), Some(2.1));
    }

    #[test]
    fn trace_eviction_accounting_separates_drops_from_rotations() {
        let (_clock, mgr) = setup();
        let dropped = mgr
            .subscribe(MetadataKey::new(META_NODE, "meta.trace_dropped"))
            .unwrap();
        let rotated = mgr
            .subscribe(MetadataKey::new(META_NODE, "meta.trace_rotated"))
            .unwrap();
        // Neither sink installed yet.
        assert!(!dropped.get().is_available());
        assert!(!rotated.get().is_available());
        // A 2-record ring: the third record evicts one, rotations stay 0.
        mgr.enable_catalog_trace(2);
        let x = mgr.subscribe(MetadataKey::new(NodeId(0), "x")).unwrap();
        x.get();
        drop(x);
        assert!(dropped.get().as_u64().unwrap() > 0);
        assert!(!rotated.get().is_available());
        // A roomy file sink: rotations stay 0, and ring drops are not
        // double-counted into it.
        let dir = std::env::temp_dir().join(format!(
            "streammeta-meta-rot-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let file = crate::trace::RotatingFileSink::create(dir.join("t.jsonl"), 1 << 20).unwrap();
        mgr.set_file_trace(Some(file));
        assert_eq!(rotated.get().as_u64(), Some(0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn meta_counters_track_failures_and_misses() {
        let (clock, mgr) = setup();
        let reg = mgr.registry(NodeId(0)).unwrap();
        reg.define(
            ItemDef::on_demand("boom")
                .compute(|_| panic!("intentional"))
                .build(),
        );
        let failures = mgr
            .subscribe(MetadataKey::new(META_NODE, "meta.compute_failures"))
            .unwrap();
        let misses = mgr
            .subscribe(MetadataKey::new(META_NODE, "meta.deadline_misses"))
            .unwrap();
        assert_eq!(failures.get().as_u64(), Some(0));
        let boom = mgr.subscribe(MetadataKey::new(NodeId(0), "boom")).unwrap();
        assert_eq!(boom.get(), MetadataValue::Unavailable);
        assert_eq!(failures.get().as_u64(), Some(1));

        assert_eq!(misses.get().as_u64(), Some(0));
        reg.define(
            ItemDef::periodic("tick", TimeSpan(5))
                .compute(|ctx| MetadataValue::U64(ctx.now().units()))
                .build(),
        );
        let _tick = mgr.subscribe(MetadataKey::new(NodeId(0), "tick")).unwrap();
        // Jump four windows at once: the catch-up firings at t=5,10,15 all
        // complete a full window late; the one at t=20 is on time.
        clock.advance(TimeSpan(20));
        mgr.periodic().advance_to(clock.now());
        assert_eq!(misses.get().as_u64(), Some(3));
    }
}
