//! Identifiers for nodes, metadata items and events.
//!
//! Metadata items are assigned to query-graph nodes (Section 2.2 of the
//! paper): a [`MetadataKey`] is the pair of the owning [`NodeId`] and the
//! item's [`ItemPath`] within that node. Paths are dot-separated so that
//! metadata of *exchangeable modules* (Section 4.5) nests naturally —
//! `state.left.memory_usage` lives in the left state module of a join.

use std::fmt;
use std::sync::Arc;

/// Identifier of a query-graph node (source, operator, or sink).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Dot-separated path of a metadata item within a node.
///
/// Cheap to clone (`Arc<str>` inside). The segments before the final one
/// name nested modules.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ItemPath(Arc<str>);

impl ItemPath {
    /// A path from a dot-separated string. Must be non-empty.
    pub fn new(path: impl AsRef<str>) -> Self {
        let p = path.as_ref();
        assert!(!p.is_empty(), "empty metadata item path");
        ItemPath(Arc::from(p))
    }

    /// The full dot-separated path.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// `self` prefixed with a module name: `prefix.self`.
    pub fn scoped(&self, prefix: &str) -> ItemPath {
        if prefix.is_empty() {
            self.clone()
        } else {
            ItemPath(Arc::from(format!("{prefix}.{}", self.0)))
        }
    }

    /// Whether this item lives inside the module named by `prefix`.
    pub fn in_module(&self, prefix: &str) -> bool {
        self.0
            .strip_prefix(prefix)
            .is_some_and(|rest| rest.starts_with('.'))
    }

    /// The final path segment (the item's own name).
    pub fn leaf(&self) -> &str {
        self.0.rsplit('.').next().unwrap_or(&self.0)
    }
}

impl From<&str> for ItemPath {
    fn from(s: &str) -> Self {
        ItemPath::new(s)
    }
}

impl From<String> for ItemPath {
    fn from(s: String) -> Self {
        ItemPath::new(s)
    }
}

impl fmt::Debug for ItemPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for ItemPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(&self.0)
    }
}

/// Global identifier of one metadata item: node plus path.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetadataKey {
    /// The node the item is assigned to.
    pub node: NodeId,
    /// The item's path within the node.
    pub item: ItemPath,
}

impl MetadataKey {
    /// Builds a key.
    pub fn new(node: NodeId, item: impl Into<ItemPath>) -> Self {
        MetadataKey {
            node,
            item: item.into(),
        }
    }
}

impl fmt::Debug for MetadataKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.node, self.item)
    }
}

impl fmt::Display for MetadataKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(&format!("{}/{}", self.node, self.item))
    }
}

/// Identifier of a manually fired event notification (Section 3.2.3):
/// a named event at a node, e.g. `window_size_changed`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventKey {
    /// The node the event belongs to.
    pub node: NodeId,
    /// The event's name.
    pub name: ItemPath,
}

impl EventKey {
    /// Builds an event key.
    pub fn new(node: NodeId, name: impl Into<ItemPath>) -> Self {
        EventKey {
            node,
            name: name.into(),
        }
    }
}

impl fmt::Debug for EventKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}!{}", self.node, self.name)
    }
}

impl fmt::Display for EventKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}!{}", self.node, self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_path_basics() {
        let p = ItemPath::new("state.left.memory_usage");
        assert_eq!(p.as_str(), "state.left.memory_usage");
        assert_eq!(p.leaf(), "memory_usage");
        assert!(p.in_module("state"));
        assert!(p.in_module("state.left"));
        assert!(!p.in_module("stat"));
        assert!(!p.in_module("state.left.memory_usage"));
    }

    #[test]
    fn item_path_scoping() {
        let p = ItemPath::new("memory_usage").scoped("state").scoped("");
        assert_eq!(p.as_str(), "state.memory_usage");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_path_rejected() {
        ItemPath::new("");
    }

    #[test]
    fn key_display() {
        let k = MetadataKey::new(NodeId(3), "input_rate");
        assert_eq!(k.to_string(), "n3/input_rate");
        let e = EventKey::new(NodeId(3), "window_size_changed");
        assert_eq!(e.to_string(), "n3!window_size_changed");
    }

    #[test]
    fn keys_hash_and_compare() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(MetadataKey::new(NodeId(1), "a"));
        s.insert(MetadataKey::new(NodeId(1), "a"));
        s.insert(MetadataKey::new(NodeId(2), "a"));
        s.insert(MetadataKey::new(NodeId(1), "b"));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn leaf_of_flat_path_is_itself() {
        assert_eq!(ItemPath::new("selectivity").leaf(), "selectivity");
    }
}
