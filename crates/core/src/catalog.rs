//! System catalog: the metadata graph exposed as typed relations.
//!
//! The paper's reflexive principle — metadata flows through the same
//! pub-sub machinery as data — is completed here: the manager's own
//! runtime state (handlers, dependencies, quarantine, the trace bus) is
//! materialised as *system relations* in the style of `pg_catalog`.
//! Each relation has a fixed column list ([`RelationColumn`]) and
//! [`MetadataManager::catalog_rows`] snapshots it as plain rows of
//! [`MetadataValue`] cells, sorted by key for determinism.
//!
//! The `streammeta-cql` crate layers queryability on top: it registers
//! each relation as a stream source so `SELECT key FROM sys.handlers
//! WHERE p99 > period` is an installable continuous query firing
//! through normal observer delivery.

use std::sync::Arc;

use crate::handler::Handler;
use crate::manager::MetadataManager;
use crate::value::MetadataValue;
use crate::NodeId;

/// The graph node under which continuous catalog queries install their
/// items (`META_NODE` minus one; both are far outside any real graph).
pub const CATALOG_NODE: NodeId = NodeId(u32::MAX - 1);

/// One column of a system relation.
#[derive(Clone, Copy, Debug)]
pub struct RelationColumn {
    /// Column name, as referenced in CQL.
    pub name: &'static str,
    /// One-line description.
    pub doc: &'static str,
}

const fn col(name: &'static str, doc: &'static str) -> RelationColumn {
    RelationColumn { name, doc }
}

/// The system relations of the catalog.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SystemRelation {
    /// `sys.items`: every included item with mechanism, period,
    /// deadline, version and staleness.
    Items,
    /// `sys.handlers`: per-handler runtime statistics — refcounts,
    /// compute counts, latency percentiles.
    Handlers,
    /// `sys.dependencies`: the runtime dependency graph, including
    /// unchosen dynamic alternatives (marked `certain = false`).
    Dependencies,
    /// `sys.subscriptions`: subscription refcounts per item.
    Subscriptions,
    /// `sys.quarantine`: containment state of items with a fallback
    /// policy.
    Quarantine,
    /// `sys.trace`: a bounded tail of the trace bus as rows (requires
    /// [`MetadataManager::enable_catalog_trace`]).
    Trace,
    /// `sys.spans`: finished causal lineage spans (requires
    /// [`MetadataManager::enable_catalog_spans`] plus span sampling).
    Spans,
    /// `sys.partitions`: one row per partition of the owning
    /// [`crate::PartitionedMetadataPlane`] — node/handler counts, link
    /// state, remote-update totals. Empty on a stand-alone manager.
    Partitions,
    /// `sys.remote_subscriptions`: one row per live cross-partition
    /// proxy link of the owning plane. Empty on a stand-alone manager.
    RemoteSubscriptions,
}

impl SystemRelation {
    /// All relations, in catalog order.
    pub const ALL: [SystemRelation; 9] = [
        SystemRelation::Items,
        SystemRelation::Handlers,
        SystemRelation::Dependencies,
        SystemRelation::Subscriptions,
        SystemRelation::Quarantine,
        SystemRelation::Trace,
        SystemRelation::Spans,
        SystemRelation::Partitions,
        SystemRelation::RemoteSubscriptions,
    ];

    /// The relation's qualified name (`sys.items`, …).
    pub fn name(&self) -> &'static str {
        match self {
            SystemRelation::Items => "sys.items",
            SystemRelation::Handlers => "sys.handlers",
            SystemRelation::Dependencies => "sys.dependencies",
            SystemRelation::Subscriptions => "sys.subscriptions",
            SystemRelation::Quarantine => "sys.quarantine",
            SystemRelation::Trace => "sys.trace",
            SystemRelation::Spans => "sys.spans",
            SystemRelation::Partitions => "sys.partitions",
            SystemRelation::RemoteSubscriptions => "sys.remote_subscriptions",
        }
    }

    /// Looks a relation up by its qualified name.
    pub fn by_name(name: &str) -> Option<SystemRelation> {
        SystemRelation::ALL
            .iter()
            .copied()
            .find(|r| r.name() == name)
    }

    /// The relation's columns, in row order.
    pub fn columns(&self) -> &'static [RelationColumn] {
        match self {
            SystemRelation::Items => ITEMS_COLUMNS,
            SystemRelation::Handlers => HANDLERS_COLUMNS,
            SystemRelation::Dependencies => DEPENDENCIES_COLUMNS,
            SystemRelation::Subscriptions => SUBSCRIPTIONS_COLUMNS,
            SystemRelation::Quarantine => QUARANTINE_COLUMNS,
            SystemRelation::Trace => TRACE_COLUMNS,
            SystemRelation::Spans => SPANS_COLUMNS,
            SystemRelation::Partitions => PARTITIONS_COLUMNS,
            SystemRelation::RemoteSubscriptions => REMOTE_SUBSCRIPTIONS_COLUMNS,
        }
    }
}

const ITEMS_COLUMNS: &[RelationColumn] = &[
    col("key", "qualified item key, `node/path`"),
    col("node", "graph node id"),
    col("item", "item path within the node"),
    col("mechanism", "update mechanism label"),
    col("period", "periodic window, unavailable otherwise"),
    col("deadline", "declared compute deadline, if any"),
    col("version", "stored value version"),
    col("updated_at", "time of the last stored change"),
    col("degraded", "whether the current value is stale last-good"),
    col(
        "staleness",
        "age of a degraded value, unavailable when healthy",
    ),
];

const HANDLERS_COLUMNS: &[RelationColumn] = &[
    col("key", "qualified item key, `node/path`"),
    col("node", "graph node id"),
    col("item", "item path within the node"),
    col("mechanism", "update mechanism label"),
    col("period", "periodic window, unavailable otherwise"),
    col("subscriptions", "current subscription refcount"),
    col("accesses", "consumer accesses"),
    col("updates", "stored value changes"),
    col("computes", "compute-function evaluations"),
    col(
        "p50",
        "median compute latency (ns), needs latency profiling",
    ),
    col("p95", "95th-percentile compute latency (ns)"),
    col("p99", "99th-percentile compute latency (ns)"),
    col(
        "epoch",
        "last epoch flush that recomputed the item (0 = never)",
    ),
];

const DEPENDENCIES_COLUMNS: &[RelationColumn] = &[
    col("source", "dependency source (item key or event key)"),
    col("source_kind", "`item` or `event`"),
    col("dependent", "the item that depends on the source"),
    col("role", "role name the compute function reads"),
    col("certain", "false for unchosen dynamic alternatives"),
];

const SUBSCRIPTIONS_COLUMNS: &[RelationColumn] = &[
    col("key", "qualified item key, `node/path`"),
    col("node", "graph node id"),
    col("item", "item path within the node"),
    col("subscriptions", "current subscription refcount"),
    col("mechanism", "update mechanism label"),
];

const QUARANTINE_COLUMNS: &[RelationColumn] = &[
    col("key", "qualified item key, `node/path`"),
    col("state", "`healthy`, `degraded` or `quarantined`"),
    col("streak", "consecutive failed evaluations"),
    col("attempt", "retries scheduled in the current episode"),
    col("trips", "lifetime quarantine entries"),
    col("quarantined_until", "cool-down end, unavailable when open"),
    col("staleness", "age of the stale last-good value"),
];

const TRACE_COLUMNS: &[RelationColumn] = &[
    col("seq", "trace sequence number"),
    col("at", "emission time"),
    col("kind", "event kind"),
    col("key", "item key the event concerns"),
    col("detail", "human-readable event description"),
];

const SPANS_COLUMNS: &[RelationColumn] = &[
    col("span", "span id (unique per sampled hop)"),
    col("parent", "parent span id, 0 for a root span"),
    col("root", "first root span of the causal chain"),
    col("roots", "contributing root count (epoch coalescing > 1)"),
    col("key", "item key the span's work concerns"),
    col(
        "kind",
        "what the span covers (source_update, propagation_step, …)",
    ),
    col("depth", "hop depth below the root"),
    col("start", "span start time"),
    col("end", "span end time"),
    col("duration", "end - start"),
];

const PARTITIONS_COLUMNS: &[RelationColumn] = &[
    col("part", "partition id"),
    col("nodes", "graph nodes attached (including proxy shadows)"),
    col("handlers", "live handlers on the partition"),
    col("links", "cross-partition proxy links homed here"),
    col("up", "whether the partition's link is reachable"),
    col("updates", "remote update messages applied to its proxies"),
];

const REMOTE_SUBSCRIPTIONS_COLUMNS: &[RelationColumn] = &[
    col("key", "remote item key the proxy mirrors"),
    col("part", "partition hosting the proxy item"),
    col("owner", "partition owning the real item"),
    col("state", "`up` or `down` (owner link reachability)"),
    col("updates", "remote update messages applied to this proxy"),
    col("version", "owner-side version last received"),
];

/// Cells describing one handler's identity: key, node, item.
fn identity(h: &Handler) -> [MetadataValue; 3] {
    [
        MetadataValue::text(h.key.to_string()),
        MetadataValue::U64(h.key.node.0 as u64),
        MetadataValue::text(h.key.item.as_str()),
    ]
}

fn period_cell(h: &Handler) -> MetadataValue {
    match h.mechanism() {
        crate::Mechanism::Periodic { window } => MetadataValue::Span(window),
        _ => MetadataValue::Unavailable,
    }
}

fn opt_u64(v: Option<u64>) -> MetadataValue {
    v.map_or(MetadataValue::Unavailable, MetadataValue::U64)
}

impl MetadataManager {
    /// Materialises one system relation as rows of cells, ordered by the
    /// relation's columns (see [`SystemRelation::columns`]) and sorted by
    /// item key so repeated snapshots of unchanged state are identical.
    ///
    /// `sys.trace` is empty unless [`Self::enable_catalog_trace`] has
    /// installed the backing ring buffer.
    pub fn catalog_rows(&self, relation: SystemRelation) -> Vec<Vec<MetadataValue>> {
        let now = self.clock().now();
        match relation {
            SystemRelation::Items => self
                .handlers_snapshot()
                .iter()
                .map(|h| {
                    let v = h.snapshot();
                    let mut row = identity(h).to_vec();
                    row.extend([
                        MetadataValue::text(h.def.mechanism().label()),
                        period_cell(h),
                        h.def
                            .deadline()
                            .map_or(MetadataValue::Unavailable, MetadataValue::Span),
                        MetadataValue::U64(v.version),
                        MetadataValue::Time(v.updated_at),
                        MetadataValue::Bool(v.degraded),
                        v.staleness(now)
                            .map_or(MetadataValue::Unavailable, MetadataValue::Span),
                    ]);
                    row
                })
                .collect(),
            SystemRelation::Handlers => self
                .handlers_snapshot()
                .iter()
                .map(|h| {
                    let lat = h.latency.snapshot();
                    let pct = |p: f64| opt_u64(lat.percentile(p).map(|v| v.max(0) as u64));
                    let mut row = identity(h).to_vec();
                    row.extend([
                        MetadataValue::text(h.def.mechanism().label()),
                        period_cell(h),
                        MetadataValue::U64(
                            h.subscriptions.load(std::sync::atomic::Ordering::Relaxed) as u64,
                        ),
                        MetadataValue::U64(h.access_count()),
                        MetadataValue::U64(h.update_count()),
                        MetadataValue::U64(h.compute_count()),
                        pct(0.50),
                        pct(0.95),
                        pct(0.99),
                        MetadataValue::U64(h.last_epoch()),
                    ]);
                    row
                })
                .collect(),
            SystemRelation::Dependencies => {
                let mut rows = Vec::new();
                for h in self.handlers_snapshot() {
                    let dependent = MetadataValue::text(h.key.to_string());
                    // Live edges first: what this inclusion actually reads.
                    let mut live: Vec<(String, &'static str, Arc<str>)> = h
                        .resolved_deps
                        .iter()
                        .map(|d| {
                            let (src, kind) = match &d.source {
                                crate::DepSource::Item(k) => (k.to_string(), "item"),
                                crate::DepSource::Event(e) => (e.to_string(), "event"),
                            };
                            (src, kind, d.role.clone())
                        })
                        .collect();
                    // Then the analysis-time alternatives a dynamic
                    // resolver did *not* pick for this inclusion.
                    for (dep, _certain) in h.def.analysis_deps(h.key.node) {
                        let source = dep.target.resolve(h.key.node);
                        let (src, kind) = match &source {
                            crate::DepSource::Item(k) => (k.to_string(), "item"),
                            crate::DepSource::Event(e) => (e.to_string(), "event"),
                        };
                        if !live.iter().any(|(s, _, r)| *s == src && *r == dep.role) {
                            rows.push(vec![
                                MetadataValue::text(&src),
                                MetadataValue::text(kind),
                                dependent.clone(),
                                MetadataValue::text(&*dep.role),
                                MetadataValue::Bool(false),
                            ]);
                        }
                    }
                    for (src, kind, role) in live.drain(..) {
                        rows.push(vec![
                            MetadataValue::text(src),
                            MetadataValue::text(kind),
                            dependent.clone(),
                            MetadataValue::text(&*role),
                            MetadataValue::Bool(true),
                        ]);
                    }
                }
                rows
            }
            SystemRelation::Subscriptions => self
                .handlers_snapshot()
                .iter()
                .map(|h| {
                    let mut row = identity(h).to_vec();
                    row.extend([
                        MetadataValue::U64(
                            h.subscriptions.load(std::sync::atomic::Ordering::Relaxed) as u64,
                        ),
                        MetadataValue::text(h.def.mechanism().label()),
                    ]);
                    row
                })
                .collect(),
            SystemRelation::Quarantine => self
                .handlers_snapshot()
                .iter()
                .filter(|h| h.def.fallback().is_some())
                .map(|h| {
                    let v = h.snapshot();
                    let (streak, attempt, trips, until) = {
                        let st = h.containment.lock();
                        (st.streak, st.attempt, st.trips, st.quarantined_until)
                    };
                    let state = if until.is_some() {
                        "quarantined"
                    } else if v.degraded {
                        "degraded"
                    } else {
                        "healthy"
                    };
                    vec![
                        MetadataValue::text(h.key.to_string()),
                        MetadataValue::text(state),
                        MetadataValue::U64(streak as u64),
                        MetadataValue::U64(attempt as u64),
                        MetadataValue::U64(trips),
                        until.map_or(MetadataValue::Unavailable, MetadataValue::Time),
                        v.staleness(now)
                            .map_or(MetadataValue::Unavailable, MetadataValue::Span),
                    ]
                })
                .collect(),
            SystemRelation::Trace => {
                let mut rows: Vec<Vec<MetadataValue>> = self
                    .catalog_trace()
                    .map(|sink| {
                        sink.snapshot()
                            .into_iter()
                            .map(|rec| {
                                vec![
                                    MetadataValue::U64(rec.seq),
                                    MetadataValue::Time(rec.at),
                                    MetadataValue::text(rec.event.kind()),
                                    rec.event.key().map_or(MetadataValue::Unavailable, |k| {
                                        MetadataValue::text(k.to_string())
                                    }),
                                    MetadataValue::text(rec.event.to_string()),
                                ]
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                // A registered rotating file sink contributes one
                // `trace_file` summary row so rotation is observable
                // through the catalog (a wrapped-but-unnoticed trace is
                // exactly the failure mode the rotating sink prevents).
                if let Some(file) = self.file_trace() {
                    rows.push(vec![
                        MetadataValue::U64(file.records_written()),
                        MetadataValue::Time(now),
                        MetadataValue::text("trace_file"),
                        MetadataValue::Unavailable,
                        MetadataValue::text(format!(
                            "trace_file path={} rotations={} records={}",
                            file.path().display(),
                            file.rotations(),
                            file.records_written()
                        )),
                    ]);
                }
                rows
            }
            SystemRelation::Spans => self
                .catalog_spans()
                .map(|store| {
                    store
                        .snapshot()
                        .into_iter()
                        .map(|s| {
                            vec![
                                MetadataValue::U64(s.span),
                                MetadataValue::U64(s.parent.unwrap_or(0)),
                                MetadataValue::U64(s.root),
                                MetadataValue::U64(s.roots as u64),
                                s.key.as_ref().map_or(MetadataValue::Unavailable, |k| {
                                    MetadataValue::text(k.to_string())
                                }),
                                MetadataValue::text(s.kind),
                                MetadataValue::U64(s.depth as u64),
                                MetadataValue::Time(s.start),
                                MetadataValue::Time(s.end),
                                MetadataValue::Span(streammeta_time::TimeSpan(s.duration())),
                            ]
                        })
                        .collect()
                })
                .unwrap_or_default(),
            SystemRelation::Partitions | SystemRelation::RemoteSubscriptions => {
                self.plane_rows(relation)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DepTarget, ItemDef, MetadataKey, NodeRegistry};
    use streammeta_time::{Clock, TimeSpan, VirtualClock};

    fn setup() -> (Arc<VirtualClock>, Arc<MetadataManager>) {
        let clock = VirtualClock::shared();
        let manager = MetadataManager::new(clock.clone());
        let reg = NodeRegistry::new(NodeId(1));
        reg.define(ItemDef::static_value("size", 8u64));
        reg.define(
            ItemDef::periodic("rate", TimeSpan(10))
                .compute(|_| MetadataValue::F64(1.0))
                .build(),
        );
        reg.define(
            ItemDef::triggered("cost")
                .dep("rate", DepTarget::Local("rate".into()))
                .compute(|ctx| ctx.dep("rate"))
                .build(),
        );
        manager.attach_node(reg);
        (clock, manager)
    }

    #[test]
    fn relation_names_round_trip() {
        for rel in SystemRelation::ALL {
            assert_eq!(SystemRelation::by_name(rel.name()), Some(rel));
            assert!(!rel.columns().is_empty());
        }
        assert_eq!(SystemRelation::by_name("sys.nope"), None);
    }

    #[test]
    fn items_rows_cover_included_items() {
        let (_clock, manager) = setup();
        let _cost = manager
            .subscribe(MetadataKey::new(NodeId(1), "cost"))
            .unwrap();
        let rows = manager.catalog_rows(SystemRelation::Items);
        // cost + its dependency rate.
        assert_eq!(rows.len(), 2);
        let arity = SystemRelation::Items.columns().len();
        for row in &rows {
            assert_eq!(row.len(), arity);
        }
        let keys: Vec<String> = rows
            .iter()
            .map(|r| r[0].as_text().unwrap().to_string())
            .collect();
        assert!(keys.contains(&"n1/cost".to_string()) || keys.iter().any(|k| k.contains("cost")));
        // Sorted and deterministic.
        let again: Vec<String> = manager
            .catalog_rows(SystemRelation::Items)
            .iter()
            .map(|r| r[0].as_text().unwrap().to_string())
            .collect();
        assert_eq!(keys, again);
    }

    #[test]
    fn dependencies_rows_carry_live_edges() {
        let (_clock, manager) = setup();
        let _cost = manager
            .subscribe(MetadataKey::new(NodeId(1), "cost"))
            .unwrap();
        let rows = manager.catalog_rows(SystemRelation::Dependencies);
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert!(row[0].as_text().unwrap().contains("rate"));
        assert_eq!(row[1].as_text(), Some("item"));
        assert!(row[2].as_text().unwrap().contains("cost"));
        assert_eq!(row[3].as_text(), Some("rate"));
        assert_eq!(row[4].as_bool(), Some(true));
    }

    #[test]
    fn trace_relation_requires_catalog_trace() {
        let (clock, manager) = setup();
        assert!(manager.catalog_rows(SystemRelation::Trace).is_empty());
        let sink = manager.enable_catalog_trace(16);
        let _rate = manager
            .subscribe(MetadataKey::new(NodeId(1), "rate"))
            .unwrap();
        clock.advance(TimeSpan(10));
        manager.periodic().advance_to(clock.now());
        assert!(!sink.is_empty());
        let rows = manager.catalog_rows(SystemRelation::Trace);
        assert_eq!(rows.len(), sink.len());
        let arity = SystemRelation::Trace.columns().len();
        assert!(rows.iter().all(|r| r.len() == arity));
        assert_eq!(rows[0][2].as_text(), Some("subscribe"));
    }

    #[test]
    fn trace_relation_reports_file_rotation() {
        let (_clock, manager) = setup();
        let dir = std::env::temp_dir().join(format!("streammeta_cat_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sink =
            crate::trace::RotatingFileSink::create(dir.join("cat_trace.jsonl"), 4096).unwrap();
        manager.set_file_trace(Some(sink));
        let rows = manager.catalog_rows(SystemRelation::Trace);
        assert_eq!(rows.len(), 1, "summary row even with no ring installed");
        assert_eq!(rows[0][2].as_text(), Some("trace_file"));
        let detail = rows[0][4].as_text().unwrap();
        assert!(detail.contains("rotations=0"), "{detail}");
        manager.set_file_trace(None);
        assert!(manager.catalog_rows(SystemRelation::Trace).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spans_relation_links_propagation_hops_to_their_root() {
        let (_clock, manager) = setup();
        assert!(manager.catalog_rows(SystemRelation::Spans).is_empty());
        let store = manager.enable_catalog_spans(64);
        manager.set_span_sampling(crate::trace::SpanSampling::Ratio(1));
        let _cost = manager
            .subscribe(MetadataKey::new(NodeId(1), "cost"))
            .unwrap();
        manager.notify_changed(MetadataKey::new(NodeId(1), "rate"));
        assert!(!store.snapshot().is_empty());
        let rows = manager.catalog_rows(SystemRelation::Spans);
        let arity = SystemRelation::Spans.columns().len();
        assert_eq!(rows.len(), store.len());
        assert!(rows.iter().all(|r| r.len() == arity));
        let by_kind = |kind: &str| {
            rows.iter()
                .find(|r| r[5].as_text() == Some(kind))
                .unwrap_or_else(|| panic!("no {kind} span row"))
        };
        let root = by_kind("source_update");
        let hop = by_kind("propagation_step");
        // The root is parentless and self-rooted; the hop the update
        // caused parents to it and shares its root id.
        assert_eq!(root[1].as_u64(), Some(0));
        assert_eq!(root[2].as_u64(), root[0].as_u64());
        assert_eq!(hop[1].as_u64(), root[0].as_u64());
        assert_eq!(hop[2].as_u64(), root[0].as_u64());
        assert_eq!(hop[3].as_u64(), Some(1));
        assert!(hop[4].as_text().unwrap().contains("cost"));
        assert_eq!(hop[6].as_u64(), Some(1));
    }

    #[test]
    fn tail_returns_most_recent_records() {
        let (clock, manager) = setup();
        let sink = manager.enable_catalog_trace(64);
        let _rate = manager
            .subscribe(MetadataKey::new(NodeId(1), "rate"))
            .unwrap();
        clock.advance(TimeSpan(50));
        manager.periodic().advance_to(clock.now());
        let all = sink.snapshot();
        assert!(all.len() >= 2);
        let tail = sink.tail(2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[1].seq, all.last().unwrap().seq);
        assert!(sink.tail(1000).len() == all.len());
    }
}
