//! Partitioned metadata plane (distributed operation, paper Section 5).
//!
//! A [`PartitionedMetadataPlane`] shards the metadata graph over N
//! in-process [`MetadataManager`] partitions behind a consistent-hash
//! router: every [`NodeId`] is owned by exactly one partition, and a
//! node's registry, handlers and propagation all live there.
//!
//! Cross-partition dependencies are resolved by a **remote-subscription
//! protocol** over message channels. When a node's definitions declare a
//! [`DepTarget::Remote`] dependency on an item owned by another
//! partition, the plane pre-installs a *proxy item* — a `Triggered`
//! definition under the remote item's own key — on the dependent's
//! partition. Including the proxy establishes a real subscription on the
//! owner partition whose observer forwards every stored value (with its
//! version and causal span context) over an mpsc channel; the plane's
//! [`PartitionedMetadataPlane::pump`] applies the message to the proxy's
//! cell and fires the proxy's local trigger event *linked to the remote
//! span*, so lineage (and the trace linter's per-item monotonicity
//! checks) hold across the partition boundary.
//!
//! Degradation reuses the single-manager failure-containment machinery:
//! a proxy item carries a [`FallbackPolicy`], and its compute function
//! returns `Unavailable` while the owner partition's link is down
//! ([`PartitionedMetadataPlane::kill_partition`]). That counts as a
//! compute failure, so the proxy serves its last good value marked
//! degraded, trips the quarantine breaker after repeated failures, and
//! recovers via the cool-down probe once
//! [`PartitionedMetadataPlane::revive_partition`] re-seeds the cell —
//! reads through a dead link are therefore always *fresh-or-degraded*,
//! never silently wrong.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Weak};

use parking_lot::Mutex;
use streammeta_time::{ClockRef, TimeSpan, Timestamp};

use crate::catalog::SystemRelation;
use crate::item::{DepTarget, FallbackPolicy, ItemDef};
use crate::key::{EventKey, ItemPath, MetadataKey, NodeId};
use crate::manager::MetadataManager;
use crate::registry::NodeRegistry;
use crate::subscription::Subscription;
use crate::trace::SpanContext;
use crate::value::{MetadataValue, VersionedValue};
use crate::Result;

/// Suffix of the synthetic local event a proxy item listens on. The
/// plane fires `<item>.__remote` on the proxy's shadow node whenever an
/// update message for the item arrives.
const PROXY_EVENT_SUFFIX: &str = ".__remote";

fn proxy_event(key: &MetadataKey) -> EventKey {
    EventKey::new(
        key.node,
        ItemPath::new(format!("{}{PROXY_EVENT_SUFFIX}", key.item)),
    )
}

// ---------------------------------------------------------------------
// Consistent-hash router
// ---------------------------------------------------------------------

/// FNV-1a, the classic dependency-free 64-bit hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A consistent-hash ring over partitions with virtual nodes: each
/// partition owns `vnodes` points on the ring and a [`NodeId`] is owned
/// by the partition of the first point at or after its hash. Adding a
/// partition moves only `~1/N` of the keyspace.
struct Ring {
    /// `(point, partition)` sorted by point.
    points: Vec<(u64, usize)>,
}

impl Ring {
    fn new(partitions: usize, vnodes: usize) -> Ring {
        assert!(partitions > 0, "plane needs at least one partition");
        assert!(vnodes > 0, "consistent-hash ring needs virtual nodes");
        let mut points = Vec::with_capacity(partitions * vnodes);
        for p in 0..partitions {
            for v in 0..vnodes {
                let mut tag = [0u8; 16];
                tag[..8].copy_from_slice(&(p as u64).to_le_bytes());
                tag[8..].copy_from_slice(&(v as u64).to_le_bytes());
                points.push((fnv1a(&tag), p));
            }
        }
        points.sort_unstable();
        points.dedup_by_key(|(h, _)| *h);
        Ring { points }
    }

    fn owner(&self, node: NodeId) -> usize {
        let h = fnv1a(&u64::from(node.0).to_le_bytes());
        let idx = self.points.partition_point(|(p, _)| *p < h);
        let (_, part) = self.points[idx % self.points.len()];
        part
    }
}

// ---------------------------------------------------------------------
// Remote-subscription protocol
// ---------------------------------------------------------------------

/// One cross-partition update: the owner-side observer forwards every
/// stored value of the subscribed item, with the span context of the
/// store that produced it so the receiving cascade parents to it.
struct RemoteMsg {
    key: MetadataKey,
    value: VersionedValue,
    span: Option<SpanContext>,
}

/// Shared state between a proxy item's compute function and the plane:
/// the last value received from the owner partition, plus the owner's
/// link flag. While the link is down the compute returns `Unavailable`,
/// which the proxy's [`FallbackPolicy`] converts into degraded last-good
/// serving and, eventually, quarantine.
struct ProxyCell {
    value: Mutex<VersionedValue>,
    link_up: Arc<AtomicBool>,
}

impl ProxyCell {
    fn new(link_up: Arc<AtomicBool>) -> ProxyCell {
        ProxyCell {
            value: Mutex::new(VersionedValue::unavailable()),
            link_up,
        }
    }

    fn store(&self, v: VersionedValue) {
        *self.value.lock() = v;
    }

    fn read(&self) -> MetadataValue {
        if !self.link_up.load(Ordering::Acquire) {
            return MetadataValue::Unavailable;
        }
        self.value.lock().value.clone()
    }

    fn remote_version(&self) -> u64 {
        self.value.lock().version
    }
}

/// A live cross-partition subscription link: the owner-side subscription
/// (whose observer feeds the channel), the proxy-side cell, and
/// bookkeeping for `sys.remote_subscriptions`.
struct LinkState {
    /// Keeps the owner-side handler alive; its registered observer is
    /// removed when this drops. Held only for that drop side-effect.
    _sub: Subscription,
    cell: Arc<ProxyCell>,
    owner: usize,
    updates: u64,
}

// ---------------------------------------------------------------------
// Plane
// ---------------------------------------------------------------------

/// Configuration of a [`PartitionedMetadataPlane`].
#[derive(Clone, Copy, Debug)]
pub struct PlaneConfig {
    /// Number of in-process partitions.
    pub partitions: usize,
    /// Virtual nodes per partition on the consistent-hash ring.
    pub vnodes: usize,
    /// Failure-containment policy installed on every proxy item; governs
    /// how fast a dead link degrades, quarantines, and recovers.
    pub proxy_fallback: FallbackPolicy,
}

impl PlaneConfig {
    /// A config for `partitions` partitions with default ring density
    /// and a link-tuned fallback policy (quick quarantine, short
    /// cool-down, so partition failures are detected and probed at
    /// link timescales rather than compute timescales).
    pub fn new(partitions: usize) -> PlaneConfig {
        PlaneConfig {
            partitions,
            vnodes: 16,
            proxy_fallback: FallbackPolicy {
                max_retries: 1,
                backoff: TimeSpan(5),
                quarantine_after: 3,
                cool_down: TimeSpan(100),
            },
        }
    }
}

/// N in-process [`MetadataManager`] partitions behind a consistent-hash
/// key router, with cross-partition dependencies resolved by proxy items
/// kept fresh over a remote-subscription protocol (module docs).
///
/// The plane is driven cooperatively: call
/// [`Self::tick`] (or [`Self::pump`]) from the executor loop to apply
/// queued cross-partition updates and advance every partition's periodic
/// registry and epoch queue.
pub struct PartitionedMetadataPlane {
    config: PlaneConfig,
    clock: ClockRef,
    partitions: Vec<Arc<MetadataManager>>,
    ring: Ring,
    /// Reachability flag per partition, shared with every proxy cell
    /// whose owner it is.
    link_up: Vec<Arc<AtomicBool>>,
    /// Per-partition inbox of remote updates addressed to its proxies.
    inboxes: Vec<Mutex<Receiver<RemoteMsg>>>,
    senders: Vec<Sender<RemoteMsg>>,
    /// Live links, keyed by (proxy partition, remote key).
    links: Mutex<HashMap<(usize, MetadataKey), LinkState>>,
    /// Shadow registries created for proxy items, keyed by
    /// (proxy partition, remote node).
    proxy_regs: Mutex<HashMap<(usize, NodeId), Arc<NodeRegistry>>>,
    /// Cross-partition event fan-out: partitions whose attached nodes
    /// declared a remote-event dependency on the event.
    event_fanout: Mutex<HashMap<EventKey, BTreeSet<usize>>>,
    self_weak: Weak<PartitionedMetadataPlane>,
}

impl PartitionedMetadataPlane {
    /// A plane of `partitions` partitions sharing `clock`.
    pub fn new(clock: ClockRef, partitions: usize) -> Arc<Self> {
        Self::with_config(clock, PlaneConfig::new(partitions))
    }

    /// A plane with an explicit [`PlaneConfig`].
    pub fn with_config(clock: ClockRef, config: PlaneConfig) -> Arc<Self> {
        let n = config.partitions;
        let ring = Ring::new(n, config.vnodes);
        let mut managers = Vec::with_capacity(n);
        let mut link_up = Vec::with_capacity(n);
        let mut inboxes = Vec::with_capacity(n);
        let mut senders = Vec::with_capacity(n);
        for i in 0..n {
            let m = MetadataManager::new(clock.clone());
            // Disjoint span-id ranges and a partition tag per manager, so
            // merged multi-partition traces keep globally unique spans
            // and per-(partition, key) monotone versions.
            m.set_span_id_base(((i as u64) + 1) << 48);
            m.set_trace_partition(Some(i as u64));
            managers.push(m);
            link_up.push(Arc::new(AtomicBool::new(true)));
            let (tx, rx) = channel();
            inboxes.push(Mutex::new(rx));
            senders.push(tx);
        }
        let plane =
            Arc::new_cyclic(
                |weak: &Weak<PartitionedMetadataPlane>| PartitionedMetadataPlane {
                    config,
                    clock,
                    partitions: managers,
                    ring,
                    link_up,
                    inboxes,
                    senders,
                    links: Mutex::new(HashMap::new()),
                    proxy_regs: Mutex::new(HashMap::new()),
                    event_fanout: Mutex::new(HashMap::new()),
                    self_weak: weak.clone(),
                },
            );
        for m in &plane.partitions {
            let weak = plane.self_weak.clone();
            m.set_plane_rows(Some(Arc::new(move |relation| {
                weak.upgrade()
                    .map(|p| p.relation_rows(relation))
                    .unwrap_or_default()
            })));
        }
        plane
    }

    /// The shared clock.
    pub fn clock(&self) -> &ClockRef {
        &self.clock
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// The partition managers, indexed by partition id.
    pub fn partitions(&self) -> &[Arc<MetadataManager>] {
        &self.partitions
    }

    /// The manager of partition `i`.
    pub fn partition(&self, i: usize) -> &Arc<MetadataManager> {
        &self.partitions[i]
    }

    /// The partition that owns `node` under the consistent-hash router.
    pub fn owner_of(&self, node: NodeId) -> usize {
        self.ring.owner(node)
    }

    /// Whether partition `i`'s link is currently up.
    pub fn is_link_up(&self, i: usize) -> bool {
        self.link_up[i].load(Ordering::Acquire)
    }

    // -----------------------------------------------------------------
    // Topology
    // -----------------------------------------------------------------

    /// Attaches a node's registry to its owner partition and pre-installs
    /// proxy items (on the *owner's own* partition) for every
    /// cross-partition dependency the registry's definitions declare —
    /// fixed `Remote` targets and every alternative a dynamic resolver
    /// may pick. Remote-event dependencies register the partition for
    /// [`Self::fire_event`] fan-out. Returns the owner partition id.
    pub fn attach_node(&self, registry: Arc<NodeRegistry>) -> usize {
        let node = registry.node();
        let home = self.ring.owner(node);
        self.partitions[home].attach_node(registry.clone());
        for def in registry.definitions() {
            for (dep, _certain) in def.analysis_deps(node) {
                match dep.target {
                    DepTarget::Remote(key) => {
                        if self.ring.owner(key.node) != home {
                            self.install_proxy(home, key);
                        }
                    }
                    DepTarget::RemoteEvent(event) => {
                        if self.ring.owner(event.node) != home {
                            self.event_fanout
                                .lock()
                                .entry(event)
                                .or_default()
                                .insert(home);
                        }
                    }
                    DepTarget::Local(_) | DepTarget::LocalEvent(_) => {}
                }
            }
        }
        home
    }

    /// Installs a proxy definition for remote item `key` on partition
    /// `home`, creating the shadow registry for `key.node` if needed.
    /// Idempotent: a second dependent on the same remote item reuses the
    /// existing proxy.
    fn install_proxy(&self, home: usize, key: MetadataKey) {
        let owner = self.ring.owner(key.node);
        debug_assert_ne!(owner, home);
        let reg = {
            let mut regs = self.proxy_regs.lock();
            match regs.get(&(home, key.node)) {
                Some(r) => r.clone(),
                None => {
                    let r = NodeRegistry::new(key.node);
                    self.partitions[home].attach_node(r.clone());
                    regs.insert((home, key.node), r.clone());
                    r
                }
            }
        };
        if reg.contains(&key.item) {
            return;
        }
        let cell = Arc::new(ProxyCell::new(self.link_up[owner].clone()));
        let compute_cell = cell.clone();
        let include_plane = self.self_weak.clone();
        let include_key = key.clone();
        let include_cell = cell.clone();
        let exclude_plane = self.self_weak.clone();
        let exclude_key = key.clone();
        let def = ItemDef::triggered(key.item.clone())
            .on_event(proxy_event(&key).name)
            .fallback(self.config.proxy_fallback)
            .compute(move |_| compute_cell.read())
            .on_include(move || {
                if let Some(plane) = include_plane.upgrade() {
                    plane.establish_link(home, include_key.clone(), &include_cell);
                }
            })
            .on_exclude(move || {
                if let Some(plane) = exclude_plane.upgrade() {
                    plane.release_link(home, &exclude_key);
                }
            })
            .doc(format!(
                "remote proxy for {key} (owner partition {owner}); kept \
                 fresh by the plane's remote-subscription protocol"
            ))
            .build();
        reg.define(def);
    }

    /// Establishes the owner-side subscription backing one proxy item:
    /// subscribes on the owner partition, registers a span-aware observer
    /// that forwards every store into `home`'s inbox, and synchronously
    /// seeds the proxy cell with the current value so the proxy's initial
    /// refresh (which runs right after this hook) starts fresh.
    fn establish_link(&self, home: usize, key: MetadataKey, cell: &Arc<ProxyCell>) {
        let owner = self.ring.owner(key.node);
        let sub = match self.partitions[owner].subscribe(key.clone()) {
            Ok(sub) => sub,
            // The owner has no such definition (yet): leave the cell
            // unavailable; the proxy degrades exactly like a dead link.
            Err(_) => return,
        };
        let tx = self.senders[home].clone();
        let fwd_key = key.clone();
        // Observer bodies run under the owner handler's observer lock:
        // they must only perform the channel send, never call back into
        // a manager or take a plane lock.
        let id = sub
            .cached_handler()
            .add_span_observer_with_snapshot(Box::new(move |v, span| {
                let _ = tx.send(RemoteMsg {
                    key: fwd_key.clone(),
                    value: v.clone(),
                    span: span.cloned(),
                });
            }));
        let sub = sub.with_observer(id);
        cell.store(sub.versioned());
        self.partitions[home].note_remote_link(1);
        let mut links = self.links.lock();
        links.insert(
            (home, key),
            LinkState {
                _sub: sub,
                cell: cell.clone(),
                owner,
                updates: 0,
            },
        );
    }

    /// Tears down the owner-side subscription of one proxy link. The
    /// link state is dropped *outside* the plane lock: dropping the
    /// subscription cascades an exclusion on the owner partition, which
    /// may itself release chained links.
    fn release_link(&self, home: usize, key: &MetadataKey) {
        let removed = self.links.lock().remove(&(home, key.clone()));
        if let Some(state) = removed {
            self.partitions[home].note_remote_link(-1);
            drop(state);
        }
    }

    // -----------------------------------------------------------------
    // Routed operations
    // -----------------------------------------------------------------

    /// Subscribes to `key` on its owner partition. Cross-partition
    /// dependencies of the item resolve against pre-installed proxies.
    pub fn subscribe(&self, key: MetadataKey) -> Result<Subscription> {
        self.partitions[self.ring.owner(key.node)].subscribe(key)
    }

    /// Reads `key` on its owner partition.
    pub fn read_versioned(&self, key: &MetadataKey) -> Result<VersionedValue> {
        self.partitions[self.ring.owner(key.node)].read_versioned(key)
    }

    /// Fires `event` on its owner partition, and on every partition that
    /// declared a cross-partition dependency on it (each fan-out firing
    /// mints its own root span on its partition).
    pub fn fire_event(&self, event: EventKey) {
        let owner = self.ring.owner(event.node);
        self.partitions[owner].fire_event(event.clone());
        let fanout: Vec<usize> = self
            .event_fanout
            .lock()
            .get(&event)
            .map(|parts| parts.iter().copied().filter(|p| *p != owner).collect())
            .unwrap_or_default();
        for part in fanout {
            self.partitions[part].fire_event(event.clone());
        }
    }

    // -----------------------------------------------------------------
    // Driving
    // -----------------------------------------------------------------

    /// Drains every partition's inbox, applying queued remote updates:
    /// stores the value into the proxy cell and fires the proxy's local
    /// trigger event linked to the remote span, so the local cascade
    /// parents to the owner-side store. Messages whose owner link is
    /// down are dropped (lost in transit); [`Self::revive_partition`]
    /// re-seeds from the owner's current state. Returns the number of
    /// messages applied.
    pub fn pump(&self) -> usize {
        let mut applied = 0;
        for (home, inbox) in self.inboxes.iter().enumerate() {
            loop {
                let msg = {
                    let rx = inbox.lock();
                    match rx.try_recv() {
                        Ok(m) => m,
                        Err(_) => break,
                    }
                };
                if self.apply_remote(home, msg) {
                    applied += 1;
                }
            }
        }
        applied
    }

    fn apply_remote(&self, home: usize, msg: RemoteMsg) -> bool {
        let cell = {
            let mut links = self.links.lock();
            let Some(state) = links.get_mut(&(home, msg.key.clone())) else {
                // Proxy excluded since the message was queued.
                return false;
            };
            if !self.link_up[state.owner].load(Ordering::Acquire) {
                return false;
            }
            state.updates += 1;
            state.cell.clone()
        };
        cell.store(msg.value);
        let mgr = &self.partitions[home];
        mgr.note_remote_update();
        mgr.fire_event_linked(proxy_event(&msg.key), msg.span.as_ref());
        true
    }

    /// One cooperative step: [`Self::pump`], then advance every
    /// partition's periodic registry (containment retries, quarantine
    /// probes, periodic items) and flush due epochs. Returns the number
    /// of remote updates applied.
    pub fn tick(&self, now: Timestamp) -> usize {
        let applied = self.pump();
        for m in &self.partitions {
            m.periodic().advance_to(now);
            m.flush_epoch_if_due(now);
        }
        applied
    }

    // -----------------------------------------------------------------
    // Partition failure
    // -----------------------------------------------------------------

    /// Marks partition `k` unreachable: every proxy whose owner is `k`
    /// starts computing `Unavailable`, serving its last good value
    /// marked degraded under its fallback policy, and quarantines after
    /// repeated failures. In-flight messages from `k` are dropped. Each
    /// affected proxy is re-triggered immediately so the degradation is
    /// visible without waiting for the next remote update.
    pub fn kill_partition(&self, k: usize) {
        self.link_up[k].store(false, Ordering::Release);
        for (home, key) in self.links_owned_by(k) {
            self.partitions[home].fire_event_linked(proxy_event(&key), None);
        }
    }

    /// Marks partition `k` reachable again and re-seeds every proxy
    /// whose owner is `k` from the owner's current state (recovering
    /// updates lost while the link was down), then re-triggers the
    /// proxies. Quarantined proxies recover at their next cool-down
    /// probe, which now sees a live cell.
    pub fn revive_partition(&self, k: usize) {
        self.link_up[k].store(true, Ordering::Release);
        let relinked: Vec<(usize, MetadataKey, Arc<ProxyCell>)> = {
            let links = self.links.lock();
            links
                .iter()
                .filter(|(_, s)| s.owner == k)
                .map(|((home, key), s)| (*home, key.clone(), s.cell.clone()))
                .collect()
        };
        for (home, key, cell) in relinked {
            if let Ok(v) = self.partitions[k].read_versioned(&key) {
                cell.store(v);
            }
            self.partitions[home].fire_event_linked(proxy_event(&key), None);
        }
    }

    fn links_owned_by(&self, k: usize) -> Vec<(usize, MetadataKey)> {
        let links = self.links.lock();
        links
            .iter()
            .filter(|(_, s)| s.owner == k)
            .map(|((home, key), _)| (*home, key.clone()))
            .collect()
    }

    // -----------------------------------------------------------------
    // Introspection / catalog
    // -----------------------------------------------------------------

    /// Number of live cross-partition links.
    pub fn remote_link_count(&self) -> usize {
        self.links.lock().len()
    }

    /// Rows of the plane-level catalog relations (`sys.partitions`,
    /// `sys.remote_subscriptions`); every partition serves the same
    /// plane-wide tables through its catalog.
    fn relation_rows(&self, relation: SystemRelation) -> Vec<Vec<MetadataValue>> {
        match relation {
            SystemRelation::Partitions => {
                let links = self.links.lock();
                (0..self.partitions.len())
                    .map(|i| {
                        let m = &self.partitions[i];
                        let outgoing = links.iter().filter(|((home, _), _)| *home == i).count();
                        vec![
                            MetadataValue::U64(i as u64),
                            MetadataValue::U64(m.nodes().len() as u64),
                            MetadataValue::U64(m.handler_count() as u64),
                            MetadataValue::U64(outgoing as u64),
                            MetadataValue::Bool(self.is_link_up(i)),
                            MetadataValue::U64(m.remote_update_count()),
                        ]
                    })
                    .collect()
            }
            SystemRelation::RemoteSubscriptions => {
                let links = self.links.lock();
                let mut rows: Vec<(String, Vec<MetadataValue>)> = links
                    .iter()
                    .map(|((home, key), s)| {
                        let state = if self.is_link_up(s.owner) {
                            "up"
                        } else {
                            "down"
                        };
                        let row = vec![
                            MetadataValue::text(key.to_string()),
                            MetadataValue::U64(*home as u64),
                            MetadataValue::U64(s.owner as u64),
                            MetadataValue::text(state),
                            MetadataValue::U64(s.updates),
                            MetadataValue::U64(s.cell.remote_version()),
                        ];
                        (format!("{key}@{home}"), row)
                    })
                    .collect();
                rows.sort_by(|a, b| a.0.cmp(&b.0));
                rows.into_iter().map(|(_, row)| row).collect()
            }
            _ => Vec::new(),
        }
    }
}

impl std::fmt::Debug for PartitionedMetadataPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartitionedMetadataPlane")
            .field("partitions", &self.partitions.len())
            .field("links", &self.remote_link_count())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streammeta_time::VirtualClock;

    #[test]
    fn ring_covers_all_partitions_and_is_deterministic() {
        let ring = Ring::new(8, 16);
        let mut seen = BTreeSet::new();
        for n in 0..10_000u32 {
            seen.insert(ring.owner(NodeId(n)));
        }
        assert_eq!(seen.len(), 8, "every partition owns some keyspace");
        let again = Ring::new(8, 16);
        for n in 0..1000u32 {
            assert_eq!(ring.owner(NodeId(n)), again.owner(NodeId(n)));
        }
    }

    #[test]
    fn ring_reassigns_a_minority_on_growth() {
        let small = Ring::new(8, 16);
        let big = Ring::new(9, 16);
        let moved = (0..10_000u32)
            .filter(|n| small.owner(NodeId(*n)) != big.owner(NodeId(*n)))
            .count();
        // Consistent hashing: growth moves roughly 1/9 of the keyspace,
        // not all of it. Allow generous slack for hash skew.
        assert!(moved < 4000, "only a minority moved, got {moved}/10000");
    }

    #[test]
    fn plane_routes_nodes_to_owner_partitions() {
        let clock = VirtualClock::shared();
        let plane = PartitionedMetadataPlane::new(clock, 4);
        for n in [1u32, 2, 3, 4, 50, 600] {
            let reg = NodeRegistry::new(NodeId(n));
            reg.define(ItemDef::static_value("schema", "a,b"));
            let home = plane.attach_node(reg);
            assert_eq!(home, plane.owner_of(NodeId(n)));
            let sub = plane
                .subscribe(MetadataKey::new(NodeId(n), "schema"))
                .unwrap();
            assert_eq!(sub.get(), MetadataValue::text("a,b"));
        }
    }
}
