//! Sharded handler index: the level-0 tier of the locking scheme.
//!
//! Key-based reads (`read`, `read_versioned`, `read_dep`, …) used to
//! funnel through the manager's global bookkeeping mutex just to resolve
//! `MetadataKey -> Arc<Handler>`, serializing all consumers (the
//! contention wall of Section 4.2 at scale). The index keeps that mapping
//! in N hash-partitioned `RwLock<HashMap>` shards: writers (include /
//! exclude, already serialized by the bookkeeping mutex) take one shard
//! write lock briefly, while concurrent readers of different keys — and
//! concurrent readers of the *same* key — only share a shard read lock.
//!
//! The bookkeeping mutex remains the single source of truth for
//! refcounts and dependency edges; the shards are a derived, eventually
//! identical mirror maintained under that mutex, so a reader either sees
//! a fully constructed handler or none at all.

use std::collections::HashMap;
use std::hash::{BuildHasher, RandomState};
use std::sync::Arc;

use crate::handler::Handler;
use crate::sync::{LockTier, TieredRwLock};
use crate::MetadataKey;

/// Number of partitions. A small power of two well above typical core
/// counts: enough to make writer/reader collisions on *different* keys
/// rare, cheap enough to scan on teardown diagnostics.
const SHARD_COUNT: usize = 16;

pub(crate) struct HandlerShards {
    /// Tier: [`LockTier::Shard`] — every partition shares the tier.
    shards: Vec<TieredRwLock<HashMap<MetadataKey, Arc<Handler>>>>,
    hasher: RandomState,
}

impl HandlerShards {
    pub(crate) fn new() -> Self {
        HandlerShards {
            shards: (0..SHARD_COUNT)
                .map(|_| TieredRwLock::new(LockTier::Shard, HashMap::new()))
                .collect(),
            hasher: RandomState::new(),
        }
    }

    fn shard(&self, key: &MetadataKey) -> &TieredRwLock<HashMap<MetadataKey, Arc<Handler>>> {
        &self.shards[(self.hasher.hash_one(key) as usize) & (SHARD_COUNT - 1)]
    }

    /// The handler for `key`, if included. One shard read lock.
    pub(crate) fn get(&self, key: &MetadataKey) -> Option<Arc<Handler>> {
        self.shard(key).read().get(key).cloned()
    }

    /// Whether `key` currently has a handler. One shard read lock.
    pub(crate) fn contains(&self, key: &MetadataKey) -> bool {
        self.shard(key).read().contains_key(key)
    }

    /// Mirrors an inclusion. Called with the bookkeeping mutex held.
    pub(crate) fn insert(&self, key: MetadataKey, handler: Arc<Handler>) {
        self.shard(&key).write().insert(key, handler);
    }

    /// Mirrors an exclusion. Called with the bookkeeping mutex held.
    pub(crate) fn remove(&self, key: &MetadataKey) {
        self.shard(key).write().remove(key);
    }

    /// Number of partitions (exposed for stats/experiments).
    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::ItemDef;
    use crate::NodeId;

    fn handler(i: u32) -> (MetadataKey, Arc<Handler>) {
        let key = MetadataKey::new(NodeId(i), format!("item{i}"));
        let h = Arc::new(Handler::new(
            key.clone(),
            ItemDef::static_value(format!("item{i}"), u64::from(i)),
            Vec::new(),
        ));
        (key, h)
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let shards = HandlerShards::new();
        let (key, h) = handler(1);
        assert!(shards.get(&key).is_none());
        shards.insert(key.clone(), h.clone());
        assert!(shards.contains(&key));
        assert!(Arc::ptr_eq(&shards.get(&key).unwrap(), &h));
        shards.remove(&key);
        assert!(!shards.contains(&key));
    }

    #[test]
    fn keys_spread_over_shards() {
        let shards = HandlerShards::new();
        for i in 0..256 {
            let (key, h) = handler(i);
            shards.insert(key, h);
        }
        let occupied = shards
            .shards
            .iter()
            .filter(|s| !s.read().is_empty())
            .count();
        assert!(occupied > 1, "256 keys should span several shards");
        assert_eq!(
            shards.shards.iter().map(|s| s.read().len()).sum::<usize>(),
            256
        );
    }
}
