//! Metadata values.

use std::fmt;
use std::sync::Arc;

use streammeta_time::{TimeSpan, Timestamp};

use crate::histogram::HistogramSnapshot;

/// The value of one metadata item.
///
/// The framework is value-typed rather than generic over item types so that
/// handlers, the dependency graph and the profiler can treat all items
/// uniformly; the small enum covers every metadata item the paper names
/// (rates, selectivities, resource usage, window sizes, schema descriptions,
/// priorities, …).
#[derive(Clone)]
pub enum MetadataValue {
    /// No value has been produced yet (e.g. a periodic item before its
    /// first window boundary).
    Unavailable,
    /// A floating point quantity (rates, selectivities, costs).
    F64(f64),
    /// A signed integer quantity.
    I64(i64),
    /// An unsigned integer quantity (counts, sizes in bytes).
    U64(u64),
    /// A boolean flag.
    Bool(bool),
    /// Descriptive text (schema names, implementation type).
    Text(Arc<str>),
    /// A span of time (window sizes, element validities).
    Span(TimeSpan),
    /// A point in time.
    Time(Timestamp),
    /// A value-distribution snapshot (equi-width histogram) — the "data
    /// distributions" metadata of stream sources.
    Histogram(HistogramSnapshot),
}

impl MetadataValue {
    /// Text value from anything string-like.
    pub fn text(s: impl AsRef<str>) -> Self {
        MetadataValue::Text(Arc::from(s.as_ref()))
    }

    /// Whether a value is present.
    pub fn is_available(&self) -> bool {
        !matches!(self, MetadataValue::Unavailable)
    }

    /// Numeric coercion: `F64`, `I64`, `U64` and `Span` (in time units)
    /// convert; everything else is `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            MetadataValue::F64(v) => Some(*v),
            MetadataValue::I64(v) => Some(*v as f64),
            MetadataValue::U64(v) => Some(*v as f64),
            MetadataValue::Span(s) => Some(s.as_f64()),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            MetadataValue::U64(v) => Some(*v),
            MetadataValue::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a time span, if it is one.
    pub fn as_span(&self) -> Option<TimeSpan> {
        match self {
            MetadataValue::Span(s) => Some(*s),
            MetadataValue::U64(v) => Some(TimeSpan(*v)),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            MetadataValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as text, if it is text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            MetadataValue::Text(t) => Some(t),
            _ => None,
        }
    }

    /// The value as a histogram snapshot, if it is one.
    pub fn as_histogram(&self) -> Option<&HistogramSnapshot> {
        match self {
            MetadataValue::Histogram(h) => Some(h),
            _ => None,
        }
    }
}

/// Change detection: floats compare bit-wise so `NaN == NaN` holds and a
/// recomputation yielding the same bits does not propagate triggers.
impl PartialEq for MetadataValue {
    fn eq(&self, other: &Self) -> bool {
        use MetadataValue::*;
        match (self, other) {
            (Unavailable, Unavailable) => true,
            (F64(a), F64(b)) => a.to_bits() == b.to_bits(),
            (I64(a), I64(b)) => a == b,
            (U64(a), U64(b)) => a == b,
            (Bool(a), Bool(b)) => a == b,
            (Text(a), Text(b)) => a == b,
            (Span(a), Span(b)) => a == b,
            (Time(a), Time(b)) => a == b,
            (Histogram(a), Histogram(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for MetadataValue {}

impl fmt::Debug for MetadataValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use MetadataValue::*;
        match self {
            Unavailable => write!(f, "<unavailable>"),
            F64(v) => write!(f, "{v}"),
            I64(v) => write!(f, "{v}"),
            U64(v) => write!(f, "{v}"),
            Bool(v) => write!(f, "{v}"),
            Text(v) => write!(f, "{v:?}"),
            Span(v) => write!(f, "{v:?}"),
            Time(v) => write!(f, "{v:?}"),
            Histogram(h) => write!(f, "hist[{}]", h.render()),
        }
    }
}

impl fmt::Display for MetadataValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<f64> for MetadataValue {
    fn from(v: f64) -> Self {
        MetadataValue::F64(v)
    }
}
impl From<u64> for MetadataValue {
    fn from(v: u64) -> Self {
        MetadataValue::U64(v)
    }
}
impl From<i64> for MetadataValue {
    fn from(v: i64) -> Self {
        MetadataValue::I64(v)
    }
}
impl From<bool> for MetadataValue {
    fn from(v: bool) -> Self {
        MetadataValue::Bool(v)
    }
}
impl From<TimeSpan> for MetadataValue {
    fn from(v: TimeSpan) -> Self {
        MetadataValue::Span(v)
    }
}
impl From<Timestamp> for MetadataValue {
    fn from(v: Timestamp) -> Self {
        MetadataValue::Time(v)
    }
}
impl From<&str> for MetadataValue {
    fn from(v: &str) -> Self {
        MetadataValue::text(v)
    }
}

/// A metadata value together with its version and update instant.
///
/// The version counter increments on every stored change; experiments use
/// it to assert the isolation condition of Section 3 — all consumers reading
/// within one period observe the same version.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VersionedValue {
    /// The current value.
    pub value: MetadataValue,
    /// Number of changes stored so far (0 = never updated).
    pub version: u64,
    /// When the value was last stored.
    pub updated_at: Timestamp,
    /// The item's compute path is failing (or quarantined) and this is
    /// the *last good* value, served instead of a fresh one. `false` on
    /// healthy items. Consumers that cannot tolerate staleness check
    /// this flag (or use [`crate::MetadataManager::read_fresh`]); the
    /// staleness bound is explicit via [`Self::staleness`].
    pub degraded: bool,
}

impl VersionedValue {
    /// The initial, unavailable value.
    pub fn unavailable() -> Self {
        VersionedValue {
            value: MetadataValue::Unavailable,
            version: 0,
            updated_at: Timestamp::ZERO,
            degraded: false,
        }
    }

    /// The explicit staleness bound of a degraded value: how long ago the
    /// last good value was stored. `None` while the item is healthy —
    /// the value is as fresh as its mechanism promises, not stale.
    pub fn staleness(&self, now: Timestamp) -> Option<TimeSpan> {
        self.degraded.then(|| now.since(self.updated_at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nan_equals_itself() {
        assert_eq!(MetadataValue::F64(f64::NAN), MetadataValue::F64(f64::NAN));
        assert_ne!(MetadataValue::F64(0.0), MetadataValue::F64(-0.0));
    }

    #[test]
    fn coercions() {
        assert_eq!(MetadataValue::F64(1.5).as_f64(), Some(1.5));
        assert_eq!(MetadataValue::U64(3).as_f64(), Some(3.0));
        assert_eq!(MetadataValue::I64(-2).as_f64(), Some(-2.0));
        assert_eq!(MetadataValue::Span(TimeSpan(7)).as_f64(), Some(7.0));
        assert_eq!(MetadataValue::Bool(true).as_f64(), None);
        assert_eq!(MetadataValue::U64(9).as_span(), Some(TimeSpan(9)));
        assert_eq!(MetadataValue::I64(-1).as_u64(), None);
        assert_eq!(MetadataValue::I64(5).as_u64(), Some(5));
        assert_eq!(MetadataValue::text("hash").as_text(), Some("hash"));
    }

    #[test]
    fn cross_variant_inequality() {
        assert_ne!(MetadataValue::F64(1.0), MetadataValue::U64(1));
        assert_ne!(MetadataValue::Unavailable, MetadataValue::F64(0.0));
    }

    #[test]
    fn availability() {
        assert!(!MetadataValue::Unavailable.is_available());
        assert!(MetadataValue::Bool(false).is_available());
    }

    #[test]
    fn display_formats() {
        assert_eq!(MetadataValue::F64(0.1).to_string(), "0.1");
        assert_eq!(MetadataValue::Unavailable.to_string(), "<unavailable>");
        assert_eq!(MetadataValue::Span(TimeSpan(5)).to_string(), "5u");
    }

    #[test]
    fn versioned_initial() {
        let v = VersionedValue::unavailable();
        assert_eq!(v.version, 0);
        assert!(!v.value.is_available());
        assert!(!v.degraded);
        assert_eq!(v.staleness(Timestamp(100)), None);
    }

    #[test]
    fn staleness_bound_only_when_degraded() {
        let mut v = VersionedValue {
            value: MetadataValue::U64(7),
            version: 3,
            updated_at: Timestamp(40),
            degraded: false,
        };
        assert_eq!(v.staleness(Timestamp(100)), None);
        v.degraded = true;
        assert_eq!(v.staleness(Timestamp(100)), Some(TimeSpan(60)));
    }
}
