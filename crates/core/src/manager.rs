//! The metadata manager: publish-subscribe, automatic inclusion/exclusion,
//! and trigger propagation.
//!
//! The manager owns the runtime side of the framework:
//!
//! * the **node registries** (item definitions, attached per graph node);
//! * the live **handlers** with their subscription counts (Section 2.1);
//! * the runtime **dependency graph** — for every handler the resolved
//!   sources it depends on, plus the inverted edges used to notify
//!   dependents (Sections 2.3, 2.4, 3.2.3);
//! * the integration with the [`PeriodicRegistry`] that drives periodic
//!   handlers (Section 3.2.2 / 4.3).
//!
//! ## Locking (Section 4.2)
//!
//! Three levels of locks, always acquired top-down:
//!
//! 1. *graph level*: the registries map (`RwLock`);
//! 2. *node level*: each registry's item map (`RwLock`);
//! 3. *item level*: each handler's value (`RwLock`) and compute mutex.
//!
//! Subscription bookkeeping lives in one internal mutex; user code
//! (compute functions, hooks) is never called while it is held.
//!
//! The *read* paths do not take the bookkeeping mutex at all:
//!
//! * a [`Subscription`] caches its `Arc<Handler>` at creation, so
//!   `Subscription::get`/`versioned` go straight to the item-level lock
//!   (the subscription itself guarantees handler liveness);
//! * key-based reads (`read`, `read_versioned`, `is_included`, …)
//!   resolve handlers through a sharded index
//!   ([`crate::shards::HandlerShards`]) maintained by include/exclude
//!   under the bookkeeping mutex — concurrent readers only share a
//!   shard read lock.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::{Mutex, RwLock};
use streammeta_time::{ClockRef, PeriodicRegistry, PeriodicTask, TimeSpan, Timestamp};

use crate::fault::{FaultAction, FaultPlan};
use crate::handler::{Handler, HandlerStats};
use crate::item::{DepReader, DepSource, EvalCtx, ItemDef, Mechanism};
use crate::monitor::Counter;
use crate::registry::NodeRegistry;
use crate::shards::HandlerShards;
use crate::subscription::Subscription;
use crate::sync::{LockTier, TieredMutex, TieredRwLock};
use crate::trace::{
    SpanContext, SpanRecord, SpanSampling, SpanStore, TraceEvent, TraceRecord, TraceSink,
};
use crate::{
    EventKey, ItemPath, MetadataError, MetadataKey, MetadataValue, NodeId, Result, VersionedValue,
};

#[derive(Default)]
struct Inner {
    /// Authoritative handler map. The refcount lives in
    /// [`Handler::subscriptions`], mutated only while this mutex is
    /// held; the sharded index mirrors this map for lock-free readers.
    handlers: HashMap<MetadataKey, Arc<Handler>>,
    /// Inverted dependency edges: source -> items that depend on it.
    dependents: HashMap<DepSource, Vec<MetadataKey>>,
}

/// Result of one contained compute evaluation.
struct ComputeOutcome {
    value: MetadataValue,
    /// The compute function (or an injected fault) panicked.
    panicked: bool,
    /// The evaluation overran the item's declared deadline.
    overran: bool,
}

/// Configuration of the epoch (batch) propagation mode: updates are
/// queued and coalesced instead of swept one event at a time.
///
/// An epoch flushes when either bound is reached:
///
/// * `max_batch` distinct pending sources — flushed synchronously by the
///   enqueueing thread;
/// * the oldest pending update has waited `max_delay` — flushed by
///   whoever drives [`MetadataManager::flush_epoch_if_due`] (both
///   executors do, once per tick / feeder iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochConfig {
    /// Distinct pending sources that force a synchronous flush.
    pub max_batch: usize,
    /// Maximum time a pending update may wait before
    /// [`MetadataManager::flush_epoch_if_due`] flushes the epoch.
    /// `TimeSpan::ZERO` means "flush on the next tick".
    pub max_delay: TimeSpan,
}

impl Default for EpochConfig {
    fn default() -> Self {
        EpochConfig {
            max_batch: 64,
            max_delay: TimeSpan::ZERO,
        }
    }
}

/// How source updates reach their triggered dependents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PropagationMode {
    /// Every `fire_event` / `notify_changed` / periodic change runs its
    /// own propagation sweep immediately (the default).
    #[default]
    PerEvent,
    /// Updates are queued and coalesced into epochs; each epoch computes
    /// the union of the affected subgraphs under one bookkeeping-lock
    /// snapshot and recomputes every downstream item at most once.
    Epoch(EpochConfig),
}

/// The pending-update queue of the epoch propagation mode. `pending`
/// keeps arrival order (origins seed the changed-set in order), the set
/// deduplicates, and `first_enqueued` drives the time-slice flush.
///
/// `pending_roots` carries the sampled span lineage across the
/// enqueue/flush thread handoff *explicitly* (the queue is the only
/// carrier — no thread-local state survives a work item): each origin
/// remembers the first contributing root span plus every coalesced
/// root, so a coalesced recompute records *all* the source updates it
/// absorbed.
#[derive(Default)]
struct EpochQueue {
    config: EpochConfig,
    enabled: bool,
    pending: Vec<DepSource>,
    pending_set: HashSet<DepSource>,
    pending_roots: HashMap<DepSource, SpanLink>,
    first_enqueued: Option<Timestamp>,
}

/// The lineage a changed source hands to its dependents during a sweep:
/// the span to parent to, and the root set to inherit.
#[derive(Clone, Debug)]
struct SpanLink {
    span: u64,
    roots: Vec<u64>,
}

impl SpanLink {
    fn of(ctx: &SpanContext) -> Self {
        SpanLink {
            span: ctx.span,
            roots: ctx.roots.clone(),
        }
    }
}

/// Aggregate counters of the manager, used by the scalability experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ManagerStats {
    /// Live handlers (included metadata items).
    pub handlers: usize,
    /// Sum of all subscription counts.
    pub subscriptions: usize,
    /// Total compute-function evaluations.
    pub computes: u64,
    /// Total stored value changes.
    pub updates: u64,
    /// Total consumer accesses.
    pub accesses: u64,
    /// Total trigger propagation rounds.
    pub propagations: u64,
    /// Compute functions that panicked (contained; the item reported
    /// `Unavailable` for that evaluation).
    pub compute_failures: u64,
    /// Periodic refreshes that completed a full window after their
    /// scheduled boundary.
    pub deadline_misses: u64,
    /// Reads served through a cached subscription handler (no manager
    /// lock of any kind).
    pub fast_reads: u64,
    /// Key-based handler lookups served by the sharded index (one shard
    /// read lock).
    pub shard_reads: u64,
    /// Evaluations that overran their declared compute deadline.
    pub deadline_overruns: u64,
    /// Backoff retries scheduled after failed evaluations.
    pub retries: u64,
    /// Times the quarantine circuit breaker tripped.
    pub quarantine_trips: u64,
    /// Reads that were served a degraded (stale last-good) value.
    pub stale_serves: u64,
    /// Epoch flushes performed in epoch propagation mode.
    pub epochs: u64,
    /// Source updates absorbed into an already-pending epoch entry
    /// (duplicate origins coalesced away before the sweep).
    pub coalesced_updates: u64,
}

/// The central coordinator of dynamic metadata management.
///
/// Always used through `Arc`: subscriptions and periodic tasks hold
/// references back to the manager.
pub struct MetadataManager {
    clock: ClockRef,
    periodic: Arc<PeriodicRegistry>,
    /// Graph-level lock (Section 4.2). Tier: [`LockTier::Graph`].
    registries: TieredRwLock<HashMap<NodeId, Arc<NodeRegistry>>>,
    /// Bookkeeping mutex. Tier: [`LockTier::Bookkeeping`].
    inner: TieredMutex<Inner>,
    /// Hash-partitioned `key -> handler` mirror of `inner.handlers`,
    /// written under the bookkeeping mutex, read without it.
    shards: HandlerShards,
    /// Access counts of handlers that have been excluded, folded in on
    /// removal so totals survive handler death. Together with the live
    /// handlers' counters this yields the access total; the cached-read
    /// count is derived as `total - key-based` so the subscription fast
    /// path pays exactly one counter increment.
    retired_accesses: AtomicU64,
    shard_reads: AtomicU64,
    /// Always-on counter (not a plain atomic) so the reflexive meta node
    /// can derive `meta.computes_rate` from it via a `WindowDelta`.
    computes: Arc<Counter>,
    updates: AtomicU64,
    /// Key-based accesses only; cached-subscription reads count on their
    /// handler alone (one atomic less on the hot path) and totals are
    /// derived where reported.
    accesses: AtomicU64,
    propagations: AtomicU64,
    compute_failures: AtomicU64,
    deadline_misses: AtomicU64,
    deadline_overruns: AtomicU64,
    retries: AtomicU64,
    quarantine_trips: AtomicU64,
    stale_serves: AtomicU64,
    /// Gates fault injection the same way `trace_enabled` gates tracing:
    /// one relaxed load per evaluation when no plan is installed.
    fault_enabled: AtomicBool,
    fault_plan: RwLock<Option<Arc<FaultPlan>>>,
    /// High-water BFS depth over recent propagation rounds. A monotonic
    /// `fetch_max` per round (not a plain store): concurrent rounds must
    /// not let a shallow round overwrite a deeper concurrent one. Reset
    /// per observation window via [`Self::take_propagation_depth`].
    last_propagation_depth: AtomicU64,
    /// Gates the epoch propagation mode the same way `trace_enabled`
    /// gates tracing: one relaxed load per `propagate` call when the
    /// default per-event mode is active.
    epoch_enabled: AtomicBool,
    /// Pending-update queue of the epoch mode (holds the config too, so
    /// mode switches and flush decisions are consistent under one lock).
    /// Tier: [`LockTier::EpochQueue`].
    epoch_queue: TieredMutex<EpochQueue>,
    /// Serializes epoch sweeps: epoch N+1's observer notifications cannot
    /// start before epoch N's sweep finished, and epoch ids are assigned
    /// in delivery order. Ordered *before* `inner` (a flush holds it
    /// while taking the phase-1 snapshot); never held while `epoch_queue`
    /// is taken by enqueuers, so enqueues stay wait-free with respect to
    /// a running sweep. Tier: [`LockTier::FlushSerial`], rank 0 — the
    /// full declared hierarchy lives in [`crate::sync`].
    flush_serial: TieredMutex<()>,
    epochs: AtomicU64,
    coalesced_updates: AtomicU64,
    /// Trace bus: a single relaxed load gates every emission site, so an
    /// uninstalled sink costs (close to) nothing on the hot paths.
    trace_enabled: AtomicBool,
    trace_sink: RwLock<Option<Arc<dyn TraceSink>>>,
    trace_seq: AtomicU64,
    /// Gates the per-compute latency measurement (two `Instant` reads per
    /// evaluation when on).
    profile_latency: AtomicBool,
    /// Subscription-time validation hook (static analysis integration):
    /// consulted by `subscribe` before any inclusion happens.
    validator: RwLock<Option<ValidatorHook>>,
    /// Violations reported by a `Warn`-policy validator, drained by
    /// [`Self::take_validation_warnings`].
    validation_warnings: Mutex<Vec<String>>,
    /// Ring buffer backing the `sys.trace` catalog relation, installed
    /// by [`Self::enable_catalog_trace`]. Kept separately from
    /// `trace_sink` so the catalog can always find it (the trace sink
    /// slot holds a type-erased `dyn TraceSink`).
    catalog_trace: RwLock<Option<Arc<crate::trace::RingBufferSink>>>,
    /// Rotating JSONL file sink registered for `sys.trace` reporting
    /// (rotation/record counters); wiring it as the actual trace sink —
    /// alone or teed with a ring buffer — is the caller's choice.
    trace_file: RwLock<Option<Arc<crate::trace::RotatingFileSink>>>,
    /// Gates span minting the same way `trace_enabled` gates tracing:
    /// one relaxed load per source update when sampling is off.
    span_enabled: AtomicBool,
    /// The `n` of [`SpanSampling::Ratio`] (0 = off).
    span_ratio: AtomicU64,
    /// Source updates seen by the sampler (drives the 1-in-n decision).
    span_samples: AtomicU64,
    /// Span id mint (ids start at 1; 0 is never a valid span id).
    span_ids: AtomicU64,
    /// Ring of finished spans backing `sys.spans`, installed by
    /// [`Self::enable_catalog_spans`].
    span_store: RwLock<Option<Arc<SpanStore>>>,
    /// Gates per-record thread-id stamping (off by default so traces
    /// stay byte-deterministic unless flame tracks are wanted).
    trace_tids: AtomicBool,
    /// First-sight compact thread ids and their labels (flame-track
    /// names for the Chrome-trace exporter).
    tid_map: Mutex<HashMap<std::thread::ThreadId, u64>>,
    tid_labels: Mutex<BTreeMap<u64, String>>,
    /// Partition id stamped onto every trace record when this manager is
    /// one partition of a [`crate::PartitionedMetadataPlane`]
    /// (`u64::MAX` = unset, the single-manager default). Merged
    /// multi-partition traces stay per-item monotonic because tracelint
    /// keys item state by `(partition, key)`.
    trace_part: AtomicU64,
    /// Live cross-partition subscription links whose proxy item lives in
    /// this manager.
    remote_subs: AtomicU64,
    /// Cross-partition update messages applied to local proxy items.
    remote_updates: AtomicU64,
    /// Rows provider for the plane-level catalog relations
    /// (`sys.partitions`, `sys.remote_subscriptions`), installed on every
    /// partition by the plane; empty relations without one.
    plane_rows: RwLock<Option<Arc<PlaneRowsFn>>>,
    self_weak: Weak<MetadataManager>,
}

/// Rows provider signature of the plane-level catalog relations.
pub(crate) type PlaneRowsFn =
    dyn Fn(crate::catalog::SystemRelation) -> Vec<Vec<MetadataValue>> + Send + Sync;

/// How the manager reacts when an installed validator reports
/// violations for a subscription (see [`MetadataManager::set_validator`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ValidationPolicy {
    /// Record the violations (see
    /// [`MetadataManager::take_validation_warnings`]) and proceed.
    Warn,
    /// Refuse the subscription with
    /// [`MetadataError::ValidationFailed`].
    Deny,
}

/// Validator signature: inspects the manager (definitions, current
/// inclusions) and the key about to be subscribed, and returns the
/// violations found — an empty vector means the subscription is clean.
/// Runs *before* any inclusion bookkeeping, so it may freely use the
/// manager's read-side introspection APIs, but it must not subscribe.
pub type ValidatorFn = dyn Fn(&MetadataManager, &MetadataKey) -> Vec<String> + Send + Sync;

struct ValidatorHook {
    f: Arc<ValidatorFn>,
    policy: ValidationPolicy,
}

impl MetadataManager {
    /// A manager using `clock` and its own periodic registry.
    pub fn new(clock: ClockRef) -> Arc<Self> {
        Self::with_periodic(clock, PeriodicRegistry::shared())
    }

    /// A manager sharing an external periodic registry (so an engine or a
    /// [`streammeta_time::WorkerPool`] can drive the updates).
    pub fn with_periodic(clock: ClockRef, periodic: Arc<PeriodicRegistry>) -> Arc<Self> {
        Arc::new_cyclic(|weak| MetadataManager {
            clock,
            periodic,
            registries: TieredRwLock::new(LockTier::Graph, HashMap::new()),
            inner: TieredMutex::new(LockTier::Bookkeeping, Inner::default()),
            shards: HandlerShards::new(),
            retired_accesses: AtomicU64::new(0),
            shard_reads: AtomicU64::new(0),
            computes: Counter::always_on(),
            updates: AtomicU64::new(0),
            accesses: AtomicU64::new(0),
            propagations: AtomicU64::new(0),
            compute_failures: AtomicU64::new(0),
            deadline_misses: AtomicU64::new(0),
            deadline_overruns: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            quarantine_trips: AtomicU64::new(0),
            stale_serves: AtomicU64::new(0),
            fault_enabled: AtomicBool::new(false),
            fault_plan: RwLock::new(None),
            last_propagation_depth: AtomicU64::new(0),
            epoch_enabled: AtomicBool::new(false),
            epoch_queue: TieredMutex::new(LockTier::EpochQueue, EpochQueue::default()),
            flush_serial: TieredMutex::new(LockTier::FlushSerial, ()),
            epochs: AtomicU64::new(0),
            coalesced_updates: AtomicU64::new(0),
            trace_enabled: AtomicBool::new(false),
            trace_sink: RwLock::new(None),
            trace_seq: AtomicU64::new(0),
            profile_latency: AtomicBool::new(false),
            validator: RwLock::new(None),
            validation_warnings: Mutex::new(Vec::new()),
            catalog_trace: RwLock::new(None),
            trace_file: RwLock::new(None),
            span_enabled: AtomicBool::new(false),
            span_ratio: AtomicU64::new(0),
            span_samples: AtomicU64::new(0),
            span_ids: AtomicU64::new(0),
            span_store: RwLock::new(None),
            trace_tids: AtomicBool::new(false),
            tid_map: Mutex::new(HashMap::new()),
            tid_labels: Mutex::new(BTreeMap::new()),
            trace_part: AtomicU64::new(u64::MAX),
            remote_subs: AtomicU64::new(0),
            remote_updates: AtomicU64::new(0),
            plane_rows: RwLock::new(None),
            self_weak: weak.clone(),
        })
    }

    // ------------------------------------------------------------------
    // Trace bus and profiling switches
    // ------------------------------------------------------------------

    /// Installs (or, with `None`, removes) the trace sink receiving the
    /// manager's structured lifecycle events.
    pub fn set_trace_sink(&self, sink: Option<Arc<dyn TraceSink>>) {
        // On removal, clear the gate before the slot so emission sites
        // stop checking for the sink first.
        let enabled = sink.is_some();
        if !enabled {
            self.trace_enabled.store(false, Ordering::Relaxed);
        }
        *self.trace_sink.write() = sink;
        if enabled {
            self.trace_enabled.store(true, Ordering::Relaxed);
        }
    }

    /// Whether a trace sink is installed.
    pub fn trace_enabled(&self) -> bool {
        self.trace_enabled.load(Ordering::Relaxed)
    }

    /// Emits one trace event. The closure runs only when a sink is
    /// installed, so emission sites pay one relaxed load otherwise.
    #[inline]
    fn trace(&self, event: impl FnOnce() -> TraceEvent) {
        self.trace_span(None, event);
    }

    /// Emits one trace event carrying an optional causal span context.
    /// Same gating as [`Self::trace`]: one relaxed load when no sink is
    /// installed, whether or not a span is present (finished spans reach
    /// `sys.spans` through [`Self::record_span`], not through the trace
    /// bus).
    fn trace_span(&self, span: Option<&SpanContext>, event: impl FnOnce() -> TraceEvent) {
        if !self.trace_enabled.load(Ordering::Relaxed) {
            return;
        }
        let sink = self.trace_sink.read().clone();
        if let Some(sink) = sink {
            sink.record(TraceRecord {
                seq: self.trace_seq.fetch_add(1, Ordering::Relaxed),
                at: self.clock.now(),
                event: event(),
                span: span.cloned(),
                tid: self.current_tid(),
                part: self.trace_partition(),
            });
        }
    }

    /// Tags (or, with `None`, untags) every trace record this manager
    /// emits with a partition id. Set by the partitioned plane so merged
    /// multi-partition traces keep per-item state separable.
    pub fn set_trace_partition(&self, part: Option<u64>) {
        self.trace_part
            .store(part.unwrap_or(u64::MAX), Ordering::Relaxed);
    }

    /// The partition id stamped onto trace records, if any.
    pub fn trace_partition(&self) -> Option<u64> {
        match self.trace_part.load(Ordering::Relaxed) {
            u64::MAX => None,
            p => Some(p),
        }
    }

    /// Records one *finished* span into the `sys.spans` ring, if
    /// installed — independently of the trace bus, so lineage queries
    /// work without JSONL tracing. Exactly one record per span, written
    /// at the span's completion site.
    fn record_span(
        &self,
        ctx: &SpanContext,
        key: Option<&MetadataKey>,
        kind: &'static str,
        end: Timestamp,
    ) {
        if let Some(store) = self.span_store.read().clone() {
            store.record(SpanRecord {
                span: ctx.span,
                parent: ctx.parent,
                root: ctx.roots.first().copied().unwrap_or(ctx.span),
                roots: ctx.roots.len(),
                key: key.cloned(),
                kind,
                depth: ctx.depth,
                start: ctx.start,
                end,
            });
        }
    }

    /// The calling thread's compact id, when thread-id stamping is on.
    fn current_tid(&self) -> Option<u64> {
        if !self.trace_tids.load(Ordering::Relaxed) {
            return None;
        }
        Some(self.register_tid(None))
    }

    /// Registers the calling thread in the compact first-sight tid map
    /// and optionally labels it (flame-track names).
    fn register_tid(&self, label: Option<&str>) -> u64 {
        let id = {
            let mut map = self.tid_map.lock();
            let next = map.len() as u64;
            *map.entry(std::thread::current().id()).or_insert(next)
        };
        if let Some(label) = label {
            self.tid_labels.lock().insert(id, label.to_string());
        }
        id
    }

    /// Switches per-compute latency measurement on or off. When on, every
    /// compute evaluation is timed into the handler's latency histogram
    /// and [`HandlerStats`] report p50/p95/p99.
    pub fn set_latency_profiling(&self, on: bool) {
        self.profile_latency.store(on, Ordering::Relaxed);
    }

    /// The always-on counter of compute evaluations (feeds the meta
    /// node's `meta.computes_rate`).
    pub(crate) fn computes_counter(&self) -> &Arc<Counter> {
        &self.computes
    }

    /// Installs a bounded ring-buffer trace sink of `capacity` records
    /// and makes it the manager's trace sink. The returned (and
    /// internally remembered) buffer backs the `sys.trace` catalog
    /// relation: its tail is what `catalog_rows(SystemRelation::Trace)`
    /// materialises. Replaces any previously installed trace sink.
    pub fn enable_catalog_trace(&self, capacity: usize) -> Arc<crate::trace::RingBufferSink> {
        let sink = crate::trace::RingBufferSink::new(capacity);
        *self.catalog_trace.write() = Some(sink.clone());
        self.set_trace_sink(Some(sink.clone()));
        sink
    }

    /// The ring buffer installed by [`Self::enable_catalog_trace`], if
    /// any.
    pub fn catalog_trace(&self) -> Option<Arc<crate::trace::RingBufferSink>> {
        self.catalog_trace.read().clone()
    }

    /// Registers (or, with `None`, forgets) a rotating file sink so
    /// `sys.trace` reports its rotation and record counters. This only
    /// registers the sink for catalog reporting; install it as the trace
    /// sink separately via [`Self::set_trace_sink`] — possibly behind a
    /// tee when an in-memory ring is wanted too.
    pub fn set_file_trace(&self, sink: Option<Arc<crate::trace::RotatingFileSink>>) {
        *self.trace_file.write() = sink;
    }

    /// The rotating file sink registered by [`Self::set_file_trace`].
    pub fn file_trace(&self) -> Option<Arc<crate::trace::RotatingFileSink>> {
        self.trace_file.read().clone()
    }

    // ------------------------------------------------------------------
    // Causal spans (update lineage)
    // ------------------------------------------------------------------

    /// Sets the span sampling gate. `Off` (the default) keeps the write
    /// path span-free — one relaxed load per source update.
    /// `Ratio(n)` mints a root span for every n-th source update
    /// (`Ratio(1)` = every update) and threads child spans through the
    /// entire propagation cascade that update causes.
    pub fn set_span_sampling(&self, sampling: SpanSampling) {
        match sampling {
            SpanSampling::Off => {
                self.span_enabled.store(false, Ordering::Relaxed);
                self.span_ratio.store(0, Ordering::Relaxed);
            }
            SpanSampling::Ratio(n) => {
                self.span_ratio.store(n.max(1), Ordering::Relaxed);
                self.span_enabled.store(true, Ordering::Relaxed);
            }
        }
    }

    /// The currently configured span sampling.
    pub fn span_sampling(&self) -> SpanSampling {
        if self.span_enabled.load(Ordering::Relaxed) {
            SpanSampling::Ratio(self.span_ratio.load(Ordering::Relaxed).max(1))
        } else {
            SpanSampling::Off
        }
    }

    /// Installs a bounded ring of `capacity` finished spans backing the
    /// `sys.spans` catalog relation. Spans land there whenever sampling
    /// mints them — with or without a trace sink installed. Replaces any
    /// previously installed store; returns the new one.
    pub fn enable_catalog_spans(&self, capacity: usize) -> Arc<SpanStore> {
        let store = SpanStore::new(capacity);
        *self.span_store.write() = Some(store.clone());
        store
    }

    /// The span store installed by [`Self::enable_catalog_spans`], if
    /// any.
    pub fn catalog_spans(&self) -> Option<Arc<SpanStore>> {
        self.span_store.read().clone()
    }

    /// Switches per-record thread-id stamping of trace records on or
    /// off (the Chrome-trace exporter's flame tracks). Off by default so
    /// deterministic traces stay byte-identical across runs.
    pub fn set_trace_thread_ids(&self, on: bool) {
        self.trace_tids.store(on, Ordering::Relaxed);
    }

    /// Registers the calling thread under `label` for flame-track
    /// naming (the executors label their workers). Registration is
    /// unconditional, so labels are in place before stamping is
    /// switched on; the ids are compact and first-sight ordered.
    pub fn label_trace_thread(&self, label: &str) {
        self.register_tid(Some(label));
    }

    /// The flame-track labels registered so far (`compact tid -> label`),
    /// consumed by the Chrome-trace exporter.
    pub fn trace_thread_labels(&self) -> BTreeMap<u64, String> {
        self.tid_labels.lock().clone()
    }

    /// One 1-in-n sampling decision per source update.
    fn sample_span(&self) -> bool {
        if !self.span_enabled.load(Ordering::Relaxed) {
            return false;
        }
        let n = self.span_ratio.load(Ordering::Relaxed).max(1);
        self.span_samples
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(n)
    }

    /// Mints the next span id. Ids start at 1 — 0 encodes "no parent"
    /// in serialized form.
    fn next_span_id(&self) -> u64 {
        self.span_ids.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Rebases the span-id mint to start above `base`. The partitioned
    /// plane gives each partition a disjoint id range so spans stay
    /// unique across a merged multi-partition trace. Call before any
    /// span is minted; ids already handed out are not renumbered.
    pub fn set_span_id_base(&self, base: u64) {
        self.span_ids.store(base, Ordering::Relaxed);
    }

    /// Samples a source update: on a hit, mints the root span of the
    /// causal cascade and emits the `source_update` anchor event that
    /// tracelint's T8 rule resolves notification roots against.
    fn mint_root(&self, origin: &DepSource, now: Timestamp) -> Option<SpanContext> {
        if !self.sample_span() {
            return None;
        }
        let ctx = SpanContext::root(self.next_span_id(), now);
        let (origin_str, origin_kind) = match origin {
            DepSource::Item(k) => (format!("{k}"), "item"),
            DepSource::Event(e) => (format!("{e}"), "event"),
        };
        self.trace_span(Some(&ctx), || TraceEvent::SourceUpdate {
            origin: origin_str,
            origin_kind,
        });
        Some(ctx)
    }

    /// A stable snapshot of all live handlers, sorted by key — the raw
    /// material of the catalog relations.
    pub(crate) fn handlers_snapshot(&self) -> Vec<Arc<Handler>> {
        let mut handlers: Vec<Arc<Handler>> =
            self.inner.lock().handlers.values().cloned().collect();
        handlers.sort_by(|a, b| a.key.cmp(&b.key));
        handlers
    }

    /// A weak self-reference for compute closures of the meta node.
    pub(crate) fn weak_self(&self) -> Weak<MetadataManager> {
        self.self_weak.clone()
    }

    /// Installs (or, with `None`, removes) a fault-injection plan. While
    /// installed, the plan is consulted once per compute evaluation and
    /// may panic, fail or delay it (inside the containment machinery, so
    /// injected faults exercise the production failure path). Chaos
    /// experiments only; without a plan each evaluation pays one relaxed
    /// atomic load.
    pub fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        // On removal, clear the gate before the slot so evaluation sites
        // stop checking for the plan first.
        let enabled = plan.is_some();
        if !enabled {
            self.fault_enabled.store(false, Ordering::Relaxed);
        }
        *self.fault_plan.write() = plan;
        if enabled {
            self.fault_enabled.store(true, Ordering::Relaxed);
        }
    }

    /// Periodic refreshes that completed a full window late.
    pub fn deadline_miss_count(&self) -> u64 {
        self.deadline_misses.load(Ordering::Relaxed)
    }

    /// Evaluations that overran their declared compute deadline.
    pub fn deadline_overrun_count(&self) -> u64 {
        self.deadline_overruns.load(Ordering::Relaxed)
    }

    /// Backoff retries scheduled after failed evaluations.
    pub fn retry_count(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Times the quarantine circuit breaker tripped (re-trips after a
    /// failed recovery probe count again).
    pub fn quarantine_trip_count(&self) -> u64 {
        self.quarantine_trips.load(Ordering::Relaxed)
    }

    /// Reads that were served a degraded (stale last-good) value.
    pub fn stale_serve_count(&self) -> u64 {
        self.stale_serves.load(Ordering::Relaxed)
    }

    /// Live cross-partition subscription links whose proxy item lives in
    /// this manager (0 outside a partitioned plane).
    pub fn remote_subscription_count(&self) -> u64 {
        self.remote_subs.load(Ordering::Relaxed)
    }

    /// Cross-partition update messages applied to local proxy items.
    pub fn remote_update_count(&self) -> u64 {
        self.remote_updates.load(Ordering::Relaxed)
    }

    pub(crate) fn note_remote_link(&self, delta: i64) {
        if delta >= 0 {
            self.remote_subs.fetch_add(delta as u64, Ordering::Relaxed);
        } else {
            self.remote_subs
                .fetch_sub(delta.unsigned_abs(), Ordering::Relaxed);
        }
    }

    pub(crate) fn note_remote_update(&self) {
        self.remote_updates.fetch_add(1, Ordering::Relaxed);
    }

    /// Installs (or clears) the plane-level catalog rows provider.
    pub(crate) fn set_plane_rows(&self, rows: Option<Arc<PlaneRowsFn>>) {
        *self.plane_rows.write() = rows;
    }

    /// The plane-level catalog rows for `relation`; empty when this
    /// manager is not part of a partitioned plane.
    pub(crate) fn plane_rows(
        &self,
        relation: crate::catalog::SystemRelation,
    ) -> Vec<Vec<MetadataValue>> {
        match self.plane_rows.read().clone() {
            Some(f) => f(relation),
            None => Vec::new(),
        }
    }

    /// Number of currently quarantined items.
    pub fn quarantined_count(&self) -> usize {
        let inner = self.inner.lock();
        inner
            .handlers
            .values()
            .filter(|h| self.is_quarantined(h))
            .count()
    }

    /// Whether `key` is currently quarantined.
    pub fn is_key_quarantined(&self, key: &MetadataKey) -> bool {
        self.handler(key).is_some_and(|h| self.is_quarantined(&h))
    }

    /// High-water BFS depth of trigger propagation: the deepest handler
    /// recomputed by any round since the last
    /// [`Self::take_propagation_depth`] (0 if no round reached anything).
    /// A monotonic max, so concurrent rounds cannot make the gauge
    /// report a stale shallow round over a live deep one.
    pub fn last_propagation_depth(&self) -> u64 {
        self.last_propagation_depth.load(Ordering::Relaxed)
    }

    /// Reads and resets the propagation-depth high-water mark — the
    /// "per observation window" part of the gauge: a poller gets the max
    /// depth since its previous call.
    pub fn take_propagation_depth(&self) -> u64 {
        self.last_propagation_depth.swap(0, Ordering::Relaxed)
    }

    /// The manager's clock.
    pub fn clock(&self) -> &ClockRef {
        &self.clock
    }

    /// The periodic registry driving periodic handlers. Virtual-time
    /// drivers call `advance_to` on it as they step the clock.
    pub fn periodic(&self) -> &Arc<PeriodicRegistry> {
        &self.periodic
    }

    // ------------------------------------------------------------------
    // Node registries
    // ------------------------------------------------------------------

    /// Attaches a node's registry. Replaces a previous attachment.
    pub fn attach_node(&self, registry: Arc<NodeRegistry>) {
        self.registries.write().insert(registry.node(), registry);
    }

    /// Detaches a node's registry. Existing handlers keep the definitions
    /// they were created with; new subscriptions on the node fail.
    pub fn detach_node(&self, node: NodeId) -> Option<Arc<NodeRegistry>> {
        self.registries.write().remove(&node)
    }

    /// The registry attached for `node`.
    pub fn registry(&self, node: NodeId) -> Option<Arc<NodeRegistry>> {
        self.registries.read().get(&node).cloned()
    }

    /// Metadata discovery: the available item paths of a node.
    pub fn available_items(&self, node: NodeId) -> Result<Vec<ItemPath>> {
        self.registry(node)
            .map(|r| r.available())
            .ok_or(MetadataError::NodeUnknown(node))
    }

    /// All attached nodes, sorted.
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<_> = self.registries.read().keys().copied().collect();
        v.sort();
        v
    }

    /// Removes an item definition with the same consistency guard as
    /// [`Self::redefine`]: removal is refused while the item has a live
    /// handler. Without the guard, a raw
    /// [`NodeRegistry::undefine`] + [`NodeRegistry::define`] pair would
    /// silently bypass the redefinition check — existing consumers would
    /// keep the old semantics while new dependents resolved against the
    /// new definition. Returns the removed definition, if any.
    pub fn undefine(&self, node: NodeId, path: &ItemPath) -> Result<Option<ItemDef>> {
        let key = MetadataKey::new(node, path.clone());
        let reg = self
            .registry(node)
            .ok_or(MetadataError::NodeUnknown(node))?;
        let inner = self.inner.lock();
        if inner.handlers.contains_key(&key) {
            return Err(MetadataError::ItemInUse(key));
        }
        // Holding `inner` prevents a concurrent inclusion from racing the
        // removal (inclusion takes `inner` first).
        Ok(reg.undefine(path))
    }

    /// Redefines an item (inheritance/overriding, Section 4.4.2) with a
    /// consistency guard: redefinition is refused while the item has a
    /// live handler, because existing consumers would silently keep the
    /// old semantics while new dependents resolved against the new one.
    pub fn redefine(&self, node: NodeId, def: ItemDef) -> Result<()> {
        let key = MetadataKey::new(node, def.path().clone());
        let reg = self
            .registry(node)
            .ok_or(MetadataError::NodeUnknown(node))?;
        let inner = self.inner.lock();
        if inner.handlers.contains_key(&key) {
            return Err(MetadataError::ItemInUse(key));
        }
        // Holding `inner` prevents a concurrent inclusion from racing the
        // definition swap (inclusion takes `inner` first).
        reg.define(def);
        Ok(())
    }

    /// Batch variant of [`Self::redefine`] with the same consistency
    /// guard, checked atomically for the *whole* batch: if any definition
    /// would replace an item with a live handler, the entire batch is
    /// refused with [`MetadataError::ItemInUse`] and nothing is
    /// installed. The raw [`NodeRegistry::define_all`] has no such guard
    /// (see its documentation) — this is the checked path for replacing
    /// definitions at runtime.
    pub fn redefine_all(&self, node: NodeId, defs: Vec<ItemDef>) -> Result<()> {
        let reg = self
            .registry(node)
            .ok_or(MetadataError::NodeUnknown(node))?;
        let inner = self.inner.lock();
        for def in &defs {
            let key = MetadataKey::new(node, def.path().clone());
            if inner.handlers.contains_key(&key) {
                return Err(MetadataError::ItemInUse(key));
            }
        }
        // Holding `inner` prevents a concurrent inclusion from racing the
        // batch swap (inclusion takes `inner` first).
        for def in defs {
            reg.define(def);
        }
        Ok(())
    }

    fn lookup_def(&self, key: &MetadataKey) -> Result<ItemDef> {
        let reg = self
            .registry(key.node)
            .ok_or(MetadataError::NodeUnknown(key.node))?;
        reg.get(&key.item)
            .ok_or_else(|| MetadataError::ItemUndefined(key.clone()))
    }

    // ------------------------------------------------------------------
    // Subscription (automatic inclusion / exclusion, Section 2.4)
    // ------------------------------------------------------------------

    /// Subscribes to a metadata item. All (transitive) dependencies are
    /// included automatically; shared items are reference counted. The
    /// returned [`Subscription`] unsubscribes on drop.
    pub fn subscribe(self: &Arc<Self>, key: MetadataKey) -> Result<Subscription> {
        // A sampled subscription roots the spans of its inclusion DFS
        // and the initial pre-computations it causes.
        let root = self
            .sample_span()
            .then(|| SpanContext::root(self.next_span_id(), self.clock.now()));
        self.trace_span(root.as_ref(), || TraceEvent::Subscribe { key: key.clone() });
        self.run_validator(&key)?;
        let mut created: Vec<Arc<Handler>> = Vec::new();
        let mut log: Vec<MetadataKey> = Vec::new();
        let result = {
            let mut inner = self.inner.lock();
            let mut stack = Vec::new();
            self.include(
                &mut inner,
                key.clone(),
                &mut stack,
                &mut log,
                &mut created,
                root.as_ref(),
            )
            // Capture the handler while the bookkeeping lock is still
            // held: a concurrent force-exclusion may remove it from the
            // maps the moment the lock drops, and the subscription must
            // pin *this* incarnation (reads then serve it as defunct)
            // rather than panic on a failed re-lookup.
            .map(|()| {
                inner
                    .handlers
                    .get(&key)
                    .expect("inclusion just installed the handler")
                    .clone()
            })
        };
        match result {
            Ok(handler) => {
                self.run_inclusion_actions(&created, root.as_ref());
                if let Some(root) = &root {
                    self.record_span(root, Some(&key), "subscribe", self.clock.now());
                }
                Ok(Subscription::new(self.clone(), key, handler))
            }
            Err(e) => {
                self.rollback(&log);
                Err(e)
            }
        }
    }

    /// Installs a subscription-time validator (or removes it with
    /// `None`). The validator is consulted by [`Self::subscribe`] before
    /// any inclusion happens; under [`ValidationPolicy::Deny`] a
    /// subscription with violations is refused, under
    /// [`ValidationPolicy::Warn`] the violations are recorded and the
    /// subscription proceeds. The static-analysis crate installs its
    /// rule engine through this hook.
    pub fn set_validator(&self, f: Option<Arc<ValidatorFn>>, policy: ValidationPolicy) {
        *self.validator.write() = f.map(|f| ValidatorHook { f, policy });
    }

    /// Drains the violations recorded by a `Warn`-policy validator.
    pub fn take_validation_warnings(&self) -> Vec<String> {
        std::mem::take(&mut self.validation_warnings.lock())
    }

    /// Runs the installed validator for a pending subscription to `key`.
    /// Called before the bookkeeping mutex is taken, so the validator can
    /// use the manager's read-side introspection freely.
    fn run_validator(&self, key: &MetadataKey) -> Result<()> {
        // Clone the hook out so the validator runs without the slot lock
        // held (it may itself be replaced from another thread).
        let hook = {
            let guard = self.validator.read();
            guard.as_ref().map(|h| (h.f.clone(), h.policy))
        };
        let Some((f, policy)) = hook else {
            return Ok(());
        };
        let violations = f(self, key);
        if violations.is_empty() {
            return Ok(());
        }
        match policy {
            ValidationPolicy::Warn => {
                self.validation_warnings.lock().extend(violations);
                Ok(())
            }
            ValidationPolicy::Deny => Err(MetadataError::ValidationFailed(key.clone(), violations)),
        }
    }

    /// Subscribes to `key` with a push observer.
    ///
    /// Delivery guarantee: the callback is synchronously invoked with the
    /// item's *current* snapshot at registration time (if a value has
    /// ever been stored — inclusion pre-computes static, periodic and
    /// triggered items, so those deliver immediately), and then after
    /// every stored value change (periodic publishes, trigger updates,
    /// on-demand recomputations that changed the value). Versions are
    /// strictly increasing per observer; no update that happens after
    /// registration is skipped. The callback is invoked on the updating
    /// thread and must be fast and non-blocking; it must not call back
    /// into the manager. Deregistered when the returned [`Subscription`]
    /// drops.
    pub fn subscribe_with(
        self: &Arc<Self>,
        key: MetadataKey,
        callback: impl Fn(&VersionedValue) + Send + Sync + 'static,
    ) -> Result<Subscription> {
        let sub = self.subscribe(key)?;
        let id = sub
            .cached_handler()
            .add_observer_with_snapshot(Box::new(callback));
        Ok(sub.with_observer(id))
    }

    /// Subscribes to every available item of `node` (the "maintain all
    /// metadata" mode the paper argues against; used as the baseline in
    /// the scalability experiments).
    pub fn subscribe_all(self: &Arc<Self>, node: NodeId) -> Result<Vec<Subscription>> {
        let items = self.available_items(node)?;
        items
            .into_iter()
            .map(|item| self.subscribe(MetadataKey::new(node, item)))
            .collect()
    }

    fn include(
        &self,
        inner: &mut Inner,
        key: MetadataKey,
        stack: &mut Vec<MetadataKey>,
        log: &mut Vec<MetadataKey>,
        created: &mut Vec<Arc<Handler>>,
        root: Option<&SpanContext>,
    ) -> Result<()> {
        if let Some(handler) = inner.handlers.get(&key) {
            // "The traversal stops at items already provided" — but every
            // inclusion path contributes one reference.
            handler.subscriptions.fetch_add(1, Ordering::Relaxed);
            log.push(key);
            return Ok(());
        }
        if stack.contains(&key) {
            let mut path = stack.clone();
            path.push(key);
            return Err(MetadataError::CyclicDependency(path));
        }
        let def = self.lookup_def(&key)?;
        stack.push(key.clone());
        let resolved = {
            let handlers = &inner.handlers;
            def.resolve_deps(key.node, &|k| handlers.contains_key(k))
        };
        for dep in &resolved {
            if let DepSource::Item(dep_key) = &dep.source {
                self.include(inner, dep_key.clone(), stack, log, created, root)?;
            }
        }
        stack.pop();
        let handler = Arc::new(Handler::new(key.clone(), def, resolved));
        for dep in &handler.resolved_deps {
            let dependents = inner.dependents.entry(dep.source.clone()).or_default();
            // Duplicate subscriptions by the same item are detected to
            // avoid redundant notifications (Section 3.2.3).
            if !dependents.contains(&key) {
                dependents.push(key.clone());
            }
        }
        inner.handlers.insert(key.clone(), handler.clone());
        self.shards.insert(key.clone(), handler.clone());
        // The stack holds the ancestors of `key` here, so its length is
        // the dependency depth; emission at insert time makes the trace
        // list inclusions in DFS dependency order (dependencies first).
        // Each inclusion hop spans flat under the subscribe root (the
        // DFS nesting is already carried by `depth`).
        let hop = root.map(|r| r.child(self.next_span_id(), self.clock.now()));
        if let Some(hop) = &hop {
            self.record_span(hop, Some(&key), "include", self.clock.now());
        }
        self.trace_span(hop.as_ref(), || TraceEvent::Include {
            key: key.clone(),
            mechanism: handler.mechanism().label(),
            depth: stack.len(),
        });
        log.push(key);
        created.push(handler);
        Ok(())
    }

    /// Post-inclusion actions, run without the bookkeeping lock, in
    /// dependency order (dependencies first): activate monitoring code,
    /// register periodic refresh tasks, and pre-compute initial values
    /// (triggered values "are pre-computed on the first subscription",
    /// Section 3.2.3).
    fn run_inclusion_actions(
        self: &Arc<Self>,
        created: &[Arc<Handler>],
        root: Option<&SpanContext>,
    ) {
        let now = self.clock.now();
        for h in created {
            for m in &h.def.monitors {
                m.activate();
            }
            if let Some(hook) = &h.def.on_include {
                hook();
            }
            match h.mechanism() {
                Mechanism::Static => {
                    let ctx = root.map(|r| r.child(self.next_span_id(), now));
                    self.refresh_handler(h, None, now, ctx.as_ref());
                }
                Mechanism::OnDemand => {} // computed on access
                Mechanism::Periodic { window } => {
                    // Initial evaluation over an empty window lets stateful
                    // compute functions initialise; then schedule refreshes.
                    let guard = h.compute_lock.lock();
                    let ctx = root.map(|r| r.child(self.next_span_id(), now));
                    self.refresh_handler(h, Some(TimeSpan::ZERO), now, ctx.as_ref());
                    drop(guard);
                    let task = PeriodicRefresh {
                        manager: self.self_weak.clone(),
                        key: h.key.clone(),
                        window,
                    };
                    let id = self.periodic.register(
                        now + window,
                        window,
                        Arc::new(task) as Arc<dyn PeriodicTask>,
                    );
                    *h.periodic_task.lock() = Some(id);
                }
                Mechanism::Triggered => {
                    let ctx = root.map(|r| r.child(self.next_span_id(), now));
                    self.refresh_handler(h, None, now, ctx.as_ref());
                }
            }
        }
    }

    fn rollback(&self, log: &[MetadataKey]) {
        let mut removed = Vec::new();
        {
            let mut inner = self.inner.lock();
            for key in log.iter().rev() {
                self.decrement(&mut inner, key, &mut removed);
            }
        }
        // Handlers removed during rollback never ran their inclusion
        // actions, so no exclusion actions are due.
        debug_assert!(removed
            .iter()
            .all(|h: &Arc<Handler>| { h.periodic_task.lock().is_none() }));
    }

    /// Decrements `key`'s refcount; on zero removes the handler (from
    /// the bookkeeping map and the sharded index) and its inverted edges
    /// (without recursing into dependencies).
    fn decrement(&self, inner: &mut Inner, key: &MetadataKey, removed: &mut Vec<Arc<Handler>>) {
        let Some(handler) = inner.handlers.get(key) else {
            return;
        };
        if handler.subscriptions.fetch_sub(1, Ordering::Relaxed) > 1 {
            return;
        }
        // Idempotent removal: a concurrent force-exclusion may already
        // have taken the handler out between the lookup above and here
        // (both run under `inner`, but the force path removes without
        // consulting this refcount). A vanished entry is simply done.
        let Some(handler) = inner.handlers.remove(key) else {
            return;
        };
        self.shards.remove(key);
        self.retired_accesses
            .fetch_add(handler.access_count(), Ordering::Relaxed);
        for dep in &handler.resolved_deps {
            if let Some(list) = inner.dependents.get_mut(&dep.source) {
                list.retain(|k| k != key);
                if list.is_empty() {
                    inner.dependents.remove(&dep.source);
                }
            }
        }
        removed.push(handler);
    }

    /// Cancels one subscription on `key`, excluding dependent items
    /// recursively (Section 2.4). Identity-checked, called by
    /// [`Subscription`] on drop: decrements only if `key` still maps to
    /// the exact handler the subscription pinned. A force-excluded
    /// (defunct) handler was already removed from the bookkeeping —
    /// decrementing by key alone would debit a fresh re-inclusion's
    /// refcount instead. The identity comparison runs under the
    /// bookkeeping mutex, so it cannot race a concurrent
    /// force-exclusion.
    pub(crate) fn unsubscribe_handle(&self, key: &MetadataKey, handler: &Arc<Handler>) {
        let mut removed = Vec::new();
        let remaining_after = {
            let mut inner = self.inner.lock();
            let live = inner
                .handlers
                .get(key)
                .is_some_and(|cur| Arc::ptr_eq(cur, handler));
            if !live {
                return; // force-excluded from under the subscription
            }
            self.trace(|| TraceEvent::Unsubscribe { key: key.clone() });
            self.exclude(&mut inner, key, &mut removed);
            inner.handlers.len()
        };
        // The i-th of n drops left `remaining_after + (n - 1 - i)` live
        // handlers; an exclusion cascade back to idle traces down to 0.
        let n = removed.len();
        for (i, h) in removed.iter().enumerate() {
            self.trace(|| TraceEvent::Exclude {
                key: h.key.clone(),
                remaining: remaining_after + (n - 1 - i),
            });
        }
        self.run_exclusion_actions(&removed);
    }

    fn exclude(&self, inner: &mut Inner, key: &MetadataKey, removed: &mut Vec<Arc<Handler>>) {
        let before = removed.len();
        self.decrement(inner, key, removed);
        if removed.len() == before {
            return; // still referenced (or unknown)
        }
        let handler = removed[before].clone();
        for dep in &handler.resolved_deps {
            if let DepSource::Item(dep_key) = &dep.source {
                self.exclude(inner, dep_key, removed);
            }
        }
    }

    fn run_exclusion_actions(&self, removed: &[Arc<Handler>]) {
        for h in removed {
            if let Some(task) = h.periodic_task.lock().take() {
                self.periodic.cancel(task);
            }
            for m in &h.def.monitors {
                m.deactivate();
            }
            if let Some(hook) = &h.def.on_exclude {
                hook();
            }
        }
    }

    /// Force-excludes `key` regardless of its subscription count — the
    /// administrative eviction a remote partition uses when it withdraws
    /// an item (and the race the lifecycle-panic sweep hardens against).
    ///
    /// Outstanding [`Subscription`] handles keep serving the handler's
    /// last good value, marked degraded; their fallible reads report
    /// [`MetadataError::Excluded`] and their drops become no-ops.
    /// Dependencies included on the item's behalf are excluded exactly
    /// as if the last subscription had been dropped. Returns whether a
    /// handler was actually removed.
    pub fn force_exclude(&self, key: &MetadataKey) -> bool {
        let mut removed = Vec::new();
        let remaining_after = {
            let mut inner = self.inner.lock();
            let Some(handler) = inner.handlers.get(key) else {
                return false;
            };
            // Defunct before degraded: a reader that observes the
            // degraded value may already consult the defunct flag.
            handler.mark_defunct();
            handler.mark_degraded();
            // Collapse the refcount so the ordinary exclusion recursion
            // removes the handler and debits each dependency exactly
            // once (dependency refcounts are per-inclusion, not
            // per-subscription).
            handler.subscriptions.store(1, Ordering::Relaxed);
            self.trace(|| TraceEvent::Unsubscribe { key: key.clone() });
            self.exclude(&mut inner, key, &mut removed);
            inner.handlers.len()
        };
        let n = removed.len();
        for (i, h) in removed.iter().enumerate() {
            self.trace(|| TraceEvent::Exclude {
                key: h.key.clone(),
                remaining: remaining_after + (n - 1 - i),
            });
        }
        self.run_exclusion_actions(&removed);
        !removed.is_empty()
    }

    /// Registers an additional subscription on `key` against the exact
    /// `handler` a live [`Subscription`] pinned (the panic-free clone
    /// path). If the bookkeeping still maps `key` to that handler, the
    /// refcount is bumped; otherwise the item was force-excluded in the
    /// meantime and the clone pins the same defunct handler — it reads
    /// the last good value and reports errors instead of panicking.
    pub(crate) fn resubscribe(
        self: &Arc<Self>,
        key: &MetadataKey,
        handler: &Arc<Handler>,
    ) -> Subscription {
        {
            let inner = self.inner.lock();
            if let Some(current) = inner.handlers.get(key) {
                if Arc::ptr_eq(current, handler) {
                    current.subscriptions.fetch_add(1, Ordering::Relaxed);
                    self.trace(|| TraceEvent::Subscribe { key: key.clone() });
                    return Subscription::new(self.clone(), key.clone(), handler.clone());
                }
            }
        }
        handler.mark_defunct();
        Subscription::new(self.clone(), key.clone(), handler.clone())
    }

    // ------------------------------------------------------------------
    // Access
    // ------------------------------------------------------------------

    /// Resolves a handler through the sharded index — one shard read
    /// lock, never the bookkeeping mutex.
    fn handler(&self, key: &MetadataKey) -> Option<Arc<Handler>> {
        self.shard_reads.fetch_add(1, Ordering::Relaxed);
        self.shards.get(key)
    }

    /// Read through a cached handler (the [`Subscription`] fast path):
    /// no manager lock of any kind, only the item-level value lock (and
    /// the compute mutex for on-demand items).
    pub(crate) fn read_cached(&self, handler: &Arc<Handler>) -> VersionedValue {
        // One relaxed increment — the manager-level cached-read count is
        // derived in `fast_read_count` rather than maintained here.
        handler.record_access();
        self.access_handler(handler)
    }

    /// The current value of an included item. On-demand items are
    /// recomputed by this access (Section 3.2.1).
    pub fn read(&self, key: &MetadataKey) -> Result<MetadataValue> {
        self.read_versioned(key).map(|v| v.value)
    }

    /// Like [`Self::read`], including version and update instant.
    pub fn read_versioned(&self, key: &MetadataKey) -> Result<VersionedValue> {
        let handler = self
            .handler(key)
            .ok_or_else(|| MetadataError::NotIncluded(key.clone()))?;
        handler.record_access();
        self.accesses.fetch_add(1, Ordering::Relaxed);
        Ok(self.access_handler(&handler))
    }

    /// Like [`Self::read_versioned`], but refuses to serve stale values:
    /// a quarantined item reports [`MetadataError::Quarantined`] and a
    /// degraded (last-good) value reports [`MetadataError::Degraded`].
    /// For consumers that cannot tolerate staleness; everyone else uses
    /// [`Self::read`] / [`Self::read_versioned`] and checks
    /// [`VersionedValue::degraded`] when they care.
    pub fn read_fresh(&self, key: &MetadataKey) -> Result<VersionedValue> {
        let handler = self
            .handler(key)
            .ok_or_else(|| MetadataError::NotIncluded(key.clone()))?;
        handler.record_access();
        self.accesses.fetch_add(1, Ordering::Relaxed);
        if self.is_quarantined(&handler) {
            return Err(MetadataError::Quarantined(key.clone()));
        }
        let v = self.access_handler(&handler);
        if v.degraded {
            return Err(MetadataError::Degraded(key.clone()));
        }
        Ok(v)
    }

    fn access_handler(&self, handler: &Arc<Handler>) -> VersionedValue {
        if handler.on_demand {
            let contained = handler.def.deadline().is_some() || handler.def.fallback().is_some();
            if !contained {
                let now = self.clock.now();
                let _guard = handler.compute_lock.lock();
                self.refresh_handler(handler, None, now, None);
            } else if !self.is_quarantined(handler) {
                // No-hang guarantee for contained items: if another
                // consumer is already stuck inside a slow compute, serve
                // the current (possibly degraded) snapshot instead of
                // queueing behind it past the deadline.
                if let Some(_guard) = handler.compute_lock.try_lock() {
                    let now = self.clock.now();
                    self.refresh_handler(handler, None, now, None);
                }
            }
        }
        let snapshot = handler.snapshot();
        if snapshot.degraded {
            self.stale_serves.fetch_add(1, Ordering::Relaxed);
        }
        snapshot
    }

    /// Whether `key` currently has a handler. One shard read lock.
    pub fn is_included(&self, key: &MetadataKey) -> bool {
        self.shard_reads.fetch_add(1, Ordering::Relaxed);
        self.shards.contains(key)
    }

    /// The subscription count of `key` (0 if not included).
    pub fn subscription_count(&self, key: &MetadataKey) -> usize {
        self.handler(key)
            .map_or(0, |h| h.subscriptions.load(Ordering::Relaxed))
    }

    /// Number of live handlers.
    pub fn handler_count(&self) -> usize {
        self.inner.lock().handlers.len()
    }

    /// The keys of all live handlers, sorted.
    pub fn included_keys(&self) -> Vec<MetadataKey> {
        let mut v: Vec<_> = self.inner.lock().handlers.keys().cloned().collect();
        v.sort();
        v
    }

    /// Per-item statistics, if the item is included. Served by the
    /// sharded index, without the bookkeeping mutex.
    pub fn handler_stats(&self, key: &MetadataKey) -> Option<HandlerStats> {
        self.handler(key).map(|h| {
            let latency = h.latency.snapshot();
            HandlerStats {
                accesses: h.access_count(),
                updates: h.update_count(),
                computes: h.compute_count(),
                subscriptions: h.subscriptions.load(Ordering::Relaxed),
                latency_p50: latency.percentile(0.50).map(|v| v.max(0) as u64),
                latency_p95: latency.percentile(0.95).map(|v| v.max(0) as u64),
                latency_p99: latency.percentile(0.99).map(|v| v.max(0) as u64),
            }
        })
    }

    /// The update mechanism of an included item.
    pub fn mechanism_of(&self, key: &MetadataKey) -> Option<Mechanism> {
        self.handler(key).map(|h| h.mechanism())
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> ManagerStats {
        let inner = self.inner.lock();
        let total_accesses = self.retired_accesses.load(Ordering::Relaxed)
            + inner
                .handlers
                .values()
                .map(|h| h.access_count())
                .sum::<u64>();
        let key_accesses = self.accesses.load(Ordering::Relaxed);
        ManagerStats {
            handlers: inner.handlers.len(),
            subscriptions: inner
                .handlers
                .values()
                .map(|h| h.subscriptions.load(Ordering::Relaxed))
                .sum(),
            computes: self.computes.value(),
            updates: self.updates.load(Ordering::Relaxed),
            accesses: total_accesses,
            propagations: self.propagations.load(Ordering::Relaxed),
            compute_failures: self.compute_failures.load(Ordering::Relaxed),
            deadline_misses: self.deadline_misses.load(Ordering::Relaxed),
            fast_reads: total_accesses.saturating_sub(key_accesses),
            shard_reads: self.shard_reads.load(Ordering::Relaxed),
            deadline_overruns: self.deadline_overruns.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            quarantine_trips: self.quarantine_trips.load(Ordering::Relaxed),
            stale_serves: self.stale_serves.load(Ordering::Relaxed),
            epochs: self.epochs.load(Ordering::Relaxed),
            coalesced_updates: self.coalesced_updates.load(Ordering::Relaxed),
        }
    }

    /// Reads served through cached subscription handlers (no manager
    /// lock at all). Derived — per-handler access counts minus the
    /// key-based reads — so the fast path itself maintains no
    /// manager-level counter.
    pub fn fast_read_count(&self) -> u64 {
        self.stats().fast_reads
    }

    /// Key-based handler lookups served by the sharded index.
    pub fn shard_read_count(&self) -> u64 {
        self.shard_reads.load(Ordering::Relaxed)
    }

    /// Number of partitions of the sharded handler index.
    pub fn shard_count(&self) -> usize {
        self.shards.shard_count()
    }

    // ------------------------------------------------------------------
    // Dependency-graph introspection
    // ------------------------------------------------------------------

    /// All edges of the runtime dependency graph, as
    /// `(source, dependent item)` pairs, sorted.
    pub fn dependency_edges(&self) -> Vec<(DepSource, MetadataKey)> {
        let inner = self.inner.lock();
        let mut edges: Vec<(DepSource, MetadataKey)> = inner
            .dependents
            .iter()
            .flat_map(|(src, deps)| deps.iter().map(move |d| (src.clone(), d.clone())))
            .collect();
        edges.sort();
        edges
    }

    /// The items currently registered as dependents of `source`.
    pub fn dependents_of(&self, source: &DepSource) -> Vec<MetadataKey> {
        let mut v = self
            .inner
            .lock()
            .dependents
            .get(source)
            .cloned()
            .unwrap_or_default();
        v.sort();
        v
    }

    /// The resolved dependencies of an included item (role + source), in
    /// declaration order.
    pub fn dependencies_of(&self, key: &MetadataKey) -> Option<Vec<crate::ResolvedDep>> {
        self.handler(key).map(|h| h.resolved_deps.clone())
    }

    /// The included dependency subgraph in Graphviz DOT syntax: boxes for
    /// metadata items (labelled with their mechanism), diamonds for event
    /// sources, arrows from dependency to dependent.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph metadata {\n  rankdir=BT;\n");
        for key in self.included_keys() {
            let mech = self.mechanism_of(&key).map_or("?", |m| m.label());
            let _ = writeln!(out, "  \"{key}\" [shape=box, label=\"{key}\\n({mech})\"];");
        }
        let mut events = std::collections::BTreeSet::new();
        for (src, dependent) in self.dependency_edges() {
            let from = match &src {
                DepSource::Item(k) => format!("{k}"),
                DepSource::Event(e) => {
                    events.insert(e.clone());
                    format!("{e}")
                }
            };
            let _ = writeln!(out, "  \"{from}\" -> \"{dependent}\";");
        }
        for e in events {
            let _ = writeln!(out, "  \"{e}\" [shape=diamond];");
        }
        out.push_str("}\n");
        out
    }

    // ------------------------------------------------------------------
    // Updates and trigger propagation (Section 3.2.3)
    // ------------------------------------------------------------------

    /// Whether a handler's circuit breaker is currently open. Only items
    /// with a fallback policy ever pay the containment-lock check.
    fn is_quarantined(&self, handler: &Handler) -> bool {
        handler.def.fallback().is_some() && handler.containment.lock().quarantined_until.is_some()
    }

    /// Evaluates a handler's compute function. Panics in user compute
    /// code are contained: the evaluation reports `Unavailable` and the
    /// failure is counted, so one faulty metadata item cannot take down
    /// query processing or leave the framework's locks poisoned (all
    /// bookkeeping locks are released while user code runs). An installed
    /// fault plan is consulted here — inside the containment — and a
    /// declared deadline is measured against the manager's clock, so
    /// overruns are detected identically under wall and virtual time.
    fn compute_raw(
        &self,
        handler: &Arc<Handler>,
        window: Option<TimeSpan>,
        now: Timestamp,
        span: Option<&SpanContext>,
    ) -> ComputeOutcome {
        handler.record_compute();
        self.computes.record();
        let fault = if self.fault_enabled.load(Ordering::Relaxed) {
            let plan = self.fault_plan.read().clone();
            plan.and_then(|p| p.decide(&handler.key).map(|a| (p, a)))
        } else {
            None
        };
        let ctx = EvalCtx {
            now,
            window,
            reader: self,
            deps: &handler.resolved_deps,
        };
        let compute = &handler.def.compute;
        let started = self
            .profile_latency
            .load(Ordering::Relaxed)
            .then(std::time::Instant::now);
        let deadline = handler.def.deadline();
        let clock_start = deadline.map(|_| self.clock.now());
        // Lock-audit marker: only ItemCompute / FlushSerial may be held
        // while the user closure below runs.
        crate::sync::note_user_compute();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match &fault {
            Some((_, FaultAction::Panic)) => panic!("injected fault: {}", handler.key),
            Some((_, FaultAction::Error)) => MetadataValue::Unavailable,
            Some((plan, FaultAction::Delay(d))) => {
                plan.delay(*d);
                compute(&ctx)
            }
            None => compute(&ctx),
        }));
        if let Some(started) = started {
            let ns = started.elapsed().as_nanos().min(i64::MAX as u128) as i64;
            handler.latency.observe(ns);
        }
        let overran = match (deadline, clock_start) {
            (Some(budget), Some(t0)) => {
                let elapsed = self.clock.now().since(t0);
                if elapsed > budget {
                    self.deadline_overruns.fetch_add(1, Ordering::Relaxed);
                    self.trace_span(span, || TraceEvent::DeadlineExceeded {
                        key: handler.key.clone(),
                        budget,
                        elapsed,
                    });
                    true
                } else {
                    false
                }
            }
            _ => false,
        };
        match result {
            Ok(v) => ComputeOutcome {
                value: v,
                panicked: false,
                overran,
            },
            Err(_) => {
                self.compute_failures.fetch_add(1, Ordering::Relaxed);
                self.trace_span(span, || TraceEvent::ComputeFailed {
                    key: handler.key.clone(),
                });
                ComputeOutcome {
                    value: MetadataValue::Unavailable,
                    panicked: true,
                    overran,
                }
            }
        }
    }

    /// Evaluates and stores one handler, applying its failure-containment
    /// policy. Returns whether the stored value changed. The caller holds
    /// the handler's compute lock where required (matching the
    /// pre-containment call sites); manager-level `updates` accounting
    /// stays with the caller too.
    ///
    /// * No deadline, no policy: exactly the pre-containment behaviour —
    ///   the result (including `Unavailable` after a panic) is stored.
    /// * Deadline without policy: overruns are counted and traced, but
    ///   observation-only — the late result is still stored. Static
    ///   analysis flags this combination (rule C1).
    /// * With a policy, a failed evaluation (panic, overrun, or an
    ///   `Unavailable` result) is discarded: the last good value keeps
    ///   serving, marked degraded, and the failure feeds the retry /
    ///   quarantine state machine.
    fn refresh_handler(
        &self,
        handler: &Arc<Handler>,
        window: Option<TimeSpan>,
        now: Timestamp,
        span: Option<&SpanContext>,
    ) -> bool {
        let deadline = handler.def.deadline();
        let policy = handler.def.fallback();
        if deadline.is_none() && policy.is_none() {
            let out = self.compute_raw(handler, window, now, span);
            return self.store_traced(handler, out.value, now, span);
        }
        let out = self.compute_raw(handler, window, now, span);
        let failed =
            out.panicked || (policy.is_some() && (out.overran || !out.value.is_available()));
        if !failed {
            if policy.is_some() {
                let (pending, recovered) = {
                    let mut st = handler.containment.lock();
                    st.streak = 0;
                    st.attempt = 0;
                    (st.retry_task.take(), st.quarantined_until.take().is_some())
                };
                if let Some(task) = pending {
                    self.periodic.cancel(task);
                }
                if recovered {
                    self.trace_span(span, || TraceEvent::QuarantineRecovered {
                        key: handler.key.clone(),
                    });
                }
            }
            return self.store_traced(handler, out.value, now, span);
        }
        let Some(policy) = policy else {
            // Deadline-only item: observation, not containment.
            return self.store_traced(handler, out.value, now, span);
        };
        handler.mark_degraded();
        // Follow-ups are scheduled from the evaluation's *scheduled* time
        // (`now`), like periodic boundaries — so a coarse virtual-clock
        // step drives a whole retry chain to completion deterministically.
        let scheduled_at = now;
        let mut st = handler.containment.lock();
        st.streak = st.streak.saturating_add(1);
        if st.streak >= policy.quarantine_after {
            let until = scheduled_at + policy.cool_down;
            st.quarantined_until = Some(until);
            st.attempt = 0;
            st.trips = st.trips.saturating_add(1);
            let task = ContainmentTask {
                manager: self.self_weak.clone(),
                key: handler.key.clone(),
                probe: true,
                span: span.cloned(),
            };
            st.retry_task = Some(
                self.periodic
                    .register_once(until, Arc::new(task) as Arc<dyn PeriodicTask>),
            );
            drop(st);
            self.quarantine_trips.fetch_add(1, Ordering::Relaxed);
            self.trace_span(span, || TraceEvent::QuarantineTripped {
                key: handler.key.clone(),
                until,
            });
        } else if st.attempt < policy.max_retries {
            let delay = policy.retry_delay(st.attempt);
            st.attempt += 1;
            let attempt = st.attempt;
            let task = ContainmentTask {
                manager: self.self_weak.clone(),
                key: handler.key.clone(),
                probe: false,
                span: span.cloned(),
            };
            st.retry_task = Some(self.periodic.register_once(
                scheduled_at + delay,
                Arc::new(task) as Arc<dyn PeriodicTask>,
            ));
            drop(st);
            self.retries.fetch_add(1, Ordering::Relaxed);
            self.trace_span(span, || TraceEvent::RetryScheduled {
                key: handler.key.clone(),
                attempt,
                delay,
            });
        }
        false
    }

    /// Stores a computed value; on change traces the new version — the
    /// witness tracelint's T1 monotonicity rule replays — and, when the
    /// change was pushed to observers, the `notified` event whose root
    /// tracelint's T8 rule resolves. Callers serialize per handler
    /// (compute lock), so the version read back here is the one this
    /// store produced.
    fn store_traced(
        &self,
        handler: &Arc<Handler>,
        value: MetadataValue,
        now: Timestamp,
        span: Option<&SpanContext>,
    ) -> bool {
        let delivered = handler.store_if_changed_spanned(value, now, span);
        if let Some(observers) = delivered {
            let version = handler.snapshot().version;
            self.trace_span(span, || TraceEvent::ValueStored {
                key: handler.key.clone(),
                version,
            });
            if observers > 0 {
                self.trace_span(span, || TraceEvent::Notified {
                    key: handler.key.clone(),
                    version,
                    observers,
                });
            }
        }
        delivered.is_some()
    }

    /// A scheduled backoff retry for `key`. Skipped if the item was
    /// excluded or quarantined in the meantime; a successful retry
    /// propagates like any other update. The retry evaluation inherits
    /// the span of the failing compute as `parent` (carried explicitly
    /// through the [`ContainmentTask`] handoff), so a retry chain reads
    /// as one nested lineage in `sys.spans`.
    fn retry_refresh(&self, key: &MetadataKey, now: Timestamp, parent: Option<&SpanContext>) {
        let Some(handler) = self.handler(key) else {
            return; // excluded between scheduling and firing
        };
        if self.is_quarantined(&handler) {
            return;
        }
        let ctx = parent.map(|p| p.child(self.next_span_id(), now));
        let changed = {
            let _guard = handler.compute_lock.lock();
            self.refresh_handler(&handler, None, now, ctx.as_ref())
        };
        if let Some(ctx) = &ctx {
            self.record_span(ctx, Some(key), "retry", self.clock.now());
        }
        if changed {
            self.updates.fetch_add(1, Ordering::Relaxed);
            self.propagate_rooted(
                DepSource::Item(key.clone()),
                now,
                ctx.as_ref().map(SpanLink::of),
            );
        }
    }

    /// The recovery probe at the end of a quarantine cool-down: one
    /// evaluation while the circuit is still open. Success clears the
    /// quarantine (inside [`Self::refresh_handler`], which also traces
    /// the recovery); failure re-trips it for another cool-down. Like a
    /// retry, the probe inherits the span of the evaluation that tripped
    /// the breaker.
    fn quarantine_probe(&self, key: &MetadataKey, now: Timestamp, parent: Option<&SpanContext>) {
        let Some(handler) = self.handler(key) else {
            return;
        };
        let ctx = parent.map(|p| p.child(self.next_span_id(), now));
        let changed = {
            let _guard = handler.compute_lock.lock();
            self.refresh_handler(&handler, None, now, ctx.as_ref())
        };
        if let Some(ctx) = &ctx {
            self.record_span(ctx, Some(key), "probe", self.clock.now());
        }
        if changed {
            self.updates.fetch_add(1, Ordering::Relaxed);
            self.propagate_rooted(
                DepSource::Item(key.clone()),
                now,
                ctx.as_ref().map(SpanLink::of),
            );
        }
    }

    /// Refresh of one periodic handler at a window boundary. A sampled
    /// firing mints a fresh root span (the periodic boundary *is* the
    /// source update of the cascade it may cause).
    fn periodic_refresh(&self, key: &MetadataKey, boundary: Timestamp, window: TimeSpan) {
        let Some(handler) = self.handler(key) else {
            return; // unsubscribed between scheduling and firing
        };
        if self.is_quarantined(&handler) {
            // Circuit open: scheduled evaluations stop entirely until the
            // recovery probe; consumers keep the degraded last-good value.
            return;
        }
        let root = self
            .sample_span()
            .then(|| SpanContext::root(self.next_span_id(), boundary));
        let changed = {
            let _guard = handler.compute_lock.lock();
            let changed = self.refresh_handler(&handler, Some(window), boundary, root.as_ref());
            if changed {
                self.updates.fetch_add(1, Ordering::Relaxed);
            }
            changed
        };
        // Deadline-miss detection: the refresh finished a full window (or
        // more) after its scheduled boundary, i.e. the next boundary was
        // already due. Under a virtual-time driver this flags catch-up
        // firings after coarse clock steps; under wall clock, overload.
        let fired_at = self.clock.now();
        let missed = fired_at.since(boundary) >= window;
        if missed {
            self.deadline_misses.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(root) = &root {
            self.record_span(root, Some(key), "periodic_fired", fired_at);
        }
        self.trace_span(root.as_ref(), || TraceEvent::PeriodicFired {
            key: key.clone(),
            boundary,
            fired_at,
            missed,
        });
        if changed {
            self.propagate_rooted(
                DepSource::Item(key.clone()),
                boundary,
                root.as_ref().map(SpanLink::of),
            );
        }
    }

    /// Fires a manual event notification (Section 3.2.3): all triggered
    /// handlers depending on the event are updated, and changes propagate
    /// along the inverted dependency graph.
    pub fn fire_event(&self, event: EventKey) {
        let now = self.clock.now();
        self.propagate(DepSource::Event(event), now);
    }

    /// Notifies that the underlying state of an (on-demand) item changed,
    /// so triggered handlers depending on it recompute with fresh values
    /// (Section 3.2.3: bridging on-demand sources into triggered updates).
    pub fn notify_changed(&self, key: MetadataKey) {
        let now = self.clock.now();
        self.propagate(DepSource::Item(key), now);
    }

    /// Fires an event whose causal lineage was minted elsewhere — the
    /// cross-partition handoff: a remote store's span context arrives
    /// with the update message and the local cascade parents to it, so
    /// lineage reads as one chain across the partition boundary. Without
    /// a carried span this is [`Self::fire_event`] (local sampling).
    pub(crate) fn fire_event_linked(&self, event: EventKey, span: Option<&SpanContext>) {
        let now = self.clock.now();
        match span {
            Some(ctx) => {
                self.propagate_rooted(DepSource::Event(event), now, Some(SpanLink::of(ctx)))
            }
            None => self.propagate(DepSource::Event(event), now),
        }
    }

    // ------------------------------------------------------------------
    // Epoch (batch) propagation mode
    // ------------------------------------------------------------------

    /// Switches between per-event and epoch propagation. Entering epoch
    /// mode affects `fire_event` / `notify_changed` / periodic changes
    /// from here on; leaving it first flushes whatever is pending, so no
    /// queued update is lost by the switch.
    pub fn set_propagation_mode(&self, mode: PropagationMode) {
        match mode {
            PropagationMode::PerEvent => {
                {
                    let mut q = self.epoch_queue.lock();
                    q.enabled = false;
                }
                self.epoch_enabled.store(false, Ordering::Relaxed);
                // Drain anything enqueued before the switch.
                self.flush_epoch();
            }
            PropagationMode::Epoch(config) => {
                let mut q = self.epoch_queue.lock();
                q.config = config;
                q.enabled = true;
                drop(q);
                self.epoch_enabled.store(true, Ordering::Relaxed);
            }
        }
    }

    /// The currently active propagation mode.
    pub fn propagation_mode(&self) -> PropagationMode {
        let q = self.epoch_queue.lock();
        if q.enabled {
            PropagationMode::Epoch(q.config)
        } else {
            PropagationMode::PerEvent
        }
    }

    /// Epoch flushes performed so far (0 in per-event mode).
    pub fn epoch_count(&self) -> u64 {
        self.epochs.load(Ordering::Relaxed)
    }

    /// Source updates absorbed into an already-pending epoch entry.
    pub fn coalesced_update_count(&self) -> u64 {
        self.coalesced_updates.load(Ordering::Relaxed)
    }

    /// Distinct source updates currently queued for the next epoch.
    pub fn pending_update_count(&self) -> usize {
        self.epoch_queue.lock().pending.len()
    }

    /// Unconditionally flushes the pending epoch (shutdown drains, mode
    /// switches, tests). Returns the number of origins swept; 0 when
    /// nothing was pending.
    pub fn flush_epoch(&self) -> usize {
        self.flush_pending(None)
    }

    /// Flushes the pending epoch if its oldest update has waited at
    /// least the configured `max_delay` by `now`. The executors call
    /// this once per tick (virtual) / feeder iteration (threaded), which
    /// makes `max_delay` the epoch's time-slice bound. Returns the
    /// number of origins swept.
    pub fn flush_epoch_if_due(&self, now: Timestamp) -> usize {
        self.flush_pending(Some(now))
    }

    /// Queues one source update for the next epoch. Duplicate origins
    /// coalesce (counted, not re-queued); reaching `max_batch` distinct
    /// origins flushes synchronously on this thread. Returns `false` if
    /// epoch mode was switched off concurrently — the caller then falls
    /// back to an immediate per-event sweep. A sampled update's lineage
    /// rides in `pending_roots`: coalesced repeats *append* their roots,
    /// so the flush records every contributing source update.
    fn enqueue_update(&self, origin: DepSource, now: Timestamp, link: Option<SpanLink>) -> bool {
        let full = {
            let mut q = self.epoch_queue.lock();
            if !q.enabled {
                return false;
            }
            if q.pending_set.insert(origin.clone()) {
                q.pending.push(origin.clone());
                if q.first_enqueued.is_none() {
                    q.first_enqueued = Some(now);
                }
            } else {
                self.coalesced_updates.fetch_add(1, Ordering::Relaxed);
            }
            if let Some(link) = link {
                match q.pending_roots.get_mut(&origin) {
                    Some(existing) => existing.roots.extend(link.roots),
                    None => {
                        q.pending_roots.insert(origin, link);
                    }
                }
            }
            q.pending.len() >= q.config.max_batch
        };
        if full {
            self.flush_pending(None);
        }
        true
    }

    /// Takes the pending batch (under `flush_serial`, so batches are
    /// numbered and delivered in order) and sweeps it as one epoch.
    /// `due_at: Some(now)` only flushes when the oldest pending update
    /// has aged past `max_delay`; `None` flushes unconditionally.
    fn flush_pending(&self, due_at: Option<Timestamp>) -> usize {
        let serial = self.flush_serial.lock();
        let (origins, roots) = {
            let mut q = self.epoch_queue.lock();
            if q.pending.is_empty() {
                return 0;
            }
            if let Some(now) = due_at {
                let due = q
                    .first_enqueued
                    .is_some_and(|t0| now.since(t0) >= q.config.max_delay);
                if !due {
                    return 0;
                }
            }
            q.pending_set.clear();
            q.first_enqueued = None;
            (
                std::mem::take(&mut q.pending),
                std::mem::take(&mut q.pending_roots),
            )
        };
        let epoch = self.epochs.fetch_add(1, Ordering::Relaxed) + 1;
        let swept = origins.len();
        // When any contributing update was sampled, the flush itself gets
        // a parentless span rooted in the *union* of every pending
        // origin's roots — the multi-root record of epoch coalescing.
        let flush_span = (!roots.is_empty()).then(|| {
            let mut all: Vec<u64> = roots
                .values()
                .flat_map(|l| l.roots.iter().copied())
                .collect();
            all.sort_unstable();
            all.dedup();
            SpanContext {
                span: self.next_span_id(),
                parent: None,
                roots: all,
                depth: 0,
                start: self.clock.now(),
            }
        });
        let seeds = (!roots.is_empty()).then_some(roots);
        let stats = self.sweep(&origins, Some(epoch), seeds);
        drop(serial);
        if let Some(ctx) = &flush_span {
            self.record_span(ctx, None, "epoch_flushed", self.clock.now());
        }
        self.trace_span(flush_span.as_ref(), || TraceEvent::EpochFlushed {
            epoch,
            origins: swept,
            recomputed: stats.recomputed,
            max_depth: stats.max_depth,
        });
        swept
    }

    /// Recomputes all triggered items transitively reachable from `origin`
    /// over the inverted dependency graph — immediately in per-event mode,
    /// via the coalescing queue in epoch mode. Mints the root span of the
    /// resulting cascade when sampling hits: in per-event mode the root
    /// span covers the whole synchronous sweep; in epoch mode it covers
    /// the enqueue (the flush's own span covers the deferred sweep).
    fn propagate(&self, origin: DepSource, now: Timestamp) {
        match self.mint_root(&origin, now) {
            Some(root) => {
                let key = match &origin {
                    DepSource::Item(k) => Some(k.clone()),
                    DepSource::Event(_) => None,
                };
                self.propagate_rooted(origin, now, Some(SpanLink::of(&root)));
                self.record_span(&root, key.as_ref(), "source_update", self.clock.now());
            }
            None => self.propagate_rooted(origin, now, None),
        }
    }

    /// Like [`Self::propagate`], but with the cascade's lineage already
    /// minted by the caller (retry chains, quarantine probes and
    /// periodic firings seed their own spans).
    fn propagate_rooted(&self, origin: DepSource, now: Timestamp, link: Option<SpanLink>) {
        if self.epoch_enabled.load(Ordering::Relaxed) {
            let link_for_queue = link.clone();
            if self.enqueue_update(origin.clone(), now, link_for_queue) {
                return;
            }
        }
        let seeds = link.map(|l| {
            let mut seeds = HashMap::with_capacity(1);
            seeds.insert(origin.clone(), l);
            seeds
        });
        self.sweep(std::slice::from_ref(&origin), None, seeds);
    }

    /// One propagation round over the union of the subgraphs reachable
    /// from `origins`. Items are processed in topological order of their
    /// dependencies, each at most once per round; an item only recomputes
    /// if one of its sources actually changed, and only propagates
    /// further if its own value changed, so each item delivers at most
    /// one observer notification per round.
    ///
    /// `seeds` carries the sampled lineage of the origins: each hop that
    /// stores a change hands its own span to its dependents, so the topo
    /// order doubles as the guarantee that every span's parent precedes
    /// it in the trace (tracelint T7).
    fn sweep(
        &self,
        origins: &[DepSource],
        epoch: Option<u64>,
        seeds: Option<HashMap<DepSource, SpanLink>>,
    ) -> SweepStats {
        let round = self.propagations.fetch_add(1, Ordering::Relaxed) + 1;
        // Phase 1: snapshot the affected subgraph under one bookkeeping
        // lock, remembering each item's BFS distance from the nearest
        // origin for the trace.
        let (plan, depths) = {
            let inner = self.inner.lock();
            let mut reach: BTreeMap<MetadataKey, Arc<Handler>> = BTreeMap::new();
            let mut depths: HashMap<MetadataKey, usize> = HashMap::new();
            let mut frontier: VecDeque<(DepSource, usize)> = VecDeque::new();
            for origin in origins {
                frontier.push_back((origin.clone(), 0));
            }
            while let Some((src, depth)) = frontier.pop_front() {
                if let Some(deps) = inner.dependents.get(&src) {
                    for key in deps {
                        if reach.contains_key(key) {
                            continue;
                        }
                        let Some(handler) = inner.handlers.get(key) else {
                            continue;
                        };
                        // Updates pass through *triggered* handlers only:
                        // periodic dependents refresh on their own
                        // schedule, on-demand dependents on access.
                        if handler.mechanism() == Mechanism::Triggered {
                            reach.insert(key.clone(), handler.clone());
                            depths.insert(key.clone(), depth + 1);
                            frontier.push_back((DepSource::Item(key.clone()), depth + 1));
                        }
                    }
                }
            }
            (topo_order(reach), depths)
        };
        // Phase 2: recompute outside the bookkeeping lock.
        let mut changed: HashSet<DepSource> = origins.iter().cloned().collect();
        // Sampled lineage: which changed sources hand which spans to
        // their dependents. A hop parents to the *first* contributing
        // source's span and inherits the union of all contributors'
        // roots (epoch mode: a coalesced item records every root).
        let mut lineage: HashMap<DepSource, SpanLink> = seeds.unwrap_or_default();
        let mut stats = SweepStats::default();
        for handler in plan {
            let affected = handler
                .resolved_deps
                .iter()
                .any(|d| changed.contains(&d.source));
            if !affected {
                continue;
            }
            // The snapshot is stale by the time phase 2 runs: the handler
            // may have been excluded (and the key possibly re-included as
            // a fresh handler) since phase 1. Recomputing the dead
            // handler would resurrect a removed item's value, so re-check
            // identity against the live registry before touching it.
            let live = self
                .shards
                .get(&handler.key)
                .is_some_and(|current| Arc::ptr_eq(&current, &handler));
            if !live {
                continue;
            }
            if self.is_quarantined(&handler) {
                // Quarantined dependents are not recomputed; they keep
                // serving their degraded last-good value and do not
                // propagate further.
                continue;
            }
            let _guard = handler.compute_lock.lock();
            // Each refresh is stamped at its own compute time, not at the
            // instant the sweep started: deep-chain recomputes finish
            // later, and stamping them all at the sweep start would
            // understate `staleness()` for everything below depth 1.
            let at = self.clock.now();
            let depth = depths.get(&handler.key).copied().unwrap_or(0);
            let ctx = if lineage.is_empty() {
                None
            } else {
                let mut parent = None;
                let mut roots: Vec<u64> = Vec::new();
                for dep in &handler.resolved_deps {
                    if let Some(link) = lineage.get(&dep.source) {
                        if parent.is_none() {
                            parent = Some(link.span);
                        }
                        roots.extend(link.roots.iter().copied());
                    }
                }
                parent.map(|parent| {
                    roots.sort_unstable();
                    roots.dedup();
                    SpanContext {
                        span: self.next_span_id(),
                        parent: Some(parent),
                        roots,
                        depth: depth as u32,
                        start: at,
                    }
                })
            };
            let stored = self.refresh_handler(&handler, None, at, ctx.as_ref());
            stats.recomputed += 1;
            if let Some(epoch) = epoch {
                handler.note_epoch(epoch);
            }
            if stored {
                self.updates.fetch_add(1, Ordering::Relaxed);
                changed.insert(DepSource::Item(handler.key.clone()));
                if let Some(ctx) = &ctx {
                    lineage.insert(DepSource::Item(handler.key.clone()), SpanLink::of(ctx));
                }
            }
            stats.max_depth = stats.max_depth.max(depth);
            if let Some(ctx) = &ctx {
                self.record_span(
                    ctx,
                    Some(&handler.key),
                    "propagation_step",
                    self.clock.now(),
                );
            }
            self.trace_span(ctx.as_ref(), || TraceEvent::PropagationStep {
                round,
                key: handler.key.clone(),
                depth,
                changed: stored,
            });
        }
        // Monotonic max, not a store: a concurrent shallow round must not
        // overwrite a deeper round within the same observation window.
        self.last_propagation_depth
            .fetch_max(stats.max_depth as u64, Ordering::Relaxed);
        stats
    }
}

/// What one propagation sweep did (per-event round or epoch flush).
#[derive(Default, Clone, Copy)]
struct SweepStats {
    recomputed: usize,
    max_depth: usize,
}

/// Sorts the affected handlers so every handler appears after all of its
/// in-set dependencies (Kahn's algorithm; `BTreeMap` keeps it
/// deterministic).
fn topo_order(reach: BTreeMap<MetadataKey, Arc<Handler>>) -> Vec<Arc<Handler>> {
    let mut indegree: BTreeMap<&MetadataKey, usize> = BTreeMap::new();
    let mut edges: BTreeMap<&MetadataKey, Vec<&MetadataKey>> = BTreeMap::new();
    for (key, handler) in &reach {
        indegree.entry(key).or_insert(0);
        for dep in &handler.resolved_deps {
            if let DepSource::Item(dep_key) = &dep.source {
                if let Some((stored_key, _)) = reach.get_key_value(dep_key) {
                    edges.entry(stored_key).or_default().push(key);
                    *indegree.entry(key).or_insert(0) += 1;
                }
            }
        }
    }
    let mut ready: VecDeque<&MetadataKey> = indegree
        .iter()
        .filter(|(_, d)| **d == 0)
        .map(|(k, _)| *k)
        .collect();
    let mut order = Vec::with_capacity(reach.len());
    while let Some(key) = ready.pop_front() {
        order.push(reach[key].clone());
        if let Some(next) = edges.get(key) {
            for n in next {
                let d = indegree.get_mut(n).expect("indexed");
                *d -= 1;
                if *d == 0 {
                    ready.push_back(n);
                }
            }
        }
    }
    // The dependency graph is acyclic by construction (cycles are rejected
    // at inclusion), so every handler is ordered.
    debug_assert_eq!(order.len(), reach.len());
    order
}

impl DepReader for MetadataManager {
    fn read_dep(&self, key: &MetadataKey) -> MetadataValue {
        match self.handler(key) {
            Some(h) => self.access_handler(&h).value,
            None => MetadataValue::Unavailable,
        }
    }
}

/// Periodic refresh task registered per periodic handler.
struct PeriodicRefresh {
    manager: Weak<MetadataManager>,
    key: MetadataKey,
    window: TimeSpan,
}

impl PeriodicTask for PeriodicRefresh {
    fn run(&self, fired_at: Timestamp) {
        if let Some(mgr) = self.manager.upgrade() {
            mgr.periodic_refresh(&self.key, fired_at, self.window);
        }
    }
}

/// One-shot containment task: a backoff retry or, at the end of a
/// quarantine cool-down, the recovery probe.
struct ContainmentTask {
    manager: Weak<MetadataManager>,
    key: MetadataKey,
    probe: bool,
    /// The span of the failing evaluation, carried *explicitly* through
    /// the `PeriodicRegistry` scheduling handoff (no thread-local state
    /// survives a work item): the retry or probe evaluation becomes its
    /// child, so failure chains stay one lineage.
    span: Option<SpanContext>,
}

impl PeriodicTask for ContainmentTask {
    fn run(&self, fired_at: Timestamp) {
        if let Some(mgr) = self.manager.upgrade() {
            if self.probe {
                mgr.quarantine_probe(&self.key, fired_at, self.span.as_ref());
            } else {
                mgr.retry_refresh(&self.key, fired_at, self.span.as_ref());
            }
        }
    }
}
