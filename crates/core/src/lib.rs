//! # streammeta-core — dynamic metadata management
//!
//! A publish-subscribe framework for the *dynamic provision and continuous
//! maintenance of metadata* in a scalable stream processing system (SSPS),
//! reproducing Cammert, Krämer & Seeger, *"Dynamic Metadata Management for
//! Scalable Stream Processing Systems"* (ICDE 2007).
//!
//! ## Concepts
//!
//! * **Metadata items** ([`ItemDef`]) are defined per query-graph node in a
//!   [`NodeRegistry`]; paths nest so exchangeable modules expose their own
//!   metadata (`state.left.memory_usage`).
//! * Consumers **subscribe** through the [`MetadataManager`]; the first
//!   subscription materialises a shared, reference-counted *handler*, and
//!   all (transitive) **dependencies** — intra-node, inter-node, or event
//!   sources — are included automatically. Unsubscription symmetrically
//!   excludes whatever is no longer needed. Only subscribed metadata is
//!   maintained: this *tailored provision* is the paper's scalability
//!   argument.
//! * Four **update mechanisms**: static, on-demand (computed on access),
//!   periodic (fixed time windows, driven by a
//!   [`streammeta_time::PeriodicRegistry`]), and triggered (recomputed when
//!   dependencies change or events fire, propagating along the inverted
//!   dependency graph in topological order).
//! * **Monitors** ([`Counter`], [`Gauge`]) are activatable probes on the
//!   hot processing path; inclusion hooks switch them on and off so unused
//!   metadata costs (almost) nothing.
//!
//! ## Quick example
//!
//! ```
//! use std::sync::Arc;
//! use streammeta_core::{
//!     Counter, ItemDef, MetadataKey, MetadataManager, MetadataValue, NodeRegistry, NodeId,
//!     WindowDelta,
//! };
//! use streammeta_time::{Clock, TimeSpan, VirtualClock};
//!
//! let clock = VirtualClock::shared();
//! let manager = MetadataManager::new(clock.clone());
//!
//! // A node counts its incoming elements (monitoring code)...
//! let node = NodeId(0);
//! let registry = NodeRegistry::new(node);
//! let arrivals = Counter::new();
//! let delta = Arc::new(WindowDelta::new(arrivals.clone()));
//! registry.define(
//!     ItemDef::periodic("input_rate", TimeSpan(10))
//!         .counter(&arrivals)
//!         .compute(move |ctx| match delta.rate_over(ctx.window().unwrap()) {
//!             Some(r) => MetadataValue::F64(r),
//!             None => MetadataValue::Unavailable,
//!         })
//!         .build(),
//! );
//! manager.attach_node(registry);
//!
//! // ...a consumer subscribes, which activates the counter.
//! let rate = manager.subscribe(MetadataKey::new(node, "input_rate")).unwrap();
//! assert!(arrivals.is_active());
//!
//! // One element per time unit for 10 units:
//! for _ in 0..10 {
//!     clock.advance(TimeSpan(1));
//!     arrivals.record();
//!     manager.periodic().advance_to(clock.now());
//! }
//! assert_eq!(rate.get_f64(), Some(1.0));
//! ```

#![warn(missing_docs)]

mod catalog;
mod error;
mod estimators;
mod fault;
mod handler;
mod histogram;
mod item;
mod key;
mod manager;
mod meta;
mod monitor;
mod partition;
mod registry;
mod shards;
mod subscription;
pub mod sync;
mod trace;
mod value;

pub use catalog::{RelationColumn, SystemRelation, CATALOG_NODE};
pub use error::{MetadataError, Result};
pub use estimators::{Ewma, IntervalRate, OnlineAverage, OnlineVariance, WindowDelta};
pub use fault::{DelayFn, FaultAction, FaultPlan, FaultSchedule};
pub use handler::HandlerStats;
pub use histogram::{HistogramMonitor, HistogramSnapshot};
pub use item::{
    Activatable, ComputeFn, DepSource, DepSpec, DepTarget, Dependency, EvalCtx, FallbackPolicy,
    HookFn, ItemDef, ItemDefBuilder, Mechanism, ResolveCtx, ResolvedDep,
};
pub use key::{EventKey, ItemPath, MetadataKey, NodeId};
pub use manager::{
    EpochConfig, ManagerStats, MetadataManager, PropagationMode, ValidationPolicy, ValidatorFn,
};
pub use meta::META_NODE;
pub use monitor::{Counter, Gauge};
pub use partition::{PartitionedMetadataPlane, PlaneConfig};
pub use registry::{MetadataModule, NodeRegistry, RegistryScope};
pub use subscription::Subscription;
pub use sync::{lock_audit, LockEvent, LockTier};
pub use trace::{
    RingBufferSink, RotatingFileSink, SpanContext, SpanRecord, SpanSampling, SpanStore, TraceEvent,
    TraceRecord, TraceSink,
};
pub use value::{MetadataValue, VersionedValue};
