//! Equi-width histograms — the "data distributions" metadata the paper
//! lists for stream sources (Section 1).
//!
//! A [`HistogramMonitor`] is an activatable probe: the processing path
//! calls [`HistogramMonitor::observe`] per element (cheap atomic bucket
//! increments when active, a single flag load when not). A periodic
//! metadata item snapshots it per window into a [`HistogramSnapshot`],
//! from which consumers — e.g. a selectivity estimator for a filter
//! predicate, or a query optimizer — derive range selectivities.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::monitor::Counter;

/// Activatable equi-width histogram over `i64` values.
#[derive(Debug)]
pub struct HistogramMonitor {
    /// Piggybacks activation handling on a counter (total observations).
    total: Arc<Counter>,
    lo: i64,
    hi: i64,
    width: u64,
    buckets: Vec<AtomicU64>,
    /// Values below `lo` / at or above the upper edge.
    underflow: AtomicU64,
    overflow: AtomicU64,
}

impl HistogramMonitor {
    /// A histogram over `[lo, hi)` with `buckets` equal-width buckets.
    pub fn new(lo: i64, hi: i64, buckets: usize) -> Arc<Self> {
        assert!(hi > lo, "empty histogram domain");
        assert!(buckets > 0, "histogram needs at least one bucket");
        let span = (hi - lo) as u64;
        let width = span.div_ceil(buckets as u64).max(1);
        Arc::new(HistogramMonitor {
            total: Counter::new(),
            lo,
            hi,
            width,
            buckets: (0..buckets).map(|_| AtomicU64::new(0)).collect(),
            underflow: AtomicU64::new(0),
            overflow: AtomicU64::new(0),
        })
    }

    /// The activation counter; attach it to the item via
    /// [`crate::ItemDefBuilder::counter`] so inclusion switches the
    /// histogram on.
    pub fn activation(&self) -> &Arc<Counter> {
        &self.total
    }

    /// Records one observation if active. Hot path.
    #[inline]
    pub fn observe(&self, v: i64) {
        if !self.total.is_active() {
            return;
        }
        self.total.record();
        if v < self.lo {
            self.underflow.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let idx = ((v - self.lo) as u64 / self.width) as usize;
        match self.buckets.get(idx) {
            Some(b) => {
                b.fetch_add(1, Ordering::Relaxed);
            }
            None => {
                self.overflow.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// A consistent-enough snapshot of the current counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            lo: self.lo,
            hi: self.hi,
            width: self.width,
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            underflow: self.underflow.load(Ordering::Relaxed),
            overflow: self.overflow.load(Ordering::Relaxed),
        }
    }
}

/// An immutable histogram snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    lo: i64,
    hi: i64,
    width: u64,
    counts: Arc<[u64]>,
    underflow: u64,
    overflow: u64,
}

impl HistogramSnapshot {
    /// Total observations (including out-of-range).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// The first value classified as overflow. Bucket widths round up, so
    /// this can sit slightly above the configured `hi`; computed in `i128`
    /// because `lo + buckets * width` can exceed the `i64` range.
    fn upper_edge(&self) -> i128 {
        self.lo as i128 + (self.counts.len() as u128 * self.width as u128) as i128
    }

    /// The bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Estimated fraction of values `< bound` (linear interpolation
    /// within the boundary bucket). `None` before any observation.
    pub fn selectivity_lt(&self, bound: i64) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let mut below = self.underflow as f64;
        for (i, &count) in self.counts.iter().enumerate() {
            let b_lo = self.lo + (i as u64 * self.width) as i64;
            let b_hi = b_lo + self.width as i64;
            if bound >= b_hi {
                below += count as f64;
            } else if bound > b_lo {
                let frac = (bound - b_lo) as f64 / self.width as f64;
                below += count as f64 * frac;
                break;
            } else {
                break;
            }
        }
        // Overflow holds everything at or above the upper bucket edge; once
        // `bound` clears that edge the tail mass counts as below it (the
        // mirror of the underflow term above). Without this the estimate
        // never reaches 1.0 after an out-of-range observation, even for
        // `bound == i64::MAX`.
        if bound as i128 > self.upper_edge() {
            below += self.overflow as f64;
        }
        Some(below / total as f64)
    }

    /// Estimated fraction of values equal to `v` (uniformity within the
    /// bucket). `None` before any observation.
    pub fn selectivity_eq(&self, v: i64) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        if v < self.lo {
            return Some(0.0);
        }
        let idx = ((v - self.lo) as u64 / self.width) as usize;
        let Some(&count) = self.counts.get(idx) else {
            // Above the upper edge: attribute the overflow mass, spread over
            // one bucket width (the same uniformity convention as in-range
            // buckets). Returning 0.0 here would hide every observation that
            // landed above `hi`.
            return Some(self.overflow as f64 / self.width as f64 / total as f64);
        };
        Some(count as f64 / self.width as f64 / total as f64)
    }

    /// Nearest-rank percentile estimate (`0.0 < p <= 1.0`), reported as
    /// the upper edge of the bucket holding the rank. Underflow ranks
    /// report the domain's lower edge, overflow ranks saturate at the
    /// upper edge. `None` before any observation.
    pub fn percentile(&self, p: f64) -> Option<i64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let rank = ((p * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = self.underflow;
        if rank <= cum {
            return Some(self.lo);
        }
        for (i, &count) in self.counts.iter().enumerate() {
            cum += count;
            if rank <= cum {
                // Bucket edges are spaced by the rounded-up width, so the
                // last edge can exceed the configured domain top when the
                // span is not divisible by the bucket count; clamp so the
                // reported percentile stays within `[lo, hi]`.
                return Some((self.lo + ((i as u64 + 1) * self.width) as i64).min(self.hi));
            }
        }
        Some(self.hi)
    }

    /// Renders `bucket_lo:count` pairs, for textual metadata export.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, &count) in self.counts.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            let b_lo = self.lo + (i as u64 * self.width) as i64;
            let _ = write!(out, "{b_lo}:{count}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn active(lo: i64, hi: i64, buckets: usize) -> Arc<HistogramMonitor> {
        let h = HistogramMonitor::new(lo, hi, buckets);
        h.activation().activate();
        h
    }

    #[test]
    fn inactive_histogram_records_nothing() {
        let h = HistogramMonitor::new(0, 100, 10);
        h.observe(5);
        assert_eq!(h.snapshot().total(), 0);
    }

    #[test]
    fn buckets_fill_correctly() {
        let h = active(0, 100, 10);
        for v in [0, 5, 9, 10, 55, 99] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.total(), 6);
        assert_eq!(s.counts()[0], 3); // 0,5,9
        assert_eq!(s.counts()[1], 1); // 10
        assert_eq!(s.counts()[5], 1); // 55
        assert_eq!(s.counts()[9], 1); // 99
    }

    #[test]
    fn out_of_range_tracked() {
        let h = active(0, 10, 2);
        h.observe(-1);
        h.observe(10);
        h.observe(100);
        let s = h.snapshot();
        assert_eq!(s.total(), 3);
        assert_eq!(s.counts().iter().sum::<u64>(), 0);
        assert_eq!(s.selectivity_lt(0), Some(1.0 / 3.0));
    }

    #[test]
    fn selectivity_lt_uniform() {
        let h = active(0, 100, 10);
        for v in 0..100 {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.selectivity_lt(50), Some(0.5));
        assert_eq!(s.selectivity_lt(0), Some(0.0));
        assert_eq!(s.selectivity_lt(100), Some(1.0));
        // Interpolation inside a bucket.
        let sel = s.selectivity_lt(25).unwrap();
        assert!((sel - 0.25).abs() < 1e-9);
    }

    #[test]
    fn selectivity_eq_uniform() {
        let h = active(0, 10, 10);
        for v in 0..10 {
            h.observe(v);
        }
        let s = h.snapshot();
        assert!((s.selectivity_eq(3).unwrap() - 0.1).abs() < 1e-9);
        assert_eq!(s.selectivity_eq(-5), Some(0.0));
        assert_eq!(s.selectivity_eq(50), Some(0.0));
    }

    #[test]
    fn empty_snapshot_has_no_selectivity() {
        let h = active(0, 10, 2);
        assert_eq!(h.snapshot().selectivity_lt(5), None);
        assert_eq!(h.snapshot().selectivity_eq(5), None);
    }

    #[test]
    fn percentile_nearest_rank() {
        let h = active(0, 100, 10);
        for v in 0..100 {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.percentile(0.5), Some(50));
        assert_eq!(s.percentile(0.95), Some(100));
        assert_eq!(s.percentile(0.05), Some(10));
        assert_eq!(
            HistogramMonitor::new(0, 10, 2).snapshot().percentile(0.5),
            None
        );
    }

    #[test]
    fn percentile_saturates_at_domain_edges() {
        let h = active(0, 10, 2);
        h.observe(-5);
        h.observe(50);
        let s = h.snapshot();
        assert_eq!(s.percentile(0.25), Some(0));
        assert_eq!(s.percentile(1.0), Some(10));
    }

    #[test]
    fn selectivity_lt_counts_overflow_tail() {
        let h = active(0, 100, 10);
        for v in 0..100 {
            h.observe(v);
        }
        h.observe(150);
        h.observe(10_000);
        let s = h.snapshot();
        // Regression: the overflow mass used to be in the denominator but
        // never in the numerator, so no bound could reach 1.0.
        assert_eq!(s.selectivity_lt(i64::MAX), Some(1.0));
        assert_eq!(s.selectivity_lt(100), Some(100.0 / 102.0));
        let sel = s.selectivity_lt(50).unwrap();
        assert!((sel - 50.0 / 102.0).abs() < 1e-9);
    }

    #[test]
    fn selectivity_eq_counts_overflow_mass() {
        let h = active(0, 10, 10);
        for v in 0..10 {
            h.observe(v);
        }
        h.observe(10);
        h.observe(999);
        let s = h.snapshot();
        // Regression: values at or above `hi` used to report 0.0 even with
        // overflow observations present.
        let eq = s.selectivity_eq(50).unwrap();
        assert!((eq - 2.0 / 12.0).abs() < 1e-9);
        assert_eq!(s.selectivity_eq(-5), Some(0.0));
    }

    #[test]
    fn percentile_clamped_to_hi_for_indivisible_span() {
        // Span 10 over 3 buckets -> width 4, raw top edge 12 > hi.
        let h = active(0, 10, 3);
        for v in 0..10 {
            h.observe(v);
        }
        h.observe(11);
        let s = h.snapshot();
        // Regression: the upper-bucket edge used to leak out unclamped.
        assert_eq!(s.percentile(1.0), Some(10));
        assert!(s.percentile(0.99).unwrap() <= 10);
    }

    #[test]
    fn render_lists_buckets() {
        let h = active(0, 4, 2);
        h.observe(0);
        h.observe(3);
        assert_eq!(h.snapshot().render(), "0:1 2:1");
    }

    #[test]
    #[should_panic(expected = "empty histogram domain")]
    fn empty_domain_rejected() {
        HistogramMonitor::new(5, 5, 2);
    }
}
