//! Fault-injection harness for chaos-testing the compute path.
//!
//! A [`FaultPlan`] describes, per metadata key, *what* goes wrong
//! ([`FaultAction`]: panic, error, delay) and *when*
//! ([`FaultSchedule`]: every evaluation, every n-th, a contiguous
//! range). Installed via [`crate::MetadataManager::set_fault_plan`], the
//! plan is consulted once per compute evaluation — inside the manager's
//! `catch_unwind` containment, so injected panics exercise exactly the
//! production failure path. Schedules are counted per key, with no
//! randomness, so chaos experiments (E20) and CI smoke runs are fully
//! reproducible.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use streammeta_time::TimeSpan;

use crate::MetadataKey;

/// What an injected fault does to one compute evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// The compute function panics (contained by the manager).
    Panic,
    /// The evaluation reports `Unavailable` without running the real
    /// compute function (a failing probe, a dead remote source).
    Error,
    /// The evaluation is delayed by the given span before the real
    /// compute runs — the "slow compute" fault that deadline budgets
    /// exist for. How the delay passes is decided by the plan's delayer
    /// (wall-clock sleep by default, a virtual-clock advance in
    /// deterministic experiments; see [`FaultPlan::with_delayer`]).
    Delay(TimeSpan),
}

/// When a fault rule fires, counted per key over that key's evaluations
/// (the first evaluation has sequence number 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSchedule {
    /// Every evaluation.
    Always,
    /// Every `n`-th evaluation (`n >= 1`; `EveryNth(10)` faults 10% of
    /// the key's computes).
    EveryNth(u64),
    /// The first `n` evaluations only.
    FirstN(u64),
    /// Evaluations with sequence number in `[from, to)`. Lets a plan
    /// inject failures *after* good values exist (exercising last-good
    /// stale serving) and stop again (exercising recovery).
    Between {
        /// First faulted sequence number (1-based, inclusive).
        from: u64,
        /// First spared sequence number (exclusive).
        to: u64,
    },
}

impl FaultSchedule {
    fn fires(&self, seq: u64) -> bool {
        match *self {
            FaultSchedule::Always => true,
            FaultSchedule::EveryNth(n) => n > 0 && seq.is_multiple_of(n),
            FaultSchedule::FirstN(n) => seq <= n,
            FaultSchedule::Between { from, to } => seq >= from && seq < to,
        }
    }
}

struct FaultRule {
    key: MetadataKey,
    schedule: FaultSchedule,
    action: FaultAction,
}

/// How a [`FaultAction::Delay`] passes time.
pub type DelayFn = dyn Fn(TimeSpan) + Send + Sync;

/// A deterministic fault-injection plan (see the module docs).
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    /// Per-key evaluation counters; only keys with at least one rule are
    /// tracked, so the map stays bounded by the plan itself.
    seqs: Mutex<HashMap<MetadataKey, u64>>,
    injected: AtomicU64,
    delayer: Arc<DelayFn>,
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the default wall-clock
    /// delayer (one time unit = one microsecond, the `WallClock`
    /// convention).
    pub fn new() -> Self {
        FaultPlan {
            rules: Vec::new(),
            seqs: Mutex::new(HashMap::new()),
            injected: AtomicU64::new(0),
            delayer: Arc::new(|span: TimeSpan| {
                std::thread::sleep(std::time::Duration::from_micros(span.units()));
            }),
        }
    }

    /// Adds a rule: `action` on `key`'s evaluations per `schedule`.
    /// Rules are checked in insertion order; the first match wins.
    pub fn inject(
        mut self,
        key: MetadataKey,
        schedule: FaultSchedule,
        action: FaultAction,
    ) -> Self {
        self.rules.push(FaultRule {
            key,
            schedule,
            action,
        });
        self
    }

    /// Replaces the delayer used by [`FaultAction::Delay`]. Deterministic
    /// virtual-clock experiments pass `move |d| clock.advance(d)` so an
    /// injected "slow compute" advances the very clock the manager
    /// measures deadlines against.
    pub fn with_delayer(mut self, f: impl Fn(TimeSpan) + Send + Sync + 'static) -> Self {
        self.delayer = Arc::new(f);
        self
    }

    /// Decides the fault for `key`'s next evaluation, advancing the
    /// key's sequence counter. Called by the manager once per compute.
    pub fn decide(&self, key: &MetadataKey) -> Option<FaultAction> {
        if !self.rules.iter().any(|r| &r.key == key) {
            return None;
        }
        let seq = {
            let mut seqs = self.seqs.lock();
            let seq = seqs.entry(key.clone()).or_insert(0);
            *seq += 1;
            *seq
        };
        let action = self
            .rules
            .iter()
            .find(|r| &r.key == key && r.schedule.fires(seq))
            .map(|r| r.action);
        if action.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        action
    }

    /// Passes the delay of a [`FaultAction::Delay`] through the
    /// configured delayer.
    pub fn delay(&self, span: TimeSpan) {
        (self.delayer)(span);
    }

    /// Total faults injected so far.
    pub fn injected_count(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn key(p: &str) -> MetadataKey {
        MetadataKey::new(NodeId(1), p)
    }

    #[test]
    fn schedules_fire_deterministically() {
        assert!(FaultSchedule::Always.fires(1));
        assert!(FaultSchedule::EveryNth(3).fires(3));
        assert!(!FaultSchedule::EveryNth(3).fires(4));
        assert!(FaultSchedule::FirstN(2).fires(2));
        assert!(!FaultSchedule::FirstN(2).fires(3));
        assert!(FaultSchedule::Between { from: 5, to: 7 }.fires(5));
        assert!(FaultSchedule::Between { from: 5, to: 7 }.fires(6));
        assert!(!FaultSchedule::Between { from: 5, to: 7 }.fires(7));
    }

    #[test]
    fn decide_counts_per_key_and_first_rule_wins() {
        let plan = FaultPlan::new()
            .inject(key("a"), FaultSchedule::EveryNth(2), FaultAction::Panic)
            .inject(key("a"), FaultSchedule::Always, FaultAction::Error);
        // seq 1: EveryNth(2) misses, Always catches.
        assert_eq!(plan.decide(&key("a")), Some(FaultAction::Error));
        // seq 2: first matching rule wins.
        assert_eq!(plan.decide(&key("a")), Some(FaultAction::Panic));
        // Unknown keys are untouched and untracked.
        assert_eq!(plan.decide(&key("b")), None);
        assert!(plan.seqs.lock().get(&key("b")).is_none());
        assert_eq!(plan.injected_count(), 2);
    }

    #[test]
    fn custom_delayer_is_used() {
        use std::sync::atomic::AtomicU64;
        let advanced = Arc::new(AtomicU64::new(0));
        let a = advanced.clone();
        let plan = FaultPlan::new().with_delayer(move |d: TimeSpan| {
            a.fetch_add(d.units(), Ordering::SeqCst);
        });
        plan.delay(TimeSpan(7));
        assert_eq!(advanced.load(Ordering::SeqCst), 7);
    }
}
